//! Property-based tests of the autograd engine: analytic gradients agree
//! with finite differences over randomized graphs, and structural
//! invariants of the tape hold.

use aibench_autograd::{check_gradients, Graph, Param};
use aibench_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn smooth_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    // Keep values away from activation kinks and division blowups.
    Tensor::rand_uniform(&[rows, cols], 0.3, 1.7, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chained_smooth_ops_gradcheck(rows in 1usize..4, cols in 1usize..4, seed in 0u64..500) {
        let a = smooth_tensor(rows, cols, seed);
        check_gradients(&[a], 1e-2, 2e-2, |g, vars| {
            let x = vars[0];
            let s = g.sigmoid(x);
            let t = g.tanh(s);
            let sq = g.square(t);
            let m = g.mul(sq, x);
            g.mean(m)
        });
    }

    #[test]
    fn matmul_chain_gradcheck(m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..500) {
        let a = smooth_tensor(m, k, seed);
        let b = smooth_tensor(k, n, seed ^ 0xAA);
        check_gradients(&[a, b], 1e-2, 2e-2, |g, vars| {
            let y = g.matmul(vars[0], vars[1]);
            let t = g.tanh(y);
            g.sum(t)
        });
    }

    #[test]
    fn softmax_cross_entropy_gradcheck(rows in 1usize..4, classes in 2usize..5, seed in 0u64..500) {
        let logits = smooth_tensor(rows, classes, seed);
        let labels: Vec<usize> = (0..rows).map(|r| (r + seed as usize) % classes).collect();
        check_gradients(&[logits], 1e-2, 2e-2, move |g, vars| {
            g.softmax_cross_entropy(vars[0], &labels, None)
        });
    }

    #[test]
    fn gradients_accumulate_linearly(seed in 0u64..500) {
        // Backward of 3*sum(w) equals three accumulations of sum(w).
        let mut rng = Rng::seed_from(seed);
        let t = Tensor::randn(&[4], &mut rng);
        let p = Param::new("w", t);
        let mut g = Graph::new();
        let w = g.param(&p);
        let s = g.sum(w);
        let tripled = g.scale(s, 3.0);
        g.backward(tripled);
        prop_assert!(p.grad().data().iter().all(|&x| (x - 3.0).abs() < 1e-6));
    }

    #[test]
    fn detached_inputs_receive_no_gradient(seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let p = Param::new("w", Tensor::randn(&[3], &mut rng));
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[3], &mut rng));
        let w = g.param(&p);
        let y = g.mul(x, w);
        let loss = g.sum(y);
        prop_assert!(!g.needs_grad(x));
        g.backward(loss);
        prop_assert!(p.grad().sq_norm() > 0.0);
    }

    #[test]
    fn value_is_pure_forward(seed in 0u64..500) {
        // Building the same graph twice yields identical forward values.
        let mut rng = Rng::seed_from(seed);
        let t = Tensor::randn(&[2, 3], &mut rng);
        let build = |t: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(t.clone());
            let s = g.softmax(x);
            let e = g.exp(s);
            g.value(e).clone()
        };
        prop_assert_eq!(build(&t), build(&t));
    }
}

//! Fused training losses.

use std::rc::Rc;

use aibench_tensor::ops::softmax_last;
use aibench_tensor::Tensor;

use crate::graph::{Graph, Var};

impl Graph {
    /// Mean softmax cross-entropy between logits `[n, classes]` (or
    /// `[..., classes]`) and integer labels, fused for numerical stability.
    ///
    /// Rows whose label equals `ignore_index` (if provided) contribute
    /// neither loss nor gradient — used for padded sequence positions.
    ///
    /// # Panics
    ///
    /// Panics if the number of labels does not match the number of rows, or
    /// a label is out of range.
    pub fn softmax_cross_entropy(
        &mut self,
        logits: Var,
        labels: &[usize],
        ignore_index: Option<usize>,
    ) -> Var {
        let vl = Rc::clone(&self.nodes[logits.0].value);
        let classes = *vl.shape().last().expect("softmax_cross_entropy on scalar");
        let rows = vl.len() / classes;
        assert_eq!(
            labels.len(),
            rows,
            "softmax_cross_entropy: {} labels for {} rows",
            labels.len(),
            rows
        );
        let probs = softmax_last(&vl);
        let mut active = 0usize;
        let mut loss = 0.0f64;
        for (r, &lab) in labels.iter().enumerate() {
            if Some(lab) == ignore_index {
                continue;
            }
            assert!(
                lab < classes,
                "label {lab} out of range for {classes} classes"
            );
            active += 1;
            loss -= (probs.data()[r * classes + lab].max(1e-12) as f64).ln();
        }
        let denom = active.max(1) as f32;
        let labels = labels.to_vec();
        let out = Tensor::scalar(loss as f32 / denom);
        self.op(out, &[logits], move |g, gm| {
            let scale = g.item() / denom;
            let mut gx = probs.clone();
            for (r, &lab) in labels.iter().enumerate() {
                let row = &mut gx.data_mut()[r * classes..(r + 1) * classes];
                if Some(lab) == ignore_index {
                    row.iter_mut().for_each(|v| *v = 0.0);
                } else {
                    row[lab] -= 1.0;
                    row.iter_mut().for_each(|v| *v *= scale);
                }
            }
            gm.accumulate(logits, gx);
        })
    }

    /// Mean squared error against a constant target of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let vp = Rc::clone(&self.nodes[pred.0].value);
        assert_eq!(vp.shape(), target.shape(), "mse_loss shape mismatch");
        let n = vp.len() as f32;
        let diff = vp.sub(target);
        let out = Tensor::scalar(diff.sq_norm() / n);
        self.op(out, &[pred], move |g, gm| {
            gm.accumulate(pred, diff.scale(2.0 * g.item() / n));
        })
    }

    /// Mean binary cross-entropy on logits against constant targets in
    /// `[0, 1]`, fused for stability (`max(x,0) - x*t + ln(1+e^{-|x|})`).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &Tensor) -> Var {
        let vx = Rc::clone(&self.nodes[logits.0].value);
        assert_eq!(
            vx.shape(),
            targets.shape(),
            "bce_with_logits shape mismatch"
        );
        let n = vx.len() as f32;
        let mut loss = 0.0f64;
        for (&x, &t) in vx.data().iter().zip(targets.data()) {
            loss += (x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln()) as f64;
        }
        let sig = vx.map(|x| 1.0 / (1.0 + (-x).exp()));
        let targets = targets.clone();
        let out = Tensor::scalar(loss as f32 / n);
        self.op(out, &[logits], move |g, gm| {
            let scale = g.item() / n;
            gm.accumulate(logits, sig.sub(&targets).scale(scale));
        })
    }

    /// L1 (mean absolute error) loss against a constant target.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn l1_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let vp = Rc::clone(&self.nodes[pred.0].value);
        assert_eq!(vp.shape(), target.shape(), "l1_loss shape mismatch");
        let n = vp.len() as f32;
        let diff = vp.sub(target);
        let out = Tensor::scalar(diff.data().iter().map(|d| d.abs()).sum::<f32>() / n);
        self.op(out, &[pred], move |g, gm| {
            let scale = g.item() / n;
            gm.accumulate(pred, diff.map(|d| d.signum() * scale));
        })
    }

    /// Smooth-L1 (Huber) loss with δ=1, the Faster R-CNN box-regression
    /// loss, against a constant target.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn smooth_l1_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let vp = Rc::clone(&self.nodes[pred.0].value);
        assert_eq!(vp.shape(), target.shape(), "smooth_l1_loss shape mismatch");
        let n = vp.len() as f32;
        let diff = vp.sub(target);
        let loss: f32 = diff
            .data()
            .iter()
            .map(|&d| {
                if d.abs() < 1.0 {
                    0.5 * d * d
                } else {
                    d.abs() - 0.5
                }
            })
            .sum::<f32>()
            / n;
        self.op(Tensor::scalar(loss), &[pred], move |g, gm| {
            let scale = g.item() / n;
            gm.accumulate(
                pred,
                diff.map(|d| if d.abs() < 1.0 { d } else { d.signum() } * scale),
            );
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{check_gradients, Graph, Param};
    use aibench_tensor::{Rng, Tensor};

    #[test]
    fn cross_entropy_gradcheck() {
        let mut rng = Rng::seed_from(40);
        let logits = Tensor::randn(&[4, 5], &mut rng);
        check_gradients(&[logits], 1e-2, 1e-2, |g, vars| {
            g.softmax_cross_entropy(vars[0], &[1, 0, 4, 2], None)
        });
    }

    #[test]
    fn cross_entropy_ignore_index() {
        let mut rng = Rng::seed_from(41);
        let logits = Tensor::randn(&[3, 4], &mut rng);
        let p = Param::new("l", logits);
        let mut g = Graph::new();
        let v = g.param(&p);
        let loss = g.softmax_cross_entropy(v, &[1, 3, 3], Some(3));
        g.backward(loss);
        // Rows 1 and 2 are ignored: zero gradient there.
        let gr = p.grad();
        assert!(gr.data()[4..].iter().all(|&x| x == 0.0));
        assert!(gr.data()[..4].iter().any(|&x| x != 0.0));
    }

    #[test]
    fn cross_entropy_perfect_prediction_low_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.data_mut()[2] = 20.0;
        let mut g = Graph::new();
        let v = g.input(logits);
        let loss = g.softmax_cross_entropy(v, &[2], None);
        assert!(g.value(loss).item() < 1e-4);
    }

    #[test]
    fn mse_gradcheck() {
        let mut rng = Rng::seed_from(42);
        let pred = Tensor::randn(&[3, 3], &mut rng);
        let target = Tensor::randn(&[3, 3], &mut rng);
        check_gradients(&[pred], 1e-2, 1e-2, move |g, vars| {
            g.mse_loss(vars[0], &target)
        });
    }

    #[test]
    fn bce_gradcheck() {
        let mut rng = Rng::seed_from(43);
        let logits = Tensor::randn(&[6], &mut rng);
        let targets = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0, 0.5, 1.0], &[6]);
        check_gradients(&[logits], 1e-2, 1e-2, move |g, vars| {
            g.bce_with_logits(vars[0], &targets)
        });
    }

    #[test]
    fn smooth_l1_gradcheck_away_from_kink() {
        let pred = Tensor::from_vec(vec![0.3, -0.4, 2.5, -3.0], &[4]);
        let target = Tensor::zeros(&[4]);
        check_gradients(&[pred], 1e-3, 1e-2, move |g, vars| {
            g.smooth_l1_loss(vars[0], &target)
        });
    }

    #[test]
    fn l1_gradcheck_away_from_zero() {
        let pred = Tensor::from_vec(vec![0.5, -0.7, 1.2], &[3]);
        let target = Tensor::zeros(&[3]);
        check_gradients(&[pred], 1e-3, 1e-2, move |g, vars| {
            g.l1_loss(vars[0], &target)
        });
    }
}

//! Differentiable matrix products.

use std::rc::Rc;

use crate::graph::{Graph, Var};
use aibench_tensor::ops::{batch_matmul, matmul};

impl Graph {
    /// Matrix product `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions disagree.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (
            Rc::clone(&self.nodes[a.0].value),
            Rc::clone(&self.nodes[b.0].value),
        );
        let out = matmul(&va, &vb);
        self.op(out, &[a, b], move |g, gm| {
            gm.accumulate(a, matmul(g, &vb.t()));
            gm.accumulate(b, matmul(&va.t(), g));
        })
    }

    /// Batched matrix product `[b, m, k] x [b, k, n] -> [b, m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 3-D or batch/inner dims disagree.
    pub fn batch_matmul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (
            Rc::clone(&self.nodes[a.0].value),
            Rc::clone(&self.nodes[b.0].value),
        );
        let out = batch_matmul(&va, &vb);
        self.op(out, &[a, b], move |g, gm| {
            gm.accumulate(a, batch_matmul(g, &vb.permute(&[0, 2, 1])));
            gm.accumulate(b, batch_matmul(&va.permute(&[0, 2, 1]), g));
        })
    }

    /// Affine map `x @ w + bias`, the fully-connected layer primitive.
    ///
    /// `x` is `[n, d_in]`, `w` is `[d_in, d_out]`, `bias` is `[d_out]`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn linear(&mut self, x: Var, w: Var, bias: Var) -> Var {
        let y = self.matmul(x, w);
        self.add(y, bias)
    }
}

#[cfg(test)]
mod tests {
    use crate::check_gradients;
    use aibench_tensor::{Rng, Tensor};

    #[test]
    fn matmul_gradcheck() {
        let mut rng = Rng::seed_from(10);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 2], &mut rng);
        check_gradients(&[a, b], 1e-2, 1e-2, |g, vars| {
            let y = g.matmul(vars[0], vars[1]);
            let sq = g.square(y);
            g.sum(sq)
        });
    }

    #[test]
    fn batch_matmul_gradcheck() {
        let mut rng = Rng::seed_from(11);
        let a = Tensor::randn(&[2, 3, 4], &mut rng);
        let b = Tensor::randn(&[2, 4, 2], &mut rng);
        check_gradients(&[a, b], 1e-2, 1e-2, |g, vars| {
            let y = g.batch_matmul(vars[0], vars[1]);
            let sq = g.square(y);
            g.sum(sq)
        });
    }

    #[test]
    fn linear_gradcheck() {
        let mut rng = Rng::seed_from(12);
        let x = Tensor::randn(&[4, 3], &mut rng);
        let w = Tensor::randn(&[3, 5], &mut rng);
        let b = Tensor::randn(&[5], &mut rng);
        check_gradients(&[x, w, b], 1e-2, 1e-2, |g, vars| {
            let y = g.linear(vars[0], vars[1], vars[2]);
            let t = g.tanh(y);
            g.sum(t)
        });
    }
}

//! Elementwise arithmetic, activations, reductions, and shape ops.

use std::rc::Rc;

use aibench_tensor::ops::{log_softmax_last, softmax_last};
use aibench_tensor::Tensor;

use crate::graph::{Graph, Var};

impl Graph {
    // ------------------------------------------------------------------
    // Broadcasting arithmetic
    // ------------------------------------------------------------------

    /// Elementwise (broadcasting) addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (
            Rc::clone(&self.nodes[a.0].value),
            Rc::clone(&self.nodes[b.0].value),
        );
        let out = va.add(&vb);
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        self.op(out, &[a, b], move |g, gm| {
            gm.accumulate(a, g.sum_to(&sa));
            gm.accumulate(b, g.sum_to(&sb));
        })
    }

    /// Elementwise (broadcasting) subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (
            Rc::clone(&self.nodes[a.0].value),
            Rc::clone(&self.nodes[b.0].value),
        );
        let out = va.sub(&vb);
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        self.op(out, &[a, b], move |g, gm| {
            gm.accumulate(a, g.sum_to(&sa));
            gm.accumulate(b, g.neg().sum_to(&sb));
        })
    }

    /// Elementwise (broadcasting) multiplication.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (
            Rc::clone(&self.nodes[a.0].value),
            Rc::clone(&self.nodes[b.0].value),
        );
        let out = va.mul(&vb);
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        self.op(out, &[a, b], move |g, gm| {
            gm.accumulate(a, g.mul(&vb).sum_to(&sa));
            gm.accumulate(b, g.mul(&va).sum_to(&sb));
        })
    }

    /// Elementwise (broadcasting) division.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (
            Rc::clone(&self.nodes[a.0].value),
            Rc::clone(&self.nodes[b.0].value),
        );
        let out = va.div(&vb);
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        self.op(out, &[a, b], move |g, gm| {
            gm.accumulate(a, g.div(&vb).sum_to(&sa));
            let gb = g.mul(&va).div(&vb).div(&vb).neg();
            gm.accumulate(b, gb.sum_to(&sb));
        })
    }

    /// Multiplies by a constant scalar.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        self.op(va.scale(c), &[a], move |g, gm| gm.accumulate(a, g.scale(c)))
    }

    /// Adds a constant scalar.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        self.op(va.add_scalar(c), &[a], move |g, gm| {
            gm.accumulate(a, g.clone())
        })
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    // ------------------------------------------------------------------
    // Activations and pointwise nonlinearities
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let out = va.map(|x| x.max(0.0));
        self.op(out, &[a], move |g, gm| {
            gm.accumulate(a, g.zip(&va, |gi, xi| if xi > 0.0 { gi } else { 0.0 }));
        })
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let out = va.map(|x| if x > 0.0 { x } else { slope * x });
        self.op(out, &[a], move |g, gm| {
            gm.accumulate(
                a,
                g.zip(&va, |gi, xi| if xi > 0.0 { gi } else { slope * gi }),
            );
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let y = va.map(|x| 1.0 / (1.0 + (-x).exp()));
        let yc = y.clone();
        self.op(y, &[a], move |g, gm| {
            gm.accumulate(a, g.zip(&yc, |gi, yi| gi * yi * (1.0 - yi)));
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let y = va.map(f32::tanh);
        let yc = y.clone();
        self.op(y, &[a], move |g, gm| {
            gm.accumulate(a, g.zip(&yc, |gi, yi| gi * (1.0 - yi * yi)));
        })
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let y = va.map(f32::exp);
        let yc = y.clone();
        self.op(y, &[a], move |g, gm| gm.accumulate(a, g.mul(&yc)))
    }

    /// Elementwise natural logarithm, clamped below at `1e-12` for
    /// stability.
    pub fn ln(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let y = va.map(|x| x.max(1e-12).ln());
        self.op(y, &[a], move |g, gm| {
            gm.accumulate(a, g.zip(&va, |gi, xi| gi / xi.max(1e-12)));
        })
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let y = va.map(|x| x * x);
        self.op(y, &[a], move |g, gm| {
            gm.accumulate(a, g.zip(&va, |gi, xi| 2.0 * gi * xi));
        })
    }

    /// Elementwise square root (of the input clamped at zero).
    pub fn sqrt(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let y = va.map(|x| x.max(0.0).sqrt());
        let yc = y.clone();
        self.op(y, &[a], move |g, gm| {
            gm.accumulate(a, g.zip(&yc, |gi, yi| gi / (2.0 * yi.max(1e-8))));
        })
    }

    /// Elementwise absolute value (subgradient 0 at the origin).
    pub fn abs(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let y = va.map(f32::abs);
        self.op(y, &[a], move |g, gm| {
            gm.accumulate(
                a,
                g.zip(&va, |gi, xi| {
                    gi * xi.signum() * if xi == 0.0 { 0.0 } else { 1.0 }
                }),
            );
        })
    }

    /// Softmax over the last axis.
    pub fn softmax(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let y = softmax_last(&va);
        let yc = y.clone();
        self.op(y, &[a], move |g, gm| {
            // dL/dx = (g - <g, y>_row) * y, rowwise over the last axis.
            let inner = *yc.shape().last().unwrap();
            let outer = yc.len() / inner;
            let mut gx = Tensor::zeros(yc.shape());
            for o in 0..outer {
                let gr = &g.data()[o * inner..(o + 1) * inner];
                let yr = &yc.data()[o * inner..(o + 1) * inner];
                let dot: f32 = gr.iter().zip(yr).map(|(a, b)| a * b).sum();
                let dst = &mut gx.data_mut()[o * inner..(o + 1) * inner];
                for i in 0..inner {
                    dst[i] = (gr[i] - dot) * yr[i];
                }
            }
            gm.accumulate(a, gx);
        })
    }

    /// Log-softmax over the last axis.
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let y = log_softmax_last(&va);
        let p = softmax_last(&va);
        self.op(y, &[a], move |g, gm| {
            // dL/dx = g - p * sum(g)_row
            let inner = *p.shape().last().unwrap();
            let outer = p.len() / inner;
            let mut gx = Tensor::zeros(p.shape());
            for o in 0..outer {
                let gr = &g.data()[o * inner..(o + 1) * inner];
                let pr = &p.data()[o * inner..(o + 1) * inner];
                let gsum: f32 = gr.iter().sum();
                let dst = &mut gx.data_mut()[o * inner..(o + 1) * inner];
                for i in 0..inner {
                    dst[i] = gr[i] - pr[i] * gsum;
                }
            }
            gm.accumulate(a, gx);
        })
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let shape = va.shape().to_vec();
        self.op(Tensor::scalar(va.sum()), &[a], move |g, gm| {
            gm.accumulate(a, Tensor::full(&shape, g.item()));
        })
    }

    /// Mean of all elements (scalar output).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&mut self, a: Var) -> Var {
        let n = self.nodes[a.0].value.len();
        assert!(n > 0, "mean of empty tensor");
        let s = self.sum(a);
        self.scale(s, 1.0 / n as f32)
    }

    /// Sums along `axis`, removing it.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn sum_axis(&mut self, a: Var, axis: usize) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let out = va.sum_axis(axis);
        let in_shape = va.shape().to_vec();
        self.op(out, &[a], move |g, gm| {
            // Broadcast the gradient back across the reduced axis.
            let outer: usize = in_shape[..axis].iter().product();
            let mid = in_shape[axis];
            let inner: usize = in_shape[axis + 1..].iter().product();
            let mut gx = Tensor::zeros(&in_shape);
            for o in 0..outer {
                for m in 0..mid {
                    for i in 0..inner {
                        gx.data_mut()[(o * mid + m) * inner + i] = g.data()[o * inner + i];
                    }
                }
            }
            gm.accumulate(a, gx);
        })
    }

    /// Means along `axis`, removing it.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or has zero extent.
    pub fn mean_axis(&mut self, a: Var, axis: usize) -> Var {
        let n = self.nodes[a.0].value.shape()[axis];
        assert!(n > 0, "mean_axis over empty axis");
        let s = self.sum_axis(a, axis);
        self.scale(s, 1.0 / n as f32)
    }

    // ------------------------------------------------------------------
    // Shape ops
    // ------------------------------------------------------------------

    /// Reshapes without changing element count.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let out = va.reshape(shape);
        let in_shape = va.shape().to_vec();
        self.op(out, &[a], move |g, gm| {
            gm.accumulate(a, g.reshape(&in_shape))
        })
    }

    /// Transposes a 2-D node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not 2-D.
    pub fn transpose(&mut self, a: Var) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        self.op(va.t(), &[a], move |g, gm| gm.accumulate(a, g.t()))
    }

    /// Permutes dimensions; `perm[i]` is the source axis of output axis `i`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation.
    pub fn permute(&mut self, a: Var, perm: &[usize]) -> Var {
        let va = Rc::clone(&self.nodes[a.0].value);
        let out = va.permute(perm);
        // Inverse permutation for the backward pass.
        let mut inv = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        self.op(out, &[a], move |g, gm| gm.accumulate(a, g.permute(&inv)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradients;
    use aibench_tensor::Rng;

    #[test]
    fn add_broadcast_gradcheck() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[2, 3], &mut rng);
        let b = Tensor::randn(&[3], &mut rng);
        check_gradients(&[a, b], 2e-2, 1e-2, |g, vars| {
            let y = g.add(vars[0], vars[1]);
            let y = g.square(y);
            g.sum(y)
        });
    }

    #[test]
    fn mul_div_gradcheck() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::rand_uniform(&[2, 3], 0.5, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[2, 3], 0.5, 2.0, &mut rng);
        check_gradients(&[a, b], 1e-2, 1e-2, |g, vars| {
            let y = g.mul(vars[0], vars[1]);
            let z = g.div(y, vars[1]);
            let w = g.add(y, z);
            g.sum(w)
        });
    }

    #[test]
    fn activations_gradcheck() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::rand_uniform(&[8], 0.2, 1.5, &mut rng);
        check_gradients(&[a], 1e-2, 1e-2, |g, vars| {
            let x = vars[0];
            let s = g.sigmoid(x);
            let t = g.tanh(s);
            let e = g.exp(t);
            let l = g.ln(e);
            let q = g.sqrt(l);
            g.sum(q)
        });
    }

    #[test]
    fn softmax_gradcheck() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn(&[3, 5], &mut rng);
        let w = Tensor::randn(&[3, 5], &mut rng);
        check_gradients(&[a, w.clone()], 2e-2, 1e-2, move |g, vars| {
            let p = g.softmax(vars[0]);
            let weighted = g.mul(p, vars[1]);
            g.sum(weighted)
        });
    }

    #[test]
    fn log_softmax_gradcheck() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(&[2, 4], &mut rng);
        let w = Tensor::randn(&[2, 4], &mut rng);
        check_gradients(&[a, w], 2e-2, 1e-2, |g, vars| {
            let lp = g.log_softmax(vars[0]);
            let weighted = g.mul(lp, vars[1]);
            g.sum(weighted)
        });
    }

    #[test]
    fn reductions_and_shape_gradcheck() {
        let mut rng = Rng::seed_from(6);
        let a = Tensor::randn(&[2, 3, 4], &mut rng);
        check_gradients(&[a], 1e-2, 1e-2, |g, vars| {
            let s = g.sum_axis(vars[0], 1);
            let r = g.reshape(s, &[4, 2]);
            let t = g.transpose(r);
            let sq = g.square(t);
            g.mean(sq)
        });
    }

    #[test]
    fn permute_gradcheck() {
        let mut rng = Rng::seed_from(7);
        let a = Tensor::randn(&[2, 3, 4], &mut rng);
        check_gradients(&[a], 1e-2, 1e-2, |g, vars| {
            let p = g.permute(vars[0], &[2, 0, 1]);
            let sq = g.square(p);
            g.sum(sq)
        });
    }

    #[test]
    fn sub_neg_leaky_relu_gradcheck() {
        let mut rng = Rng::seed_from(8);
        let a = Tensor::randn(&[2, 3], &mut rng);
        let b = Tensor::randn(&[2, 3], &mut rng);
        check_gradients(&[a, b], 2e-2, 1e-2, |g, vars| {
            let d = g.sub(vars[0], vars[1]);
            let n = g.neg(d);
            let l = g.leaky_relu(n, 0.1);
            let sq = g.square(l);
            g.sum(sq)
        });
    }

    #[test]
    fn mean_axis_gradcheck() {
        let mut rng = Rng::seed_from(9);
        let a = Tensor::randn(&[2, 3, 4], &mut rng);
        check_gradients(&[a], 1e-2, 1e-2, |g, vars| {
            let m = g.mean_axis(vars[0], 2);
            let sq = g.square(m);
            g.sum(sq)
        });
    }

    #[test]
    fn relu_known_gradient() {
        let mut g = Graph::new();
        let p = crate::Param::new("x", Tensor::from_vec(vec![-1.0, 2.0, 0.5], &[3]));
        let x = g.param(&p);
        let y = g.relu(x);
        let loss = g.sum(y);
        g.backward(loss);
        assert_eq!(p.grad().data(), &[0.0, 1.0, 1.0]);
    }
}

//! Indexing and structural ops: embedding lookup, concatenation, slicing.

use std::rc::Rc;

use aibench_tensor::ops::{concat, slice_axis};
use aibench_tensor::Tensor;

use crate::graph::{Graph, Var};

impl Graph {
    /// Row gather: selects rows `ids` from a 2-D table `[rows, d]`,
    /// producing `[ids.len(), d]`. This is the embedding-lookup primitive;
    /// its backward is a scatter-add into the table gradient.
    ///
    /// # Panics
    ///
    /// Panics if the table is not 2-D or any id is out of range.
    pub fn index_select0(&mut self, table: Var, ids: &[usize]) -> Var {
        let vt = Rc::clone(&self.nodes[table.0].value);
        assert_eq!(
            vt.ndim(),
            2,
            "index_select0: table must be 2-D, got {:?}",
            vt.shape()
        );
        let (rows, d) = (vt.shape()[0], vt.shape()[1]);
        let mut out = Tensor::zeros(&[ids.len(), d]);
        for (i, &id) in ids.iter().enumerate() {
            assert!(
                id < rows,
                "index_select0: id {id} out of range for {rows} rows"
            );
            out.data_mut()[i * d..(i + 1) * d].copy_from_slice(&vt.data()[id * d..(id + 1) * d]);
        }
        let ids = ids.to_vec();
        let table_shape = vt.shape().to_vec();
        self.op(out, &[table], move |g, gm| {
            let mut gt = Tensor::zeros(&table_shape);
            for (i, &id) in ids.iter().enumerate() {
                let dst = &mut gt.data_mut()[id * d..(id + 1) * d];
                for (a, &b) in dst.iter_mut().zip(&g.data()[i * d..(i + 1) * d]) {
                    *a += b;
                }
            }
            gm.accumulate(table, gt);
        })
    }

    /// Concatenates nodes along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or extents disagree off-axis.
    pub fn concat(&mut self, parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "concat of zero vars");
        let values: Vec<Rc<Tensor>> = parts
            .iter()
            .map(|p| Rc::clone(&self.nodes[p.0].value))
            .collect();
        let refs: Vec<&Tensor> = values.iter().map(|v| v.as_ref()).collect();
        let out = concat(&refs, axis);
        let extents: Vec<usize> = values.iter().map(|v| v.shape()[axis]).collect();
        let parts = parts.to_vec();
        self.op(out, &parts.clone(), move |g, gm| {
            let mut start = 0;
            for (p, &ext) in parts.iter().zip(&extents) {
                gm.accumulate(*p, slice_axis(g, axis, start, ext));
                start += ext;
            }
        })
    }

    /// Extracts `[start, start+len)` along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the axis extent.
    pub fn slice(&mut self, x: Var, axis: usize, start: usize, len: usize) -> Var {
        let vx = Rc::clone(&self.nodes[x.0].value);
        let out = slice_axis(&vx, axis, start, len);
        let in_shape = vx.shape().to_vec();
        self.op(out, &[x], move |g, gm| {
            // Zero-pad the gradient back into the source extent.
            let mut gx = Tensor::zeros(&in_shape);
            let inner: usize = in_shape[axis + 1..].iter().product();
            let outer: usize = in_shape[..axis].iter().product();
            let src_chunk = len * inner;
            let dst_chunk = in_shape[axis] * inner;
            for o in 0..outer {
                let dst = o * dst_chunk + start * inner;
                gx.data_mut()[dst..dst + src_chunk]
                    .copy_from_slice(&g.data()[o * src_chunk..(o + 1) * src_chunk]);
            }
            gm.accumulate(x, gx);
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{check_gradients, Graph, Param};
    use aibench_tensor::{Rng, Tensor};

    #[test]
    fn index_select_forward_and_scatter_backward() {
        let table = Param::new(
            "emb",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]),
        );
        let mut g = Graph::new();
        let t = g.param(&table);
        let rows = g.index_select0(t, &[2, 0, 2]);
        assert_eq!(g.value(rows).data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let loss = g.sum(rows);
        g.backward(loss);
        // Row 2 selected twice, row 0 once, row 1 never.
        assert_eq!(table.grad().data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn concat_gradcheck() {
        let mut rng = Rng::seed_from(30);
        let a = Tensor::randn(&[2, 2], &mut rng);
        let b = Tensor::randn(&[2, 3], &mut rng);
        check_gradients(&[a, b], 1e-2, 1e-2, |g, vars| {
            let c = g.concat(&[vars[0], vars[1]], 1);
            let sq = g.square(c);
            g.sum(sq)
        });
    }

    #[test]
    fn slice_gradcheck() {
        let mut rng = Rng::seed_from(31);
        let a = Tensor::randn(&[3, 4], &mut rng);
        check_gradients(&[a], 1e-2, 1e-2, |g, vars| {
            let s = g.slice(vars[0], 1, 1, 2);
            let sq = g.square(s);
            g.sum(sq)
        });
    }

    #[test]
    fn slice_concat_roundtrip_values() {
        let mut rng = Rng::seed_from(32);
        let x = Tensor::randn(&[2, 5], &mut rng);
        let mut g = Graph::new();
        let v = g.input(x.clone());
        let a = g.slice(v, 1, 0, 2);
        let b = g.slice(v, 1, 2, 3);
        let back = g.concat(&[a, b], 1);
        assert_eq!(g.value(back), &x);
    }
}

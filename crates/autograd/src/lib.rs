//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a single-use tape: each training step builds a fresh graph
//! by applying operations to [`Var`] handles, computes a scalar loss, and
//! calls [`Graph::backward`]. Gradients of [`Param`] leaves accumulate into
//! the shared parameter storage, where optimizers (in `aibench-nn`) consume
//! them.
//!
//! Every differentiable operation the seventeen AIBench benchmark models
//! need is provided: broadcasting arithmetic, GEMM, im2col convolution and
//! transposed convolution, pooling, batch/layer normalization, dropout,
//! embedding lookup, softmax/cross-entropy and friends, and the bilinear
//! grid sampler used by the Spatial Transformer benchmark.
//!
//! # Example
//!
//! ```
//! use aibench_autograd::{Graph, Param};
//! use aibench_tensor::Tensor;
//!
//! let w = Param::new("w", Tensor::from_vec(vec![2.0], &[1]));
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_vec(vec![3.0], &[1]));
//! let wv = g.param(&w);
//! let y = g.mul(x, wv);
//! let loss = g.sum(y);
//! g.backward(loss);
//! assert_eq!(w.grad().data(), &[3.0]); // d(w*x)/dw = x
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod gradcheck;
mod graph;
mod ops_basic;
mod ops_conv;
mod ops_index;
mod ops_loss;
mod ops_matmul;
mod ops_norm;
mod ops_spatial;
mod param;

pub use gradcheck::check_gradients;
pub use graph::{Graph, Var};
pub use param::Param;

//! Shared, named trainable parameters.

use std::cell::{Ref, RefCell, RefMut};
use std::fmt;
use std::rc::Rc;

use aibench_tensor::Tensor;

struct ParamInner {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A trainable parameter: a named tensor with a gradient accumulator,
/// shared between the model that owns it and every [`Graph`](crate::Graph)
/// built during training.
///
/// Cloning a `Param` clones the *handle* (both clones refer to the same
/// storage), which is how layers hand their parameters to optimizers.
///
/// # Example
///
/// ```
/// use aibench_autograd::Param;
/// use aibench_tensor::Tensor;
///
/// let p = Param::new("weight", Tensor::zeros(&[2, 2]));
/// assert_eq!(p.name(), "weight");
/// assert_eq!(p.grad().sum(), 0.0);
/// ```
#[derive(Clone)]
pub struct Param {
    inner: Rc<RefCell<ParamInner>>,
}

impl Param {
    /// Creates a parameter with the given debug name and initial value.
    /// The gradient starts at zero.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            inner: Rc::new(RefCell::new(ParamInner {
                name: name.into(),
                value,
                grad,
            })),
        }
    }

    /// The debug name.
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// The parameter shape.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.borrow().value.shape().to_vec()
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.inner.borrow().value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the current value.
    ///
    /// # Panics
    ///
    /// Panics if the value is mutably borrowed elsewhere.
    pub fn value(&self) -> Ref<'_, Tensor> {
        Ref::map(self.inner.borrow(), |p| &p.value)
    }

    /// Mutably borrows the current value (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if the value is borrowed elsewhere.
    pub fn value_mut(&self) -> RefMut<'_, Tensor> {
        RefMut::map(self.inner.borrow_mut(), |p| &mut p.value)
    }

    /// Borrows the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if the gradient is mutably borrowed elsewhere.
    pub fn grad(&self) -> Ref<'_, Tensor> {
        Ref::map(self.inner.borrow(), |p| &p.grad)
    }

    /// Mutably borrows the gradient (used by optimizers for e.g. clipping).
    ///
    /// # Panics
    ///
    /// Panics if the gradient is borrowed elsewhere.
    pub fn grad_mut(&self) -> RefMut<'_, Tensor> {
        RefMut::map(self.inner.borrow_mut(), |p| &mut p.grad)
    }

    /// Adds `g` into the gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate_grad(&self, g: &Tensor) {
        self.inner.borrow_mut().grad.add_scaled_inplace(g, 1.0);
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&self) {
        let mut p = self.inner.borrow_mut();
        p.grad.map_inplace(|_| 0.0);
    }

    /// Replaces the value (keeping the gradient buffer shape in sync).
    ///
    /// # Panics
    ///
    /// Panics if the new value has a different shape.
    pub fn set_value(&self, value: Tensor) {
        let mut p = self.inner.borrow_mut();
        assert_eq!(
            p.value.shape(),
            value.shape(),
            "set_value: shape change not allowed"
        );
        p.value = value;
    }

    /// Whether two handles refer to the same underlying storage.
    pub fn same_storage(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl aibench_ckpt::Snapshot for Param {
    /// Saves `{prefix}.value` and `{prefix}.grad`.
    ///
    /// The gradient accumulator is included for completeness even though
    /// epoch-boundary snapshots always see it zeroed — a snapshot taken
    /// mid-step still restores faithfully.
    fn snapshot(&self, state: &mut aibench_ckpt::State, prefix: &str) {
        use aibench_ckpt::key;
        let p = self.inner.borrow();
        state.put_f32s(
            key(prefix, "value"),
            p.value.shape(),
            p.value.data().to_vec(),
        );
        state.put_f32s(key(prefix, "grad"), p.grad.shape(), p.grad.data().to_vec());
    }
}

impl aibench_ckpt::Restore for Param {
    fn restore(
        &mut self,
        state: &aibench_ckpt::State,
        prefix: &str,
    ) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::key;
        let mut p = self.inner.borrow_mut();
        p.value.restore(state, &key(prefix, "value"))?;
        p.grad.restore(state, &key(prefix, "grad"))
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.inner.borrow();
        write!(f, "Param({:?}, shape {:?})", p.name, p.value.shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        let q = p.clone();
        q.value_mut().data_mut()[0] = 5.0;
        assert_eq!(p.value().data()[0], 5.0);
        assert!(p.same_storage(&q));
    }

    #[test]
    fn grad_accumulates_and_zeroes() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::ones(&[2]));
        p.accumulate_grad(&Tensor::ones(&[2]));
        assert_eq!(p.grad().data(), &[2.0, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn snapshot_restore_round_trips_value_and_grad() {
        use aibench_ckpt::{Restore as _, Snapshot as _, State};
        let p = Param::new("w", Tensor::from_vec(vec![1.5, -2.5], &[2]));
        p.accumulate_grad(&Tensor::from_vec(vec![0.25, 4.0], &[2]));
        let mut state = State::new();
        p.snapshot(&mut state, "p0");
        let mut q = Param::new("w", Tensor::zeros(&[2]));
        q.restore(&state, "p0").unwrap();
        assert_eq!(q.value().data(), &[1.5, -2.5]);
        assert_eq!(q.grad().data(), &[0.25, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape change")]
    fn set_value_rejects_shape_change() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        p.set_value(Tensor::zeros(&[3]));
    }
}

//! Differentiable convolution, transposed convolution, and pooling.

use std::rc::Rc;

use crate::graph::{Graph, Var};
use aibench_tensor::ops::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward_input, conv2d_backward_weight,
    max_pool2d, max_pool2d_backward, Conv2dArgs,
};

impl Graph {
    /// 2-D convolution: `x` is `[n, c_in, h, w]`, `w` is
    /// `[c_out, c_in, kh, kw]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/channel mismatches or a kernel larger than the padded
    /// input.
    pub fn conv2d(&mut self, x: Var, w: Var, args: Conv2dArgs) -> Var {
        let (vx, vw) = (
            Rc::clone(&self.nodes[x.0].value),
            Rc::clone(&self.nodes[w.0].value),
        );
        let out = conv2d(&vx, &vw, args);
        let (h, wd) = (vx.shape()[2], vx.shape()[3]);
        let (kh, kw) = (vw.shape()[2], vw.shape()[3]);
        self.op(out, &[x, w], move |g, gm| {
            gm.accumulate(x, conv2d_backward_input(g, &vw, (h, wd), args));
            gm.accumulate(w, conv2d_backward_weight(&vx, g, (kh, kw), args));
        })
    }

    /// Transposed 2-D convolution (a.k.a. deconvolution), the upsampling
    /// primitive of the GAN generators and decoder networks.
    ///
    /// `x` is `[n, c_in, h, w]`; `w` is `[c_in, c_out, kh, kw]` (note the
    /// swapped channel order, matching the convolution it transposes);
    /// `out_hw` is the produced spatial extent.
    ///
    /// # Panics
    ///
    /// Panics if `out_hw` is inconsistent with the geometry, i.e. a forward
    /// convolution of that extent would not produce `(h, w)`.
    pub fn conv_transpose2d(
        &mut self,
        x: Var,
        w: Var,
        args: Conv2dArgs,
        out_hw: (usize, usize),
    ) -> Var {
        let (vx, vw) = (
            Rc::clone(&self.nodes[x.0].value),
            Rc::clone(&self.nodes[w.0].value),
        );
        let (kh, kw) = (vw.shape()[2], vw.shape()[3]);
        assert_eq!(
            (args.out_extent(out_hw.0, kh), args.out_extent(out_hw.1, kw)),
            (vx.shape()[2], vx.shape()[3]),
            "conv_transpose2d: output extent {:?} inconsistent with input {:?}",
            out_hw,
            vx.shape()
        );
        // Forward of the transpose == backward-input of the convolution.
        let out = conv2d_backward_input(&vx, &vw, out_hw, args);
        self.op(out, &[x, w], move |g, gm| {
            // Backward wrt x == forward convolution of the output gradient.
            gm.accumulate(x, conv2d(g, &vw, args));
            // Backward wrt w == weight gradient with (g, x) in the conv roles.
            gm.accumulate(w, conv2d_backward_weight(g, &vx, (kh, kw), args));
        })
    }

    /// Max pooling with a square `k` window and stride.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D or the window does not fit.
    pub fn max_pool2d(&mut self, x: Var, k: usize, stride: usize) -> Var {
        let vx = Rc::clone(&self.nodes[x.0].value);
        let (out, winners) = max_pool2d(&vx, k, stride);
        let in_shape = vx.shape().to_vec();
        self.op(out, &[x], move |g, gm| {
            gm.accumulate(x, max_pool2d_backward(g, &winners, &in_shape));
        })
    }

    /// Average pooling with a square `k` window and stride.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D or the window does not fit.
    pub fn avg_pool2d(&mut self, x: Var, k: usize, stride: usize) -> Var {
        let vx = Rc::clone(&self.nodes[x.0].value);
        let out = avg_pool2d(&vx, k, stride);
        let in_shape = vx.shape().to_vec();
        self.op(out, &[x], move |g, gm| {
            gm.accumulate(x, avg_pool2d_backward(g, &in_shape, k, stride));
        })
    }

    /// Global average pooling: `[n, c, h, w] -> [n, c]`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D.
    pub fn global_avg_pool(&mut self, x: Var) -> Var {
        let shape = self.value(x).shape().to_vec();
        assert_eq!(shape.len(), 4, "global_avg_pool: input must be NCHW");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let flat = self.reshape(x, &[n, c, h * w]);
        self.mean_axis(flat, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradients;
    use aibench_tensor::{Rng, Tensor};

    #[test]
    fn conv2d_gradcheck() {
        let mut rng = Rng::seed_from(20);
        let x = Tensor::randn(&[2, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        check_gradients(&[x, w], 1e-2, 2e-2, |g, vars| {
            let y = g.conv2d(vars[0], vars[1], Conv2dArgs::new(1, 1));
            let sq = g.square(y);
            g.mean(sq)
        });
    }

    #[test]
    fn conv2d_strided_gradcheck() {
        let mut rng = Rng::seed_from(21);
        let x = Tensor::randn(&[1, 2, 6, 6], &mut rng);
        let w = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        check_gradients(&[x, w], 1e-2, 2e-2, |g, vars| {
            let y = g.conv2d(vars[0], vars[1], Conv2dArgs::new(2, 1));
            let sq = g.square(y);
            g.sum(sq)
        });
    }

    #[test]
    fn conv_transpose_gradcheck() {
        let mut rng = Rng::seed_from(22);
        let x = Tensor::randn(&[1, 3, 3, 3], &mut rng);
        let w = Tensor::randn(&[3, 2, 2, 2], &mut rng);
        check_gradients(&[x, w], 1e-2, 2e-2, |g, vars| {
            let y = g.conv_transpose2d(vars[0], vars[1], Conv2dArgs::new(2, 0), (6, 6));
            let sq = g.square(y);
            g.sum(sq)
        });
    }

    #[test]
    fn conv_transpose_doubles_extent() {
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[1, 4, 5, 5]));
        let w = g.input(Tensor::ones(&[4, 2, 2, 2]));
        let y = g.conv_transpose2d(x, w, Conv2dArgs::new(2, 0), (10, 10));
        assert_eq!(g.value(y).shape(), &[1, 2, 10, 10]);
    }

    #[test]
    fn max_pool_gradcheck() {
        let mut rng = Rng::seed_from(23);
        // Use distinct values to avoid tie ambiguity at the kink.
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| (i as f32) * 0.37 + ((i * 7) % 5) as f32);
        let w = Tensor::randn(&[1, 2, 2, 2], &mut rng);
        check_gradients(&[x, w], 1e-3, 1e-2, |g, vars| {
            let y = g.max_pool2d(vars[0], 2, 2);
            let weighted = g.mul(y, vars[1]);
            g.sum(weighted)
        });
    }

    #[test]
    fn avg_pool_gradcheck() {
        let mut rng = Rng::seed_from(24);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        check_gradients(&[x], 1e-2, 1e-2, |g, vars| {
            let y = g.avg_pool2d(vars[0], 2, 2);
            let sq = g.square(y);
            g.sum(sq)
        });
    }

    #[test]
    fn global_avg_pool_shape_and_grad() {
        let mut rng = Rng::seed_from(25);
        let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        check_gradients(&[x], 1e-2, 1e-2, |g, vars| {
            let y = g.global_avg_pool(vars[0]);
            assert_eq!(g.value(y).shape(), &[2, 3]);
            let sq = g.square(y);
            g.sum(sq)
        });
    }
}

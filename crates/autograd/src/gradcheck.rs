//! Finite-difference gradient checking for tests.

use aibench_tensor::Tensor;

use crate::graph::{Graph, Var};
use crate::param::Param;

/// Verifies analytic gradients against central finite differences.
///
/// `build` receives a fresh graph and one param-bound [`Var`] per input
/// tensor, and must return a scalar loss node. Every element of every input
/// is perturbed by `eps` and the numeric derivative compared to the analytic
/// gradient within absolute-or-relative tolerance `tol`.
///
/// # Panics
///
/// Panics (failing the test) when any gradient component disagrees.
///
/// # Example
///
/// ```
/// use aibench_autograd::check_gradients;
/// use aibench_tensor::Tensor;
///
/// check_gradients(&[Tensor::from_vec(vec![1.0, -2.0], &[2])], 1e-2, 1e-2, |g, vars| {
///     let y = g.square(vars[0]);
///     g.sum(y)
/// });
/// ```
pub fn check_gradients(
    inputs: &[Tensor],
    eps: f32,
    tol: f32,
    build: impl Fn(&mut Graph, &[Var]) -> Var,
) {
    let params: Vec<Param> = inputs
        .iter()
        .enumerate()
        .map(|(i, t)| Param::new(format!("gc{i}"), t.clone()))
        .collect();

    let eval = |params: &[Param]| -> f32 {
        let mut g = Graph::new();
        let vars: Vec<Var> = params.iter().map(|p| g.param(p)).collect();
        let loss = build(&mut g, &vars);
        g.value(loss).item()
    };

    // Analytic gradients.
    {
        let mut g = Graph::new();
        let vars: Vec<Var> = params.iter().map(|p| g.param(p)).collect();
        let loss = build(&mut g, &vars);
        g.backward(loss);
    }

    for (pi, p) in params.iter().enumerate() {
        let analytic = p.grad().clone();
        let n = p.len();
        for i in 0..n {
            let orig = p.value().data()[i];
            p.value_mut().data_mut()[i] = orig + eps;
            let up = eval(&params);
            p.value_mut().data_mut()[i] = orig - eps;
            let down = eval(&params);
            p.value_mut().data_mut()[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic.data()[i];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            assert!(
                (a - numeric).abs() / denom <= tol,
                "gradient mismatch: input {pi} element {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_for_correct_gradient() {
        check_gradients(
            &[Tensor::from_vec(vec![0.5, -1.5, 2.0], &[3])],
            1e-2,
            1e-2,
            |g, vars| {
                let y = g.square(vars[0]);
                g.sum(y)
            },
        );
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn fails_for_wrong_gradient() {
        // Deliberately use a function whose autograd path we sabotage by
        // detaching the input: input() leaves get zero gradient, so the
        // analytic gradient is 0 while the numeric one is not... but the
        // check only perturbs params. Instead, compare against a
        // discontinuous function where finite differences disagree.
        check_gradients(
            &[Tensor::from_vec(vec![0.0005], &[1])],
            1e-2,
            1e-4,
            |g, vars| {
                // relu is kinked at 0; with the sample at 0.0005 and eps 1e-2 the
                // numeric slope is ~0.55 while the analytic slope is 1.
                let y = g.relu(vars[0]);
                g.sum(y)
            },
        );
    }
}

//! Spatial transformer primitives: affine grid generation and bilinear
//! grid sampling (Jaderberg et al., the DC-AI-C15 benchmark model).

use std::rc::Rc;

use aibench_tensor::Tensor;

use crate::graph::{Graph, Var};

impl Graph {
    /// Generates a normalized sampling grid `[n, ho, wo, 2]` from affine
    /// parameters `theta` of shape `[n, 2, 3]`.
    ///
    /// Coordinates are in `[-1, 1]` with `(x, y)` order in the last axis,
    /// matching the convention of `torch.nn.functional.affine_grid`.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not `[n, 2, 3]`.
    pub fn affine_grid(&mut self, theta: Var, out_hw: (usize, usize)) -> Var {
        let vt = Rc::clone(&self.nodes[theta.0].value);
        assert_eq!(vt.ndim(), 3, "affine_grid: theta must be [n, 2, 3]");
        assert_eq!(
            &vt.shape()[1..],
            &[2, 3],
            "affine_grid: theta must be [n, 2, 3], got {:?}",
            vt.shape()
        );
        let n = vt.shape()[0];
        let (ho, wo) = out_hw;
        let norm = |i: usize, extent: usize| -> f32 {
            if extent <= 1 {
                0.0
            } else {
                2.0 * i as f32 / (extent - 1) as f32 - 1.0
            }
        };
        let mut grid = Tensor::zeros(&[n, ho, wo, 2]);
        for s in 0..n {
            let t = &vt.data()[s * 6..(s + 1) * 6]; // [t00 t01 t02 t10 t11 t12]
            for y in 0..ho {
                let ny = norm(y, ho);
                for x in 0..wo {
                    let nx = norm(x, wo);
                    let base = ((s * ho + y) * wo + x) * 2;
                    grid.data_mut()[base] = t[0] * nx + t[1] * ny + t[2];
                    grid.data_mut()[base + 1] = t[3] * nx + t[4] * ny + t[5];
                }
            }
        }
        self.op(grid, &[theta], move |g, gm| {
            let mut gt = Tensor::zeros(&[n, 2, 3]);
            for s in 0..n {
                let dst = &mut gt.data_mut()[s * 6..(s + 1) * 6];
                for y in 0..ho {
                    let ny = norm(y, ho);
                    for x in 0..wo {
                        let nx = norm(x, wo);
                        let base = ((s * ho + y) * wo + x) * 2;
                        let (gx, gy) = (g.data()[base], g.data()[base + 1]);
                        dst[0] += gx * nx;
                        dst[1] += gx * ny;
                        dst[2] += gx;
                        dst[3] += gy * nx;
                        dst[4] += gy * ny;
                        dst[5] += gy;
                    }
                }
            }
            gm.accumulate(theta, gt);
        })
    }

    /// Bilinear grid sampling: samples `input` (`[n, c, h, w]`) at the
    /// normalized locations in `grid` (`[n, ho, wo, 2]`, `(x, y)` order),
    /// producing `[n, c, ho, wo]`. Out-of-range locations sample zeros.
    ///
    /// Differentiable with respect to both the input image and the grid,
    /// which is what lets the localization network of a spatial transformer
    /// learn.
    ///
    /// # Panics
    ///
    /// Panics on rank or batch mismatches.
    pub fn grid_sample(&mut self, input: Var, grid: Var) -> Var {
        let vx = Rc::clone(&self.nodes[input.0].value);
        let vg = Rc::clone(&self.nodes[grid.0].value);
        assert_eq!(vx.ndim(), 4, "grid_sample: input must be NCHW");
        assert_eq!(vg.ndim(), 4, "grid_sample: grid must be [n, ho, wo, 2]");
        assert_eq!(vg.shape()[3], 2, "grid_sample: grid last axis must be 2");
        assert_eq!(vx.shape()[0], vg.shape()[0], "grid_sample: batch mismatch");
        let (n, c, h, w) = (vx.shape()[0], vx.shape()[1], vx.shape()[2], vx.shape()[3]);
        let (ho, wo) = (vg.shape()[1], vg.shape()[2]);
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        // Gather weights and corner indices once; reuse in backward.
        for s in 0..n {
            for oy in 0..ho {
                for ox in 0..wo {
                    let gbase = ((s * ho + oy) * wo + ox) * 2;
                    let px = (vg.data()[gbase] + 1.0) * 0.5 * (w - 1) as f32;
                    let py = (vg.data()[gbase + 1] + 1.0) * 0.5 * (h - 1) as f32;
                    let x0 = px.floor() as isize;
                    let y0 = py.floor() as isize;
                    let fx = px - x0 as f32;
                    let fy = py - y0 as f32;
                    for ci in 0..c {
                        let mut acc = 0.0;
                        for (dy, dx, wgt) in [
                            (0, 0, (1.0 - fx) * (1.0 - fy)),
                            (0, 1, fx * (1.0 - fy)),
                            (1, 0, (1.0 - fx) * fy),
                            (1, 1, fx * fy),
                        ] {
                            let yy = y0 + dy;
                            let xx = x0 + dx;
                            if yy >= 0 && yy < h as isize && xx >= 0 && xx < w as isize {
                                acc += wgt
                                    * vx.data()[((s * c + ci) * h + yy as usize) * w + xx as usize];
                            }
                        }
                        out.data_mut()[((s * c + ci) * ho + oy) * wo + ox] = acc;
                    }
                }
            }
        }
        self.op(out, &[input, grid], move |g, gm| {
            let mut gx = Tensor::zeros(&[n, c, h, w]);
            let mut gg = Tensor::zeros(&[n, ho, wo, 2]);
            for s in 0..n {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let gbase = ((s * ho + oy) * wo + ox) * 2;
                        let px = (vg.data()[gbase] + 1.0) * 0.5 * (w - 1) as f32;
                        let py = (vg.data()[gbase + 1] + 1.0) * 0.5 * (h - 1) as f32;
                        let x0 = px.floor() as isize;
                        let y0 = py.floor() as isize;
                        let fx = px - x0 as f32;
                        let fy = py - y0 as f32;
                        let mut dpx = 0.0;
                        let mut dpy = 0.0;
                        for ci in 0..c {
                            let go = g.data()[((s * c + ci) * ho + oy) * wo + ox];
                            // Corner values (zero outside) for grid grads.
                            let mut corner = [0.0f32; 4];
                            for (k, (dy, dx)) in [(0, 0), (0, 1), (1, 0), (1, 1)].iter().enumerate()
                            {
                                let yy = y0 + dy;
                                let xx = x0 + dx;
                                if yy >= 0 && yy < h as isize && xx >= 0 && xx < w as isize {
                                    let idx = ((s * c + ci) * h + yy as usize) * w + xx as usize;
                                    corner[k] = vx.data()[idx];
                                    let wgt = match k {
                                        0 => (1.0 - fx) * (1.0 - fy),
                                        1 => fx * (1.0 - fy),
                                        2 => (1.0 - fx) * fy,
                                        _ => fx * fy,
                                    };
                                    gx.data_mut()[idx] += go * wgt;
                                }
                            }
                            dpx += go
                                * ((corner[1] - corner[0]) * (1.0 - fy)
                                    + (corner[3] - corner[2]) * fy);
                            dpy += go
                                * ((corner[2] - corner[0]) * (1.0 - fx)
                                    + (corner[3] - corner[1]) * fx);
                        }
                        gg.data_mut()[gbase] = dpx * 0.5 * (w - 1) as f32;
                        gg.data_mut()[gbase + 1] = dpy * 0.5 * (h - 1) as f32;
                    }
                }
            }
            gm.accumulate(input, gx);
            gm.accumulate(grid, gg);
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{check_gradients, Graph};
    use aibench_tensor::{Rng, Tensor};

    /// Identity affine parameters for a batch of 1.
    fn identity_theta() -> Tensor {
        Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[1, 2, 3])
    }

    #[test]
    fn identity_grid_samples_input_unchanged() {
        let mut rng = Rng::seed_from(60);
        let x = Tensor::randn(&[1, 2, 5, 7], &mut rng);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let tv = g.input(identity_theta());
        let grid = g.affine_grid(tv, (5, 7));
        let y = g.grid_sample(xv, grid);
        assert!(g.value(y).max_abs_diff(&x) < 1e-5);
    }

    #[test]
    fn translation_shifts_content() {
        // theta translating by one full extent moves content off the edge.
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let theta = Tensor::from_vec(vec![1.0, 0.0, 2.5, 0.0, 1.0, 0.0], &[1, 2, 3]);
        let mut g = Graph::new();
        let xv = g.input(x);
        let tv = g.input(theta);
        let grid = g.affine_grid(tv, (4, 4));
        let y = g.grid_sample(xv, grid);
        // Shifting sampling coordinates past the right edge leaves only a
        // sliver of mass from the boundary pixels.
        assert!(g.value(y).sum() < 2.0);
    }

    #[test]
    fn affine_grid_gradcheck() {
        let mut rng = Rng::seed_from(61);
        let theta = Tensor::randn(&[2, 2, 3], &mut rng).scale(0.3);
        let w = Tensor::randn(&[2, 3, 3, 2], &mut rng);
        check_gradients(&[theta, w], 1e-2, 2e-2, |g, vars| {
            let grid = g.affine_grid(vars[0], (3, 3));
            let weighted = g.mul(grid, vars[1]);
            g.sum(weighted)
        });
    }

    #[test]
    fn grid_sample_gradcheck_interior() {
        // Keep the grid strictly inside the image so bilinear is smooth.
        let mut rng = Rng::seed_from(62);
        let x = Tensor::randn(&[1, 1, 6, 6], &mut rng);
        let grid = Tensor::rand_uniform(&[1, 3, 3, 2], -0.6, 0.6, &mut rng);
        check_gradients(&[x, grid], 1e-3, 3e-2, |g, vars| {
            let y = g.grid_sample(vars[0], vars[1]);
            let sq = g.square(y);
            g.sum(sq)
        });
    }

    #[test]
    fn end_to_end_stn_gradcheck() {
        let mut rng = Rng::seed_from(63);
        let x = Tensor::randn(&[1, 1, 5, 5], &mut rng);
        let theta = Tensor::from_vec(vec![0.9, 0.05, 0.1, -0.05, 0.9, -0.1], &[1, 2, 3]);
        // Bilinear sampling is only piecewise-smooth, so allow a looser
        // tolerance near cell boundaries.
        check_gradients(&[x, theta], 1e-3, 1e-1, |g, vars| {
            let grid = g.affine_grid(vars[1], (5, 5));
            let y = g.grid_sample(vars[0], grid);
            let sq = g.square(y);
            g.sum(sq)
        });
    }
}

//! The tape: node storage, forward value access, and the backward engine.

use std::rc::Rc;

use aibench_tensor::Tensor;

use crate::param::Param;

/// A handle to a node on a [`Graph`] tape.
///
/// `Var`s are cheap copyable indices; they are only meaningful for the graph
/// that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Gradient accumulator passed to backward closures.
pub(crate) struct GradMap {
    grads: Vec<Option<Tensor>>,
}

impl GradMap {
    /// Adds `g` into the gradient slot for `v`.
    pub(crate) fn accumulate(&mut self, v: Var, g: Tensor) {
        match &mut self.grads[v.0] {
            Some(acc) => acc.add_scaled_inplace(&g, 1.0),
            slot @ None => *slot = Some(g),
        }
    }
}

type BackwardFn = Box<dyn FnOnce(&Tensor, &mut GradMap)>;

pub(crate) struct Node {
    pub(crate) value: Rc<Tensor>,
    backward: Option<BackwardFn>,
    param: Option<Param>,
    pub(crate) needs_grad: bool,
}

/// A single-use reverse-mode differentiation tape.
///
/// Build the forward computation with the op methods, then call
/// [`Graph::backward`] on a scalar loss. Parameter gradients accumulate into
/// their [`Param`] storage; intermediate gradients are discarded.
///
/// # Example
///
/// ```
/// use aibench_autograd::{Graph, Param};
/// use aibench_tensor::Tensor;
///
/// let w = Param::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
/// let mut g = Graph::new();
/// let wv = g.param(&w);
/// let y = g.mul(wv, wv); // y = w^2
/// let loss = g.sum(y);
/// g.backward(loss);
/// assert_eq!(w.grad().data(), &[2.0, 4.0]); // d(w^2)/dw = 2w
/// ```
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a constant leaf (no gradient flows into it).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push_node(Rc::new(value), None, None, false)
    }

    /// Records a leaf bound to a [`Param`]; its gradient accumulates into
    /// the parameter during [`Graph::backward`].
    pub fn param(&mut self, p: &Param) -> Var {
        let value = Rc::new(p.value().clone());
        self.push_node(value, None, Some(p.clone()), true)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Whether gradients flow into this node.
    pub fn needs_grad(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    pub(crate) fn push_node(
        &mut self,
        value: Rc<Tensor>,
        backward: Option<BackwardFn>,
        param: Option<Param>,
        needs_grad: bool,
    ) -> Var {
        self.nodes.push(Node {
            value,
            backward,
            param,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records an op node. `backward` is retained only if some parent needs
    /// a gradient.
    pub(crate) fn op(
        &mut self,
        value: Tensor,
        parents: &[Var],
        backward: impl FnOnce(&Tensor, &mut GradMap) + 'static,
    ) -> Var {
        let needs_grad = parents.iter().any(|p| self.nodes[p.0].needs_grad);
        let bw: Option<BackwardFn> = if needs_grad {
            Some(Box::new(backward))
        } else {
            None
        };
        self.push_node(Rc::new(value), bw, None, needs_grad)
    }

    /// Runs reverse-mode accumulation from `loss`, which must be a scalar
    /// (single-element) node. Parameter gradients are *added* to each
    /// `Param`'s accumulator; call `zero_grad` on parameters between steps.
    ///
    /// The tape is consumed: backward closures are taken, so `backward` can
    /// only be called once per graph.
    ///
    /// # Panics
    ///
    /// Panics if `loss` has more than one element.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward: loss must be scalar, got shape {:?}",
            self.nodes[loss.0].value.shape()
        );
        let mut gm = GradMap {
            grads: (0..self.nodes.len()).map(|_| None).collect(),
        };
        gm.grads[loss.0] = Some(Tensor::ones(self.nodes[loss.0].value.shape()));
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(grad) = gm.grads[i].take() else {
                continue;
            };
            if let Some(bw) = self.nodes[i].backward.take() {
                bw(&grad, &mut gm);
            }
            if let Some(p) = &self.nodes[i].param {
                p.accumulate_grad(&grad);
            }
        }
    }

    /// Like [`Graph::backward`] but returns the gradient that reached each
    /// of `watch` (zero tensors if none did). Used by gradient checking.
    ///
    /// # Panics
    ///
    /// Panics if `loss` has more than one element.
    pub fn backward_watching(&mut self, loss: Var, watch: &[Var]) -> Vec<Tensor> {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward: loss must be scalar"
        );
        let mut gm = GradMap {
            grads: (0..self.nodes.len()).map(|_| None).collect(),
        };
        gm.grads[loss.0] = Some(Tensor::ones(self.nodes[loss.0].value.shape()));
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let is_watched = watch.iter().any(|w| w.0 == i);
            let Some(grad) = (if is_watched {
                gm.grads[i].clone()
            } else {
                gm.grads[i].take()
            }) else {
                continue;
            };
            if let Some(bw) = self.nodes[i].backward.take() {
                bw(&grad, &mut gm);
            }
            if let Some(p) = &self.nodes[i].param {
                p.accumulate_grad(&grad);
            }
        }
        watch
            .iter()
            .map(|w| {
                gm.grads[w.0]
                    .clone()
                    .unwrap_or_else(|| Tensor::zeros(self.nodes[w.0].value.shape()))
            })
            .collect()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph({} nodes)", self.nodes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_leaf_gets_no_grad() {
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[2]));
        let y = g.mul(x, x);
        assert!(!g.needs_grad(y));
    }

    #[test]
    fn param_leaf_propagates_needs_grad() {
        let p = Param::new("p", Tensor::ones(&[2]));
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[2]));
        let pv = g.param(&p);
        let y = g.mul(x, pv);
        assert!(g.needs_grad(y));
    }

    #[test]
    fn grad_accumulates_across_uses() {
        // loss = sum(w + w) => dloss/dw = 2 per element.
        let p = Param::new("w", Tensor::ones(&[3]));
        let mut g = Graph::new();
        let w = g.param(&p);
        let s = g.add(w, w);
        let loss = g.sum(s);
        g.backward(loss);
        assert_eq!(p.grad().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn non_scalar_loss_panics() {
        let p = Param::new("w", Tensor::ones(&[3]));
        let mut g = Graph::new();
        let w = g.param(&p);
        g.backward(w);
    }
}

//! Normalization layers and dropout.

use std::rc::Rc;

use aibench_tensor::{Rng, Tensor};

use crate::graph::{Graph, Var};

impl Graph {
    /// Training-mode 2-D batch normalization over an NCHW tensor.
    ///
    /// `gamma`/`beta` have shape `[c]`. Returns the normalized output plus
    /// the batch statistics `(mean, var)` per channel, which the `nn` layer
    /// uses to update its running averages.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 4-D or `gamma`/`beta` are not `[c]`.
    pub fn batch_norm2d(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    ) -> (Var, Tensor, Tensor) {
        let vx = Rc::clone(&self.nodes[x.0].value);
        let vg = Rc::clone(&self.nodes[gamma.0].value);
        let vb = Rc::clone(&self.nodes[beta.0].value);
        assert_eq!(
            vx.ndim(),
            4,
            "batch_norm2d: input must be NCHW, got {:?}",
            vx.shape()
        );
        let (n, c, h, w) = (vx.shape()[0], vx.shape()[1], vx.shape()[2], vx.shape()[3]);
        assert_eq!(vg.shape(), &[c], "batch_norm2d: gamma must be [{c}]");
        assert_eq!(vb.shape(), &[c], "batch_norm2d: beta must be [{c}]");
        let m = (n * h * w) as f32;

        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for s in 0..n {
            for (ci, mv) in mean.iter_mut().enumerate() {
                let base = (s * c + ci) * h * w;
                for i in 0..h * w {
                    *mv += vx.data()[base + i];
                }
            }
        }
        mean.iter_mut().for_each(|v| *v /= m);
        for s in 0..n {
            for ci in 0..c {
                let base = (s * c + ci) * h * w;
                for i in 0..h * w {
                    let d = vx.data()[base + i] - mean[ci];
                    var[ci] += d * d;
                }
            }
        }
        var.iter_mut().for_each(|v| *v /= m);

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let mut xhat = Tensor::zeros(vx.shape());
        let mut y = Tensor::zeros(vx.shape());
        for s in 0..n {
            for ci in 0..c {
                let base = (s * c + ci) * h * w;
                for i in 0..h * w {
                    let xh = (vx.data()[base + i] - mean[ci]) * inv_std[ci];
                    xhat.data_mut()[base + i] = xh;
                    y.data_mut()[base + i] = vg.data()[ci] * xh + vb.data()[ci];
                }
            }
        }

        let mean_t = Tensor::from_vec(mean, &[c]);
        let var_t = Tensor::from_vec(var.clone(), &[c]);
        let xhat_bw = xhat;
        let out = self.op(y, &[x, gamma, beta], move |g, gm| {
            // dbeta, dgamma, and the standard batch-norm input gradient.
            let mut dgamma = vec![0.0f32; c];
            let mut dbeta = vec![0.0f32; c];
            let mut sum_dxhat = vec![0.0f32; c];
            let mut sum_dxhat_xhat = vec![0.0f32; c];
            for s in 0..n {
                for ci in 0..c {
                    let base = (s * c + ci) * h * w;
                    for i in 0..h * w {
                        let gi = g.data()[base + i];
                        let xh = xhat_bw.data()[base + i];
                        dgamma[ci] += gi * xh;
                        dbeta[ci] += gi;
                        let dxh = gi * vg.data()[ci];
                        sum_dxhat[ci] += dxh;
                        sum_dxhat_xhat[ci] += dxh * xh;
                    }
                }
            }
            let mut gx = Tensor::zeros(xhat_bw.shape());
            for s in 0..n {
                for ci in 0..c {
                    let base = (s * c + ci) * h * w;
                    for i in 0..h * w {
                        let gi = g.data()[base + i];
                        let xh = xhat_bw.data()[base + i];
                        let dxh = gi * vg.data()[ci];
                        gx.data_mut()[base + i] =
                            inv_std[ci] * (dxh - sum_dxhat[ci] / m - xh * sum_dxhat_xhat[ci] / m);
                    }
                }
            }
            gm.accumulate(x, gx);
            gm.accumulate(gamma, Tensor::from_vec(dgamma, &[c]));
            gm.accumulate(beta, Tensor::from_vec(dbeta, &[c]));
        });
        (out, mean_t, var_t)
    }

    /// Inference-mode batch normalization using fixed running statistics.
    ///
    /// Differentiable with respect to `x`, `gamma`, and `beta` (the
    /// statistics are constants).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches (same contract as [`Graph::batch_norm2d`]).
    pub fn batch_norm2d_inference(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> Var {
        let shape = self.value(x).shape().to_vec();
        assert_eq!(shape.len(), 4, "batch_norm2d_inference: input must be NCHW");
        let c = shape[1];
        // Reshape per-channel vectors to [1, c, 1, 1] so tensor broadcasting
        // aligns with the channel axis.
        let mean = self.input(running_mean.reshape(&[1, c, 1, 1]));
        let scale_t = running_var
            .map(|v| 1.0 / (v + eps).sqrt())
            .reshape(&[1, c, 1, 1]);
        let inv_std = self.input(scale_t);
        let g4 = self.reshape(gamma, &[1, c, 1, 1]);
        let b4 = self.reshape(beta, &[1, c, 1, 1]);
        let centered = self.sub(x, mean);
        let xhat = self.mul(centered, inv_std);
        let scaled = self.mul(xhat, g4);
        self.add(scaled, b4)
    }

    /// Layer normalization over the last axis with learnable `gamma`/`beta`
    /// of shape `[d]`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` do not match the last axis.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let vx = Rc::clone(&self.nodes[x.0].value);
        let vg = Rc::clone(&self.nodes[gamma.0].value);
        let d = *vx.shape().last().expect("layer_norm on scalar");
        assert_eq!(vg.shape(), &[d], "layer_norm: gamma must be [{d}]");
        let vb = Rc::clone(&self.nodes[beta.0].value);
        assert_eq!(vb.shape(), &[d], "layer_norm: beta must be [{d}]");
        let rows = vx.len() / d;
        let mut xhat = Tensor::zeros(vx.shape());
        let mut y = Tensor::zeros(vx.shape());
        let mut inv_stds = vec![0.0f32; rows];
        for (r, slot) in inv_stds.iter_mut().enumerate() {
            let row = &vx.data()[r * d..(r + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            *slot = inv_std;
            for (i, &xi) in row.iter().enumerate() {
                let xh = (xi - mean) * inv_std;
                xhat.data_mut()[r * d + i] = xh;
                y.data_mut()[r * d + i] = vg.data()[i] * xh + vb.data()[i];
            }
        }
        let xhat_bw = xhat;
        self.op(y, &[x, gamma, beta], move |g, gm| {
            let mut dgamma = vec![0.0f32; d];
            let mut dbeta = vec![0.0f32; d];
            let mut gx = Tensor::zeros(xhat_bw.shape());
            for (r, &inv_std) in inv_stds.iter().enumerate() {
                let grow = &g.data()[r * d..(r + 1) * d];
                let xrow = &xhat_bw.data()[r * d..(r + 1) * d];
                let mut sum_dxh = 0.0;
                let mut sum_dxh_xh = 0.0;
                for i in 0..d {
                    dgamma[i] += grow[i] * xrow[i];
                    dbeta[i] += grow[i];
                    let dxh = grow[i] * vg.data()[i];
                    sum_dxh += dxh;
                    sum_dxh_xh += dxh * xrow[i];
                }
                let dst = &mut gx.data_mut()[r * d..(r + 1) * d];
                for i in 0..d {
                    let dxh = grow[i] * vg.data()[i];
                    dst[i] = inv_std * (dxh - sum_dxh / d as f32 - xrow[i] * sum_dxh_xh / d as f32);
                }
            }
            gm.accumulate(x, gx);
            gm.accumulate(gamma, Tensor::from_vec(dgamma, &[d]));
            gm.accumulate(beta, Tensor::from_vec(dbeta, &[d]));
        })
    }

    /// Inverted dropout: zeroes each element with probability `p` and
    /// rescales survivors by `1/(1-p)`. A no-op when `p == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn dropout(&mut self, x: Var, p: f32, rng: &mut Rng) -> Var {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability {p} outside [0, 1)"
        );
        if p == 0.0 {
            return x;
        }
        let vx = Rc::clone(&self.nodes[x.0].value);
        let keep = 1.0 - p;
        let mask = Tensor::from_fn(vx.shape(), |_| {
            if rng.uniform() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let out = vx.mul(&mask);
        self.op(out, &[x], move |g, gm| gm.accumulate(x, g.mul(&mask)))
    }
}

#[cfg(test)]
mod tests {
    use crate::{check_gradients, Graph, Param};
    use aibench_tensor::{Rng, Tensor};

    #[test]
    fn batch_norm_output_is_normalized() {
        let mut rng = Rng::seed_from(50);
        let x = Tensor::randn(&[4, 3, 5, 5], &mut rng)
            .scale(3.0)
            .add_scalar(7.0);
        let gamma = Param::new("g", Tensor::ones(&[3]));
        let beta = Param::new("b", Tensor::zeros(&[3]));
        let mut g = Graph::new();
        let xv = g.input(x);
        let gv = g.param(&gamma);
        let bv = g.param(&beta);
        let (y, mean, var) = g.batch_norm2d(xv, gv, bv, 1e-5);
        // Batch stats should reflect the input's shift and scale.
        assert!(mean.data().iter().all(|&m| (m - 7.0).abs() < 1.0));
        assert!(var.data().iter().all(|&v| (v - 9.0).abs() < 2.5));
        // Output should be ~zero-mean unit-variance per channel.
        let yv = g.value(y);
        let out_mean = yv.data().iter().sum::<f32>() / yv.len() as f32;
        let out_var = yv
            .data()
            .iter()
            .map(|&v| (v - out_mean).powi(2))
            .sum::<f32>()
            / yv.len() as f32;
        assert!(out_mean.abs() < 1e-4, "normalized mean {out_mean}");
        assert!((out_var - 1.0).abs() < 1e-2, "normalized var {out_var}");
    }

    #[test]
    fn batch_norm_gradcheck() {
        let mut rng = Rng::seed_from(51);
        let x = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let gamma = Tensor::rand_uniform(&[2], 0.5, 1.5, &mut rng);
        let beta = Tensor::randn(&[2], &mut rng);
        check_gradients(&[x, gamma, beta], 1e-2, 3e-2, |g, vars| {
            let (y, _, _) = g.batch_norm2d(vars[0], vars[1], vars[2], 1e-5);
            let w = g.square(y);
            g.sum(w)
        });
    }

    #[test]
    fn layer_norm_gradcheck() {
        let mut rng = Rng::seed_from(52);
        let x = Tensor::randn(&[3, 4], &mut rng);
        let gamma = Tensor::rand_uniform(&[4], 0.5, 1.5, &mut rng);
        let beta = Tensor::randn(&[4], &mut rng);
        check_gradients(&[x, gamma, beta], 1e-2, 3e-2, |g, vars| {
            let y = g.layer_norm(vars[0], vars[1], vars[2], 1e-5);
            let w = g.square(y);
            g.sum(w)
        });
    }

    #[test]
    fn inference_bn_uses_running_stats() {
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let gamma = Param::new("g", Tensor::ones(&[2]));
        let beta = Param::new("b", Tensor::zeros(&[2]));
        let rm = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let rv = Tensor::from_vec(vec![1.0, 4.0], &[2]);
        let mut g = Graph::new();
        let xv = g.input(x);
        let gv = g.param(&gamma);
        let bv = g.param(&beta);
        let y = g.batch_norm2d_inference(xv, gv, bv, &rm, &rv, 0.0);
        let yv = g.value(y);
        // Channel 0: (1-1)/1 = 0; channel 1: (1-0)/2 = 0.5.
        assert!(yv.data()[0].abs() < 1e-6);
        assert!((yv.data()[4] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn dropout_zero_p_is_identity_and_mask_scales() {
        let mut rng = Rng::seed_from(53);
        let x = Tensor::ones(&[1000]);
        let mut g = Graph::new();
        let xv = g.input(x);
        let same = g.dropout(xv, 0.0, &mut rng);
        assert_eq!(same, xv);
        let dropped = g.dropout(xv, 0.5, &mut rng);
        let v = g.value(dropped);
        let kept = v.data().iter().filter(|&&x| x > 0.0).count();
        assert!((400..600).contains(&kept), "kept {kept} of 1000 at p=0.5");
        // Survivors are scaled by 2.
        assert!(v.data().iter().all(|&x| x == 0.0 || (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn dropout_gradient_respects_mask() {
        let mut rng = Rng::seed_from(54);
        let p = Param::new("x", Tensor::ones(&[100]));
        let mut g = Graph::new();
        let xv = g.param(&p);
        let y = g.dropout(xv, 0.3, &mut rng);
        let loss = g.sum(y);
        g.backward(loss);
        let yv: Vec<f32> = g.value(y).data().to_vec();
        for (gi, yi) in p.grad().data().iter().zip(yv) {
            if yi == 0.0 {
                assert_eq!(*gi, 0.0);
            } else {
                assert!((*gi - 1.0 / 0.7).abs() < 1e-5);
            }
        }
    }
}

//! Property-based tests of the GPU simulator's invariants.

use aibench_gpusim::{execute, DeviceConfig, Kernel, KernelCategory, StallKind};
use proptest::prelude::*;

fn any_category() -> impl Strategy<Value = KernelCategory> {
    prop::sample::select(KernelCategory::ALL.to_vec())
}

proptest! {
    #[test]
    fn metrics_stay_in_unit_ranges(cat in any_category(),
                                   flops in 1.0f64..1e12,
                                   bytes in 1.0f64..1e10,
                                   threads in 32usize..(1 << 22),
                                   count in 1usize..64) {
        let k = Kernel::new("k", cat, flops, bytes, threads, count);
        let p = execute(&k, &DeviceConfig::titan_xp());
        prop_assert!((0.0..=1.0).contains(&p.occupancy));
        prop_assert!((0.0..=1.0).contains(&p.ipc_efficiency));
        prop_assert!((0.0..=1.0).contains(&p.gld_efficiency));
        prop_assert!((0.0..=1.0).contains(&p.gst_efficiency));
        prop_assert!((0.0..=1.0).contains(&p.dram_utilization));
        prop_assert!(p.time_s > 0.0 && p.time_s.is_finite());
        prop_assert!(p.energy_j > 0.0 && p.energy_j.is_finite());
        let total: f64 = StallKind::ALL.iter().map(|&s| p.stalls.share(s)).sum();
        prop_assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn time_is_monotone_in_work(cat in any_category(), flops in 1e6f64..1e11, bytes in 1e4f64..1e9) {
        let dev = DeviceConfig::titan_xp();
        let small = Kernel::new("k", cat, flops, bytes, 1 << 16, 1);
        let big = Kernel::new("k", cat, flops * 4.0, bytes * 4.0, 1 << 16, 1);
        prop_assert!(execute(&big, &dev).time_s >= execute(&small, &dev).time_s);
    }

    #[test]
    fn launch_count_scales_time_linearly(cat in any_category(), count in 1usize..32) {
        let dev = DeviceConfig::titan_xp();
        let one = Kernel::new("k", cat, 1e8, 1e6, 1 << 16, 1);
        let many = Kernel::new("k", cat, 1e8, 1e6, 1 << 16, count);
        let t1 = execute(&one, &dev).time_s;
        let tn = execute(&many, &dev).time_s;
        prop_assert!((tn - t1 * count as f64).abs() < 1e-9 * count as f64 + 1e-12);
    }

    #[test]
    fn faster_device_is_not_slower(cat in any_category(), flops in 1e7f64..1e11) {
        // TITAN RTX has both more FLOPS and more bandwidth than TITAN Xp.
        let k = Kernel::new("k", cat, flops, flops / 20.0, 1 << 20, 1);
        let xp = execute(&k, &DeviceConfig::titan_xp()).time_s;
        let rtx = execute(&k, &DeviceConfig::titan_rtx()).time_s;
        prop_assert!(rtx <= xp * 1.0001);
    }
}

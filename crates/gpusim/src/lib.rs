//! An analytical GPU micro-architecture simulator standing in for the
//! paper's nvprof-on-TITAN-XP measurement pipeline (Sections 5.2.2, 5.5).
//!
//! Full-scale [`aibench_models::ModelSpec`]s are *lowered* onto a trace of
//! CUDA-like kernels in the paper's eight categories (data arrangement,
//! convolution, GEMM, batch norm, element-wise, ReLU, pooling, memcpy) and
//! *executed* against a roofline device model. Each kernel yields the five
//! Figure-3 metrics (achieved occupancy, IPC efficiency, global load/store
//! efficiency, DRAM utilization), a latency, and an eight-way stall
//! breakdown; per-model aggregation reproduces the runtime-breakdown,
//! hotspot-function, and stall-analysis experiments.
//!
//! The simulator is deterministic and calibrated so the *relative patterns*
//! the paper reports hold: Learning-to-Rank is data-arrangement bound with
//! the lowest IPC efficiency, Text-to-Text is GEMM bound with the highest,
//! element-wise kernels are dominated by memory-dependency stalls, and the
//! per-epoch simulated times rank like Table 6.
//!
//! # Example
//!
//! ```
//! use aibench_gpusim::{lower_training_iteration, DeviceConfig, Simulator};
//! use aibench_models::catalog::image_classification;
//!
//! let sim = Simulator::new(DeviceConfig::titan_xp());
//! let profile = sim.profile(&image_classification());
//! assert!(profile.epoch_seconds > 100.0);
//! assert!(profile.metrics.ipc_efficiency > 0.0);
//! let trace = lower_training_iteration(&image_classification());
//! assert!(!trace.is_empty());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod device;
mod exec;
mod kernel;
mod lower;
mod profile;

pub use device::DeviceConfig;
pub use exec::{execute, KernelProfile, StallBreakdown, StallKind};
pub use kernel::{Kernel, KernelCategory};
pub use lower::{lower_inference_iteration, lower_training_iteration};
pub use profile::{CategoryShare, MicroarchMetrics, ModelProfile, Simulator};

// Re-exported so downstream crates can read [`ModelProfile::host_pool`]
// without depending on `aibench-parallel` directly.
pub use aibench_parallel::{ParallelConfig, PoolStats};

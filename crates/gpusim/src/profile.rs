//! Per-model aggregation: the five Figure-3 metrics, the Figure-5 runtime
//! breakdown, Figure-6 hotspots, Figure-7 stalls, and Table-6 epoch times.

use std::collections::BTreeMap;

use aibench_models::ModelSpec;

use crate::device::DeviceConfig;
use crate::exec::{execute, KernelProfile, StallBreakdown};
use crate::kernel::KernelCategory;
use crate::lower::lower_training_iteration;

/// The five micro-architectural metrics of Figure 1(b)/Figure 3, each in
/// `[0, 1]`, aggregated time-weighted over a model's kernel trace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MicroarchMetrics {
    /// Achieved occupancy.
    pub achieved_occupancy: f64,
    /// IPC efficiency.
    pub ipc_efficiency: f64,
    /// Global load efficiency.
    pub gld_efficiency: f64,
    /// Global store efficiency.
    pub gst_efficiency: f64,
    /// DRAM utilization.
    pub dram_utilization: f64,
}

impl MicroarchMetrics {
    /// The metrics as a 5-vector (the clustering feature order of
    /// Figure 4).
    pub fn as_vector(&self) -> [f64; 5] {
        [
            self.achieved_occupancy,
            self.ipc_efficiency,
            self.gld_efficiency,
            self.gst_efficiency,
            self.dram_utilization,
        ]
    }
}

/// Runtime share of one kernel category.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryShare {
    /// The category.
    pub category: KernelCategory,
    /// Fraction of total runtime in `[0, 1]`.
    pub share: f64,
    /// Time-weighted stall distribution of this category's kernels.
    pub stalls: StallBreakdown,
}

/// A full simulated profile of one benchmark model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Model name.
    pub name: String,
    /// Wall time of one training iteration, seconds.
    pub iteration_seconds: f64,
    /// Wall time of one epoch (iterations × dataset/batch), seconds.
    pub epoch_seconds: f64,
    /// Device energy per training iteration, joules.
    pub iteration_joules: f64,
    /// Device energy per epoch, joules.
    pub epoch_joules: f64,
    /// Time-weighted micro-architectural metrics.
    pub metrics: MicroarchMetrics,
    /// Runtime share and stalls per kernel category (descending share).
    pub categories: Vec<CategoryShare>,
    /// Hotspot functions: `(name, % of runtime)`, descending.
    pub hotspots: Vec<(String, f64)>,
    /// Per-kernel profiles of the iteration trace.
    pub kernels: Vec<KernelProfile>,
    /// Samples per epoch at paper scale (the spec's dataset size).
    pub dataset_size: usize,
    /// Host worker-pool utilization while this profile was simulated:
    /// parallel regions engaged and chunks executed per participant
    /// (see [`aibench_parallel::PoolStats`]).
    pub host_pool: aibench_parallel::PoolStats,
}

impl ModelProfile {
    /// Training throughput in samples processed per second — the first
    /// offline-training metric of Section 4.2.1.
    pub fn samples_per_second(&self) -> f64 {
        self.dataset_size as f64 / self.epoch_seconds
    }
}

/// The simulator: a device model plus the lowering/execution pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Simulator {
    device: DeviceConfig,
}

impl Simulator {
    /// Creates a simulator for the given device.
    pub fn new(device: DeviceConfig) -> Self {
        Simulator { device }
    }

    /// The device model.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Profiles one full-scale model: lowers a training iteration,
    /// executes every kernel, and aggregates.
    pub fn profile(&self, spec: &ModelSpec) -> ModelProfile {
        let trace = lower_training_iteration(spec);
        let pool_before = aibench_parallel::stats();
        // Kernel cost models are independent, so the trace executes on all
        // host threads; `parallel_map` preserves trace order.
        let kernels: Vec<KernelProfile> =
            aibench_parallel::parallel_map(trace.len(), 1, |i| execute(&trace[i], &self.device));
        let host_pool = aibench_parallel::stats().delta(&pool_before);
        let total_time: f64 = kernels.iter().map(|p| p.time_s).sum();
        let total_energy: f64 = kernels.iter().map(|p| p.energy_j).sum();

        // Time-weighted metric aggregation.
        let mut m = MicroarchMetrics::default();
        for p in &kernels {
            let w = p.time_s / total_time;
            m.achieved_occupancy += w * p.occupancy;
            m.ipc_efficiency += w * p.ipc_efficiency;
            m.gld_efficiency += w * p.gld_efficiency;
            m.gst_efficiency += w * p.gst_efficiency;
            m.dram_utilization += w * p.dram_utilization;
        }

        // Per-category shares and stalls.
        let mut cat_time: BTreeMap<KernelCategory, f64> = BTreeMap::new();
        let mut cat_stalls: BTreeMap<KernelCategory, [f64; 8]> = BTreeMap::new();
        for p in &kernels {
            *cat_time.entry(p.kernel.category).or_insert(0.0) += p.time_s;
            let acc = cat_stalls.entry(p.kernel.category).or_insert([0.0; 8]);
            for (i, (_, share)) in p.stalls.iter().enumerate() {
                acc[i] += share * p.time_s;
            }
        }
        let mut categories: Vec<CategoryShare> = cat_time
            .iter()
            .map(|(&category, &t)| CategoryShare {
                category,
                share: t / total_time,
                stalls: StallBreakdown::from_weights(cat_stalls[&category]),
            })
            .collect();
        categories.sort_by(|a, b| {
            b.share
                .partial_cmp(&a.share)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Hotspot functions: aggregate by name.
        let mut by_name: BTreeMap<&str, f64> = BTreeMap::new();
        for p in &kernels {
            *by_name.entry(p.kernel.name.as_str()).or_insert(0.0) += p.time_s;
        }
        let mut hotspots: Vec<(String, f64)> = by_name
            .into_iter()
            .map(|(n, t)| (n.to_string(), 100.0 * t / total_time))
            .collect();
        hotspots.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        let iterations = spec.dataset_size.div_ceil(spec.batch_size);
        // Per-iteration host-side overhead (data loading, Python/framework
        // dispatch) — without it, small-model epoch times are implausibly
        // cheap relative to the paper's Table 6.
        const HOST_OVERHEAD_S: f64 = 2e-3;
        // Host overhead burns idle power.
        let iter_energy = total_energy + HOST_OVERHEAD_S * self.device.idle_watts;
        ModelProfile {
            name: spec.name.clone(),
            iteration_seconds: total_time + HOST_OVERHEAD_S,
            epoch_seconds: (total_time + HOST_OVERHEAD_S) * iterations as f64,
            iteration_joules: iter_energy,
            epoch_joules: iter_energy * iterations as f64,
            metrics: m,
            categories,
            hotspots,
            kernels,
            dataset_size: spec.dataset_size,
            host_pool,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_models::catalog;

    fn sim() -> Simulator {
        Simulator::new(DeviceConfig::titan_xp())
    }

    #[test]
    fn metrics_are_in_unit_range() {
        for spec in catalog::aibench_specs() {
            let p = sim().profile(&spec);
            for v in p.metrics.as_vector() {
                assert!((0.0..=1.0).contains(&v), "{}: metric {v}", spec.name);
            }
            let share_total: f64 = p.categories.iter().map(|c| c.share).sum();
            assert!(
                (share_total - 1.0).abs() < 1e-9,
                "{}: shares {share_total}",
                spec.name
            );
        }
    }

    #[test]
    fn learning_to_rank_has_lowest_ipc_efficiency() {
        // Section 5.5.1: Learning-to-Rank shows the lowest IPC (data
        // arrangement bound); Text-to-Text shows the highest.
        let profiles: Vec<ModelProfile> = catalog::aibench_specs()
            .iter()
            .map(|s| sim().profile(s))
            .collect();
        let l2r = profiles
            .iter()
            .find(|p| p.name == "RankingDistillation")
            .unwrap();
        let t2t = profiles.iter().find(|p| p.name == "Transformer").unwrap();
        for p in &profiles {
            assert!(
                l2r.metrics.ipc_efficiency <= p.metrics.ipc_efficiency + 1e-9,
                "{} below L2R",
                p.name
            );
            assert!(
                t2t.metrics.ipc_efficiency >= p.metrics.ipc_efficiency - 1e-9,
                "{} above T2T",
                p.name
            );
        }
        assert!(t2t.metrics.ipc_efficiency >= l2r.metrics.ipc_efficiency + 0.2);
    }

    #[test]
    fn learning_to_rank_dominated_by_data_arrangement() {
        let p = sim().profile(&catalog::learning_to_rank());
        assert_eq!(
            p.categories[0].category,
            KernelCategory::DataArrangement,
            "{:?}",
            p.categories[0]
        );
    }

    #[test]
    fn image_classification_dominated_by_convolution() {
        let p = sim().profile(&catalog::image_classification());
        assert_eq!(p.categories[0].category, KernelCategory::Convolution);
        assert!(p.categories[0].share > 0.4);
    }

    #[test]
    fn epoch_time_ranking_matches_table6_shape() {
        // Table 6: Image Classification and Speech Recognition are the
        // most expensive per epoch; Spatial Transformer is the cheapest.
        let s = sim();
        let ic = s.profile(&catalog::image_classification()).epoch_seconds;
        let sp = s.profile(&catalog::speech_recognition()).epoch_seconds;
        let st = s.profile(&catalog::spatial_transformer()).epoch_seconds;
        let rec = s.profile(&catalog::recommendation()).epoch_seconds;
        assert!(ic > 50.0 * st, "IC {ic} vs STN {st}");
        assert!(sp > 10.0 * st, "Speech {sp} vs STN {st}");
        assert!(st < 600.0, "STN epoch {st}");
        assert!(rec < ic, "NCF {rec} vs IC {ic}");
    }

    #[test]
    fn throughput_reflects_dataset_and_epoch_time() {
        let s = sim();
        let p = s.profile(&catalog::image_classification());
        let expect = p.dataset_size as f64 / p.epoch_seconds;
        assert!((p.samples_per_second() - expect).abs() < 1e-9);
        // ResNet-50 on a TITAN-class GPU trains a few hundred samples/s.
        assert!(
            (50.0..5000.0).contains(&p.samples_per_second()),
            "{}",
            p.samples_per_second()
        );
    }

    #[test]
    fn energy_is_positive_and_bounded_by_tdp() {
        let s = sim();
        for spec in catalog::mlperf_specs() {
            let p = s.profile(&spec);
            assert!(p.epoch_joules > 0.0, "{}", spec.name);
            let mean_power = p.iteration_joules / p.iteration_seconds;
            assert!(
                mean_power <= s.device().tdp_watts + 1e-6,
                "{}: {mean_power} W",
                spec.name
            );
        }
    }

    #[test]
    fn host_pool_stats_attribute_profile_work() {
        let p = sim().profile(&catalog::image_classification());
        assert_eq!(p.host_pool.threads, aibench_parallel::threads());
        assert_eq!(p.host_pool.per_worker.len(), p.host_pool.threads);
        if p.host_pool.threads > 1 {
            // The kernel trace is far larger than one chunk, so the pool
            // must have been engaged; every chunk is accounted to someone.
            assert!(p.host_pool.regions >= 1);
            assert!(p.host_pool.chunks() as usize >= p.kernels.len());
        }
        let imb = p.host_pool.imbalance();
        assert!((0.0..=1.0).contains(&imb), "imbalance {imb}");
    }

    #[test]
    fn hotspots_sum_to_one_hundred() {
        let p = sim().profile(&catalog::text_to_text());
        let total: f64 = p.hotspots.iter().map(|(_, s)| s).sum();
        assert!((total - 100.0).abs() < 1e-6);
        assert!(p.hotspots[0].1 >= p.hotspots.last().unwrap().1);
    }
}

//! The kernel taxonomy of Section 5.5.1: every hotspot function the paper
//! traces falls into one of eight categories.

use std::fmt;

/// The eight kernel categories the paper's runtime breakdown uses
/// (Figure 5 / Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelCategory {
    /// Layout transforms: im2col, strided batched copies, embedding
    /// gathers (`maxwell_scudnn_*_stridedB_*`).
    DataArrangement,
    /// Convolution arithmetic (`maxwell_scudnn_winograd_*`, `wgrad_alg0`).
    Convolution,
    /// General matrix multiply (`maxwell_sgemm_*`).
    Gemm,
    /// Batch normalization forward/backward (`bn_fw_tr_*`, `bn_bw_*`).
    BatchNorm,
    /// Pointwise arithmetic (`element_wise_*_kernel`).
    ElementWise,
    /// ReLU activations (`maxwell_scudnn_*_relu_*`).
    Relu,
    /// Pooling (`MaxPoolBackward`, `AvePoolForward`).
    Pooling,
    /// Host/device and device/device copies (`CUDA memcpy *`).
    Memcpy,
}

impl KernelCategory {
    /// All categories, in the paper's presentation order.
    pub const ALL: [KernelCategory; 8] = [
        KernelCategory::DataArrangement,
        KernelCategory::Convolution,
        KernelCategory::Gemm,
        KernelCategory::BatchNorm,
        KernelCategory::ElementWise,
        KernelCategory::Relu,
        KernelCategory::Pooling,
        KernelCategory::Memcpy,
    ];

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            KernelCategory::DataArrangement => "Data Arrangement",
            KernelCategory::Convolution => "Convolution",
            KernelCategory::Gemm => "GEMM",
            KernelCategory::BatchNorm => "BatchNorm",
            KernelCategory::ElementWise => "Element-Wise",
            KernelCategory::Relu => "Relu",
            KernelCategory::Pooling => "Pooling",
            KernelCategory::Memcpy => "Memcpy",
        }
    }
}

impl fmt::Display for KernelCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One kernel launch (possibly repeated) in a lowered training iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// CUDA-style function name (mirrors Table 7's hotspot functions).
    pub name: String,
    /// Taxonomy category.
    pub category: KernelCategory,
    /// FLOPs per launch.
    pub flops: f64,
    /// Global-memory bytes moved per launch.
    pub bytes: f64,
    /// Threads per launch (drives occupancy).
    pub threads: usize,
    /// Identical launches per training iteration.
    pub count: usize,
}

impl Kernel {
    /// Creates a kernel record.
    pub fn new(
        name: impl Into<String>,
        category: KernelCategory,
        flops: f64,
        bytes: f64,
        threads: usize,
        count: usize,
    ) -> Self {
        Kernel {
            name: name.into(),
            category,
            flops,
            bytes,
            threads: threads.max(32),
            count: count.max(1),
        }
    }

    /// Arithmetic intensity in FLOPs per byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops / self.bytes.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_categories_enumerated() {
        assert_eq!(KernelCategory::ALL.len(), 8);
        let labels: Vec<&str> = KernelCategory::ALL.iter().map(|c| c.label()).collect();
        assert!(labels.contains(&"GEMM"));
        assert!(labels.contains(&"Memcpy"));
    }

    #[test]
    fn arithmetic_intensity_computed() {
        let k = Kernel::new("k", KernelCategory::Gemm, 1000.0, 100.0, 256, 1);
        assert!((k.arithmetic_intensity() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_clamped() {
        let k = Kernel::new("k", KernelCategory::Memcpy, 0.0, 0.0, 0, 0);
        assert_eq!(k.threads, 32);
        assert_eq!(k.count, 1);
        assert!(k.arithmetic_intensity().is_finite());
    }
}

//! The execution engine: roofline timing plus per-category efficiency and
//! stall models.

use crate::device::DeviceConfig;
use crate::kernel::{Kernel, KernelCategory};

/// The eight stall reasons of Section 5.5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Next instruction not yet fetched.
    InstFetch,
    /// Input operand not ready (low ILP).
    ExecDepend,
    /// Memory operation waiting on load/store resources.
    MemDepend,
    /// Texture sub-system under-utilization.
    Texture,
    /// `__syncthreads` barriers.
    Sync,
    /// Immediate constant-cache miss.
    ConstMemDepend,
    /// Compute pipeline busy.
    PipeBusy,
    /// Too many pending memory operations.
    MemThrottle,
}

impl StallKind {
    /// All stall kinds, in the paper's presentation order.
    pub const ALL: [StallKind; 8] = [
        StallKind::InstFetch,
        StallKind::ExecDepend,
        StallKind::MemDepend,
        StallKind::Texture,
        StallKind::Sync,
        StallKind::ConstMemDepend,
        StallKind::PipeBusy,
        StallKind::MemThrottle,
    ];

    /// Label matching Figure 7.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::InstFetch => "Inst_fetch",
            StallKind::ExecDepend => "Exe_depend",
            StallKind::MemDepend => "Mem_depend",
            StallKind::Texture => "Texture",
            StallKind::Sync => "Sync",
            StallKind::ConstMemDepend => "Const_mem_depend",
            StallKind::PipeBusy => "Pipe_busy",
            StallKind::MemThrottle => "Mem_throttle",
        }
    }
}

/// A stall distribution in percent, summing to 100.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallBreakdown {
    shares: [f64; 8],
}

impl StallBreakdown {
    /// Creates a breakdown from raw weights (normalized to 100%).
    pub fn from_weights(weights: [f64; 8]) -> Self {
        let total: f64 = weights.iter().sum();
        let mut shares = weights;
        if total > 0.0 {
            shares.iter_mut().for_each(|s| *s *= 100.0 / total);
        }
        StallBreakdown { shares }
    }

    /// Percentage for one stall kind.
    pub fn share(&self, kind: StallKind) -> f64 {
        let idx = StallKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL");
        self.shares[idx]
    }

    /// All shares paired with their kinds.
    pub fn iter(&self) -> impl Iterator<Item = (StallKind, f64)> + '_ {
        StallKind::ALL
            .iter()
            .copied()
            .zip(self.shares.iter().copied())
    }

    /// Blends two breakdowns with weight `w` on `self`.
    pub fn blend(&self, other: &StallBreakdown, w: f64) -> StallBreakdown {
        let mut shares = [0.0; 8];
        for (i, s) in shares.iter_mut().enumerate() {
            *s = self.shares[i] * w + other.shares[i] * (1.0 - w);
        }
        StallBreakdown::from_weights(shares)
    }
}

/// Calibration constants per kernel category.
struct CategoryModel {
    issue_eff: f64,
    mem_eff: f64,
    base_occ: f64,
    gld: f64,
    gst: f64,
    min_ipc: f64,
    max_ipc: f64,
    // Stall weights when compute-bound / memory-bound.
    stalls_compute: [f64; 8],
    stalls_memory: [f64; 8],
}

// Stall weight order: [InstFetch, ExecDepend, MemDepend, Texture, Sync,
// ConstMem, PipeBusy, MemThrottle].
fn category_model(cat: KernelCategory) -> CategoryModel {
    match cat {
        KernelCategory::DataArrangement => CategoryModel {
            issue_eff: 0.30,
            mem_eff: 0.80,
            base_occ: 0.55,
            gld: 0.45,
            gst: 0.52,
            min_ipc: 0.12,
            max_ipc: 0.45,
            stalls_compute: [10.0, 25.0, 30.0, 2.0, 5.0, 3.0, 10.0, 15.0],
            stalls_memory: [6.0, 12.0, 52.0, 2.0, 4.0, 2.0, 5.0, 17.0],
        },
        KernelCategory::Convolution => CategoryModel {
            issue_eff: 0.68,
            mem_eff: 0.72,
            base_occ: 0.48,
            gld: 0.80,
            gst: 0.72,
            min_ipc: 0.25,
            max_ipc: 0.75,
            stalls_compute: [10.0, 38.0, 18.0, 3.0, 8.0, 3.0, 15.0, 5.0],
            stalls_memory: [8.0, 25.0, 38.0, 3.0, 7.0, 3.0, 8.0, 8.0],
        },
        KernelCategory::Gemm => CategoryModel {
            issue_eff: 0.82,
            mem_eff: 0.75,
            base_occ: 0.62,
            gld: 0.90,
            gst: 0.86,
            min_ipc: 0.20,
            max_ipc: 0.80,
            stalls_compute: [8.0, 40.0, 15.0, 1.0, 12.0, 2.0, 18.0, 4.0],
            stalls_memory: [6.0, 28.0, 35.0, 1.0, 10.0, 2.0, 10.0, 8.0],
        },
        KernelCategory::BatchNorm => CategoryModel {
            issue_eff: 0.38,
            mem_eff: 0.80,
            base_occ: 0.70,
            gld: 0.76,
            gst: 0.74,
            min_ipc: 0.15,
            max_ipc: 0.55,
            stalls_compute: [10.0, 25.0, 28.0, 1.0, 22.0, 2.0, 8.0, 4.0],
            stalls_memory: [6.0, 15.0, 45.0, 1.0, 20.0, 2.0, 4.0, 7.0],
        },
        KernelCategory::ElementWise => CategoryModel {
            issue_eff: 0.32,
            mem_eff: 0.90,
            base_occ: 0.85,
            gld: 0.85,
            gst: 0.85,
            min_ipc: 0.10,
            max_ipc: 0.50,
            // The paper: element-wise kernels show ~70% memory-dependency
            // stalls and an IPC around 0.86 raw (low efficiency).
            stalls_compute: [8.0, 18.0, 55.0, 1.0, 3.0, 2.0, 6.0, 7.0],
            stalls_memory: [4.0, 8.0, 71.0, 1.0, 2.0, 1.0, 3.0, 10.0],
        },
        KernelCategory::Relu => CategoryModel {
            issue_eff: 0.32,
            mem_eff: 0.90,
            base_occ: 0.80,
            gld: 0.88,
            gst: 0.88,
            min_ipc: 0.10,
            max_ipc: 0.50,
            stalls_compute: [9.0, 20.0, 48.0, 1.0, 4.0, 2.0, 8.0, 8.0],
            stalls_memory: [5.0, 10.0, 62.0, 1.0, 3.0, 1.0, 5.0, 13.0],
        },
        KernelCategory::Pooling => CategoryModel {
            issue_eff: 0.36,
            mem_eff: 0.82,
            base_occ: 0.68,
            gld: 0.60,
            gst: 0.80,
            min_ipc: 0.12,
            max_ipc: 0.50,
            stalls_compute: [12.0, 25.0, 35.0, 2.0, 5.0, 2.0, 9.0, 10.0],
            stalls_memory: [8.0, 14.0, 50.0, 2.0, 4.0, 2.0, 5.0, 15.0],
        },
        KernelCategory::Memcpy => CategoryModel {
            issue_eff: 0.05,
            mem_eff: 0.92,
            base_occ: 0.10,
            gld: 0.95,
            gst: 0.95,
            min_ipc: 0.02,
            max_ipc: 0.10,
            stalls_compute: [2.0, 3.0, 40.0, 1.0, 1.0, 1.0, 2.0, 50.0],
            stalls_memory: [2.0, 3.0, 42.0, 1.0, 1.0, 1.0, 2.0, 48.0],
        },
    }
}

/// Simulated execution result for one (possibly repeated) kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// The executed kernel.
    pub kernel: Kernel,
    /// Total time across all `count` launches, in seconds.
    pub time_s: f64,
    /// Achieved occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// IPC efficiency in `[0, 1]`.
    pub ipc_efficiency: f64,
    /// Global load efficiency in `[0, 1]`.
    pub gld_efficiency: f64,
    /// Global store efficiency in `[0, 1]`.
    pub gst_efficiency: f64,
    /// DRAM utilization in `[0, 1]`.
    pub dram_utilization: f64,
    /// Stall-reason distribution.
    pub stalls: StallBreakdown,
    /// Energy consumed across all launches, joules.
    pub energy_j: f64,
}

/// Deterministic per-name jitter in `[-0.05, 0.05]` so distinct kernels of
/// one category do not produce identical metrics.
fn name_jitter(name: &str) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    ((h % 1000) as f64 / 1000.0 - 0.5) * 0.1
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.01, 0.99)
}

/// Executes one kernel on the device model.
pub fn execute(kernel: &Kernel, device: &DeviceConfig) -> KernelProfile {
    let model = category_model(kernel.category);
    let t_comp = kernel.flops / (device.peak_flops() * model.issue_eff);
    let t_mem = kernel.bytes / (device.peak_bytes_per_s() * model.mem_eff);
    let t_roof = t_comp.max(t_mem).max(1e-9);
    let per_launch = t_roof + device.launch_overhead_s;
    let time_s = per_launch * kernel.count as f64;

    // Occupancy saturates as the launch fills the device.
    let fill = (kernel.threads as f64 / (device.thread_capacity() as f64 * 0.5)).min(1.0);
    let occupancy =
        clamp01(model.base_occ * (0.35 + 0.65 * fill) + name_jitter(&kernel.name) * 0.5);

    // IPC efficiency: fraction of the roofline spent issuing compute,
    // scaled by the category's issue efficiency and the occupancy-driven
    // latency hiding.
    let compute_frac = t_comp / t_roof;
    // Kernels launched many times back-to-back (unrolled RNN steps,
    // per-slice decoders) serialize on inter-launch dependencies, which
    // caps their achievable issue rate.
    let serial_factor = 1.0 / (1.0 + (kernel.count as f64).ln() / 4.0);
    let raw_ipc =
        model.issue_eff * (0.25 + 0.75 * compute_frac) * (0.6 + 0.4 * occupancy) * serial_factor;
    let ipc_efficiency = raw_ipc.clamp(model.min_ipc, model.max_ipc);

    let mem_frac = t_mem / t_roof;
    let dram_utilization = clamp01(model.mem_eff * mem_frac * (0.75 + name_jitter(&kernel.name)));

    let gld_efficiency = clamp01(model.gld + name_jitter(&kernel.name));
    let gst_efficiency = clamp01(model.gst + name_jitter(&format!("{}#st", kernel.name)));

    let stalls = StallBreakdown::from_weights(model.stalls_compute).blend(
        &StallBreakdown::from_weights(model.stalls_memory),
        compute_frac,
    );

    // Board power scales with whichever subsystem is busier (Section
    // 4.2.1 lists energy-to-train as a first-class metric).
    let activity = (ipc_efficiency / 0.8)
        .max(dram_utilization)
        .clamp(0.05, 1.0);
    let power_w = device.idle_watts + (device.tdp_watts - device.idle_watts) * activity;
    let energy_j = power_w * time_s;

    KernelProfile {
        kernel: kernel.clone(),
        time_s,
        occupancy,
        ipc_efficiency,
        gld_efficiency,
        gst_efficiency,
        dram_utilization,
        stalls,
        energy_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceConfig {
        DeviceConfig::titan_xp()
    }

    #[test]
    fn stall_breakdown_normalizes() {
        let b = StallBreakdown::from_weights([1.0; 8]);
        let total: f64 = StallKind::ALL.iter().map(|&k| b.share(k)).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((b.share(StallKind::Sync) - 12.5).abs() < 1e-9);
    }

    #[test]
    fn elementwise_is_memory_dependency_bound() {
        // A bandwidth-bound element-wise kernel: the paper reports ~70%
        // memory-dependency stalls.
        let k = Kernel::new(
            "element_wise_add_kernel",
            KernelCategory::ElementWise,
            1e6,
            1.2e7,
            1 << 20,
            1,
        );
        let p = execute(&k, &dev());
        assert!(
            p.stalls.share(StallKind::MemDepend) > 55.0,
            "mem stalls {:.1}",
            p.stalls.share(StallKind::MemDepend)
        );
        assert!(p.dram_utilization > 0.4);
    }

    #[test]
    fn big_gemm_is_compute_bound_with_high_ipc() {
        let k = Kernel::new(
            "maxwell_sgemm_128x64_nn",
            KernelCategory::Gemm,
            1e11,
            1e8,
            1 << 22,
            1,
        );
        let p = execute(&k, &dev());
        assert!(p.ipc_efficiency > 0.6, "ipc {:.2}", p.ipc_efficiency);
        assert!(p.stalls.share(StallKind::ExecDepend) > p.stalls.share(StallKind::MemThrottle));
    }

    #[test]
    fn tiny_kernel_is_overhead_dominated() {
        let k = Kernel::new("small", KernelCategory::Gemm, 1e3, 1e3, 64, 100);
        let p = execute(&k, &dev());
        // 100 launches at ~3 µs overhead each.
        assert!(p.time_s >= 100.0 * 3e-6);
        assert!(p.occupancy < 0.5);
    }

    #[test]
    fn memcpy_has_low_ipc_high_dram() {
        let k = Kernel::new("CUDA memcpy HtoD", KernelCategory::Memcpy, 0.0, 1e9, 32, 1);
        let p = execute(&k, &dev());
        assert!(p.ipc_efficiency <= 0.1);
        assert!(p.dram_utilization > 0.5);
    }

    #[test]
    fn energy_scales_with_time_and_activity() {
        let busy = Kernel::new(
            "maxwell_sgemm_128x64_nn",
            KernelCategory::Gemm,
            1e11,
            1e8,
            1 << 22,
            1,
        );
        let idleish = Kernel::new("CUDA memcpy HtoD", KernelCategory::Memcpy, 0.0, 1e6, 32, 1);
        let pb = execute(&busy, &dev());
        let pi = execute(&idleish, &dev());
        assert!(pb.energy_j > 0.0 && pi.energy_j > 0.0);
        // Energy per second (power) is higher for the busy kernel.
        assert!(pb.energy_j / pb.time_s > pi.energy_j / pi.time_s);
        assert!(pb.energy_j / pb.time_s <= dev().tdp_watts + 1e-9);
    }

    #[test]
    fn execution_is_deterministic() {
        let k = Kernel::new("x", KernelCategory::Relu, 1e7, 1e7, 4096, 3);
        assert_eq!(execute(&k, &dev()), execute(&k, &dev()));
    }
}

//! Lowering: from a full-scale [`ModelSpec`] to the CUDA-like kernel trace
//! of one training iteration (forward + backward + optimizer update over
//! one mini-batch), with kernel names mirroring the paper's Table 7.

use aibench_models::{LayerKind, ModelSpec};

use crate::kernel::{Kernel, KernelCategory};

const F32: f64 = 4.0;

fn push(trace: &mut Vec<Kernel>, k: Kernel) {
    trace.push(k);
}

/// Lowers one training iteration of `spec` (batch of `spec.batch_size`)
/// onto a kernel trace. Forward kernels carry the layer's forward FLOPs;
/// backward kernels carry twice that (input + weight gradients), the
/// standard 1:2 fwd:bwd ratio.
pub fn lower_training_iteration(spec: &ModelSpec) -> Vec<Kernel> {
    lower_iteration(spec, spec.batch_size, true)
}

/// Lowers one *inference* pass of `spec` over a batch of `batch_size`
/// samples: forward kernels only — no gradients, no optimizer update —
/// plus the input copy. Used by the online-inference metrics of
/// Section 4.2.1 (latency, tail latency, throughput).
pub fn lower_inference_iteration(spec: &ModelSpec, batch_size: usize) -> Vec<Kernel> {
    lower_iteration(spec, batch_size.max(1), false)
}

fn lower_iteration(spec: &ModelSpec, batch_size: usize, training: bool) -> Vec<Kernel> {
    let b = batch_size as f64;
    let mut trace = Vec::new();

    // Host-to-device copy of the input batch.
    push(
        &mut trace,
        Kernel::new(
            "CUDA memcpy HtoD",
            KernelCategory::Memcpy,
            0.0,
            b * spec.input_elems as f64 * F32,
            1024,
            1,
        ),
    );

    for layer in &spec.layers {
        // Weight-shared repeats (e.g. the 300 RoI heads of Faster R-CNN)
        // execute as one batched launch over all instances.
        if layer.share_params && layer.repeat >= 16 {
            if let LayerKind::Linear { .. } = layer.kind {
                lower_layer(
                    &layer.kind,
                    1,
                    b * layer.repeat as f64,
                    training,
                    &mut trace,
                );
                continue;
            }
        }
        lower_layer(&layer.kind, layer.repeat, b, training, &mut trace);
    }

    if !training {
        return trace;
    }

    // Optimizer update. Embedding tables receive *sparse* gradients, so
    // their update is an indexed scatter (a data-arrangement kernel over
    // the touched rows); every dense parameter gets a fused element-wise
    // pass.
    let total_params = aibench_opcount::count(spec).params as f64;
    let mut embed_params = 0.0;
    let mut embed_rows_touched = 0.0;
    for layer in &spec.layers {
        if let LayerKind::Embedding {
            vocab,
            dim,
            lookups,
        } = layer.kind
        {
            embed_params += (vocab * dim * layer.repeat) as f64;
            embed_rows_touched += b * (lookups * dim * layer.repeat) as f64;
        }
    }
    let dense_params = (total_params - embed_params).max(0.0);
    if dense_params > 0.0 {
        push(
            &mut trace,
            Kernel::new(
                "element_wise_add_kernel",
                KernelCategory::ElementWise,
                2.0 * dense_params,
                3.0 * dense_params * F32,
                (dense_params as usize).min(1 << 22),
                1,
            ),
        );
    }
    if embed_params > 0.0 {
        push(
            &mut trace,
            Kernel::new(
                "maxwell_scudnn_128x32_stridedB_splitK_interior_nn",
                KernelCategory::DataArrangement,
                2.0 * embed_rows_touched,
                4.0 * embed_rows_touched * F32,
                (embed_rows_touched as usize).min(1 << 22),
                1,
            ),
        );
    }
    // Gradient-buffer device copies.
    push(
        &mut trace,
        Kernel::new(
            "CUDA memcpy DtoD",
            KernelCategory::Memcpy,
            0.0,
            dense_params * F32,
            1024,
            1,
        ),
    );
    trace
}

fn lower_layer(kind: &LayerKind, repeat: usize, b: f64, training: bool, trace: &mut Vec<Kernel>) {
    match *kind {
        LayerKind::Conv2d {
            c_in,
            c_out,
            k,
            h_out,
            w_out,
        }
        | LayerKind::ConvTranspose2d {
            c_in,
            c_out,
            k,
            h_out,
            w_out,
        } => {
            let macs = (k * k * c_in * c_out * h_out * w_out) as f64;
            let out_elems = (c_out * h_out * w_out) as f64;
            let col_bytes = b * (c_in * k * k * h_out * w_out) as f64 * F32;
            let weight_bytes = (c_in * c_out * k * k) as f64 * F32;
            // im2col-style layout transform.
            push(
                trace,
                Kernel::new(
                    "maxwell_scudnn_128x128_stridedB_interior_nn",
                    KernelCategory::DataArrangement,
                    b * out_elems,
                    2.0 * col_bytes,
                    (b * out_elems) as usize,
                    repeat,
                ),
            );
            // Forward convolution arithmetic.
            push(
                trace,
                Kernel::new(
                    "maxwell_scudnn_winograd_128x128_ldg1_ldg4_tile148n_nt",
                    KernelCategory::Convolution,
                    2.0 * b * macs,
                    col_bytes + weight_bytes + b * out_elems * F32,
                    (b * out_elems) as usize,
                    repeat,
                ),
            );
            if training {
                // Backward data gradient.
                push(
                    trace,
                    Kernel::new(
                        "maxwell_scudnn_128x32_stridedB_splitK_interior_nn",
                        KernelCategory::DataArrangement,
                        2.0 * b * macs * 0.15,
                        2.0 * col_bytes,
                        (b * out_elems) as usize,
                        repeat,
                    ),
                );
                // Backward weight gradient.
                push(
                    trace,
                    Kernel::new(
                        "wgrad_alg0_engine",
                        KernelCategory::Convolution,
                        2.0 * b * macs,
                        col_bytes + weight_bytes,
                        (b * out_elems) as usize,
                        repeat,
                    ),
                );
            }
        }
        LayerKind::Linear { d_in, d_out } => {
            let macs = (d_in * d_out) as f64;
            let act_bytes = b * (d_in + d_out) as f64 * F32;
            let w_bytes = macs * F32;
            // Small fully-connected layers dispatch to strided-batched
            // cuDNN kernels, which the paper classifies under *data
            // arrangement* — this is exactly why Learning-to-Rank, whose
            // MLP is tiny, is data-arrangement bound with the lowest IPC
            // (Section 5.5.1).
            if 2.0 * b * macs < 1.2e7 {
                // Three launches per layer in training (forward, input
                // gradient, weight gradient); inference runs only the
                // forward pass.
                let launches = if training { 3 * repeat } else { repeat };
                push(
                    trace,
                    Kernel::new(
                        "maxwell_scudnn_128x32_stridedB_splitK_interior_nn",
                        KernelCategory::DataArrangement,
                        2.0 * b * macs,
                        3.0 * (act_bytes + w_bytes),
                        (b * d_out as f64) as usize,
                        launches,
                    ),
                );
                return;
            }
            push(
                trace,
                Kernel::new(
                    "maxwell_sgemm_128x64_nn",
                    KernelCategory::Gemm,
                    2.0 * b * macs,
                    act_bytes + w_bytes,
                    (b * d_out as f64) as usize,
                    repeat,
                ),
            );
            if training {
                push(
                    trace,
                    Kernel::new(
                        "maxwell_sgemm_128x64_nt",
                        KernelCategory::Gemm,
                        2.0 * b * macs,
                        act_bytes + w_bytes,
                        (b * d_in as f64) as usize,
                        repeat,
                    ),
                );
                push(
                    trace,
                    Kernel::new(
                        "sgemm_32x32x32_NN_vec",
                        KernelCategory::Gemm,
                        2.0 * b * macs,
                        act_bytes + w_bytes,
                        macs.min(1e7) as usize,
                        repeat,
                    ),
                );
            }
        }
        LayerKind::BatchNorm2d { c, h, w } => {
            let n = b * (c * h * w) as f64;
            push(
                trace,
                Kernel::new(
                    "cudnn::detail::bn_fw_tr_1C11_kernel_NCHW",
                    KernelCategory::BatchNorm,
                    5.0 * n,
                    3.0 * n * F32,
                    n as usize,
                    repeat,
                ),
            );
            if training {
                push(
                    trace,
                    Kernel::new(
                        "cudnn::detail::bn_bw_1C11_kernel_new",
                        KernelCategory::BatchNorm,
                        8.0 * n,
                        4.0 * n * F32,
                        n as usize,
                        repeat,
                    ),
                );
            }
        }
        LayerKind::LayerNorm { rows, d } => {
            let n = b * (rows * d) as f64;
            push(
                trace,
                Kernel::new(
                    "at::native::vectorized_layer_norm_kernel",
                    KernelCategory::BatchNorm,
                    6.0 * n,
                    3.0 * n * F32,
                    n as usize,
                    repeat,
                ),
            );
            if training {
                push(
                    trace,
                    Kernel::new(
                        "at::native::batch_norm_backward_kernel",
                        KernelCategory::BatchNorm,
                        12.0 * n,
                        6.0 * n * F32,
                        n as usize,
                        repeat,
                    ),
                );
            }
        }
        LayerKind::Relu { n } => {
            let e = b * n as f64;
            push(
                trace,
                Kernel::new(
                    "maxwell_scudnn_128x128_relu_interior_nn",
                    KernelCategory::Relu,
                    e,
                    2.0 * e * F32,
                    e as usize,
                    repeat,
                ),
            );
            if training {
                push(
                    trace,
                    Kernel::new(
                        "element_wise_threshold_kernel",
                        KernelCategory::ElementWise,
                        e,
                        2.0 * e * F32,
                        e as usize,
                        repeat,
                    ),
                );
            }
        }
        LayerKind::Activation { n } => {
            let e = b * n as f64;
            push(
                trace,
                Kernel::new(
                    "element_wise_mul_kernel",
                    KernelCategory::ElementWise,
                    4.0 * e,
                    2.0 * e * F32,
                    e as usize,
                    repeat,
                ),
            );
        }
        LayerKind::Pool { c, h_out, w_out, k } => {
            let out = b * (c * h_out * w_out) as f64;
            let window = (k * k) as f64;
            push(
                trace,
                Kernel::new(
                    "AvePoolForward",
                    KernelCategory::Pooling,
                    out * window,
                    (out * window + out) * F32,
                    out as usize,
                    repeat,
                ),
            );
            if training {
                push(
                    trace,
                    Kernel::new(
                        "MaxPoolBackward",
                        KernelCategory::Pooling,
                        out * window,
                        (out * window + out) * F32,
                        out as usize,
                        repeat,
                    ),
                );
            }
        }
        LayerKind::Embedding {
            vocab: _,
            dim,
            lookups,
        } => {
            let moved = b * (lookups * dim) as f64;
            push(
                trace,
                Kernel::new(
                    "maxwell_scudnn_128x128_stridedB_interior_nn",
                    KernelCategory::DataArrangement,
                    moved * 0.5,
                    2.0 * moved * F32,
                    moved as usize,
                    repeat,
                ),
            );
            if training {
                // Scatter-add of embedding gradients.
                push(
                    trace,
                    Kernel::new(
                        "maxwell_scudnn_128x32_stridedB_splitK_interior_nn",
                        KernelCategory::DataArrangement,
                        moved,
                        3.0 * moved * F32,
                        moved as usize,
                        repeat,
                    ),
                );
            }
        }
        LayerKind::Rnn {
            kind,
            d_in,
            d_h,
            steps,
        } => {
            let g = kind.gates() as f64;
            let per_step_macs = g * ((d_in + d_h) * d_h) as f64;
            let act_bytes = b * (d_in + 2 * d_h) as f64 * F32;
            let w_bytes = per_step_macs * F32;
            // One gate GEMM per timestep forward and two backward —
            // many small launches, which is what makes RNNs latency-bound.
            push(
                trace,
                Kernel::new(
                    "maxwell_sgemm_128x64_nn",
                    KernelCategory::Gemm,
                    2.0 * b * per_step_macs,
                    act_bytes + w_bytes,
                    (b * d_h as f64 * g) as usize,
                    steps * repeat,
                ),
            );
            if training {
                push(
                    trace,
                    Kernel::new(
                        "maxwell_sgemm_128x64_nt",
                        KernelCategory::Gemm,
                        4.0 * b * per_step_macs,
                        act_bytes + w_bytes,
                        (b * d_h as f64 * g) as usize,
                        steps * repeat,
                    ),
                );
            }
            // Pointwise gate combinations.
            let gate_elems = b * (g * d_h as f64);
            push(
                trace,
                Kernel::new(
                    "element_wise_mul_kernel",
                    KernelCategory::ElementWise,
                    6.0 * gate_elems,
                    3.0 * gate_elems * F32,
                    gate_elems as usize,
                    steps * repeat,
                ),
            );
        }
        LayerKind::Attention {
            d_model,
            heads: _,
            seq_q,
            seq_k,
        } => {
            let proj_macs = (4 * seq_q * d_model * d_model) as f64;
            let score_macs = (2 * seq_q * seq_k * d_model) as f64;
            push(
                trace,
                Kernel::new(
                    "maxwell_sgemm_128x64_nn",
                    KernelCategory::Gemm,
                    2.0 * b * proj_macs,
                    b * (2 * seq_q * d_model) as f64 * F32 + (4 * d_model * d_model) as f64 * F32,
                    (b * (seq_q * d_model) as f64) as usize,
                    repeat,
                ),
            );
            push(
                trace,
                Kernel::new(
                    "maxwell_sgemm_128x64_nt",
                    KernelCategory::Gemm,
                    2.0 * b * score_macs,
                    b * (seq_q * seq_k) as f64 * F32,
                    (b * (seq_q * seq_k) as f64) as usize,
                    repeat,
                ),
            );
            // Softmax over attention scores.
            let rows = b * (seq_q * seq_k) as f64;
            push(
                trace,
                Kernel::new(
                    "softmax_warp_forward",
                    KernelCategory::ElementWise,
                    5.0 * rows,
                    2.0 * rows * F32,
                    rows as usize,
                    repeat,
                ),
            );
            if training {
                // Backward through both projection and score GEMMs at the
                // standard 1:2 fwd:bwd FLOP convention.
                push(
                    trace,
                    Kernel::new(
                        "maxwell_sgemm_128x64_nt",
                        KernelCategory::Gemm,
                        4.0 * b * (proj_macs + score_macs),
                        b * (2 * seq_q * d_model) as f64 * F32
                            + (4 * d_model * d_model) as f64 * F32,
                        (b * (seq_q * d_model) as f64) as usize,
                        repeat,
                    ),
                );
            }
        }
        LayerKind::Softmax { rows, classes } => {
            let n = b * (rows * classes) as f64;
            push(
                trace,
                Kernel::new(
                    "softmax_warp_forward",
                    KernelCategory::ElementWise,
                    5.0 * n,
                    2.0 * n * F32,
                    n as usize,
                    repeat,
                ),
            );
        }
        LayerKind::Elementwise { n, ops } => {
            let e = b * n as f64;
            push(
                trace,
                Kernel::new(
                    "element_wise_add_kernel",
                    KernelCategory::ElementWise,
                    e * ops as f64,
                    3.0 * e * F32,
                    e as usize,
                    repeat,
                ),
            );
        }
        LayerKind::GridSample { c, h, w } => {
            let n = b * (c * h * w) as f64;
            push(
                trace,
                Kernel::new(
                    "grid_sampler_2d_kernel",
                    KernelCategory::DataArrangement,
                    16.0 * n,
                    6.0 * n * F32,
                    n as usize,
                    repeat,
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_models::catalog;

    #[test]
    fn every_trace_starts_with_htod_copy() {
        for spec in catalog::aibench_specs() {
            let trace = lower_training_iteration(&spec);
            assert_eq!(trace[0].name, "CUDA memcpy HtoD", "{}", spec.name);
            assert!(trace[0].bytes > 0.0);
        }
    }

    #[test]
    fn resnet_trace_is_convolution_heavy() {
        let trace = lower_training_iteration(&catalog::image_classification());
        let conv_flops: f64 = trace
            .iter()
            .filter(|k| k.category == KernelCategory::Convolution)
            .map(|k| k.flops * k.count as f64)
            .sum();
        let total_flops: f64 = trace.iter().map(|k| k.flops * k.count as f64).sum();
        assert!(
            conv_flops / total_flops > 0.6,
            "conv share {}",
            conv_flops / total_flops
        );
    }

    #[test]
    fn learning_to_rank_is_data_arrangement_heavy() {
        let trace = lower_training_iteration(&catalog::learning_to_rank());
        let da_bytes: f64 = trace
            .iter()
            .filter(|k| k.category == KernelCategory::DataArrangement)
            .map(|k| k.bytes * k.count as f64)
            .sum();
        let gemm_bytes: f64 = trace
            .iter()
            .filter(|k| k.category == KernelCategory::Gemm)
            .map(|k| k.bytes * k.count as f64)
            .sum();
        assert!(da_bytes > gemm_bytes, "DA {da_bytes} vs GEMM {gemm_bytes}");
    }

    #[test]
    fn rnn_models_launch_many_kernels() {
        let speech = lower_training_iteration(&catalog::speech_recognition());
        let launches: usize = speech.iter().map(|k| k.count).sum();
        assert!(launches > 500, "speech launches {launches}");
    }

    #[test]
    fn inference_runs_one_launch_per_small_linear() {
        // Regression: the strided-batched small-linear path used to emit
        // its 3 training launches (fwd + dgrad + wgrad) in inference too.
        let spec = catalog::learning_to_rank();
        let train = lower_training_iteration(&spec);
        let infer = lower_inference_iteration(&spec, spec.batch_size);
        let launches = |trace: &[Kernel]| -> usize {
            trace
                .iter()
                .filter(|k| {
                    k.name.contains("splitK") && k.category == KernelCategory::DataArrangement
                })
                .map(|k| k.count)
                .sum()
        };
        // Training: 3 launches per linear + embedding scatter + optimizer.
        // Inference: 1 launch per linear + embedding arrangement only.
        assert!(
            launches(&train) > 2 * launches(&infer),
            "{} vs {}",
            launches(&train),
            launches(&infer)
        );
        let small_linear = infer.iter().find(|k| k.name.contains("splitK")).unwrap();
        assert_eq!(small_linear.count, 1);
    }

    #[test]
    fn attention_trains_with_backward_gemms() {
        // Regression: attention layers used to lower with no backward
        // kernels, so transformer training traces under-counted FLOPs.
        let spec = catalog::text_to_text();
        let train = lower_training_iteration(&spec);
        let infer = lower_inference_iteration(&spec, spec.batch_size);
        let gemm = |trace: &[Kernel]| -> f64 {
            trace
                .iter()
                .filter(|k| k.category == KernelCategory::Gemm)
                .map(|k| k.flops * k.count as f64)
                .sum()
        };
        let ratio = gemm(&train) / gemm(&infer);
        assert!(
            (2.5..3.5).contains(&ratio),
            "GEMM train/infer ratio {ratio}"
        );
    }

    #[test]
    fn inference_traces_have_no_gradient_kernels() {
        // Regression: LayerNorm used to lower onto a kernel *named*
        // `batch_norm_backward_kernel` even in forward-only traces.
        for spec in catalog::aibench_specs()
            .into_iter()
            .chain(catalog::mlperf_specs())
        {
            let trace = lower_inference_iteration(&spec, 1);
            for k in &trace {
                assert!(
                    !k.name.contains("backward")
                        && !k.name.contains("wgrad")
                        && !k.name.contains("bn_bw")
                        && !k.name.contains("DtoD"),
                    "{}: gradient kernel {} in inference trace",
                    spec.name,
                    k.name
                );
            }
        }
    }

    #[test]
    fn backward_flops_exceed_forward() {
        // Conv layers: wgrad + dgrad flops > fwd flops.
        let trace = lower_training_iteration(&catalog::image_classification());
        let fwd: f64 = trace
            .iter()
            .filter(|k| k.name.contains("winograd"))
            .map(|k| k.flops * k.count as f64)
            .sum();
        let bwd: f64 = trace
            .iter()
            .filter(|k| k.name.contains("wgrad") || k.name.contains("splitK"))
            .map(|k| k.flops * k.count as f64)
            .sum();
        assert!(bwd > fwd * 0.9);
    }
}

//! Device models for the paper's two experiment servers.

/// A GPU device model: enough architectural parameters for roofline timing
/// and occupancy estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name.
    pub name: String,
    /// Streaming multiprocessor count.
    pub sm_count: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Device memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
    /// Board power at full utilization, watts.
    pub tdp_watts: f64,
    /// Board power when idle, watts.
    pub idle_watts: f64,
}

impl DeviceConfig {
    /// NVIDIA TITAN Xp (the paper's workload-characterization GPU):
    /// 3840 CUDA cores, 12 GB GDDR5X at 547 GB/s.
    pub fn titan_xp() -> Self {
        DeviceConfig {
            name: "TITAN Xp".into(),
            sm_count: 30,
            cores_per_sm: 128,
            clock_ghz: 1.58,
            mem_bw_gbs: 547.0,
            max_warps_per_sm: 64,
            launch_overhead_s: 3e-6,
            tdp_watts: 250.0,
            idle_watts: 55.0,
        }
    }

    /// NVIDIA TITAN RTX (the paper's training-session GPU): 4608 CUDA
    /// cores, 24 GB GDDR6 at 672 GB/s.
    pub fn titan_rtx() -> Self {
        DeviceConfig {
            name: "TITAN RTX".into(),
            sm_count: 72,
            cores_per_sm: 64,
            clock_ghz: 1.77,
            mem_bw_gbs: 672.0,
            max_warps_per_sm: 32,
            launch_overhead_s: 3e-6,
            tdp_watts: 280.0,
            idle_watts: 60.0,
        }
    }

    /// Peak single-precision throughput in FLOP/s (2 FLOPs per core-cycle
    /// via FMA).
    pub fn peak_flops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * self.clock_ghz * 1e9 * 2.0
    }

    /// Peak memory bandwidth in bytes/s.
    pub fn peak_bytes_per_s(&self) -> f64 {
        self.mem_bw_gbs * 1e9
    }

    /// Total resident-thread capacity of the device.
    pub fn thread_capacity(&self) -> usize {
        self.sm_count * self.max_warps_per_sm * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_xp_peaks() {
        let d = DeviceConfig::titan_xp();
        // 3840 cores * 1.58 GHz * 2 ≈ 12.1 TFLOPS.
        assert!((d.peak_flops() / 1e12 - 12.1).abs() < 0.2);
        assert_eq!(d.sm_count * d.cores_per_sm, 3840);
    }

    #[test]
    fn power_envelope_is_sane() {
        for d in [DeviceConfig::titan_xp(), DeviceConfig::titan_rtx()] {
            assert!(
                d.idle_watts > 0.0 && d.idle_watts < d.tdp_watts,
                "{}",
                d.name
            );
        }
    }

    #[test]
    fn titan_rtx_has_more_cores() {
        let xp = DeviceConfig::titan_xp();
        let rtx = DeviceConfig::titan_rtx();
        assert!(rtx.sm_count * rtx.cores_per_sm > xp.sm_count * xp.cores_per_sm);
        assert!(rtx.peak_flops() > xp.peak_flops());
    }
}

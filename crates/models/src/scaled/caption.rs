//! DC-AI-C4 Image-to-Text: a CNN encoder feeding a GRU caption decoder
//! (the Neural Image Caption structure). Quality: perplexity of held-out
//! captions (lower is better; the paper's target is 4.2).

use aibench_autograd::Graph;
use aibench_data::batch::batches;
use aibench_data::metrics::perplexity;
use aibench_data::synth::CaptionDataset;
use aibench_nn::{Adam, Conv2d, Embedding, GruCell, Linear, Module, Optimizer};
use aibench_tensor::Rng;

use crate::Trainer;

/// The Image-to-Text benchmark trainer.
#[derive(Debug)]
pub struct ImageToText {
    ds: CaptionDataset,
    conv1: Conv2d,
    conv2: Conv2d,
    to_state: Linear,
    embed: Embedding,
    dec: GruCell,
    proj: Linear,
    opt: Adam,
    rng: Rng,
    batch: usize,
    eval_n: usize,
}

impl ImageToText {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = CaptionDataset::new(4, 15, 128, 0xC4);
        let d = 24;
        let conv1 = Conv2d::new(1, 8, 3, 2, 1, &mut rng);
        let conv2 = Conv2d::new(8, 16, 3, 2, 1, &mut rng);
        let feat = 16 * 4 * 4;
        let to_state = Linear::new(feat, d, &mut rng);
        let embed = Embedding::new(ds.vocab_size(), d, &mut rng);
        let dec = GruCell::new(d, d, &mut rng);
        let proj = Linear::new(d, ds.vocab_size(), &mut rng);
        let mut params = conv1.params();
        params.extend(conv2.params());
        params.extend(to_state.params());
        params.extend(embed.params());
        params.extend(dec.params());
        params.extend(proj.params());
        let opt = Adam::new(params, 0.01);
        ImageToText {
            ds,
            conv1,
            conv2,
            to_state,
            embed,
            dec,
            proj,
            opt,
            rng,
            batch: 16,
            eval_n: 48,
        }
    }

    /// Mean per-token cross-entropy on a batch (teacher forcing); trains
    /// when `test` is false.
    fn step_batch(&mut self, idx: &[usize], test: bool) -> f32 {
        let (x, caps) = self.ds.batch(idx, test);
        let b = idx.len();
        let w = self.ds.caption_width();
        let mut g = Graph::new();
        let xv = g.input(x);
        let f = self.conv1.forward(&mut g, xv);
        let f = g.relu(f);
        let f = self.conv2.forward(&mut g, f);
        let f = g.relu(f);
        let shape = g.value(f).shape().to_vec();
        let flat = g.reshape(f, &[b, shape[1] * shape[2] * shape[3]]);
        let mut h = self.to_state.forward(&mut g, flat);
        h = g.tanh(h);
        // Teacher-forced decoding of caption tokens 1..w from 0..w-1.
        let mut outs = Vec::new();
        for t in 0..w - 1 {
            let ids: Vec<usize> = caps.iter().map(|c| c[t]).collect();
            let e = self.embed.forward(&mut g, &ids);
            h = self.dec.step(&mut g, e, h);
            outs.push(h);
        }
        let seq = g.concat(&outs, 0); // [(w-1)*b, d], step-major
        let logits = self.proj.forward(&mut g, seq);
        let mut labels = Vec::with_capacity(b * (w - 1));
        for t in 1..w {
            for c in &caps {
                labels.push(c[t]);
            }
        }
        let loss = g.softmax_cross_entropy(logits, &labels, Some(0));
        let v = g.value(loss).item();
        if !test {
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        v
    }
}

impl Trainer for ImageToText {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            total += self.step_batch(&idx, false);
            count += 1;
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let idx: Vec<usize> = (0..self.eval_n).collect();
        let mut nll = 0.0;
        let mut count = 0;
        for chunk in idx.chunks(16) {
            nll += self.step_batch(chunk, true) as f64;
            count += 1;
        }
        perplexity(nll / count.max(1) as f64)
    }

    fn param_count(&self) -> usize {
        self.conv1.param_count()
            + self.conv2.param_count()
            + self.to_state.param_count()
            + self.embed.param_count()
            + self.dec.param_count()
            + self.proj.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perplexity_falls_with_training() {
        let mut t = ImageToText::new(4);
        let before = t.evaluate();
        for _ in 0..6 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(after < before, "ppl before {before:.2}, after {after:.2}");
        assert!(
            after < 6.0,
            "ppl should at least learn the caption grammar: {after:.2}"
        );
    }
}

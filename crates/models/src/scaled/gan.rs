//! DC-AI-C2 Image Generation: Wasserstein GAN with MLP generator and
//! critic (Arjovsky et al.), trained with weight clipping and RMSProp
//! exactly as the paper's reference prescribes. Quality: the absolute
//! critic Earth-Mover estimate (the paper's stopping criterion).

use aibench_autograd::{Graph, Var};
use aibench_data::synth::GanDataset;
use aibench_nn::{Linear, Module, Optimizer, RmsProp};
use aibench_tensor::Rng;

use crate::Trainer;

const CLIP: f32 = 0.05;
const CRITIC_STEPS: usize = 5;

#[derive(Debug)]
struct Mlp {
    l1: Linear,
    l2: Linear,
    l3: Linear,
}

impl Mlp {
    fn new(d_in: usize, hidden: usize, d_out: usize, rng: &mut Rng) -> Self {
        Mlp {
            l1: Linear::new(d_in, hidden, rng),
            l2: Linear::new(hidden, hidden, rng),
            l3: Linear::new(hidden, d_out, rng),
        }
    }

    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let h = self.l1.forward(g, x);
        let h = g.relu(h);
        let h = self.l2.forward(g, h);
        let h = g.relu(h);
        self.l3.forward(g, h)
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        let mut p = self.l1.params();
        p.extend(self.l2.params());
        p.extend(self.l3.params());
        p
    }
}

/// The Image Generation (WGAN) benchmark trainer.
#[derive(Debug)]
pub struct ImageGeneration {
    ds: GanDataset,
    generator: Mlp,
    critic: Mlp,
    g_opt: RmsProp,
    c_opt: RmsProp,
    rng: Rng,
    batch: usize,
    iters_per_epoch: usize,
}

impl ImageGeneration {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = GanDataset::new(16, 2, 0xC2);
        let generator = Mlp::new(ds.latent(), 48, ds.dim(), &mut rng);
        let critic = Mlp::new(ds.dim(), 48, 1, &mut rng);
        let g_opt = RmsProp::new(generator.params(), 2e-3);
        let c_opt = RmsProp::new(critic.params(), 2e-3);
        ImageGeneration {
            ds,
            generator,
            critic,
            g_opt,
            c_opt,
            rng,
            batch: 32,
            iters_per_epoch: 20,
        }
    }

    fn clip_critic(&self) {
        for p in self.critic.params() {
            p.value_mut().map_inplace(|w| w.clamp(-CLIP, CLIP));
        }
    }

    /// Moment-matching distance between generated and real samples: RMS
    /// difference of per-dimension means and standard deviations. A
    /// surrogate for distributional distance that does not depend on the
    /// critic's training state (the paper's EM criterion is only
    /// meaningful once the critic has converged).
    pub fn moment_distance(&mut self) -> f64 {
        let n = 256;
        let real = self.ds.sample_real(n, &mut self.rng);
        let noise = self.ds.sample_noise(n, &mut self.rng);
        let mut g = Graph::new();
        let nv = g.input(noise);
        let fake_v = self.generator.forward(&mut g, nv);
        let fake = g.value(fake_v);
        let d = self.ds.dim();
        let mut total = 0.0f64;
        for j in 0..d {
            let col = |t: &aibench_tensor::Tensor, j: usize| -> (f64, f64) {
                let mut mean = 0.0;
                for i in 0..n {
                    mean += t.data()[i * d + j] as f64;
                }
                mean /= n as f64;
                let mut var = 0.0;
                for i in 0..n {
                    var += (t.data()[i * d + j] as f64 - mean).powi(2);
                }
                (mean, (var / n as f64).sqrt())
            };
            let (mr, sr) = col(&real, j);
            let (mf, sf) = col(fake, j);
            total += (mr - mf).powi(2) + (sr - sf).powi(2);
        }
        (total / d as f64).sqrt()
    }

    /// The critic's Earth-Mover estimate on fresh samples:
    /// `E[critic(real)] - E[critic(fake)]`.
    pub fn em_estimate(&mut self) -> f32 {
        let real = self.ds.sample_real(128, &mut self.rng);
        let noise = self.ds.sample_noise(128, &mut self.rng);
        let mut g = Graph::new();
        let rv = g.input(real);
        let nv = g.input(noise);
        let fake = self.generator.forward(&mut g, nv);
        let cr = self.critic.forward(&mut g, rv);
        let cf = self.critic.forward(&mut g, fake);
        let mr = g.mean(cr);
        let mf = g.mean(cf);
        let em = g.sub(mr, mf);
        g.value(em).item()
    }
}

impl Trainer for ImageGeneration {
    fn scale_lr(&mut self, factor: f32) {
        self.g_opt.scale_lr(factor);
        self.c_opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.g_opt.snapshot(state, "g_opt");
        self.c_opt.snapshot(state, "c_opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.g_opt.restore(state, "g_opt")?;
        self.c_opt.restore(state, "c_opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        let mut p = self.g_opt.params().to_vec();
        p.extend(self.c_opt.params().iter().cloned());
        p
    }

    fn train_epoch(&mut self) -> f32 {
        let mut last_em = 0.0;
        for _ in 0..self.iters_per_epoch {
            // Critic: maximize E[c(real)] - E[c(fake)] for CRITIC_STEPS.
            for _ in 0..CRITIC_STEPS {
                let real = self.ds.sample_real(self.batch, &mut self.rng);
                let noise = self.ds.sample_noise(self.batch, &mut self.rng);
                let mut g = Graph::new();
                let rv = g.input(real);
                let nv = g.input(noise);
                let fake = self.generator.forward(&mut g, nv);
                let cr = self.critic.forward(&mut g, rv);
                let cf = self.critic.forward(&mut g, fake);
                let mr = g.mean(cr);
                let mf = g.mean(cf);
                let em = g.sub(mr, mf);
                last_em = g.value(em).item();
                // Gradient *ascent* on the critic: minimize -EM. The
                // generator parameters also accumulate gradients here; they
                // are cleared without being applied.
                let neg = g.neg(em);
                g.backward(neg);
                self.c_opt.step();
                self.c_opt.zero_grad();
                self.g_opt.zero_grad();
                self.clip_critic();
            }
            // Generator: maximize E[c(fake)].
            let noise = self.ds.sample_noise(self.batch, &mut self.rng);
            let mut g = Graph::new();
            let nv = g.input(noise);
            let fake = self.generator.forward(&mut g, nv);
            let cf = self.critic.forward(&mut g, fake);
            let mf = g.mean(cf);
            let loss = g.neg(mf);
            g.backward(loss);
            self.g_opt.step();
            self.g_opt.zero_grad();
            self.c_opt.zero_grad();
        }
        last_em
    }

    fn evaluate(&mut self) -> f64 {
        self.moment_distance()
    }

    fn param_count(&self) -> usize {
        self.generator
            .params()
            .iter()
            .map(|p| p.len())
            .sum::<usize>()
            + self.critic.params().iter().map(|p| p.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critic_weights_stay_clipped() {
        let mut t = ImageGeneration::new(1);
        t.train_epoch();
        for p in t.critic.params() {
            assert!(p.value().max_val() <= CLIP + 1e-6);
            assert!(p.value().min_val() >= -CLIP - 1e-6);
        }
    }

    #[test]
    fn generated_distribution_approaches_real() {
        let mut t = ImageGeneration::new(2);
        let early = t.evaluate();
        for _ in 0..10 {
            t.train_epoch();
        }
        let late = t.evaluate();
        assert!(
            late < early,
            "moment distance early {early:.3}, late {late:.3}"
        );
    }
}

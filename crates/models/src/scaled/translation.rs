//! DC-AI-C3 Text-to-Text Translation (and the MLPerf recurrent /
//! non-recurrent baselines): a tiny transformer encoder-decoder or a
//! GNMT-style GRU encoder-decoder on the synthetic reverse-and-map
//! language pair. Quality: teacher-forced token accuracy on held-out
//! pairs (the paper reports "accuracy", target 55%).

use aibench_autograd::{Graph, Var};
use aibench_data::batch::batches;
use aibench_data::synth::{TranslationDataset, PAD};
use aibench_nn::{Adam, Embedding, GruCell, Linear, Module, Optimizer, TransformerBlock};
use aibench_tensor::{Rng, Tensor};

use crate::Trainer;

/// Which architecture the trainer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationArch {
    /// Self-attention encoder-decoder (AIBench C3 / MLPerf non-recurrent).
    Transformer,
    /// GRU encoder-decoder (MLPerf recurrent, GNMT-style).
    Recurrent,
}

// One Net exists per trainer, so the variant size gap costs nothing.
#[allow(clippy::large_enum_variant)]
enum Net {
    Transformer {
        encoder: TransformerBlock,
        decoder: TransformerBlock,
        pos: Tensor,
    },
    Recurrent {
        enc: GruCell,
        dec: GruCell,
    },
}

impl std::fmt::Debug for Net {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Net::Transformer { .. } => write!(f, "Net::Transformer"),
            Net::Recurrent { .. } => write!(f, "Net::Recurrent"),
        }
    }
}

/// The Translation benchmark trainer.
#[derive(Debug)]
pub struct Translation {
    ds: TranslationDataset,
    embed: Embedding,
    net: Net,
    proj: Linear,
    opt: Adam,
    rng: Rng,
    d: usize,
    batch: usize,
    eval_n: usize,
}

impl Translation {
    /// Builds the benchmark with the given seed and architecture.
    pub fn new(seed: u64, arch: TranslationArch) -> Self {
        let mut rng = Rng::seed_from(seed);
        let data_seed = match arch {
            TranslationArch::Transformer => 0xC3,
            TranslationArch::Recurrent => 0x0F3,
        };
        let ds = TranslationDataset::new(10, 6, 160, data_seed);
        let d = 24;
        let embed = Embedding::new(ds.vocab_size(), d, &mut rng);
        let proj = Linear::new(d, ds.vocab_size(), &mut rng);
        let net = match arch {
            TranslationArch::Transformer => {
                let max_w = ds.max_len() + 2;
                // Sinusoidal positional encoding shared by both streams.
                let pos = Tensor::from_fn(&[1, max_w, d], |i| {
                    let (p, j) = ((i / d) % max_w, i % d);
                    let angle = p as f32 / 10_000f32.powf((2 * (j / 2)) as f32 / d as f32);
                    if j % 2 == 0 {
                        angle.sin()
                    } else {
                        angle.cos()
                    }
                });
                Net::Transformer {
                    encoder: TransformerBlock::encoder(d, 2, 48, &mut rng),
                    decoder: TransformerBlock::decoder(d, 2, 48, &mut rng),
                    pos,
                }
            }
            TranslationArch::Recurrent => Net::Recurrent {
                enc: GruCell::new(d, d, &mut rng),
                dec: GruCell::new(d, d, &mut rng),
            },
        };
        let mut params = embed.params();
        params.extend(proj.params());
        match &net {
            Net::Transformer {
                encoder, decoder, ..
            } => {
                params.extend(encoder.params());
                params.extend(decoder.params());
            }
            Net::Recurrent { enc, dec } => {
                params.extend(enc.params());
                params.extend(dec.params());
            }
        }
        let opt = Adam::new(params, 0.01);
        Translation {
            ds,
            embed,
            net,
            proj,
            opt,
            rng,
            d,
            batch: 16,
            eval_n: 48,
        }
    }

    /// Embeds token grid `[b][w]` to `[b, w, d]`.
    fn embed_grid(&self, g: &mut Graph, tokens: &[Vec<usize>]) -> Var {
        let b = tokens.len();
        let w = tokens[0].len();
        let flat: Vec<usize> = tokens.iter().flatten().copied().collect();
        let e = self.embed.forward(g, &flat);
        g.reshape(e, &[b, w, self.d])
    }

    /// Decoder logits `[rows, vocab]` for a batch of (src, tgt) pairs under
    /// teacher forcing; rows are `b × (tgt_width - 1)`.
    fn logits(&self, g: &mut Graph, srcs: &[Vec<usize>], tgt_in: &[Vec<usize>]) -> Var {
        let b = srcs.len();
        let w_in = tgt_in[0].len();
        match &self.net {
            Net::Transformer {
                encoder,
                decoder,
                pos,
            } => {
                let src_e = self.embed_grid(g, srcs);
                let sw = srcs[0].len();
                let src_pos = g.input(aibench_tensor::ops::slice_axis(pos, 1, 0, sw));
                let src_e = g.add(src_e, src_pos);
                let memory = encoder.forward(g, src_e, None);
                let tgt_e = self.embed_grid(g, tgt_in);
                let tgt_pos = g.input(aibench_tensor::ops::slice_axis(pos, 1, 0, w_in));
                let tgt_e = g.add(tgt_e, tgt_pos);
                let dec = decoder.forward(g, tgt_e, Some(memory));
                let flat = g.reshape(dec, &[b * w_in, self.d]);
                self.proj.forward(g, flat)
            }
            Net::Recurrent { enc, dec } => {
                // Encode source left-to-right; final state seeds the decoder.
                let sw = srcs[0].len();
                let mut h = enc.zero_state(g, b);
                for t in 0..sw {
                    let ids: Vec<usize> = srcs.iter().map(|s| s[t]).collect();
                    let x = self.embed.forward(g, &ids);
                    h = enc.step(g, x, h);
                }
                let mut outs = Vec::with_capacity(w_in);
                for t in 0..w_in {
                    let ids: Vec<usize> = tgt_in.iter().map(|s| s[t]).collect();
                    let x = self.embed.forward(g, &ids);
                    h = dec.step(g, x, h);
                    outs.push(h);
                }
                let seq = g.concat(&outs, 0); // [w_in * b, d] grouped by step
                self.proj.forward(g, seq)
            }
        }
    }

    /// Labels aligned with [`Translation::logits`] rows.
    fn labels(&self, tgt: &[Vec<usize>]) -> Vec<usize> {
        let w = tgt[0].len();
        match &self.net {
            Net::Transformer { .. } => {
                // Row-major [b, w-1]: next-token targets.
                tgt.iter().flat_map(|t| t[1..].iter().copied()).collect()
            }
            Net::Recurrent { .. } => {
                // Step-major [w-1, b] to match the concat order.
                let mut out = Vec::with_capacity(tgt.len() * (w - 1));
                for t in 1..w {
                    for s in tgt {
                        out.push(s[t]);
                    }
                }
                out
            }
        }
    }

    fn step_batch(&mut self, idx: &[usize], test: bool) -> (f32, f64) {
        let pairs: Vec<(Vec<usize>, Vec<usize>)> =
            idx.iter().map(|&i| self.ds.pair(i, test)).collect();
        let srcs: Vec<Vec<usize>> = pairs.iter().map(|p| p.0.clone()).collect();
        let tgts: Vec<Vec<usize>> = pairs.iter().map(|p| p.1.clone()).collect();
        let tgt_in: Vec<Vec<usize>> = tgts.iter().map(|t| t[..t.len() - 1].to_vec()).collect();
        let labels = self.labels(&tgts);
        let mut g = Graph::new();
        let logits = self.logits(&mut g, &srcs, &tgt_in);
        let loss = g.softmax_cross_entropy(logits, &labels, Some(PAD));
        let loss_v = g.value(loss).item();
        let pred = g.value(logits).argmax_last();
        let mut hits = 0;
        let mut total = 0;
        for (p, &l) in pred.iter().zip(&labels) {
            if l != PAD {
                total += 1;
                if *p == l {
                    hits += 1;
                }
            }
        }
        let acc = hits as f64 / total.max(1) as f64;
        if !test {
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        (loss_v, acc)
    }
}

impl Trainer for Translation {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            let (l, _) = self.step_batch(&idx, false);
            total += l;
            count += 1;
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let idx: Vec<usize> = (0..self.eval_n).collect();
        let mut accs = Vec::new();
        for chunk in idx.chunks(16) {
            let (_, a) = self.step_batch(chunk, true);
            accs.push(a);
        }
        accs.iter().sum::<f64>() / accs.len() as f64
    }

    fn param_count(&self) -> usize {
        let mut n = self.embed.param_count() + self.proj.param_count();
        n += match &self.net {
            Net::Transformer {
                encoder, decoder, ..
            } => encoder.param_count() + decoder.param_count(),
            Net::Recurrent { enc, dec } => enc.param_count() + dec.param_count(),
        };
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformer_accuracy_rises() {
        let mut t = Translation::new(1, TranslationArch::Transformer);
        let before = t.evaluate();
        for _ in 0..10 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(
            after > before + 0.1,
            "token acc before {before:.3}, after {after:.3}"
        );
    }

    #[test]
    fn recurrent_accuracy_rises() {
        let mut t = Translation::new(2, TranslationArch::Recurrent);
        let before = t.evaluate();
        for _ in 0..10 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(
            after > before + 0.1,
            "token acc before {before:.3}, after {after:.3}"
        );
    }
}

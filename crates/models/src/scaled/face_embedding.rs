//! DC-AI-C7 Face Embedding: FaceNet-style CNN mapping faces to an
//! embedding space, trained with the triplet loss. Quality: verification
//! accuracy on same/different pairs at the best distance threshold.

use aibench_autograd::{Graph, Var};
use aibench_data::synth::FaceDataset;
use aibench_nn::{Adam, Linear, Mode, Module, Optimizer};
use aibench_tensor::{Rng, Tensor};

use super::classify::MiniResNet;
use crate::Trainer;

const MARGIN: f32 = 0.5;

/// The Face Embedding benchmark trainer.
#[derive(Debug)]
pub struct FaceEmbedding {
    ds: FaceDataset,
    net: MiniResNet,
    embed: Linear,
    opt: Adam,
    step: u64,
    batches_per_epoch: usize,
    batch: usize,
}

impl FaceEmbedding {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = FaceDataset::new(8, 10, 128, 0xC7);
        let net = MiniResNet::new(1, 6, 8, &mut rng);
        let embed = Linear::new(12, 8, &mut rng);
        // Only the feature trunk trains here: the triplet loss goes through
        // `features`, never the classifier head, so the head's weights are
        // not registered (the tape sanitizer flags them as dead otherwise).
        let mut params = net.feature_params();
        params.extend(embed.params());
        let opt = Adam::new(params, 0.01);
        // Offset triplet sampling by the seed so runs differ.
        FaceEmbedding {
            ds,
            net,
            embed,
            opt,
            step: seed.wrapping_mul(1000),
            batches_per_epoch: 8,
            batch: 12,
        }
    }

    fn embed_batch(&self, g: &mut Graph, x: Tensor, mode: Mode) -> Var {
        let xv = g.input(x);
        let f = self.net.features(g, xv, mode);
        self.embed.forward(g, f)
    }

    fn pair_distances(&mut self) -> (Vec<f32>, Vec<bool>) {
        let (a, b, same) = self.ds.verification_pairs(40);
        let mut g = Graph::new();
        let ea = self.embed_batch(&mut g, a, Mode::Eval);
        let eb = self.embed_batch(&mut g, b, Mode::Eval);
        let diff = g.sub(ea, eb);
        let sq = g.square(diff);
        let d2 = g.sum_axis(sq, 1);
        (g.value(d2).data().to_vec(), same)
    }
}

impl Trainer for FaceEmbedding {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.net.snapshot(state, "net");
        self.opt.snapshot(state, "opt");
        state.put_u64("step", self.step);
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.net.restore(state, "net")?;
        self.opt.restore(state, "opt")?;
        state.u64("step").map(|s| self.step = s)
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        for _ in 0..self.batches_per_epoch {
            self.step += 1;
            let (a, p, n) = self.ds.triplet_batch(self.batch, self.step);
            let mut g = Graph::new();
            let ea = self.embed_batch(&mut g, a, Mode::Train);
            let ep = self.embed_batch(&mut g, p, Mode::Train);
            let en = self.embed_batch(&mut g, n, Mode::Train);
            let dpos_diff = g.sub(ea, ep);
            let dpos_sq = g.square(dpos_diff);
            let dpos = g.sum_axis(dpos_sq, 1);
            let dneg_diff = g.sub(ea, en);
            let dneg_sq = g.square(dneg_diff);
            let dneg = g.sum_axis(dneg_sq, 1);
            let gap = g.sub(dpos, dneg);
            let shifted = g.add_scalar(gap, MARGIN);
            let hinge = g.relu(shifted);
            let loss = g.mean(hinge);
            total += g.value(loss).item();
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        total / self.batches_per_epoch as f32
    }

    fn evaluate(&mut self) -> f64 {
        // LFW-style: pick the distance threshold maximizing pair accuracy.
        let (d2, same) = self.pair_distances();
        let mut best = 0.0f64;
        let mut thresholds: Vec<f32> = d2.clone();
        thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        for &t in &thresholds {
            let acc = d2
                .iter()
                .zip(&same)
                .filter(|(&d, &s)| (d <= t) == s)
                .count() as f64
                / d2.len() as f64;
            best = best.max(acc);
        }
        best
    }

    fn param_count(&self) -> usize {
        self.net.feature_param_count() + self.embed.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verification_accuracy_rises() {
        let mut t = FaceEmbedding::new(6);
        let before = t.evaluate();
        for _ in 0..8 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(
            after >= before.max(0.6),
            "verification before {before:.3}, after {after:.3}"
        );
    }
}

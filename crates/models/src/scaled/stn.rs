//! DC-AI-C15 Spatial Transformer: a localization network regressing affine
//! parameters, a differentiable grid sampler undoing the distortion, and a
//! small classifier (Jaderberg et al.). Quality: held-out accuracy
//! (paper target 99%).

use aibench_autograd::{Graph, Param, Var};
use aibench_data::batch::batches;
use aibench_data::metrics::accuracy;
use aibench_data::synth::StnDataset;
use aibench_nn::{Adam, Conv2d, Linear, Module, Optimizer};
use aibench_tensor::{Rng, Tensor};

use crate::{DataParallel, Trainer};

/// The Spatial Transformer benchmark trainer.
#[derive(Debug)]
pub struct SpatialTransformer {
    ds: StnDataset,
    loc_conv: Conv2d,
    loc_fc: Linear,
    theta_w: Param,
    theta_b: Param,
    cls_conv: Conv2d,
    cls_fc: Linear,
    opt: Adam,
    rng: Rng,
    batch: usize,
    eval_n: usize,
}

impl SpatialTransformer {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = StnDataset::new(6, 12, 144, 0xC15);
        let loc_conv = Conv2d::new(1, 6, 3, 2, 1, &mut rng);
        let loc_fc = Linear::new(6 * 6 * 6, 24, &mut rng);
        // The theta head starts at the identity transform: zero weights and
        // an identity-affine bias, the standard STN initialization.
        let theta_w = Param::new("stn.theta_w", Tensor::zeros(&[24, 6]));
        let theta_b = Param::new(
            "stn.theta_b",
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[6]),
        );
        let cls_conv = Conv2d::new(1, 12, 3, 2, 1, &mut rng);
        let cls_fc = Linear::new(12 * 6 * 6, ds.classes(), &mut rng);
        let mut params = loc_conv.params();
        params.extend(loc_fc.params());
        params.push(theta_w.clone());
        params.push(theta_b.clone());
        params.extend(cls_conv.params());
        params.extend(cls_fc.params());
        let opt = Adam::new(params, 0.01);
        SpatialTransformer {
            ds,
            loc_conv,
            loc_fc,
            theta_w,
            theta_b,
            cls_conv,
            cls_fc,
            opt,
            rng,
            batch: 24,
            eval_n: 72,
        }
    }

    fn forward(&self, g: &mut Graph, x: Var, n: usize) -> Var {
        let size = self.ds.size();
        // Localization: predict theta.
        let l = self.loc_conv.forward(g, x);
        let l = g.relu(l);
        let shape = g.value(l).shape().to_vec();
        let flat = g.reshape(l, &[n, shape[1] * shape[2] * shape[3]]);
        let l = self.loc_fc.forward(g, flat);
        let l = g.tanh(l);
        let tw = g.param(&self.theta_w);
        let tb = g.param(&self.theta_b);
        let theta_flat = g.linear(l, tw, tb);
        let theta = g.reshape(theta_flat, &[n, 2, 3]);
        // Resample the input through the predicted transform.
        let grid = g.affine_grid(theta, (size, size));
        let warped = g.grid_sample(x, grid);
        // Classify the rectified image.
        let c = self.cls_conv.forward(g, warped);
        let c = g.relu(c);
        let cs = g.value(c).shape().to_vec();
        let cflat = g.reshape(c, &[n, cs[1] * cs[2] * cs[3]]);
        self.cls_fc.forward(g, cflat)
    }
}

impl Trainer for SpatialTransformer {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            total += self.forward_backward(&idx);
            count += 1;
            self.apply_update();
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let idx: Vec<usize> = (0..self.eval_n).collect();
        let (x, y) = self.ds.test_batch(&idx);
        let n = idx.len();
        let mut g = Graph::new();
        let xv = g.input(x);
        let logits = self.forward(&mut g, xv, n);
        accuracy(&g.value(logits).argmax_last(), &y)
    }

    fn param_count(&self) -> usize {
        self.loc_conv.param_count()
            + self.loc_fc.param_count()
            + self.theta_w.len()
            + self.theta_b.len()
            + self.cls_conv.param_count()
            + self.cls_fc.param_count()
    }
}

impl DataParallel for SpatialTransformer {
    fn train_len(&self) -> usize {
        self.ds.len()
    }

    fn global_batch(&self) -> usize {
        self.batch
    }

    fn data_rng(&self) -> Rng {
        self.rng.clone()
    }

    fn forward_backward(&mut self, idx: &[usize]) -> f32 {
        let (x, y) = self.ds.train_batch(idx);
        let n = idx.len();
        let mut g = Graph::new();
        let xv = g.input(x);
        let logits = self.forward(&mut g, xv, n);
        let loss = g.softmax_cross_entropy(logits, &y, None);
        let out = g.value(loss).item();
        g.backward(loss);
        out
    }

    fn apply_update(&mut self) {
        self.opt.step();
        self.opt.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_starts_at_identity() {
        let t = SpatialTransformer::new(1);
        assert_eq!(t.theta_b.value().data(), &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        assert_eq!(t.theta_w.value().sq_norm(), 0.0);
    }

    #[test]
    fn accuracy_rises_on_distorted_digits() {
        let mut t = SpatialTransformer::new(2);
        let before = t.evaluate();
        for _ in 0..6 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(
            after > before.max(0.3),
            "accuracy before {before:.3}, after {after:.3}"
        );
    }
}

//! DC-AI-C6 Speech Recognition: a DeepSpeech2-style acoustic model —
//! convolutional front-end over the spectrogram followed by a GRU over
//! frames and a framewise classifier. Quality: word (phoneme) error rate
//! after greedy decode + repeat collapsing (lower is better).

use aibench_autograd::Graph;
use aibench_data::batch::batches;
use aibench_data::metrics::word_error_rate;
use aibench_data::synth::SpeechDataset;
use aibench_nn::{Adam, Conv2d, GruCell, Linear, Module, Optimizer};
use aibench_tensor::Rng;

use crate::Trainer;

/// The Speech Recognition benchmark trainer.
#[derive(Debug)]
pub struct SpeechRecognition {
    ds: SpeechDataset,
    conv: Conv2d,
    gru: GruCell,
    proj: Linear,
    opt: Adam,
    rng: Rng,
    batch: usize,
    eval_n: usize,
}

impl SpeechRecognition {
    /// Builds the benchmark with the given training seed.
    ///
    /// The paper notes this benchmark fixes its initial seed and *still*
    /// shows 12% run-to-run variation; we keep the model init fixed and let
    /// only data order vary with `seed`.
    pub fn new(seed: u64) -> Self {
        let mut init_rng = Rng::seed_from(0x5eec); // fixed init seed, as in the paper
        let rng = Rng::seed_from(seed);
        let ds = SpeechDataset::new(5, 8, 16, 96, 0xC6);
        let c = 6;
        let conv = Conv2d::new(1, c, 3, 1, 1, &mut init_rng);
        let d_in = c * ds.bands();
        let d_h = 24;
        let gru = GruCell::new(d_in, d_h, &mut init_rng);
        let proj = Linear::new(d_h, ds.phonemes(), &mut init_rng);
        let mut params = conv.params();
        params.extend(gru.params());
        params.extend(proj.params());
        let opt = Adam::new(params, 0.008);
        SpeechRecognition {
            ds,
            conv,
            gru,
            proj,
            opt,
            rng,
            batch: 16,
            eval_n: 32,
        }
    }

    /// Framewise logits `[(frames)*b, phonemes]` (step-major) for a batch.
    fn logits(&self, g: &mut Graph, x: aibench_tensor::Tensor) -> aibench_autograd::Var {
        let b = x.shape()[0];
        let frames = self.ds.frames();
        let bands = self.ds.bands();
        let xv = g.input(x);
        let f = self.conv.forward(g, xv);
        let f = g.relu(f);
        let c = g.value(f).shape()[1];
        // [b, c, bands, frames] -> frame-major sequence of [b, c*bands].
        let perm = g.permute(f, &[3, 0, 1, 2]);
        let seq = g.reshape(perm, &[frames, b, c * bands]);
        let mut h = self.gru.zero_state(g, b);
        let mut outs = Vec::with_capacity(frames);
        for t in 0..frames {
            let xt3 = g.slice(seq, 0, t, 1);
            let xt = g.reshape(xt3, &[b, c * bands]);
            h = self.gru.step(g, xt, h);
            outs.push(h);
        }
        let stacked = g.concat(&outs, 0); // [frames*b, d_h] step-major
        self.proj.forward(g, stacked)
    }

    fn frame_labels_step_major(labels: &[Vec<usize>]) -> Vec<usize> {
        let frames = labels[0].len();
        let mut out = Vec::with_capacity(frames * labels.len());
        for t in 0..frames {
            for l in labels {
                out.push(l[t]);
            }
        }
        out
    }
}

impl Trainer for SpeechRecognition {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            let (x, frame_labels, _) = self.ds.batch(&idx, false);
            let labels = Self::frame_labels_step_major(&frame_labels);
            let mut g = Graph::new();
            let logits = self.logits(&mut g, x);
            let loss = g.softmax_cross_entropy(logits, &labels, None);
            total += g.value(loss).item();
            count += 1;
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let idx: Vec<usize> = (0..self.eval_n).collect();
        let mut refs = Vec::new();
        let mut hyps = Vec::new();
        for chunk in idx.chunks(16) {
            let (x, _, seqs) = self.ds.batch(chunk, true);
            let b = chunk.len();
            let frames = self.ds.frames();
            let mut g = Graph::new();
            let logits = self.logits(&mut g, x);
            let pred = g.value(logits).argmax_last(); // [frames*b] step-major
            for (bi, seq) in seqs.into_iter().enumerate() {
                let decoded: Vec<usize> = (0..frames).map(|t| pred[t * b + bi]).collect();
                hyps.push(SpeechDataset::collapse(&decoded));
                refs.push(seq);
            }
        }
        word_error_rate(&refs, &hyps)
    }

    fn param_count(&self) -> usize {
        self.conv.param_count() + self.gru.param_count() + self.proj.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wer_falls_with_training() {
        let mut t = SpeechRecognition::new(3);
        let before = t.evaluate();
        for _ in 0..8 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(after < before, "WER before {before:.3}, after {after:.3}");
        assert!(after < 0.7, "WER should fall below 0.7, got {after:.3}");
    }
}

//! DC-AI-C9 Object Detection (and the MLPerf heavy/light variants): a
//! single-stage grid detector in the Faster R-CNN spirit — convolutional
//! backbone, objectness + classification + box-regression heads, trained
//! jointly and evaluated with PASCAL-style mAP@0.5.

use aibench_autograd::{Graph, Var};
use aibench_data::batch::batches;
use aibench_data::metrics::{mean_average_precision, BoundingBox, Detection};
use aibench_data::synth::DetectionDataset;
use aibench_nn::{Conv2d, Module, Optimizer, Sgd};
use aibench_tensor::{Rng, Tensor};

use crate::Trainer;

/// Log-scale prior on box extent (typical objects span ~2 grid cells), so
/// freshly initialized heads already decode plausible boxes.
const BOX_PRIOR: f32 = 0.7;

/// Variant geometry for the detection benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionConfig {
    /// Backbone width (channels).
    pub width: usize,
    /// Dataset seed (distinct per benchmark identity).
    pub data_seed: u64,
}

impl DetectionConfig {
    /// AIBench DC-AI-C9 (Faster R-CNN scale-down).
    pub fn aibench() -> Self {
        DetectionConfig {
            width: 16,
            data_seed: 0xC9,
        }
    }

    /// MLPerf heavy detector (wider backbone).
    pub fn mlperf_heavy() -> Self {
        DetectionConfig {
            width: 24,
            data_seed: 0x0D1,
        }
    }

    /// MLPerf light detector (narrow backbone).
    pub fn mlperf_light() -> Self {
        DetectionConfig {
            width: 8,
            data_seed: 0x0D2,
        }
    }
}

/// The Object Detection benchmark trainer.
#[derive(Debug)]
pub struct ObjectDetection {
    backbone1: Conv2d,
    backbone2: Conv2d,
    backbone3: Conv2d,
    head: Conv2d,
    ds: DetectionDataset,
    opt: Sgd,
    rng: Rng,
    classes: usize,
    grid: usize,
    cell: usize,
    batch: usize,
    eval_n: usize,
}

impl ObjectDetection {
    /// Builds the detector with the given seed and variant config.
    pub fn new(seed: u64, cfg: DetectionConfig) -> Self {
        let mut rng = Rng::seed_from(seed);
        let classes = 3;
        let size = 16;
        let grid = 4;
        let ds = DetectionDataset::new(classes, size, 128, cfg.data_seed);
        let w = cfg.width;
        // Stride-4 backbone: 16² -> 8² -> 4² feature map.
        let backbone1 = Conv2d::new(1, w, 3, 2, 1, &mut rng);
        let backbone2 = Conv2d::new(w, 2 * w, 3, 2, 1, &mut rng);
        // A grid-level conv widens the receptive field past the cell.
        let backbone3 = Conv2d::new(2 * w, 2 * w, 3, 1, 1, &mut rng);
        // Per-cell predictions: [objectness, 4 box offsets, class logits].
        let head = Conv2d::new(2 * w, 5 + classes, 1, 1, 0, &mut rng);
        let params = {
            let mut p = backbone1.params();
            p.extend(backbone2.params());
            p.extend(backbone3.params());
            p.extend(head.params());
            p
        };
        let opt = Sgd::with_momentum(params, 0.06, 0.9, 1e-4);
        ObjectDetection {
            backbone1,
            backbone2,
            backbone3,
            head,
            ds,
            opt,
            rng,
            classes,
            grid,
            cell: size / grid,
            batch: 16,
            eval_n: 96,
        }
    }

    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let x = self.backbone1.forward(g, x);
        let x = g.relu(x);
        let x = self.backbone2.forward(g, x);
        let x = g.relu(x);
        let x = self.backbone3.forward(g, x);
        let x = g.relu(x);
        self.head.forward(g, x)
    }

    /// Builds the per-cell training targets for one batch.
    fn targets(&self, objs: &[Vec<(usize, BoundingBox)>]) -> (Tensor, Vec<usize>, Tensor, Tensor) {
        let n = objs.len();
        let gcells = self.grid * self.grid;
        let mut obj_t = Tensor::zeros(&[n, 1, self.grid, self.grid]);
        let mut cls_t = vec![self.classes; n * gcells]; // `classes` = ignore
        let mut box_t = Tensor::zeros(&[n, 4, self.grid, self.grid]);
        let mut box_mask = Tensor::zeros(&[n, 4, self.grid, self.grid]);
        for (bi, boxes) in objs.iter().enumerate() {
            for (class, bb) in boxes {
                let cx = (bb.x1 + bb.x2) * 0.5;
                let cy = (bb.y1 + bb.y2) * 0.5;
                let gx = ((cx as usize) / self.cell).min(self.grid - 1);
                let gy = ((cy as usize) / self.cell).min(self.grid - 1);
                obj_t.set(&[bi, 0, gy, gx], 1.0);
                cls_t[(bi * self.grid + gy) * self.grid + gx] = *class;
                // Offsets: center within the cell, log-scaled extent.
                let ox = cx / self.cell as f32 - gx as f32;
                let oy = cy / self.cell as f32 - gy as f32;
                let tw = ((bb.x2 - bb.x1) / self.cell as f32).ln() - BOX_PRIOR;
                let th = ((bb.y2 - bb.y1) / self.cell as f32).ln() - BOX_PRIOR;
                for (d, v) in [ox, oy, tw, th].into_iter().enumerate() {
                    box_t.set(&[bi, d, gy, gx], v);
                    box_mask.set(&[bi, d, gy, gx], 1.0);
                }
            }
        }
        (obj_t, cls_t, box_t, box_mask)
    }

    /// Prints internal quality diagnostics (used by the tuning probe).
    pub fn diagnostics(&mut self) {
        let idx: Vec<usize> = (0..32).collect();
        let (x, gt) = self.ds.test_batch(&idx);
        let mut g = Graph::new();
        let xv = g.input(x);
        let pred = self.forward(&mut g, xv);
        let pv = g.value(pred);
        let mut pos_obj = Vec::new();
        let mut neg_obj = Vec::new();
        let mut cls_hits = 0usize;
        let mut cls_total = 0usize;
        let mut ious = Vec::new();
        for (bi, boxes) in gt.iter().enumerate() {
            let mut pos_cells = vec![false; self.grid * self.grid];
            for (class, bb) in boxes {
                let cx = (bb.x1 + bb.x2) * 0.5;
                let cy = (bb.y1 + bb.y2) * 0.5;
                let gx = ((cx as usize) / self.cell).min(self.grid - 1);
                let gy = ((cy as usize) / self.cell).min(self.grid - 1);
                pos_cells[gy * self.grid + gx] = true;
                pos_obj.push(pv.at(&[bi, 0, gy, gx]));
                let mut best = 0;
                for c in 1..self.classes {
                    if pv.at(&[bi, 5 + c, gy, gx]) > pv.at(&[bi, 5 + best, gy, gx]) {
                        best = c;
                    }
                }
                cls_total += 1;
                if best == *class {
                    cls_hits += 1;
                }
                let ox = pv.at(&[bi, 1, gy, gx]);
                let oy = pv.at(&[bi, 2, gy, gx]);
                let tw = (pv.at(&[bi, 3, gy, gx]) + BOX_PRIOR).clamp(-3.0, 3.0);
                let th = (pv.at(&[bi, 4, gy, gx]) + BOX_PRIOR).clamp(-3.0, 3.0);
                let pcx = (gx as f32 + ox) * self.cell as f32;
                let pcy = (gy as f32 + oy) * self.cell as f32;
                let w = tw.exp() * self.cell as f32;
                let h = th.exp() * self.cell as f32;
                let pb =
                    BoundingBox::new(pcx - w / 2.0, pcy - h / 2.0, pcx + w / 2.0, pcy + h / 2.0);
                ious.push(aibench_data::metrics::box_iou(&pb, bb));
            }
            for gy in 0..self.grid {
                for gx in 0..self.grid {
                    if !pos_cells[gy * self.grid + gx] {
                        neg_obj.push(pv.at(&[bi, 0, gy, gx]));
                    }
                }
            }
        }
        let mean = |v: &Vec<f32>| v.iter().sum::<f32>() / v.len().max(1) as f32;
        println!(
            "  pos obj logit {:.2}  neg obj logit {:.2}",
            mean(&pos_obj),
            mean(&neg_obj)
        );
        println!(
            "  class acc at gt cells {:.3}",
            cls_hits as f32 / cls_total.max(1) as f32
        );
        println!(
            "  mean IoU at gt cells {:.3}  (>{:.0}% over 0.5)",
            mean(&ious),
            100.0 * ious.iter().filter(|&&i| i >= 0.5).count() as f32 / ious.len().max(1) as f32
        );
    }

    /// Decodes predictions into scored detections for mAP.
    fn decode(&self, pred: &Tensor, image_offset: usize) -> Vec<Detection> {
        let n = pred.shape()[0];
        let mut out = Vec::new();
        for bi in 0..n {
            for gy in 0..self.grid {
                for gx in 0..self.grid {
                    let obj = pred.at(&[bi, 0, gy, gx]);
                    let score = 1.0 / (1.0 + (-obj).exp());
                    if score < 0.05 {
                        continue;
                    }
                    let ox = pred.at(&[bi, 1, gy, gx]);
                    let oy = pred.at(&[bi, 2, gy, gx]);
                    let tw = (pred.at(&[bi, 3, gy, gx]) + BOX_PRIOR).clamp(-3.0, 3.0);
                    let th = (pred.at(&[bi, 4, gy, gx]) + BOX_PRIOR).clamp(-3.0, 3.0);
                    let cx = (gx as f32 + ox) * self.cell as f32;
                    let cy = (gy as f32 + oy) * self.cell as f32;
                    let w = tw.exp() * self.cell as f32;
                    let h = th.exp() * self.cell as f32;
                    let mut best_class = 0;
                    let mut best_v = f32::NEG_INFINITY;
                    for c in 0..self.classes {
                        let v = pred.at(&[bi, 5 + c, gy, gx]);
                        if v > best_v {
                            best_v = v;
                            best_class = c;
                        }
                    }
                    out.push(Detection {
                        image: image_offset + bi,
                        class: best_class,
                        score,
                        bbox: BoundingBox::new(
                            cx - w / 2.0,
                            cy - h / 2.0,
                            cx + w / 2.0,
                            cy + h / 2.0,
                        ),
                    });
                }
            }
        }
        out
    }
}

impl Trainer for ObjectDetection {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            let (x, objs) = self.ds.train_batch(&idx);
            let (obj_t, cls_t, box_t, box_mask) = self.targets(&objs);
            let n = idx.len();
            let gcells = self.grid * self.grid;
            let mut g = Graph::new();
            let xv = g.input(x);
            let pred = self.forward(&mut g, xv);
            // Objectness BCE over every cell.
            let obj_logits = g.slice(pred, 1, 0, 1);
            let obj_loss = g.bce_with_logits(obj_logits, &obj_t);
            // Box smooth-L1 on positive cells only.
            let box_pred = g.slice(pred, 1, 1, 4);
            let mask = g.input(box_mask.clone());
            let masked = g.mul(box_pred, mask);
            let box_loss = g.smooth_l1_loss(masked, &box_t.mul(&box_mask));
            // Classification CE with non-positive cells ignored.
            let cls_pred = g.slice(pred, 1, 5, self.classes);
            let cls_nhwc = g.permute(cls_pred, &[0, 2, 3, 1]);
            let cls_rows = g.reshape(cls_nhwc, &[n * gcells, self.classes]);
            let cls_loss = g.softmax_cross_entropy(cls_rows, &cls_t, Some(self.classes));
            let ol = g.scale(obj_loss, 3.0);
            let bl = g.scale(box_loss, 5.0);
            let partial = g.add(ol, bl);
            let loss = g.add(partial, cls_loss);
            total += g.value(loss).item();
            count += 1;
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let idx: Vec<usize> = (0..self.eval_n).collect();
        let (x, gt) = self.ds.test_batch(&idx);
        let mut g = Graph::new();
        let xv = g.input(x);
        let pred = self.forward(&mut g, xv);
        let detections = self.decode(g.value(pred), 0);
        mean_average_precision(&detections, &gt, 0.5, self.classes)
    }

    fn param_count(&self) -> usize {
        self.backbone1.param_count()
            + self.backbone2.param_count()
            + self.backbone3.param_count()
            + self.head.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_improves_with_training() {
        let mut t = ObjectDetection::new(3, DetectionConfig::aibench());
        let before = t.evaluate();
        for _ in 0..14 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(
            after > before.max(0.3),
            "mAP before {before:.3}, after {after:.3}"
        );
    }

    #[test]
    fn variants_have_different_sizes() {
        let heavy = ObjectDetection::new(1, DetectionConfig::mlperf_heavy());
        let light = ObjectDetection::new(1, DetectionConfig::mlperf_light());
        assert!(heavy.param_count() > 2 * light.param_count());
    }
}

//! DC-AI-C16 Learning-to-Rank: Ranking Distillation — a compact student
//! ranker trained under a pre-trained teacher's supervision (Tang & Wang),
//! on synthetic Gowalla-like implicit feedback. Quality: precision@5.

use aibench_autograd::{Graph, Param};
use aibench_data::metrics::precision_at_k;
use aibench_data::synth::RankingDataset;
use aibench_nn::{Adam, Optimizer};
use aibench_tensor::{ops::matmul, Rng, Tensor};

use crate::Trainer;

const DIM_TEACHER: usize = 16;
const DIM_STUDENT: usize = 8;
const TOP_K: usize = 5;

/// Matrix-factorization ranker: user/item embeddings scored by dot
/// product.
#[derive(Debug)]
struct MfRanker {
    users: Param,
    items: Param,
}

impl MfRanker {
    fn new(u: usize, i: usize, dim: usize, rng: &mut Rng, tag: &str) -> Self {
        MfRanker {
            users: Param::new(
                format!("{tag}.users"),
                Tensor::from_fn(&[u, dim], |_| rng.normal_with(0.0, 0.1)),
            ),
            items: Param::new(
                format!("{tag}.items"),
                Tensor::from_fn(&[i, dim], |_| rng.normal_with(0.0, 0.1)),
            ),
        }
    }

    fn params(&self) -> Vec<Param> {
        vec![self.users.clone(), self.items.clone()]
    }

    /// Pairwise BPR step on `(user, pos, neg)` triples; returns the loss.
    fn bpr_step(&self, triples: &[(usize, usize, usize)], opt: &mut Adam) -> f32 {
        let mut g = Graph::new();
        let ut = g.param(&self.users);
        let it = g.param(&self.items);
        let us: Vec<usize> = triples.iter().map(|t| t.0).collect();
        let ps: Vec<usize> = triples.iter().map(|t| t.1).collect();
        let ns: Vec<usize> = triples.iter().map(|t| t.2).collect();
        let ue = g.index_select0(ut, &us);
        let pe = g.index_select0(it, &ps);
        let ne = g.index_select0(it, &ns);
        let pos_prod = g.mul(ue, pe);
        let pos_score = g.sum_axis(pos_prod, 1);
        let neg_prod = g.mul(ue, ne);
        let neg_score = g.sum_axis(neg_prod, 1);
        let diff = g.sub(pos_score, neg_score);
        let loss = g.bce_with_logits(diff, &Tensor::ones(&[triples.len()]));
        let v = g.value(loss).item();
        g.backward(loss);
        opt.step();
        opt.zero_grad();
        v
    }

    /// Full score matrix `[users, items]`.
    fn scores(&self) -> Tensor {
        matmul(&self.users.value(), &self.items.value().t())
    }
}

/// The Learning-to-Rank benchmark trainer (teacher is pre-trained during
/// construction; epochs train the distilled student).
#[derive(Debug)]
pub struct LearningToRank {
    ds: RankingDataset,
    student: MfRanker,
    opt: Adam,
    teacher_top: Vec<Vec<usize>>, // teacher's top unobserved items per user
    rng: Rng,
}

impl LearningToRank {
    /// Builds the benchmark: trains the teacher to convergence, caches its
    /// top-ranked unobserved items, and initializes the student.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = RankingDataset::new(24, 80, 4, 6, 3, 0xC16);
        // Teacher: larger-capacity MF trained with BPR.
        let teacher = MfRanker::new(ds.users(), ds.items(), DIM_TEACHER, &mut rng, "teacher");
        let mut topt = Adam::new(teacher.params(), 0.05);
        let pairs = ds.train_pairs();
        for _ in 0..60 {
            let triples: Vec<(usize, usize, usize)> = pairs
                .iter()
                .map(|&(u, p)| (u, p, ds.sample_negative(u, &mut rng)))
                .collect();
            teacher.bpr_step(&triples, &mut topt);
        }
        // Teacher's top unobserved items become distillation targets.
        let scores = teacher.scores();
        let items = ds.items();
        let teacher_top = (0..ds.users())
            .map(|u| {
                let mut ranked: Vec<usize> = (0..items)
                    .filter(|i| !ds.train_positives(u).contains(i))
                    .collect();
                ranked.sort_by(|&a, &b| {
                    scores.data()[u * items + b]
                        .partial_cmp(&scores.data()[u * items + a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                ranked.truncate(TOP_K);
                ranked
            })
            .collect();
        let student = MfRanker::new(ds.users(), ds.items(), DIM_STUDENT, &mut rng, "student");
        let opt = Adam::new(student.params(), 0.02);
        LearningToRank {
            ds,
            student,
            opt,
            teacher_top,
            rng,
        }
    }
}

impl Trainer for LearningToRank {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        // Observed positives plus teacher-distilled pseudo-positives.
        let mut triples: Vec<(usize, usize, usize)> = Vec::new();
        for (u, p) in self.ds.train_pairs() {
            triples.push((u, p, self.ds.sample_negative(u, &mut self.rng)));
        }
        for u in 0..self.ds.users() {
            for &t in &self.teacher_top[u] {
                triples.push((u, t, self.ds.sample_negative(u, &mut self.rng)));
            }
        }
        self.rng.shuffle(&mut triples);
        let mut total = 0.0;
        let mut count = 0;
        for chunk in triples.chunks(64) {
            total += self.student.bpr_step(chunk, &mut self.opt);
            count += 1;
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let scores = self.student.scores();
        let items = self.ds.items();
        let mut rankings = Vec::with_capacity(self.ds.users());
        let mut relevant = Vec::with_capacity(self.ds.users());
        for u in 0..self.ds.users() {
            let mut ranked: Vec<usize> = (0..items)
                .filter(|i| !self.ds.train_positives(u).contains(i))
                .collect();
            ranked.sort_by(|&a, &b| {
                scores.data()[u * items + b]
                    .partial_cmp(&scores.data()[u * items + a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            rankings.push(ranked);
            relevant.push(self.ds.test_positives(u).to_vec());
        }
        precision_at_k(&rankings, &relevant, TOP_K)
    }

    fn param_count(&self) -> usize {
        self.student.params().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn student_beats_random_ranking() {
        let mut t = LearningToRank::new(5);
        let before = t.evaluate();
        for _ in 0..8 {
            t.train_epoch();
        }
        let after = t.evaluate();
        // Random precision@5 with 3 relevant of ~74 candidates ≈ 4%.
        assert!(
            after > before.max(0.08),
            "P@5 before {before:.3}, after {after:.3}"
        );
    }
}

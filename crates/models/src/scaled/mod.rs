//! Scaled-down trainable versions of every benchmark model.
//!
//! Each type implements [`Trainer`](crate::Trainer): a full synthetic
//! training epoch per call plus a held-out quality evaluation in the
//! paper's metric for that benchmark. Architectures keep the full-scale
//! models' structure (residual CNN, GAN pair, transformer encoder-decoder,
//! conv+GRU acoustic model, STN, NCF, ENAS controller+child, …) at sizes
//! that converge on a CPU in seconds.

mod caption;
mod classify;
mod compression;
mod detection;
mod face3d;
mod face_embedding;
mod gan;
mod image2image;
mod image_classification;
mod nas;
mod ranking;
mod recommendation;
mod reconstruction;
mod rl;
mod speech;
mod stn;
mod summarization;
mod translation;
mod video;

pub use caption::ImageToText;
pub use classify::MiniResNet;
pub use compression::ImageCompression;
pub use detection::{DetectionConfig, ObjectDetection};
pub use face3d::Face3dRecognition;
pub use face_embedding::FaceEmbedding;
pub use gan::ImageGeneration;
pub use image2image::ImageToImage;
pub use image_classification::ImageClassification;
pub use nas::NeuralArchitectureSearch;
pub use ranking::LearningToRank;
pub use recommendation::Recommendation;
pub use reconstruction::ObjectReconstruction3d;
pub use rl::ReinforcementLearning;
pub use speech::SpeechRecognition;
pub use stn::SpatialTransformer;
pub use summarization::TextSummarization;
pub use translation::{Translation, TranslationArch};
pub use video::VideoPrediction;

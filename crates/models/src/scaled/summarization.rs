//! DC-AI-C14 Text Summarization: an attentional GRU sequence-to-sequence
//! model (Nallapati et al. structure) extracting keyword summaries.
//! Quality: Rouge-L of greedy decodes (paper target 41).

use aibench_autograd::{Graph, Var};
use aibench_data::batch::batches;
use aibench_data::metrics::rouge_l;
use aibench_data::synth::{SummarizationDataset, EOS, PAD};
use aibench_nn::{Adam, Embedding, GruCell, Linear, Module, Optimizer};
use aibench_tensor::Rng;

use crate::Trainer;

/// The Text Summarization benchmark trainer.
#[derive(Debug)]
pub struct TextSummarization {
    ds: SummarizationDataset,
    embed: Embedding,
    enc: GruCell,
    dec: GruCell,
    att_proj: Linear,
    proj: Linear,
    opt: Adam,
    rng: Rng,
    d: usize,
    batch: usize,
    eval_n: usize,
}

impl TextSummarization {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = SummarizationDataset::new(6, 12, 12, 3, 128, 0xC14);
        let d = 20;
        let embed = Embedding::new(ds.vocab_size(), d, &mut rng);
        let enc = GruCell::new(d, d, &mut rng);
        let dec = GruCell::new(d, d, &mut rng);
        let att_proj = Linear::new(2 * d, d, &mut rng);
        let proj = Linear::new(d, ds.vocab_size(), &mut rng);
        let mut params = embed.params();
        params.extend(enc.params());
        params.extend(dec.params());
        params.extend(att_proj.params());
        params.extend(proj.params());
        let opt = Adam::new(params, 0.01);
        TextSummarization {
            ds,
            embed,
            enc,
            dec,
            att_proj,
            proj,
            opt,
            rng,
            d,
            batch: 16,
            eval_n: 32,
        }
    }

    /// Encodes documents; returns hidden states `[b, L, d]` and the final
    /// state `[b, d]`.
    fn encode(&self, g: &mut Graph, docs: &[Vec<usize>]) -> (Var, Var) {
        let b = docs.len();
        let l = docs[0].len();
        let mut h = self.enc.zero_state(g, b);
        let mut states = Vec::with_capacity(l);
        for t in 0..l {
            let ids: Vec<usize> = docs.iter().map(|d| d[t]).collect();
            let x = self.embed.forward(g, &ids);
            h = self.enc.step(g, x, h);
            let h3 = g.reshape(h, &[b, 1, self.d]);
            states.push(h3);
        }
        let enc_states = g.concat(&states, 1);
        (enc_states, h)
    }

    /// One decoder step with Luong-style dot attention over the encoder
    /// states; returns vocabulary logits `[b, vocab]` and the new state.
    fn decode_step(
        &self,
        g: &mut Graph,
        enc_states: Var,
        h: Var,
        input_ids: &[usize],
        b: usize,
        l: usize,
    ) -> (Var, Var) {
        let x = self.embed.forward(g, input_ids);
        let h_new = self.dec.step(g, x, h);
        // Attention scores: enc_states [b, L, d] × h [b, d, 1] -> [b, L, 1].
        let h3 = g.reshape(h_new, &[b, self.d, 1]);
        let scores3 = g.batch_matmul(enc_states, h3);
        let scores = g.reshape(scores3, &[b, l]);
        let attn = g.softmax(scores);
        let attn3 = g.reshape(attn, &[b, 1, l]);
        let ctx3 = g.batch_matmul(attn3, enc_states);
        let ctx = g.reshape(ctx3, &[b, self.d]);
        let joined = g.concat(&[ctx, h_new], 1);
        let mixed = self.att_proj.forward(g, joined);
        let mixed = g.tanh(mixed);
        let logits = self.proj.forward(g, mixed);
        (logits, h_new)
    }
}

impl Trainer for TextSummarization {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            let pairs: Vec<(Vec<usize>, Vec<usize>)> =
                idx.iter().map(|&i| self.ds.pair(i, false)).collect();
            let docs: Vec<Vec<usize>> = pairs.iter().map(|p| p.0.clone()).collect();
            let sums: Vec<Vec<usize>> = pairs.iter().map(|p| p.1.clone()).collect();
            let b = docs.len();
            let l = docs[0].len();
            let w = sums[0].len();
            let mut g = Graph::new();
            let (enc_states, mut h) = self.encode(&mut g, &docs);
            let mut step_logits = Vec::new();
            let mut labels = Vec::new();
            for t in 0..w - 1 {
                let ids: Vec<usize> = sums.iter().map(|s| s[t]).collect();
                let (logits, h2) = self.decode_step(&mut g, enc_states, h, &ids, b, l);
                h = h2;
                step_logits.push(logits);
                labels.extend(sums.iter().map(|s| s[t + 1]));
            }
            let all = g.concat(&step_logits, 0); // step-major
            let loss = g.softmax_cross_entropy(all, &labels, Some(PAD));
            total += g.value(loss).item();
            count += 1;
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        // Greedy free-running decode, scored with Rouge-L against the
        // reference keywords.
        let mut refs = Vec::new();
        let mut hyps = Vec::new();
        for chunk in (0..self.eval_n).collect::<Vec<usize>>().chunks(16) {
            let pairs: Vec<(Vec<usize>, Vec<usize>)> =
                chunk.iter().map(|&i| self.ds.pair(i, true)).collect();
            let docs: Vec<Vec<usize>> = pairs.iter().map(|p| p.0.clone()).collect();
            let b = docs.len();
            let l = docs[0].len();
            let w = self.ds.summary_width();
            let mut g = Graph::new();
            let (enc_states, mut h) = self.encode(&mut g, &docs);
            let mut inputs = vec![aibench_data::synth::BOS; b];
            let mut decoded: Vec<Vec<usize>> = vec![Vec::new(); b];
            for _ in 0..w - 1 {
                let (logits, h2) = self.decode_step(&mut g, enc_states, h, &inputs, b, l);
                h = h2;
                let preds = g.value(logits).argmax_last();
                for (bi, &p) in preds.iter().enumerate() {
                    decoded[bi].push(p);
                }
                inputs = preds;
            }
            for (bi, pair) in pairs.iter().enumerate() {
                // Reference: tokens between BOS and EOS.
                let reference: Vec<usize> = pair.1[1..]
                    .iter()
                    .take_while(|&&t| t != EOS && t != PAD)
                    .copied()
                    .collect();
                let hypothesis: Vec<usize> = decoded[bi]
                    .iter()
                    .take_while(|&&t| t != EOS && t != PAD)
                    .copied()
                    .collect();
                refs.push(reference);
                hyps.push(hypothesis);
            }
        }
        rouge_l(&refs, &hyps)
    }

    fn param_count(&self) -> usize {
        self.embed.param_count()
            + self.enc.param_count()
            + self.dec.param_count()
            + self.att_proj.param_count()
            + self.proj.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rouge_improves_with_training() {
        let mut t = TextSummarization::new(7);
        let before = t.evaluate();
        for _ in 0..8 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(
            after > before,
            "Rouge-L before {before:.1}, after {after:.1}"
        );
        assert!(after > 20.0, "Rouge-L should exceed 20, got {after:.1}");
    }
}

//! DC-AI-C1 (and MLPerf) Image Classification: mini-ResNet on synthetic
//! class-prototype images. Quality metric: held-out top-1 accuracy.

use aibench_autograd::Graph;
use aibench_data::batch::batches;
use aibench_data::metrics::accuracy;
use aibench_data::synth::ImageClassDataset;
use aibench_nn::{Mode, Module, Optimizer, Sgd};
use aibench_tensor::Rng;

use super::classify::MiniResNet;
use crate::{DataParallel, Trainer};

/// The Image Classification benchmark trainer.
#[derive(Debug)]
pub struct ImageClassification {
    net: MiniResNet,
    ds: ImageClassDataset,
    opt: Sgd,
    rng: Rng,
    batch: usize,
    eval_n: usize,
}

impl ImageClassification {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        // Dataset seed is fixed: run-to-run variation measures training
        // stochasticity (init, shuffling), not task changes.
        let ds = ImageClassDataset::with_noise(8, 1, 12, 256, 0xC1, 0.35);
        let net = MiniResNet::new(1, 8, ds.classes(), &mut rng);
        let opt = Sgd::with_momentum(net.params(), 0.08, 0.9, 1e-4);
        ImageClassification {
            net,
            ds,
            opt,
            rng,
            batch: 32,
            eval_n: 192,
        }
    }
}

impl Trainer for ImageClassification {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.net.snapshot(state, "net");
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.net.restore(state, "net")?;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            total += self.forward_backward(&idx);
            count += 1;
            self.apply_update();
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let idx: Vec<usize> = (0..self.eval_n).collect();
        let (x, y) = self.ds.test_batch(&idx);
        let mut g = Graph::new();
        let xv = g.input(x);
        let logits = self.net.forward(&mut g, xv, Mode::Eval);
        let pred = g.value(logits).argmax_last();
        accuracy(&pred, &y)
    }

    fn param_count(&self) -> usize {
        Module::param_count(&self.net)
    }
}

impl DataParallel for ImageClassification {
    fn train_len(&self) -> usize {
        self.ds.len()
    }

    fn global_batch(&self) -> usize {
        self.batch
    }

    fn data_rng(&self) -> Rng {
        self.rng.clone()
    }

    fn forward_backward(&mut self, idx: &[usize]) -> f32 {
        let (x, y) = self.ds.train_batch(idx);
        let mut g = Graph::new();
        let xv = g.input(x);
        let logits = self.net.forward(&mut g, xv, Mode::Train);
        let loss = g.softmax_cross_entropy(logits, &y, None);
        let out = g.value(loss).item();
        g.backward(loss);
        out
    }

    fn apply_update(&mut self) {
        self.opt.step();
        self.opt.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_above_chance_quickly() {
        let mut t = ImageClassification::new(1);
        let before = t.evaluate();
        for _ in 0..6 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(
            after > before.max(0.3),
            "accuracy before {before}, after {after}"
        );
    }

    #[test]
    fn loss_decreases() {
        let mut t = ImageClassification::new(2);
        let first = t.train_epoch();
        let mut last = first;
        for _ in 0..3 {
            last = t.train_epoch();
        }
        assert!(last < first, "loss {first} -> {last}");
    }
}

//! A miniature ResNet shared by the image-classification-style benchmarks.

use aibench_autograd::{Graph, Param, Var};
use aibench_nn::{BatchNorm2d, Conv2d, Linear, Mode, Module};
use aibench_tensor::Rng;

/// A small residual CNN in the structure of ResNet-50: stem convolution,
/// residual blocks with batch norm, global average pooling, and a linear
/// classifier head.
#[derive(Debug)]
pub struct MiniResNet {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    block1_a: Conv2d,
    block1_bn_a: BatchNorm2d,
    block1_b: Conv2d,
    block1_bn_b: BatchNorm2d,
    down: Conv2d,
    down_bn: BatchNorm2d,
    block2_a: Conv2d,
    block2_bn_a: BatchNorm2d,
    block2_b: Conv2d,
    block2_bn_b: BatchNorm2d,
    head: Linear,
}

impl MiniResNet {
    /// Builds the network for `c_in`-channel inputs, `width` base channels,
    /// and `classes` outputs.
    pub fn new(c_in: usize, width: usize, classes: usize, rng: &mut Rng) -> Self {
        MiniResNet {
            stem: Conv2d::new_no_bias(c_in, width, 3, 1, 1, rng),
            stem_bn: BatchNorm2d::new(width),
            block1_a: Conv2d::new_no_bias(width, width, 3, 1, 1, rng),
            block1_bn_a: BatchNorm2d::new(width),
            block1_b: Conv2d::new_no_bias(width, width, 3, 1, 1, rng),
            block1_bn_b: BatchNorm2d::new(width),
            down: Conv2d::new_no_bias(width, 2 * width, 3, 2, 1, rng),
            down_bn: BatchNorm2d::new(2 * width),
            block2_a: Conv2d::new_no_bias(2 * width, 2 * width, 3, 1, 1, rng),
            block2_bn_a: BatchNorm2d::new(2 * width),
            block2_b: Conv2d::new_no_bias(2 * width, 2 * width, 3, 1, 1, rng),
            block2_bn_b: BatchNorm2d::new(2 * width),
            head: Linear::new(2 * width, classes, rng),
        }
    }

    /// Embeds an NCHW batch into pooled features `[n, 2*width]`.
    pub fn features(&self, g: &mut Graph, x: Var, mode: Mode) -> Var {
        let x = self.stem.forward(g, x);
        let x = self.stem_bn.forward(g, x, mode);
        let x = g.relu(x);
        // Residual block at full resolution.
        let r = self.block1_a.forward(g, x);
        let r = self.block1_bn_a.forward(g, r, mode);
        let r = g.relu(r);
        let r = self.block1_b.forward(g, r);
        let r = self.block1_bn_b.forward(g, r, mode);
        let x = g.add(x, r);
        let x = g.relu(x);
        // Downsample.
        let x = self.down.forward(g, x);
        let x = self.down_bn.forward(g, x, mode);
        let x = g.relu(x);
        // Residual block at half resolution.
        let r = self.block2_a.forward(g, x);
        let r = self.block2_bn_a.forward(g, r, mode);
        let r = g.relu(r);
        let r = self.block2_b.forward(g, r);
        let r = self.block2_bn_b.forward(g, r, mode);
        let x = g.add(x, r);
        let x = g.relu(x);
        g.global_avg_pool(x)
    }

    /// Classification logits `[n, classes]`.
    pub fn forward(&self, g: &mut Graph, x: Var, mode: Mode) -> Var {
        let f = self.features(g, x, mode);
        self.head.forward(g, f)
    }

    /// Parameters of the feature extractor only (no classifier head), for
    /// trainers that embed with [`MiniResNet::features`] and would
    /// otherwise register weights their loss can never reach.
    pub fn feature_params(&self) -> Vec<Param> {
        let mut ps = Vec::new();
        for m in [
            &self.stem,
            &self.block1_a,
            &self.block1_b,
            &self.down,
            &self.block2_a,
            &self.block2_b,
        ] {
            ps.extend(m.params());
        }
        for bn in [
            &self.stem_bn,
            &self.block1_bn_a,
            &self.block1_bn_b,
            &self.down_bn,
            &self.block2_bn_a,
            &self.block2_bn_b,
        ] {
            ps.extend(bn.params());
        }
        ps
    }

    /// Parameter count of the feature extractor only.
    pub fn feature_param_count(&self) -> usize {
        self.feature_params().iter().map(|p| p.len()).sum()
    }
}

impl Module for MiniResNet {
    fn params(&self) -> Vec<Param> {
        let mut ps = self.feature_params();
        ps.extend(self.head.params());
        ps
    }
}

impl MiniResNet {
    const NORM_NAMES: [&'static str; 6] = [
        "stem_bn",
        "block1_bn_a",
        "block1_bn_b",
        "down_bn",
        "block2_bn_a",
        "block2_bn_b",
    ];

    fn norm_layers(&self) -> [&BatchNorm2d; 6] {
        [
            &self.stem_bn,
            &self.block1_bn_a,
            &self.block1_bn_b,
            &self.down_bn,
            &self.block2_bn_a,
            &self.block2_bn_b,
        ]
    }

    fn norm_layers_mut(&mut self) -> [&mut BatchNorm2d; 6] {
        [
            &mut self.stem_bn,
            &mut self.block1_bn_a,
            &mut self.block1_bn_b,
            &mut self.down_bn,
            &mut self.block2_bn_a,
            &mut self.block2_bn_b,
        ]
    }
}

impl aibench_ckpt::Snapshot for MiniResNet {
    /// Saves the six batch-norm running statistics — the only mutable state
    /// the network holds outside its trainable parameters (which travel
    /// with the optimizer's snapshot).
    fn snapshot(&self, state: &mut aibench_ckpt::State, prefix: &str) {
        use aibench_ckpt::key;
        for (name, bn) in Self::NORM_NAMES.iter().zip(self.norm_layers()) {
            bn.snapshot(state, &key(prefix, name));
        }
    }
}

impl aibench_ckpt::Restore for MiniResNet {
    fn restore(
        &mut self,
        state: &aibench_ckpt::State,
        prefix: &str,
    ) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::key;
        for (name, bn) in Self::NORM_NAMES.iter().zip(self.norm_layers_mut()) {
            bn.restore(state, &key(prefix, name))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_tensor::Tensor;

    #[test]
    fn forward_shapes() {
        let mut rng = Rng::seed_from(1);
        let net = MiniResNet::new(1, 8, 5, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[2, 1, 12, 12], &mut rng));
        let y = net.forward(&mut g, x, Mode::Train);
        assert_eq!(g.value(y).shape(), &[2, 5]);
    }

    #[test]
    fn all_params_receive_gradient() {
        let mut rng = Rng::seed_from(2);
        let net = MiniResNet::new(1, 4, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[2, 1, 8, 8], &mut rng));
        let y = net.forward(&mut g, x, Mode::Train);
        let loss = g.softmax_cross_entropy(y, &[0, 2], None);
        g.backward(loss);
        for p in net.params() {
            assert!(
                p.grad().sq_norm() > 0.0,
                "param {} got no gradient",
                p.name()
            );
        }
    }
}

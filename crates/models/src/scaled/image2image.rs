//! DC-AI-C5 Image-to-Image translation: a convolutional generator with a
//! PatchGAN-style critic and a cycle/reconstruction term, mapping the
//! outline domain to the filled domain. Quality: per-pixel accuracy
//! (paper target 0.52 on Cityscapes; the synthetic task is cleaner).

use aibench_autograd::{Graph, Var};
use aibench_data::batch::batches;
use aibench_data::metrics::per_pixel_accuracy;
use aibench_data::synth::Image2ImageDataset;
use aibench_nn::{Adam, Conv2d, Module, Optimizer};
use aibench_tensor::ops::Conv2dArgs;
use aibench_tensor::{Rng, Tensor};

use crate::Trainer;

/// The Image-to-Image benchmark trainer.
#[derive(Debug)]
pub struct ImageToImage {
    ds: Image2ImageDataset,
    gen1: Conv2d,
    gen2: Conv2d,
    up: aibench_autograd::Param,
    gen3: Conv2d,
    critic: Conv2d,
    g_opt: Adam,
    c_opt: Adam,
    rng: Rng,
    batch: usize,
    eval_n: usize,
}

impl ImageToImage {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = Image2ImageDataset::new(16, 96, 0xC5);
        // Encoder-decoder generator: downsampling gives the receptive
        // field needed to fill box interiors far from any outline pixel.
        let gen1 = Conv2d::new(1, 12, 5, 2, 2, &mut rng);
        let gen2 = Conv2d::new(12, 16, 3, 1, 1, &mut rng);
        let up = aibench_autograd::Param::new(
            "i2i.up",
            aibench_nn::kaiming_normal(&[16, 12, 2, 2], 32, &mut rng),
        );
        let gen3 = Conv2d::new(12, 1, 3, 1, 1, &mut rng);
        // 4×4 PatchGAN critic over (input, candidate) pairs.
        let critic = Conv2d::new(2, 1, 4, 4, 0, &mut rng);
        let mut gp = gen1.params();
        gp.extend(gen2.params());
        gp.push(up.clone());
        gp.extend(gen3.params());
        let g_opt = Adam::with_betas(gp, 0.004, 0.5, 0.999);
        let c_opt = Adam::with_betas(critic.params(), 0.004, 0.5, 0.999);
        ImageToImage {
            ds,
            gen1,
            gen2,
            up,
            gen3,
            critic,
            g_opt,
            c_opt,
            rng,
            batch: 16,
            eval_n: 32,
        }
    }

    fn generate(&self, g: &mut Graph, a: Var) -> Var {
        let s = self.ds.size();
        let h = self.gen1.forward(g, a);
        let h = g.relu(h);
        let h = self.gen2.forward(g, h);
        let h = g.relu(h);
        let upw = g.param(&self.up);
        let h = g.conv_transpose2d(h, upw, Conv2dArgs::new(2, 0), (s, s));
        let h = g.relu(h);
        // Logits: the reconstruction loss is BCE-with-logits, which keeps
        // gradients alive where a sigmoid+L1 pairing saturates.
        self.gen3.forward(g, h)
    }

    fn critic_logits(&self, g: &mut Graph, a: Var, b: Var) -> Var {
        let pair = g.concat(&[a, b], 1);
        self.critic.forward(g, pair)
    }
}

impl Trainer for ImageToImage {
    fn scale_lr(&mut self, factor: f32) {
        self.g_opt.scale_lr(factor);
        self.c_opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.g_opt.snapshot(state, "g_opt");
        self.c_opt.snapshot(state, "c_opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.g_opt.restore(state, "g_opt")?;
        self.c_opt.restore(state, "c_opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        let mut p = self.g_opt.params().to_vec();
        p.extend(self.c_opt.params().iter().cloned());
        p
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            let (a, b) = self.ds.batch(&idx, false);
            // Critic step: real pairs → 1, generated pairs → 0.
            {
                let mut g = Graph::new();
                let av = g.input(a.clone());
                let bv = g.input(b.clone());
                let fake_logits = self.generate(&mut g, av);
                let fake = g.sigmoid(fake_logits);
                let real_logit = self.critic_logits(&mut g, av, bv);
                let fake_logit = self.critic_logits(&mut g, av, fake);
                let rl_shape = g.value(real_logit).shape().to_vec();
                let rl = g.bce_with_logits(real_logit, &Tensor::ones(&rl_shape));
                let fl = g.bce_with_logits(fake_logit, &Tensor::zeros(&rl_shape));
                let loss = g.add(rl, fl);
                g.backward(loss);
                self.c_opt.step();
                self.c_opt.zero_grad();
                self.g_opt.zero_grad();
            }
            // Generator step: fool the critic + BCE reconstruction.
            let mut g = Graph::new();
            let av = g.input(a);
            let fake_logits = self.generate(&mut g, av);
            let fake = g.sigmoid(fake_logits);
            let fake_logit = self.critic_logits(&mut g, av, fake);
            let fl_shape = g.value(fake_logit).shape().to_vec();
            let adv = g.bce_with_logits(fake_logit, &Tensor::ones(&fl_shape));
            let rec = g.bce_with_logits(fake_logits, &b);
            let weighted_rec = g.scale(rec, 10.0);
            let loss = g.add(adv, weighted_rec);
            total += g.value(loss).item();
            count += 1;
            g.backward(loss);
            self.g_opt.step();
            self.g_opt.zero_grad();
            self.c_opt.zero_grad();
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let idx: Vec<usize> = (0..self.eval_n).collect();
        let (a, b) = self.ds.batch(&idx, true);
        let mut g = Graph::new();
        let av = g.input(a);
        let logits = self.generate(&mut g, av);
        let probs = g.value(logits).map(|v| 1.0 / (1.0 + (-v).exp()));
        per_pixel_accuracy(&probs, &b)
    }

    fn param_count(&self) -> usize {
        self.gen1.param_count()
            + self.gen2.param_count()
            + self.up.len()
            + self.gen3.param_count()
            + self.critic.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_accuracy_rises() {
        let mut t = ImageToImage::new(6);
        let before = t.evaluate();
        for _ in 0..5 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(
            after > before.max(0.6),
            "pixel acc before {before:.3}, after {after:.3}"
        );
    }
}

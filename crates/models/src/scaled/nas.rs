//! DC-AI-C17 Neural Architecture Search: ENAS-style parameter sharing —
//! a learned controller samples child recurrent-cell architectures, the
//! shared child weights train on the sampled architecture, and the
//! controller updates by REINFORCE on validation perplexity. Quality:
//! perplexity of the controller's argmax architecture (lower is better;
//! the paper targets 100 on PTB — the synthetic stream's floor is ~3).

use aibench_autograd::{Graph, Param, Var};
use aibench_data::metrics::perplexity;
use aibench_data::synth::CharLmDataset;
use aibench_nn::{Adam, Embedding, Linear, Module, Optimizer, RnnCell};
use aibench_tensor::{ops::softmax_last, Rng, Tensor};

use crate::Trainer;

/// Architecture decisions: activation for each of two cell slots plus
/// whether to add a skip connection.
const ACTIVATIONS: usize = 3; // tanh, relu, sigmoid
const DECISIONS: usize = 3;

/// A sampled child architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Arch {
    act1: usize,
    act2: usize,
    skip: bool,
}

impl Arch {
    fn choices(&self) -> [usize; DECISIONS] {
        [self.act1, self.act2, usize::from(self.skip)]
    }
}

/// The Neural Architecture Search benchmark trainer.
#[derive(Debug)]
pub struct NeuralArchitectureSearch {
    ds: CharLmDataset,
    // Shared child weights.
    embed: Embedding,
    cell: RnnCell,
    mix: Linear,
    proj: Linear,
    child_opt: Adam,
    // Controller policy: logits per decision.
    controller: Param,
    ctrl_opt: Adam,
    rng: Rng,
    baseline: f32,
}

impl NeuralArchitectureSearch {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = CharLmDataset::new(8, 16, 128, 0xC17);
        let d = 16;
        let embed = Embedding::new(ds.vocab_size(), d, &mut rng);
        let cell = RnnCell::new(d, d, &mut rng);
        let mix = Linear::new(d, d, &mut rng);
        let proj = Linear::new(d, ds.vocab_size(), &mut rng);
        let mut child_params = embed.params();
        child_params.extend(cell.params());
        child_params.extend(mix.params());
        child_params.extend(proj.params());
        let child_opt = Adam::new(child_params, 0.01);
        let controller = Param::new("nas.controller", Tensor::zeros(&[DECISIONS, ACTIVATIONS]));
        let ctrl_opt = Adam::new(vec![controller.clone()], 0.05);
        NeuralArchitectureSearch {
            ds,
            embed,
            cell,
            mix,
            proj,
            child_opt,
            controller,
            ctrl_opt,
            rng,
            baseline: 0.0,
        }
    }

    fn apply_act(g: &mut Graph, x: Var, which: usize) -> Var {
        match which {
            0 => g.tanh(x),
            1 => g.relu(x),
            _ => g.sigmoid(x),
        }
    }

    /// Child forward over a batch of sequences under architecture `arch`;
    /// returns `(mean CE loss Var, graph)` for the caller to drive.
    fn child_loss(&self, g: &mut Graph, seqs: &[Vec<usize>], arch: Arch) -> Var {
        let b = seqs.len();
        let steps = seqs[0].len();
        let mut h = self.cell.zero_state(g, b);
        let mut step_logits = Vec::new();
        let mut labels = Vec::new();
        for t in 0..steps - 1 {
            let ids: Vec<usize> = seqs.iter().map(|s| s[t]).collect();
            let x = self.embed.forward(g, &ids);
            let raw = self.cell.step(g, x, h);
            let a1 = Self::apply_act(g, raw, arch.act1);
            let mixed = self.mix.forward(g, a1);
            let a2 = Self::apply_act(g, mixed, arch.act2);
            h = if arch.skip {
                // Averaged residual: a raw sum grows without bound over the
                // unrolled steps and destabilizes the shared weights.
                let sum = g.add(a2, h);
                g.scale(sum, 0.5)
            } else {
                a2
            };
            step_logits.push(self.proj.forward(g, h));
            labels.extend(seqs.iter().map(|s| s[t + 1]));
        }
        let all = g.concat(&step_logits, 0);
        g.softmax_cross_entropy(all, &labels, None)
    }

    fn sample_arch(&mut self) -> Arch {
        let probs = softmax_last(&self.controller.value());
        let mut pick = |row: usize, options: usize| -> usize {
            let r = self.rng.uniform();
            let mut acc = 0.0;
            for o in 0..options {
                acc += probs.data()[row * ACTIVATIONS + o];
                if r < acc {
                    return o;
                }
            }
            options - 1
        };
        Arch {
            act1: pick(0, ACTIVATIONS),
            act2: pick(1, ACTIVATIONS),
            skip: pick(2, 2) == 1,
        }
    }

    fn argmax_arch(&self) -> Arch {
        let v = self.controller.value().clone();
        let row = |r: usize, n: usize| -> usize {
            let mut best = 0;
            for o in 1..n {
                if v.data()[r * ACTIVATIONS + o] > v.data()[r * ACTIVATIONS + best] {
                    best = o;
                }
            }
            best
        };
        Arch {
            act1: row(0, ACTIVATIONS),
            act2: row(1, ACTIVATIONS),
            skip: row(2, 2) == 1,
        }
    }

    fn validation_nll(&mut self, arch: Arch, n: usize) -> f32 {
        let seqs: Vec<Vec<usize>> = (0..n).map(|i| self.ds.sequence(i, true)).collect();
        let mut g = Graph::new();
        let loss = self.child_loss(&mut g, &seqs, arch);
        g.value(loss).item()
    }
}

impl Trainer for NeuralArchitectureSearch {
    fn scale_lr(&mut self, factor: f32) {
        self.child_opt.scale_lr(factor);
        self.ctrl_opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.child_opt.snapshot(state, "child_opt");
        self.ctrl_opt.snapshot(state, "ctrl_opt");
        state.put_f32("baseline", self.baseline);
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.child_opt.restore(state, "child_opt")?;
        self.ctrl_opt.restore(state, "ctrl_opt")?;
        self.baseline = state.f32("baseline")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        let mut p = self.child_opt.params().to_vec();
        p.extend(self.ctrl_opt.params().iter().cloned());
        p
    }

    fn train_epoch(&mut self) -> f32 {
        // Phase 1: train shared child weights on sampled architectures.
        let mut child_loss_total = 0.0;
        let mut batches_done = 0;
        // One sampled architecture per epoch: with a tiny shared cell,
        // per-batch resampling makes gradients fight each other.
        let arch = self.sample_arch();
        for start in (0..self.ds.len()).step_by(16) {
            let idx: Vec<usize> = (start..(start + 16).min(self.ds.len())).collect();
            let seqs: Vec<Vec<usize>> = idx.iter().map(|&i| self.ds.sequence(i, false)).collect();
            let mut g = Graph::new();
            let loss = self.child_loss(&mut g, &seqs, arch);
            child_loss_total += g.value(loss).item();
            batches_done += 1;
            g.backward(loss);
            self.child_opt.step();
            self.child_opt.zero_grad();
        }
        // Phase 2: REINFORCE the controller with reward = -validation NLL.
        let k = 6;
        let samples: Vec<Arch> = (0..k).map(|_| self.sample_arch()).collect();
        let rewards: Vec<f32> = samples
            .iter()
            .map(|&a| -self.validation_nll(a, 16))
            .collect();
        let mean_r: f32 = rewards.iter().sum::<f32>() / k as f32;
        self.baseline = 0.7 * self.baseline + 0.3 * mean_r;
        let mut g = Graph::new();
        let logits = g.param(&self.controller);
        let logp = g.log_softmax(logits);
        // Mask-weighted policy-gradient surrogate: for each sample the
        // advantage multiplies the log-probability of its choices.
        let mut weight = Tensor::zeros(&[DECISIONS, ACTIVATIONS]);
        for (arch, &r) in samples.iter().zip(&rewards) {
            let adv = r - self.baseline;
            for (d, &c) in arch.choices().iter().enumerate() {
                weight.data_mut()[d * ACTIVATIONS + c] -= adv / k as f32;
            }
        }
        let wv = g.input(weight);
        let weighted = g.mul(logp, wv);
        let loss = g.sum(weighted);
        g.backward(loss);
        self.ctrl_opt.step();
        self.ctrl_opt.zero_grad();
        child_loss_total / batches_done.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let arch = self.argmax_arch();
        let nll = self.validation_nll(arch, 32);
        perplexity(nll as f64)
    }

    fn param_count(&self) -> usize {
        self.embed.param_count()
            + self.cell.param_count()
            + self.mix.param_count()
            + self.proj.param_count()
            + self.controller.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perplexity_approaches_stream_floor() {
        let mut t = NeuralArchitectureSearch::new(11);
        let before = t.evaluate();
        for _ in 0..16 {
            t.train_epoch();
        }
        let after = t.evaluate();
        // Vocabulary is 8; an untrained model sits near 8, the floor is ~3.
        assert!(
            after < before.min(7.5),
            "ppl before {before:.2}, after {after:.2}"
        );
    }

    #[test]
    fn controller_probabilities_shift() {
        let mut t = NeuralArchitectureSearch::new(12);
        let before = t.controller.value().clone();
        for _ in 0..4 {
            t.train_epoch();
        }
        let after = t.controller.value().clone();
        assert!(
            before.max_abs_diff(&after) > 1e-4,
            "controller never updated"
        );
    }
}

//! DC-AI-C11 Video Prediction: a convolutional next-frame predictor over
//! context frames (motion-focused predictive model). Quality: mean squared
//! error on held-out sequences (lower is better; the paper's target is 72
//! on 8-bit pixels — ours is reported on unit-range pixels).

use aibench_autograd::Graph;
use aibench_data::batch::batches;
use aibench_data::synth::VideoDataset;
use aibench_nn::{Adam, Conv2d, Module, Optimizer};
use aibench_tensor::Rng;

use crate::Trainer;

/// The Video Prediction benchmark trainer.
#[derive(Debug)]
pub struct VideoPrediction {
    ds: VideoDataset,
    conv1: Conv2d,
    conv2: Conv2d,
    conv3: Conv2d,
    out: Conv2d,
    opt: Adam,
    rng: Rng,
    batch: usize,
    eval_n: usize,
}

impl VideoPrediction {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = VideoDataset::new(12, 3, 96, 0xC11);
        let conv1 = Conv2d::new(ds.context(), 20, 5, 1, 2, &mut rng);
        let conv2 = Conv2d::new(20, 20, 3, 1, 1, &mut rng);
        let conv3 = Conv2d::new(20, 20, 3, 1, 1, &mut rng);
        let out = Conv2d::new(20, 1, 3, 1, 1, &mut rng);
        let mut params = conv1.params();
        params.extend(conv2.params());
        params.extend(conv3.params());
        params.extend(out.params());
        let opt = Adam::new(params, 0.004);
        VideoPrediction {
            ds,
            conv1,
            conv2,
            conv3,
            out,
            opt,
            rng,
            batch: 16,
            eval_n: 32,
        }
    }

    fn predict(&self, g: &mut Graph, x: aibench_tensor::Tensor) -> aibench_autograd::Var {
        let xv = g.input(x);
        let h = self.conv1.forward(g, xv);
        let h = g.relu(h);
        let h = self.conv2.forward(g, h);
        let h = g.relu(h);
        let h = self.conv3.forward(g, h);
        let h = g.relu(h);
        let y = self.out.forward(g, h);
        g.sigmoid(y)
    }
}

impl Trainer for VideoPrediction {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            let (x, y) = self.ds.batch(&idx, false);
            let mut g = Graph::new();
            let pred = self.predict(&mut g, x);
            let loss = g.mse_loss(pred, &y);
            total += g.value(loss).item();
            count += 1;
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let idx: Vec<usize> = (0..self.eval_n).collect();
        let (x, y) = self.ds.batch(&idx, true);
        let mut g = Graph::new();
        let pred = self.predict(&mut g, x);
        let diff = g.value(pred).sub(&y);
        (diff.sq_norm() / diff.len() as f32) as f64
    }

    fn param_count(&self) -> usize {
        self.conv1.param_count()
            + self.conv2.param_count()
            + self.conv3.param_count()
            + self.out.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_falls_with_training() {
        let mut t = VideoPrediction::new(8);
        let before = t.evaluate();
        for _ in 0..5 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(after < before, "MSE before {before:.4}, after {after:.4}");
    }
}

//! DC-AI-C8 3D Face Recognition: an RGB-D (four-channel) residual CNN
//! classifying identities, the benchmark the paper measures as the most
//! run-to-run variable of the suite (38.46%). Quality: held-out accuracy.

use aibench_autograd::Graph;
use aibench_data::batch::batches;
use aibench_data::metrics::accuracy;
use aibench_data::synth::FaceDepthDataset;
use aibench_nn::{Mode, Module, Optimizer, Sgd};
use aibench_tensor::Rng;

use super::classify::MiniResNet;
use crate::Trainer;

/// The 3D Face Recognition benchmark trainer.
#[derive(Debug)]
pub struct Face3dRecognition {
    net: MiniResNet,
    ds: FaceDepthDataset,
    opt: Sgd,
    rng: Rng,
    batch: usize,
    eval_n: usize,
}

impl Face3dRecognition {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = FaceDepthDataset::new(6, 10, 120, 0xC8);
        let net = MiniResNet::new(4, 6, ds.identities(), &mut rng);
        // A deliberately aggressive learning rate: the paper measures this
        // benchmark's convergence as wildly variable, and the scaled
        // surrogate reproduces that through a noisy loss landscape.
        let opt = Sgd::with_momentum(net.params(), 0.12, 0.9, 0.0);
        Face3dRecognition {
            net,
            ds,
            opt,
            rng,
            batch: 20,
            eval_n: 60,
        }
    }
}

impl Trainer for Face3dRecognition {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.net.snapshot(state, "net");
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.net.restore(state, "net")?;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            let (x, y) = self.ds.train_batch(&idx);
            let mut g = Graph::new();
            let xv = g.input(x);
            let logits = self.net.forward(&mut g, xv, Mode::Train);
            let loss = g.softmax_cross_entropy(logits, &y, None);
            total += g.value(loss).item();
            count += 1;
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let idx: Vec<usize> = (0..self.eval_n).collect();
        let (x, y) = self.ds.test_batch(&idx);
        let mut g = Graph::new();
        let xv = g.input(x);
        let logits = self.net.forward(&mut g, xv, Mode::Eval);
        accuracy(&g.value(logits).argmax_last(), &y)
    }

    fn param_count(&self) -> usize {
        Module::param_count(&self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_identities_above_chance() {
        let mut t = Face3dRecognition::new(9);
        for _ in 0..14 {
            t.train_epoch();
        }
        let acc = t.evaluate();
        assert!(
            acc > 1.0 / 6.0 + 0.08,
            "accuracy {acc:.3} barely above chance"
        );
    }
}

//! DC-AI-C12 Image Compression: a convolutional autoencoder with a tanh
//! bottleneck (the differentiable surrogate of the paper's binarizer),
//! reconstructing ImageNet-like patches. Quality: MS-SSIM (target 0.99).

use aibench_autograd::Graph;
use aibench_data::batch::batches;
use aibench_data::metrics::ms_ssim;
use aibench_data::synth::ImageClassDataset;
use aibench_nn::{Adam, Conv2d, Module, Optimizer};
use aibench_tensor::ops::Conv2dArgs;
use aibench_tensor::{Rng, Tensor};

use crate::Trainer;

/// The Image Compression benchmark trainer.
#[derive(Debug)]
pub struct ImageCompression {
    ds: ImageClassDataset,
    enc1: Conv2d,
    enc2: Conv2d,
    dec_w1: aibench_autograd::Param,
    dec_w2: aibench_autograd::Param,
    opt: Adam,
    rng: Rng,
    size: usize,
    batch: usize,
    eval_n: usize,
}

impl ImageCompression {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        // Same image distribution as Image Classification (the paper uses
        // ImageNet for both), normalized into [0, 1] at batch time.
        let ds = ImageClassDataset::with_noise(6, 1, 16, 96, 0xC12, 0.3);
        let enc1 = Conv2d::new(1, 12, 3, 2, 1, &mut rng);
        let enc2 = Conv2d::new(12, 6, 3, 2, 1, &mut rng);
        // Transposed-conv decoder weights ([c_in, c_out, k, k]).
        let dec_w1 = aibench_autograd::Param::new(
            "comp.dec1",
            aibench_nn::kaiming_normal(&[6, 12, 2, 2], 24, &mut rng),
        );
        let dec_w2 = aibench_autograd::Param::new(
            "comp.dec2",
            aibench_nn::kaiming_normal(&[12, 1, 2, 2], 48, &mut rng),
        );
        let mut params = enc1.params();
        params.extend(enc2.params());
        params.push(dec_w1.clone());
        params.push(dec_w2.clone());
        let opt = Adam::new(params, 0.01);
        ImageCompression {
            ds,
            enc1,
            enc2,
            dec_w1,
            dec_w2,
            opt,
            rng,
            size: 16,
            batch: 16,
            eval_n: 24,
        }
    }

    fn normalize(x: &Tensor) -> Tensor {
        // Squash the smooth-image distribution into [0, 1].
        x.map(|v| 1.0 / (1.0 + (-1.5 * v).exp()))
    }

    fn reconstruct(&self, g: &mut Graph, x: Tensor) -> aibench_autograd::Var {
        let s = self.size;
        let xv = g.input(x);
        let h = self.enc1.forward(g, xv);
        let h = g.relu(h);
        let h = self.enc2.forward(g, h);
        // Bottleneck "binarizer": tanh squashing toward ±1.
        let code = g.tanh(h);
        let w1 = g.param(&self.dec_w1);
        let h = g.conv_transpose2d(code, w1, Conv2dArgs::new(2, 0), (s / 2, s / 2));
        let h = g.relu(h);
        let w2 = g.param(&self.dec_w2);
        let y = g.conv_transpose2d(h, w2, Conv2dArgs::new(2, 0), (s, s));
        g.sigmoid(y)
    }
}

impl Trainer for ImageCompression {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            let (x, _) = self.ds.train_batch(&idx);
            let x = Self::normalize(&x);
            let mut g = Graph::new();
            let recon = self.reconstruct(&mut g, x.clone());
            let loss = g.mse_loss(recon, &x);
            total += g.value(loss).item();
            count += 1;
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let idx: Vec<usize> = (0..self.eval_n).collect();
        let (x, _) = self.ds.test_batch(&idx);
        let x = Self::normalize(&x);
        let mut g = Graph::new();
        let recon = self.reconstruct(&mut g, x.clone());
        let rv = g.value(recon);
        let s = self.size;
        let per = s * s;
        let mut total = 0.0;
        for i in 0..idx.len() {
            let orig = Tensor::from_vec(x.data()[i * per..(i + 1) * per].to_vec(), &[s, s]);
            let rec = Tensor::from_vec(rv.data()[i * per..(i + 1) * per].to_vec(), &[s, s]);
            total += ms_ssim(&orig, &rec, 2);
        }
        total / idx.len() as f64
    }

    fn param_count(&self) -> usize {
        self.enc1.param_count() + self.enc2.param_count() + self.dec_w1.len() + self.dec_w2.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_ssim_rises_with_training() {
        let mut t = ImageCompression::new(4);
        let before = t.evaluate();
        for _ in 0..6 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(
            after > before,
            "MS-SSIM before {before:.3}, after {after:.3}"
        );
        assert!(after > 0.5, "MS-SSIM should exceed 0.5, got {after:.3}");
    }
}

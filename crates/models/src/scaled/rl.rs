//! MLPerf Reinforcement Learning: a policy-gradient agent on a gridworld
//! (the minigo substitute — self-contained, no external game engine).
//! Quality: success rate of reaching the goal within a tight step budget.
//! The budget barely covers the worst-case shortest path, so action slip
//! makes a perfect score unattainable — mirroring the paper's minigo runs,
//! which trained for 96+ hours without reaching their 40% pro-move target.

use aibench_autograd::Graph;
use aibench_nn::{Adam, Linear, Module, Optimizer};
use aibench_tensor::{Rng, Tensor};

use crate::Trainer;

const GRID: usize = 6;
const MAX_STEPS: usize = 11;
/// Probability an action slips to a random direction (environment noise).
const SLIP: f32 = 0.12;
const ACTIONS: usize = 4; // up, down, left, right

/// The Reinforcement Learning benchmark trainer.
#[derive(Debug)]
pub struct ReinforcementLearning {
    policy1: Linear,
    policy2: Linear,
    opt: Adam,
    rng: Rng,
    episodes_per_epoch: usize,
    baseline: f32,
}

impl ReinforcementLearning {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let policy1 = Linear::new(GRID * GRID, 32, &mut rng);
        let policy2 = Linear::new(32, ACTIONS, &mut rng);
        let mut params = policy1.params();
        params.extend(policy2.params());
        let opt = Adam::new(params, 0.01);
        ReinforcementLearning {
            policy1,
            policy2,
            opt,
            rng,
            episodes_per_epoch: 32,
            baseline: 0.0,
        }
    }

    fn state_tensor(pos: (usize, usize)) -> Tensor {
        let mut t = Tensor::zeros(&[1, GRID * GRID]);
        t.data_mut()[pos.0 * GRID + pos.1] = 1.0;
        t
    }

    fn step(pos: (usize, usize), action: usize) -> (usize, usize) {
        let (r, c) = pos;
        match action {
            0 => (r.saturating_sub(1), c),
            1 => ((r + 1).min(GRID - 1), c),
            2 => (r, c.saturating_sub(1)),
            _ => (r, (c + 1).min(GRID - 1)),
        }
    }

    /// Plays one episode; returns `(states, actions, reward)`.
    fn rollout(&mut self, greedy: bool) -> (Vec<(usize, usize)>, Vec<usize>, f32) {
        let goal = (GRID - 1, GRID - 1);
        let mut pos = (self.rng.below(GRID), self.rng.below(GRID / 2));
        let mut states = Vec::new();
        let mut actions = Vec::new();
        for t in 0..MAX_STEPS {
            if pos == goal {
                // Earlier arrivals earn more.
                return (
                    states,
                    actions,
                    1.0 + 0.5 * (MAX_STEPS - t) as f32 / MAX_STEPS as f32,
                );
            }
            states.push(pos);
            let mut g = Graph::new();
            let s = g.input(Self::state_tensor(pos));
            let h = self.policy1.forward(&mut g, s);
            let h = g.relu(h);
            let logits = self.policy2.forward(&mut g, h);
            let sm = g.softmax(logits);
            let probs = g.value(sm).data().to_vec();
            let action = if greedy {
                probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            } else {
                let r = self.rng.uniform();
                let mut acc = 0.0;
                let mut choice = ACTIONS - 1;
                for (i, &p) in probs.iter().enumerate() {
                    acc += p;
                    if r < acc {
                        choice = i;
                        break;
                    }
                }
                choice
            };
            actions.push(action);
            let effective = if self.rng.bernoulli(SLIP) {
                self.rng.below(ACTIONS)
            } else {
                action
            };
            pos = Self::step(pos, effective);
        }
        let reached = f32::from(u8::from(pos == goal));
        (states, actions, reached)
    }
}

impl Trainer for ReinforcementLearning {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        state.put_f32("baseline", self.baseline);
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.baseline = state.f32("baseline")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total_reward = 0.0;
        for _ in 0..self.episodes_per_epoch {
            let (states, actions, reward) = self.rollout(false);
            total_reward += reward;
            if states.is_empty() {
                continue;
            }
            let adv = reward - self.baseline;
            self.baseline = 0.95 * self.baseline + 0.05 * reward;
            // REINFORCE: maximize adv * log pi(a|s) over the episode.
            let mut g = Graph::new();
            let mut rows = Tensor::zeros(&[states.len(), GRID * GRID]);
            for (i, &(r, c)) in states.iter().enumerate() {
                rows.data_mut()[i * GRID * GRID + r * GRID + c] = 1.0;
            }
            let s = g.input(rows);
            let h = self.policy1.forward(&mut g, s);
            let h = g.relu(h);
            let logits = self.policy2.forward(&mut g, h);
            let logp = g.log_softmax(logits);
            let mut mask = Tensor::zeros(&[states.len(), ACTIONS]);
            for (i, &a) in actions.iter().enumerate() {
                mask.data_mut()[i * ACTIONS + a] = -adv / states.len() as f32;
            }
            let mv = g.input(mask);
            let weighted = g.mul(logp, mv);
            let loss = g.sum(weighted);
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        // Report negative mean reward as a "loss" so lower is better.
        -(total_reward / self.episodes_per_epoch as f32)
    }

    fn evaluate(&mut self) -> f64 {
        let episodes = 64;
        let mut successes = 0;
        for _ in 0..episodes {
            let (_, _, reward) = self.rollout(true);
            if reward > 0.5 {
                successes += 1;
            }
        }
        successes as f64 / episodes as f64
    }

    fn param_count(&self) -> usize {
        self.policy1.param_count() + self.policy2.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate_improves() {
        let mut t = ReinforcementLearning::new(13);
        let before = t.evaluate();
        for _ in 0..20 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(
            after >= before,
            "success before {before:.2}, after {after:.2}"
        );
        assert!(
            after > 0.3,
            "agent never learned to reach the goal: {after:.2}"
        );
    }
}

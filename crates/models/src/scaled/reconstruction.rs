//! DC-AI-C13 3D Object Reconstruction: convolutional encoder over the
//! silhouette view, fully-connected volume decoder over the voxel grid
//! (perspective-transformer-net structure). Quality: average voxel IoU
//! (paper target 45.83%).

use aibench_autograd::Graph;
use aibench_data::batch::batches;
use aibench_data::metrics::voxel_iou;
use aibench_data::synth::VoxelDataset;
use aibench_nn::{Adam, Conv2d, Linear, Module, Optimizer};
use aibench_tensor::{Rng, Tensor};

use crate::Trainer;

/// The 3D Object Reconstruction benchmark trainer.
#[derive(Debug)]
pub struct ObjectReconstruction3d {
    ds: VoxelDataset,
    conv1: Conv2d,
    conv2: Conv2d,
    fc: Linear,
    decoder: Linear,
    opt: Adam,
    rng: Rng,
    batch: usize,
    eval_n: usize,
}

impl ObjectReconstruction3d {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = VoxelDataset::new(8, 96, 0xC13);
        let g = ds.grid();
        let conv1 = Conv2d::new(1, 8, 3, 2, 1, &mut rng);
        let conv2 = Conv2d::new(8, 16, 3, 2, 1, &mut rng);
        let feat = 16 * (g / 4) * (g / 4);
        let fc = Linear::new(feat, 64, &mut rng);
        let decoder = Linear::new(64, g * g * g, &mut rng);
        let mut params = conv1.params();
        params.extend(conv2.params());
        params.extend(fc.params());
        params.extend(decoder.params());
        let opt = Adam::new(params, 0.005);
        ObjectReconstruction3d {
            ds,
            conv1,
            conv2,
            fc,
            decoder,
            opt,
            rng,
            batch: 16,
            eval_n: 24,
        }
    }

    fn logits(&self, g: &mut Graph, x: Tensor) -> aibench_autograd::Var {
        let n = x.shape()[0];
        let xv = g.input(x);
        let h = self.conv1.forward(g, xv);
        let h = g.relu(h);
        let h = self.conv2.forward(g, h);
        let h = g.relu(h);
        let shape = g.value(h).shape().to_vec();
        let flat = g.reshape(h, &[n, shape[1] * shape[2] * shape[3]]);
        let h = self.fc.forward(g, flat);
        let h = g.relu(h);
        self.decoder.forward(g, h)
    }
}

impl Trainer for ObjectReconstruction3d {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        let mut total = 0.0;
        let mut count = 0;
        for idx in batches(self.ds.len(), self.batch, &mut self.rng) {
            let (x, vox) = self.ds.batch(&idx, false);
            let mut g = Graph::new();
            let logits = self.logits(&mut g, x);
            let loss = g.bce_with_logits(logits, &vox);
            total += g.value(loss).item();
            count += 1;
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let idx: Vec<usize> = (0..self.eval_n).collect();
        let (x, vox) = self.ds.batch(&idx, true);
        let grid = self.ds.grid();
        let per = grid * grid * grid;
        let mut g = Graph::new();
        let logits = self.logits(&mut g, x);
        let probs = g.value(logits).map(|v| 1.0 / (1.0 + (-v).exp()));
        let mut total = 0.0;
        for i in 0..idx.len() {
            let p = Tensor::from_vec(probs.data()[i * per..(i + 1) * per].to_vec(), &[per]);
            let t = Tensor::from_vec(vox.data()[i * per..(i + 1) * per].to_vec(), &[per]);
            total += voxel_iou(&p, &t);
        }
        total / idx.len() as f64
    }

    fn param_count(&self) -> usize {
        self.conv1.param_count()
            + self.conv2.param_count()
            + self.fc.param_count()
            + self.decoder.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_rises_with_training() {
        let mut t = ObjectReconstruction3d::new(5);
        let before = t.evaluate();
        for _ in 0..6 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(after > before, "IoU before {before:.3}, after {after:.3}");
        assert!(after > 0.2, "IoU should exceed 0.2, got {after:.3}");
    }
}

//! DC-AI-C10 (and MLPerf) Recommendation: Neural Collaborative Filtering
//! on synthetic MovieLens-like implicit feedback. Quality: HR@10 in the
//! leave-one-out protocol.

use aibench_autograd::Graph;
use aibench_data::metrics::hit_rate_at_k;
use aibench_data::synth::RecommendationDataset;
use aibench_nn::{Adam, Embedding, Linear, Module, Optimizer};
use aibench_tensor::{Rng, Tensor};

use crate::Trainer;

/// The Recommendation benchmark trainer (NCF: user/item embeddings feeding
/// an MLP scored with a sigmoid).
#[derive(Debug)]
pub struct Recommendation {
    ds: RecommendationDataset,
    user_emb: Embedding,
    item_emb: Embedding,
    fc1: Linear,
    fc2: Linear,
    out: Linear,
    opt: Adam,
    rng: Rng,
}

impl Recommendation {
    /// Builds the benchmark with the given training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let ds = RecommendationDataset::new(24, 60, 4, 6, 0xC10);
        let dim = 8;
        let user_emb = Embedding::new(ds.users(), dim, &mut rng);
        let item_emb = Embedding::new(ds.items(), dim, &mut rng);
        let fc1 = Linear::new(2 * dim, 32, &mut rng);
        let fc2 = Linear::new(32, 16, &mut rng);
        let out = Linear::new(16, 1, &mut rng);
        let mut params = user_emb.params();
        params.extend(item_emb.params());
        params.extend(fc1.params());
        params.extend(fc2.params());
        params.extend(out.params());
        let opt = Adam::new(params, 0.01);
        Recommendation {
            ds,
            user_emb,
            item_emb,
            fc1,
            fc2,
            out,
            opt,
            rng,
        }
    }

    fn score_batch(
        &self,
        g: &mut Graph,
        users: &[usize],
        items: &[usize],
    ) -> aibench_autograd::Var {
        let ue = self.user_emb.forward(g, users);
        let ie = self.item_emb.forward(g, items);
        let x = g.concat(&[ue, ie], 1);
        let h = self.fc1.forward(g, x);
        let h = g.relu(h);
        let h = self.fc2.forward(g, h);
        let h = g.relu(h);
        let s = self.out.forward(g, h);
        g.reshape(s, &[users.len()])
    }
}

impl Trainer for Recommendation {
    fn scale_lr(&mut self, factor: f32) {
        self.opt.scale_lr(factor);
    }

    fn save_state(&self, state: &mut aibench_ckpt::State) {
        use aibench_ckpt::Snapshot as _;
        self.opt.snapshot(state, "opt");
        self.rng.snapshot(state, "rng");
    }

    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError> {
        use aibench_ckpt::Restore as _;
        self.opt.restore(state, "opt")?;
        self.rng.restore(state, "rng")
    }

    fn params(&self) -> Vec<aibench_autograd::Param> {
        self.opt.params().to_vec()
    }

    fn train_epoch(&mut self) -> f32 {
        // One positive plus four sampled negatives per interaction (the NCF
        // recipe), shuffled into mini-batches.
        let mut examples: Vec<(usize, usize, f32)> = Vec::new();
        for (u, i) in self.ds.train_pairs() {
            examples.push((u, i, 1.0));
            for _ in 0..4 {
                examples.push((u, self.ds.sample_negative(u, &mut self.rng), 0.0));
            }
        }
        self.rng.shuffle(&mut examples);
        let mut total = 0.0;
        let mut count = 0;
        for chunk in examples.chunks(64) {
            let users: Vec<usize> = chunk.iter().map(|e| e.0).collect();
            let items: Vec<usize> = chunk.iter().map(|e| e.1).collect();
            let labels = Tensor::from_vec(chunk.iter().map(|e| e.2).collect(), &[chunk.len()]);
            let mut g = Graph::new();
            let logits = self.score_batch(&mut g, &users, &items);
            let loss = g.bce_with_logits(logits, &labels);
            total += g.value(loss).item();
            count += 1;
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
        }
        total / count.max(1) as f32
    }

    fn evaluate(&mut self) -> f64 {
        let mut rankings = Vec::with_capacity(self.ds.users());
        let mut relevant = Vec::with_capacity(self.ds.users());
        for u in 0..self.ds.users() {
            let candidates = self.ds.eval_candidates(u).to_vec();
            let users = vec![u; candidates.len()];
            let mut g = Graph::new();
            let scores = self.score_batch(&mut g, &users, &candidates);
            let sv = g.value(scores).data().to_vec();
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by(|&a, &b| {
                sv[b]
                    .partial_cmp(&sv[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            rankings.push(order.iter().map(|&i| candidates[i]).collect::<Vec<usize>>());
            relevant.push(self.ds.held_out(u));
        }
        hit_rate_at_k(&rankings, &relevant, 10)
    }

    fn param_count(&self) -> usize {
        self.user_emb.param_count()
            + self.item_emb.param_count()
            + self.fc1.param_count()
            + self.fc2.param_count()
            + self.out.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hr_improves_with_training() {
        let mut t = Recommendation::new(7);
        let before = t.evaluate();
        for _ in 0..6 {
            t.train_epoch();
        }
        let after = t.evaluate();
        assert!(
            after > before.max(0.15),
            "HR@10 before {before:.3}, after {after:.3}"
        );
    }
}

//! Full-scale model specifications: plain-data layer graphs at the paper's
//! scale, consumed by the FLOPs counter and the GPU simulator.

/// Recurrent cell family (determines the gate count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RnnKind {
    /// Vanilla tanh recurrence (1 gate).
    Tanh,
    /// Gated recurrent unit (3 gates).
    Gru,
    /// Long short-term memory (4 gates).
    Lstm,
}

impl RnnKind {
    /// Number of gate blocks (each `d_in×d_h + d_h×d_h + d_h` parameters).
    pub fn gates(self) -> usize {
        match self {
            RnnKind::Tanh => 1,
            RnnKind::Gru => 3,
            RnnKind::Lstm => 4,
        }
    }
}

/// One layer of a full-scale model, with enough geometry to count
/// parameters and forward FLOPs and to lower onto simulated GPU kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerKind {
    /// 2-D convolution producing `h_out`×`w_out` maps.
    Conv2d {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Square kernel edge.
        k: usize,
        /// Output height.
        h_out: usize,
        /// Output width.
        w_out: usize,
    },
    /// Transposed convolution (counted with the same arithmetic as the
    /// convolution it transposes, per OpCounter convention).
    ConvTranspose2d {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Square kernel edge.
        k: usize,
        /// Output height.
        h_out: usize,
        /// Output width.
        w_out: usize,
    },
    /// Fully-connected layer.
    Linear {
        /// Input features.
        d_in: usize,
        /// Output features.
        d_out: usize,
    },
    /// 2-D batch normalization over `c` maps of `h`×`w`.
    BatchNorm2d {
        /// Channels.
        c: usize,
        /// Map height.
        h: usize,
        /// Map width.
        w: usize,
    },
    /// Layer normalization over `rows` rows of width `d`.
    LayerNorm {
        /// Row count.
        rows: usize,
        /// Normalized width.
        d: usize,
    },
    /// ReLU over `n` activations.
    Relu {
        /// Activation count.
        n: usize,
    },
    /// Other pointwise nonlinearity (sigmoid/tanh) over `n` activations.
    Activation {
        /// Activation count.
        n: usize,
    },
    /// Pooling producing `c`×`h_out`×`w_out` from a `k`×`k` window.
    Pool {
        /// Channels.
        c: usize,
        /// Output height.
        h_out: usize,
        /// Output width.
        w_out: usize,
        /// Window edge.
        k: usize,
    },
    /// Embedding table lookup.
    Embedding {
        /// Vocabulary rows.
        vocab: usize,
        /// Embedding width.
        dim: usize,
        /// Lookups per forward pass.
        lookups: usize,
    },
    /// A recurrent stack unrolled over `steps` timesteps.
    Rnn {
        /// Cell family.
        kind: RnnKind,
        /// Input width.
        d_in: usize,
        /// Hidden width.
        d_h: usize,
        /// Unrolled timesteps.
        steps: usize,
    },
    /// Multi-head attention of `seq_q` queries over `seq_k` keys.
    Attention {
        /// Model width.
        d_model: usize,
        /// Head count.
        heads: usize,
        /// Query positions.
        seq_q: usize,
        /// Key positions.
        seq_k: usize,
    },
    /// Row-wise softmax.
    Softmax {
        /// Row count.
        rows: usize,
        /// Classes per row.
        classes: usize,
    },
    /// Pointwise tensor arithmetic (residual adds, gate products, …).
    Elementwise {
        /// Element count.
        n: usize,
        /// Arithmetic ops per element.
        ops: usize,
    },
    /// Bilinear grid sampling over a `c`×`h`×`w` volume.
    GridSample {
        /// Channels.
        c: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
}

/// Where a layer sits in the model's dataflow, for static validation.
///
/// Most layers consume the previous layer's output (`Chain`). Specs that
/// concatenate several sub-networks (a GAN's generator and critic, an
/// encoder and a reseeded decoder) mark each sub-network entry point as a
/// `Head`; branches that tap an intermediate activation without feeding the
/// main chain (an RPN head, an auxiliary stem) are `Side` layers.
/// `aibench-check` uses these annotations to know where shape propagation
/// restarts instead of reporting a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayerRole {
    /// Consumes the previous chain layer's output (the default).
    #[default]
    Chain,
    /// Starts a new dataflow segment (new input, latent, or reseeded
    /// decoder state); the running shape restarts here.
    Head,
    /// A parallel branch off an intermediate activation: consecutive side
    /// layers are checked against each other but the main chain's running
    /// shape is preserved across them.
    Side,
}

/// A layer with a repeat count (e.g. 16 identical residual blocks).
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// The layer geometry.
    pub kind: LayerKind,
    /// How many copies of this layer the model executes per forward pass.
    pub repeat: usize,
    /// Whether the repeats share one set of weights (e.g. the RoI head of
    /// Faster R-CNN runs once per proposal with shared parameters).
    pub share_params: bool,
    /// Dataflow role (chain continuation, segment head, or side branch).
    pub role: LayerRole,
}

impl Layer {
    /// A single (non-repeated) layer.
    pub fn once(kind: LayerKind) -> Self {
        Layer {
            kind,
            repeat: 1,
            share_params: false,
            role: LayerRole::Chain,
        }
    }

    /// A layer repeated `repeat` times with independent weights.
    ///
    /// Non-shared repeats compose *sequentially* (each copy consumes the
    /// previous copy's output), so the layer must be self-composable.
    pub fn repeated(kind: LayerKind, repeat: usize) -> Self {
        Layer {
            kind,
            repeat,
            share_params: false,
            role: LayerRole::Chain,
        }
    }

    /// A layer executed `repeat` times with one shared set of weights.
    ///
    /// Shared repeats are *parallel instances* over different slices of the
    /// input (RoI heads, per-slice decoders), not a sequential composition.
    pub fn shared(kind: LayerKind, repeat: usize) -> Self {
        Layer {
            kind,
            repeat,
            share_params: true,
            role: LayerRole::Chain,
        }
    }

    /// A single layer that starts a new dataflow segment.
    pub fn head(kind: LayerKind) -> Self {
        Layer::once(kind).with_role(LayerRole::Head)
    }

    /// A single layer on a side branch off the current activation.
    pub fn side(kind: LayerKind) -> Self {
        Layer::once(kind).with_role(LayerRole::Side)
    }

    /// Overrides the dataflow role (builder-style).
    pub fn with_role(mut self, role: LayerRole) -> Self {
        self.role = role;
        self
    }
}

/// A full-scale model description: the layers of one forward pass for one
/// sample, plus bookkeeping the simulator needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Model name (matches the paper's algorithm column).
    pub name: String,
    /// Layers of a single forward pass (per sample).
    pub layers: Vec<Layer>,
    /// Input elements per sample (drives host-to-device copy volume).
    pub input_elems: usize,
    /// Training batch size used by the reference implementation.
    pub batch_size: usize,
    /// Samples per training epoch at paper scale.
    pub dataset_size: usize,
}

impl ModelSpec {
    /// Creates a spec.
    pub fn new(
        name: impl Into<String>,
        layers: Vec<Layer>,
        input_elems: usize,
        batch_size: usize,
        dataset_size: usize,
    ) -> Self {
        ModelSpec {
            name: name.into(),
            layers,
            input_elems,
            batch_size,
            dataset_size,
        }
    }

    /// Iterates layers expanded by their repeat counts.
    pub fn expanded_layers(&self) -> impl Iterator<Item = &LayerKind> {
        self.layers
            .iter()
            .flat_map(|l| std::iter::repeat_n(&l.kind, l.repeat))
    }

    /// Total layer count after expanding repeats.
    pub fn layer_count(&self) -> usize {
        self.layers.iter().map(|l| l.repeat).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_expansion() {
        let spec = ModelSpec::new(
            "toy",
            vec![
                Layer::once(LayerKind::Linear { d_in: 4, d_out: 8 }),
                Layer::repeated(LayerKind::Relu { n: 8 }, 3),
            ],
            4,
            32,
            1000,
        );
        assert_eq!(spec.layer_count(), 4);
        assert_eq!(spec.expanded_layers().count(), 4);
    }

    #[test]
    fn rnn_gate_counts() {
        assert_eq!(RnnKind::Tanh.gates(), 1);
        assert_eq!(RnnKind::Gru.gates(), 3);
        assert_eq!(RnnKind::Lstm.gates(), 4);
    }
}

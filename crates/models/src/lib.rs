//! Model definitions for the AIBench and MLPerf training benchmarks.
//!
//! Two levels of modeling live here:
//!
//! * [`spec`] — *full-scale* architectural descriptions ([`ModelSpec`]) of
//!   every benchmark model at the paper's scale (ResNet-50 on ImageNet,
//!   Faster R-CNN on VOC, Transformer on WMT, …). These are plain data and
//!   drive the FLOPs/parameter counter (`aibench-opcount`) and the GPU
//!   simulator (`aibench-gpusim`).
//! * [`scaled`] — *scaled-down trainable* versions of the same
//!   architectures, built on the `aibench-nn` stack and the synthetic
//!   datasets, small enough that an entire training session converges on a
//!   CPU in seconds while preserving each task's structure (the same layer
//!   types, losses, and quality metrics).
//!
//! The [`Trainer`] trait is the common interface every scaled benchmark
//! implements: one call per epoch plus a quality evaluation.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod scaled;
pub mod spec;

pub use spec::{Layer, LayerKind, LayerRole, ModelSpec, RnnKind};

/// A scaled, trainable benchmark instance.
///
/// One `Trainer` owns its model, dataset, and optimizer;
/// [`Trainer::train_epoch`] performs a full pass over the synthetic training
/// set and [`Trainer::evaluate`] measures the benchmark's quality metric on
/// held-out data (in the metric's native units and direction — e.g.
/// accuracy in `[0, 1]` where higher is better, WER where lower is better).
pub trait Trainer {
    /// Runs one training epoch, returning the mean training loss.
    fn train_epoch(&mut self) -> f32;

    /// Evaluates the benchmark's quality metric on held-out data.
    fn evaluate(&mut self) -> f64;

    /// Number of learnable parameters of the scaled model.
    fn param_count(&self) -> usize;

    /// The model's registered parameters (handles share storage with the
    /// trainer's own copies). Used by the tape sanitizer to probe for dead
    /// parameters and non-finite values after a training epoch.
    fn params(&self) -> Vec<aibench_autograd::Param>;

    /// Captures the trainer's complete mutable training state — parameters,
    /// optimizer moments, RNG position, running statistics, step counters —
    /// into `state` (top-level prefixes, one per component).
    ///
    /// Together with rebuilding the trainer from its seed, this must be
    /// sufficient for [`Trainer::load_state`] to resume training
    /// bit-identically: architecture and datasets are *not* saved, they are
    /// reconstructed deterministically by the benchmark factory.
    fn save_state(&self, state: &mut aibench_ckpt::State);

    /// Restores state captured by [`Trainer::save_state`] into a trainer
    /// freshly built from the same benchmark and seed.
    ///
    /// On error the trainer may be partially mutated; callers must discard
    /// it and rebuild before retrying with a different snapshot.
    fn load_state(&mut self, state: &aibench_ckpt::State) -> Result<(), aibench_ckpt::CkptError>;

    /// Multiplies every optimizer's learning rate by `factor`.
    ///
    /// This is the recovery hook supervised execution uses after rolling a
    /// diverged run back to its last valid snapshot: restore resets the
    /// learning rate to the snapshotted value, and the supervisor then
    /// applies a reduction so the retried trajectory does not reproduce the
    /// divergence verbatim. Trainers with several optimizers (GAN
    /// generator/critic pairs) scale all of them. The default is a no-op
    /// for toy trainers without an optimizer.
    fn scale_lr(&mut self, _factor: f32) {}
}

/// A trainer whose epoch decomposes into externally driven mini-batch
/// steps, making it usable as one replica of a simulated data-parallel
/// group (`aibench-dist`).
///
/// The contract ties the hooks to [`Trainer::train_epoch`]: driving one
/// epoch's worth of batches from a cursor built over
/// ([`DataParallel::train_len`], [`DataParallel::global_batch`],
/// [`DataParallel::data_rng`]) through [`DataParallel::forward_backward`]
/// followed by [`DataParallel::apply_update`] must reproduce
/// `train_epoch`'s arithmetic bit for bit. The distributed runner relies
/// on that factoring for its single-worker-equivalence guarantee, and on
/// two further properties:
///
/// * `forward_backward` accumulates gradients into the handles returned by
///   [`Trainer::params`] (in that order) and performs no optimizer update,
///   so the runner can replace the local gradients with an all-reduced
///   global gradient before calling `apply_update`;
/// * [`Trainer::evaluate`] does not mutate training state, so evaluating
///   one replica stands for the group.
pub trait DataParallel: Trainer {
    /// Number of training examples an epoch covers.
    fn train_len(&self) -> usize;

    /// The global mini-batch size one step consumes (shards of it are
    /// distributed across the group's workers).
    fn global_batch(&self) -> usize;

    /// A clone of the trainer's data-order RNG in its current position.
    /// Replicas built from the same seed return bitwise-identical RNGs, so
    /// every group member derives the same shuffled batch stream.
    fn data_rng(&self) -> aibench_tensor::Rng;

    /// Runs forward and backward over the examples at `idx`, accumulating
    /// mean-loss gradients into [`Trainer::params`], and returns the mean
    /// loss. Must not step the optimizer.
    fn forward_backward(&mut self, idx: &[usize]) -> f32;

    /// Applies the optimizer update from the gradients currently stored in
    /// [`Trainer::params`], then zeroes them.
    fn apply_update(&mut self);
}

//! Full-scale specifications of every AIBench (17) and MLPerf (7) training
//! benchmark model, at the paper's scale.
//!
//! Layer geometries follow the published architectures (ResNet-50, Faster
//! R-CNN, Transformer, DeepSpeech2, FaceNet, NCF, …) closely enough that
//! the counted parameters and forward FLOPs land in the ranges the paper
//! reports in Section 5.2.1: AIBench spans 0.09–157,802 M-FLOPs and
//! 0.03M–68.4M parameters; MLPerf spans 0.213–24,500 M-FLOPs and
//! 5.2M–49.53M parameters.

use crate::spec::{Layer, LayerKind, LayerRole, ModelSpec, RnnKind};

/// Tracks spatial extent while emitting a convolutional trunk.
struct ConvBuilder {
    layers: Vec<Layer>,
    c: usize,
    h: usize,
    w: usize,
}

impl ConvBuilder {
    fn new(c: usize, h: usize, w: usize) -> Self {
        ConvBuilder {
            layers: Vec::new(),
            c,
            h,
            w,
        }
    }

    fn conv(&mut self, c_out: usize, k: usize, stride: usize, bn: bool, relu: bool) -> &mut Self {
        self.h = self.h.div_ceil(stride);
        self.w = self.w.div_ceil(stride);
        self.layers.push(Layer::once(LayerKind::Conv2d {
            c_in: self.c,
            c_out,
            k,
            h_out: self.h,
            w_out: self.w,
        }));
        self.c = c_out;
        if bn {
            self.layers.push(Layer::once(LayerKind::BatchNorm2d {
                c: self.c,
                h: self.h,
                w: self.w,
            }));
        }
        if relu {
            self.layers.push(Layer::once(LayerKind::Relu {
                n: self.c * self.h * self.w,
            }));
        }
        self
    }

    fn deconv(&mut self, c_out: usize, k: usize, upscale: usize, relu: bool) -> &mut Self {
        self.h *= upscale;
        self.w *= upscale;
        self.layers.push(Layer::once(LayerKind::ConvTranspose2d {
            c_in: self.c,
            c_out,
            k,
            h_out: self.h,
            w_out: self.w,
        }));
        self.c = c_out;
        if relu {
            self.layers.push(Layer::once(LayerKind::Relu {
                n: self.c * self.h * self.w,
            }));
        }
        self
    }

    fn pool(&mut self, k: usize, stride: usize) -> &mut Self {
        self.h /= stride;
        self.w /= stride;
        self.layers.push(Layer::once(LayerKind::Pool {
            c: self.c,
            h_out: self.h,
            w_out: self.w,
            k,
        }));
        self
    }

    /// One ResNet bottleneck block (1x1 → 3x3 → 1x1 + residual add).
    fn bottleneck(&mut self, mid: usize, out: usize, stride: usize) -> &mut Self {
        self.conv(mid, 1, 1, true, true);
        self.conv(mid, 3, stride, true, true);
        self.conv(out, 1, 1, true, false);
        self.layers.push(Layer::once(LayerKind::Elementwise {
            n: self.c * self.h * self.w,
            ops: 1,
        }));
        self.layers.push(Layer::once(LayerKind::Relu {
            n: self.c * self.h * self.w,
        }));
        self
    }

    fn finish(self) -> (Vec<Layer>, usize, usize, usize) {
        (self.layers, self.c, self.h, self.w)
    }
}

/// ResNet-50 trunk at a given input resolution; returns layers plus the
/// final `(c, h, w)`.
fn resnet50_trunk(h: usize, w: usize) -> (Vec<Layer>, usize, usize, usize) {
    let mut b = ConvBuilder::new(3, h, w);
    b.conv(64, 7, 2, true, true).pool(3, 2);
    // Stage 1: 3 blocks, width 64→256 (no downsample; the stem pool did it).
    for _ in 0..3 {
        b.bottleneck(64, 256, 1);
        b.c = 256;
    }
    // Stage 2: 4 blocks, width 128→512, downsample on entry.
    for i in 0..4 {
        b.bottleneck(128, 512, if i == 0 { 2 } else { 1 });
        b.c = 512;
    }
    // Stage 3: 6 blocks, width 256→1024.
    for i in 0..6 {
        b.bottleneck(256, 1024, if i == 0 { 2 } else { 1 });
        b.c = 1024;
    }
    // Stage 4: 3 blocks, width 512→2048.
    for i in 0..3 {
        b.bottleneck(512, 2048, if i == 0 { 2 } else { 1 });
        b.c = 2048;
    }
    b.finish()
}

/// DC-AI-C1 / MLPerf: ResNet-50 on ImageNet (224², 1000 classes).
pub fn image_classification() -> ModelSpec {
    let (mut layers, c, h, _w) = resnet50_trunk(224, 224);
    layers.push(Layer::once(LayerKind::Pool {
        c,
        h_out: 1,
        w_out: 1,
        k: h,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: c,
        d_out: 1000,
    }));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: 1,
        classes: 1000,
    }));
    ModelSpec::new("ResNet-50", layers, 3 * 224 * 224, 256, 1_281_167)
}

/// DC-AI-C2: WGAN with 4-layer 512-unit ReLU MLP generator and critic on
/// LSUN bedrooms (64² RGB).
pub fn image_generation() -> ModelSpec {
    let img = 64 * 64 * 3;
    // Generator: z(128) -> 512 -> 512 -> 512 -> image.
    let mut layers = vec![Layer::once(LayerKind::Linear {
        d_in: 128,
        d_out: 512,
    })];
    layers.push(Layer::once(LayerKind::Relu { n: 512 }));
    layers.push(Layer::repeated(
        LayerKind::Linear {
            d_in: 512,
            d_out: 512,
        },
        2,
    ));
    layers.push(Layer::repeated(LayerKind::Relu { n: 512 }, 2));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 512,
        d_out: img,
    }));
    layers.push(Layer::once(LayerKind::Activation { n: img }));
    // Critic: image -> 512 -> 512 -> 512 -> 1.
    layers.push(Layer::once(LayerKind::Linear {
        d_in: img,
        d_out: 512,
    }));
    layers.push(Layer::repeated(
        LayerKind::Linear {
            d_in: 512,
            d_out: 512,
        },
        2,
    ));
    layers.push(Layer::repeated(LayerKind::Relu { n: 512 }, 3));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 512,
        d_out: 1,
    }));
    ModelSpec::new("WassersteinGAN", layers, img, 64, 3_033_042)
}

/// Transformer encoder-decoder at a given width/depth/vocab.
#[allow(clippy::too_many_arguments)] // one scalar per architectural knob
fn transformer(
    name: &str,
    d: usize,
    layers_each: usize,
    d_ff: usize,
    vocab: usize,
    seq: usize,
    batch: usize,
    dataset: usize,
) -> ModelSpec {
    let mut layers = vec![Layer::once(LayerKind::Embedding {
        vocab,
        dim: d,
        lookups: 2 * seq,
    })];
    for _ in 0..layers_each {
        // Encoder block.
        layers.push(Layer::once(LayerKind::Attention {
            d_model: d,
            heads: 8,
            seq_q: seq,
            seq_k: seq,
        }));
        layers.push(Layer::once(LayerKind::LayerNorm { rows: seq, d }));
        layers.push(Layer::once(LayerKind::Linear {
            d_in: d,
            d_out: d_ff,
        }));
        layers.push(Layer::once(LayerKind::Relu { n: seq * d_ff }));
        layers.push(Layer::once(LayerKind::Linear {
            d_in: d_ff,
            d_out: d,
        }));
        layers.push(Layer::once(LayerKind::LayerNorm { rows: seq, d }));
        layers.push(Layer::once(LayerKind::Elementwise {
            n: 2 * seq * d,
            ops: 1,
        }));
    }
    for _ in 0..layers_each {
        // Decoder block: self + cross attention + FFN.
        layers.push(Layer::repeated(
            LayerKind::Attention {
                d_model: d,
                heads: 8,
                seq_q: seq,
                seq_k: seq,
            },
            2,
        ));
        layers.push(Layer::repeated(LayerKind::LayerNorm { rows: seq, d }, 3));
        layers.push(Layer::once(LayerKind::Linear {
            d_in: d,
            d_out: d_ff,
        }));
        layers.push(Layer::once(LayerKind::Relu { n: seq * d_ff }));
        layers.push(Layer::once(LayerKind::Linear {
            d_in: d_ff,
            d_out: d,
        }));
        layers.push(Layer::once(LayerKind::Elementwise {
            n: 3 * seq * d,
            ops: 1,
        }));
    }
    layers.push(Layer::once(LayerKind::Linear {
        d_in: d,
        d_out: vocab,
    }));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: seq,
        classes: vocab,
    }));
    ModelSpec::new(name, layers, 2 * seq, batch, dataset)
}

/// DC-AI-C3: Transformer on WMT English-German.
pub fn text_to_text() -> ModelSpec {
    transformer("Transformer", 512, 6, 2048, 20_000, 40, 128, 4_500_000)
}

/// DC-AI-C4: Neural Image Caption (Inception-style CNN + LSTM) on MSCOCO.
pub fn image_to_text() -> ModelSpec {
    // Inception-like trunk at 224².
    let mut b = ConvBuilder::new(3, 224, 224);
    b.conv(64, 7, 2, true, true).pool(3, 2);
    b.conv(192, 3, 1, true, true).pool(3, 2);
    b.conv(256, 3, 1, true, true);
    b.conv(480, 3, 2, true, true);
    b.conv(512, 3, 1, true, true);
    b.conv(832, 3, 2, true, true);
    b.conv(1024, 3, 1, true, true);
    let (mut layers, c, h, _) = b.finish();
    layers.push(Layer::once(LayerKind::Pool {
        c,
        h_out: 1,
        w_out: 1,
        k: h,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: c,
        d_out: 512,
    }));
    // Caption decoder: vocab 40k embeddings dominate the parameter count.
    let vocab = 48_000;
    let seq = 20;
    layers.push(Layer::once(LayerKind::Embedding {
        vocab,
        dim: 512,
        lookups: seq,
    }));
    layers.push(Layer::once(LayerKind::Rnn {
        kind: RnnKind::Lstm,
        d_in: 512,
        d_h: 512,
        steps: seq,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 512,
        d_out: vocab,
    }));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: seq,
        classes: vocab,
    }));
    ModelSpec::new("NeuralImageCaption", layers, 3 * 224 * 224, 64, 82_783)
}

/// DC-AI-C5: CycleGAN (two ResNet generators + two PatchGAN critics) on
/// Cityscapes at 256².
pub fn image_to_image() -> ModelSpec {
    let mut layers = Vec::new();
    for _ in 0..2 {
        // Generator: c7s1-64, d128, d256, 9 residual 256 blocks, u128, u64, c7s1-3.
        let mut g = ConvBuilder::new(3, 128, 128);
        g.conv(64, 7, 1, true, true);
        g.conv(128, 3, 2, true, true);
        g.conv(256, 3, 2, true, true);
        for _ in 0..9 {
            g.conv(256, 3, 1, true, true);
            g.conv(256, 3, 1, true, false);
            g.layers.push(Layer::once(LayerKind::Elementwise {
                n: 256 * 32 * 32,
                ops: 1,
            }));
        }
        g.deconv(128, 3, 2, true);
        g.deconv(64, 3, 2, true);
        g.conv(3, 7, 1, false, false);
        let (mut gl, _, _, _) = g.finish();
        // Each generator consumes a fresh 128² image (its own domain).
        gl[0].role = LayerRole::Head;
        layers.extend(gl);
        // 70x70 PatchGAN critic — a separate network over the translated image.
        let mut d = ConvBuilder::new(3, 128, 128);
        d.conv(64, 4, 2, false, true);
        d.conv(128, 4, 2, true, true);
        d.conv(256, 4, 2, true, true);
        d.conv(512, 4, 1, true, true);
        d.conv(1, 4, 1, false, false);
        let (mut dl, _, _, _) = d.finish();
        dl[0].role = LayerRole::Head;
        layers.extend(dl);
    }
    ModelSpec::new("CycleGAN", layers, 3 * 128 * 128, 1, 2_975)
}

/// DC-AI-C6: DeepSpeech2 (2 conv + 5 bidirectional GRU × 800) on
/// LibriSpeech.
pub fn speech_recognition() -> ModelSpec {
    let (bands, frames) = (161, 300);
    let mut b = ConvBuilder::new(1, bands, frames);
    b.conv(32, 11, 2, true, true);
    b.conv(32, 11, 1, true, true);
    let (mut layers, c, h, w) = b.finish();
    let d_in = c * h;
    let steps = w;
    layers.push(Layer::once(LayerKind::Rnn {
        kind: RnnKind::Gru,
        d_in,
        d_h: 800,
        steps,
    }));
    layers.push(Layer::repeated(
        LayerKind::Rnn {
            kind: RnnKind::Gru,
            d_in: 1600,
            d_h: 800,
            steps,
        },
        4,
    ));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 1600,
        d_out: 29,
    }));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: steps,
        classes: 29,
    }));
    ModelSpec::new("DeepSpeech2", layers, bands * frames, 32, 281_241)
}

/// DC-AI-C7: FaceNet (Inception trunk to a 128-D embedding, ~24M params)
/// on VGGFace2, trained with the triplet loss.
pub fn face_embedding() -> ModelSpec {
    let mut b = ConvBuilder::new(3, 160, 160);
    b.conv(64, 7, 2, true, true).pool(3, 2);
    b.conv(64, 1, 1, true, true);
    b.conv(192, 3, 1, true, true).pool(3, 2);
    b.conv(256, 3, 1, true, true);
    b.conv(320, 3, 2, true, true);
    b.conv(640, 3, 1, true, true);
    b.conv(640, 3, 2, true, true);
    b.conv(1024, 3, 1, true, true);
    b.conv(1024, 3, 1, true, true);
    let (mut layers, c, h, _) = b.finish();
    layers.push(Layer::once(LayerKind::Pool {
        c,
        h_out: 1,
        w_out: 1,
        k: h,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: c,
        d_out: 4096,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 4096,
        d_out: 128,
    }));
    ModelSpec::new("FaceNet", layers, 3 * 160 * 160, 90, 3_310_000)
}

/// DC-AI-C8: RGB-D ResNet-50 for 3D face recognition on the Intellifusion
/// set (77,715 samples, 253 identities).
pub fn face_recognition_3d() -> ModelSpec {
    let (mut layers, c, h, w) = resnet50_trunk(224, 224);
    // First conv is widened to 4 input channels; approximate by one extra
    // depth-channel conv at the stem resolution, a side branch off the
    // RGB-D input rather than part of the RGB chain.
    layers.insert(
        0,
        Layer::side(LayerKind::Conv2d {
            c_in: 1,
            c_out: 64,
            k: 7,
            h_out: 112,
            w_out: 112,
        }),
    );
    let _ = w;
    layers.push(Layer::once(LayerKind::Pool {
        c,
        h_out: 1,
        w_out: 1,
        k: h,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: c,
        d_out: 253,
    }));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: 1,
        classes: 253,
    }));
    ModelSpec::new("RGB-D ResNet-50", layers, 4 * 224 * 224, 64, 77_715)
}

/// DC-AI-C9: Faster R-CNN with a ResNet-50 backbone on VOC2007 (600×850
/// inputs, 300 region proposals).
pub fn object_detection() -> ModelSpec {
    let (mut layers, c, _h, _w) = resnet50_trunk(800, 1100);
    let _ = c;
    // RPN head over the stride-16 map — a side branch off the 1024-channel
    // stage-3 activation (50×69 at stride 16), not the 2048-channel output,
    // so it is spliced in right after the last stage-3 layer.
    let stage3_end = layers
        .iter()
        .rposition(|l| matches!(l.kind, LayerKind::Relu { n } if n == 1024 * 50 * 69))
        .expect("resnet50 trunk has a stage-3 tail")
        + 1;
    layers.splice(
        stage3_end..stage3_end,
        [
            Layer::side(LayerKind::Conv2d {
                c_in: 1024,
                c_out: 512,
                k: 3,
                h_out: 50,
                w_out: 69,
            }),
            Layer::side(LayerKind::Conv2d {
                c_in: 512,
                c_out: 24,
                k: 1,
                h_out: 50,
                w_out: 69,
            }),
        ],
    );
    // RoI Align: bilinear grid sampling of 300 proposal crops (7x7x1024),
    // plus per-proposal layout shuffling — the data-arrangement-heavy part
    // of two-stage detection. Starts the per-proposal head segment.
    layers.push(
        Layer::shared(
            LayerKind::GridSample {
                c: 1024,
                h: 7,
                w: 7,
            },
            300,
        )
        .with_role(LayerRole::Head),
    );
    // 300 RoI heads with shared weights over pooled 1024-d crop features.
    layers.push(Layer::shared(
        LayerKind::Pool {
            c: 1024,
            h_out: 1,
            w_out: 1,
            k: 7,
        },
        300,
    ));
    layers.push(Layer::shared(
        LayerKind::Linear {
            d_in: 1024,
            d_out: 1024,
        },
        300,
    ));
    layers.push(Layer::shared(
        LayerKind::Linear {
            d_in: 1024,
            d_out: 1024,
        },
        300,
    ));
    layers.push(Layer::shared(
        LayerKind::Linear {
            d_in: 1024,
            d_out: 84,
        },
        300,
    ));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: 300,
        classes: 21,
    }));
    ModelSpec::new("Faster R-CNN", layers, 3 * 600 * 850, 1, 5_011)
}

/// DC-AI-C10 / MLPerf: Neural Collaborative Filtering on MovieLens.
pub fn recommendation() -> ModelSpec {
    let (users, items, dim) = (138_493, 26_744, 32);
    let mut layers = vec![Layer::once(LayerKind::Embedding {
        vocab: users,
        dim,
        lookups: 1,
    })];
    layers.push(Layer::once(LayerKind::Embedding {
        vocab: items,
        dim,
        lookups: 1,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 2 * dim,
        d_out: 256,
    }));
    layers.push(Layer::once(LayerKind::Relu { n: 256 }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 256,
        d_out: 128,
    }));
    layers.push(Layer::once(LayerKind::Relu { n: 128 }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 128,
        d_out: 64,
    }));
    layers.push(Layer::once(LayerKind::Linear { d_in: 64, d_out: 1 }));
    layers.push(Layer::once(LayerKind::Activation { n: 1 }));
    ModelSpec::new("NeuralCF", layers, 2, 1024, 5_000_000)
}

/// DC-AI-C11: motion-focused predictive model (CDNA-style conv-LSTM) on
/// the robot-pushing set.
pub fn video_prediction() -> ModelSpec {
    let mut b = ConvBuilder::new(3, 64, 64);
    b.conv(32, 5, 2, true, true);
    b.conv(64, 5, 2, true, true);
    b.conv(128, 5, 2, true, true);
    let (mut layers, _, _, _) = b.finish();
    layers.push(Layer::once(LayerKind::Rnn {
        kind: RnnKind::Lstm,
        d_in: 128 * 8 * 8,
        d_h: 512,
        steps: 10,
    }));
    // Decoder reseeds from the conv-LSTM state volume.
    let mut d = ConvBuilder::new(128, 8, 8);
    d.deconv(64, 5, 2, true);
    d.deconv(32, 5, 2, true);
    d.deconv(3, 5, 2, false);
    let (mut dl, _, _, _) = d.finish();
    dl[0].role = LayerRole::Head;
    layers.extend(dl);
    ModelSpec::new(
        "MotionFocusedPredictive",
        layers,
        3 * 64 * 64 * 10,
        32,
        59_000,
    )
}

/// DC-AI-C12: full-resolution recurrent image compression on ImageNet
/// patches (GRU encoder/decoder, 16 refinement iterations).
pub fn image_compression() -> ModelSpec {
    let mut b = ConvBuilder::new(3, 64, 64);
    b.conv(64, 3, 2, false, true);
    b.conv(256, 3, 2, false, true);
    b.conv(512, 3, 2, false, true);
    let (mut layers, _, _, _) = b.finish();
    // Recurrent refinement core over 16 iterations.
    layers.push(Layer::once(LayerKind::Rnn {
        kind: RnnKind::Gru,
        d_in: 512,
        d_h: 512,
        steps: 16,
    }));
    layers.push(Layer::once(LayerKind::Activation { n: 8 * 8 * 32 * 16 })); // binarizer
                                                                            // Decoder reseeds from the binarized code volume.
    let mut d = ConvBuilder::new(512, 8, 8);
    d.deconv(256, 3, 2, true);
    d.deconv(64, 3, 2, true);
    d.deconv(3, 3, 2, false);
    let (mut dl, _, _, _) = d.finish();
    dl[0].role = LayerRole::Head;
    layers.extend(dl);
    ModelSpec::new("RecurrentCompression", layers, 3 * 64 * 64, 64, 1_281_167)
}

/// DC-AI-C13: perspective-transformer 3-D reconstruction on ShapeNet
/// (encoder to latent, volume decoder to 32³, grid-sample projection).
pub fn object_reconstruction_3d() -> ModelSpec {
    let mut b = ConvBuilder::new(3, 224, 224);
    b.conv(96, 7, 2, true, true);
    b.conv(192, 5, 2, true, true);
    b.conv(384, 5, 2, true, true);
    b.conv(512, 3, 1, true, true);
    b.conv(512, 3, 1, true, true);
    b.conv(512, 3, 1, true, true);
    let (mut layers, c, h, w) = b.finish();
    let _ = (h, w);
    layers.push(Layer::once(LayerKind::Pool {
        c,
        h_out: 7,
        w_out: 7,
        k: 4,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: c * 7 * 7,
        d_out: 1024,
    }));
    // Volume decoder: treat 3-D deconvs as stacked 2-D deconv slices.
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 1024,
        d_out: 4 * 4 * 4 * 256,
    }));
    let mut d = ConvBuilder::new(256, 8, 8);
    d.deconv(256, 3, 2, true);
    d.deconv(128, 3, 2, true);
    d.deconv(64, 3, 2, true);
    d.deconv(32, 3, 2, true);
    let (dl, dc, dh, dw) = d.finish();
    // Replicate the decoder across the 32 depth slices of the volume with
    // one shared set of weights; the ×3 models the k_z extent of the 3-D
    // kernels that the 2-D slices approximate.
    for l in dl {
        layers.push(Layer::shared(l.kind, l.repeat * 32 * 3));
    }
    layers.push(Layer::once(LayerKind::GridSample {
        c: dc,
        h: dh,
        w: dw,
    }));
    ModelSpec::new(
        "PerspectiveTransformerNet",
        layers,
        3 * 224 * 224,
        8,
        43_783,
    )
}

/// DC-AI-C14: attentional sequence-to-sequence summarization on Gigaword.
pub fn text_summarization() -> ModelSpec {
    let (vocab, d, seq_in, seq_out) = (50_000, 400, 50, 15);
    let mut layers = vec![Layer::once(LayerKind::Embedding {
        vocab,
        dim: d,
        lookups: seq_in + seq_out,
    })];
    layers.push(Layer::once(LayerKind::Rnn {
        kind: RnnKind::Lstm,
        d_in: d,
        d_h: d,
        steps: seq_in,
    }));
    layers.push(Layer::once(LayerKind::Rnn {
        kind: RnnKind::Lstm,
        d_in: d,
        d_h: d,
        steps: seq_out,
    }));
    layers.push(Layer::once(LayerKind::Attention {
        d_model: d,
        heads: 1,
        seq_q: seq_out,
        seq_k: seq_in,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: d,
        d_out: vocab,
    }));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: seq_out,
        classes: vocab,
    }));
    ModelSpec::new("Seq2SeqAttention", layers, seq_in, 64, 3_800_000)
}

/// DC-AI-C15: spatial transformer network on MNIST (the suite's smallest
/// model, ~0.03M parameters).
pub fn spatial_transformer() -> ModelSpec {
    let mut layers = Vec::new();
    // Localization network.
    let mut b = ConvBuilder::new(1, 28, 28);
    b.conv(8, 7, 1, false, true).pool(2, 2);
    b.conv(10, 5, 1, false, true).pool(2, 2);
    let (ll, lc, lh, lw) = b.finish();
    layers.extend(ll);
    layers.push(Layer::once(LayerKind::Linear {
        d_in: lc * lh * lw,
        d_out: 32,
    }));
    layers.push(Layer::once(LayerKind::Linear { d_in: 32, d_out: 6 }));
    // The sampler warps the *original* 28² input with the predicted affine
    // grid, starting the classifier segment.
    layers.push(Layer::head(LayerKind::GridSample { c: 1, h: 28, w: 28 }));
    // Classifier.
    let mut cb = ConvBuilder::new(1, 28, 28);
    cb.conv(10, 5, 1, false, true).pool(2, 2);
    cb.conv(20, 5, 1, false, true).pool(2, 2);
    let (cl, cc, ch, cw) = cb.finish();
    layers.extend(cl);
    layers.push(Layer::once(LayerKind::Linear {
        d_in: cc * ch * cw,
        d_out: 10,
    }));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: 1,
        classes: 10,
    }));
    ModelSpec::new("SpatialTransformerNet", layers, 28 * 28, 256, 60_000)
}

/// DC-AI-C16: Ranking Distillation student on Gowalla — embedding lookups
/// dominate the parameters while per-query compute is tiny (the suite's
/// smallest FLOPs, ~0.09 M-FLOPs).
pub fn learning_to_rank() -> ModelSpec {
    let (items, dim) = (196_591, 10);
    let mut layers = vec![Layer::once(LayerKind::Embedding {
        vocab: items,
        dim,
        lookups: 3,
    })];
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 3 * dim,
        d_out: 100,
    }));
    layers.push(Layer::once(LayerKind::Relu { n: 100 }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 100,
        d_out: 100,
    }));
    layers.push(Layer::once(LayerKind::Relu { n: 100 }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 100,
        d_out: 100,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 100,
        d_out: 50,
    }));
    layers.push(Layer::once(LayerKind::Activation { n: 50 }));
    ModelSpec::new("RankingDistillation", layers, 3, 512, 6_442_890)
}

/// DC-AI-C17: ENAS controller + child network on PTB. The paper excludes
/// this from the model-characteristics comparison (FLOPs vary per epoch);
/// the spec models one representative child step.
pub fn neural_architecture_search() -> ModelSpec {
    let (vocab, d) = (10_000, 400);
    // Controller LSTM sampling 24 architecture decisions.
    let mut layers = vec![Layer::once(LayerKind::Rnn {
        kind: RnnKind::Lstm,
        d_in: 64,
        d_h: 100,
        steps: 24,
    })];
    // Shared-weight child: embedding + recurrent cell + output projection.
    layers.push(Layer::once(LayerKind::Embedding {
        vocab,
        dim: d,
        lookups: 35,
    }));
    layers.push(Layer::once(LayerKind::Rnn {
        kind: RnnKind::Lstm,
        d_in: d,
        d_h: d,
        steps: 35,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: d,
        d_out: vocab,
    }));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: 35,
        classes: vocab,
    }));
    ModelSpec::new("ENAS", layers, 35, 128, 929_589)
}

// ---------------------------------------------------------------------
// MLPerf baselines (the two shared benchmarks reuse the same specs).
// ---------------------------------------------------------------------

/// MLPerf Object Detection (heavy): Mask R-CNN with a ResNet-50 backbone
/// at 800² (per the paper's coverage numbers, the MLPerf FLOPs maximum).
pub fn mlperf_object_detection_heavy() -> ModelSpec {
    let (mut layers, c, h, w) = resnet50_trunk(800, 800);
    // FPN-style lateral conv on the 25×25 stride-32 output map.
    layers.push(Layer::once(LayerKind::Conv2d {
        c_in: c,
        c_out: 256,
        k: 3,
        h_out: h,
        w_out: w,
    }));
    // Box head: 7×7 RoIAlign crops, two FC layers, class scores + box deltas.
    layers.push(
        Layer::shared(LayerKind::GridSample { c: 256, h: 7, w: 7 }, 100).with_role(LayerRole::Head),
    );
    layers.push(Layer::shared(
        LayerKind::Linear {
            d_in: 7 * 7 * 256,
            d_out: 1024,
        },
        100,
    ));
    layers.push(Layer::shared(
        LayerKind::Linear {
            d_in: 1024,
            d_out: 1024,
        },
        100,
    ));
    layers.push(Layer::shared(
        LayerKind::Linear {
            d_in: 1024,
            d_out: 324,
        },
        100,
    ));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: 100,
        classes: 81,
    }));
    // Mask head: 14×14 RoIAlign crops + convs (shared weights across
    // proposals), a separate per-proposal segment.
    layers.push(
        Layer::shared(
            LayerKind::GridSample {
                c: 256,
                h: 14,
                w: 14,
            },
            100,
        )
        .with_role(LayerRole::Head),
    );
    layers.push(Layer::shared(
        LayerKind::Conv2d {
            c_in: 256,
            c_out: 256,
            k: 3,
            h_out: 14,
            w_out: 14,
        },
        100,
    ));
    ModelSpec::new("Mask R-CNN", layers, 3 * 800 * 800, 2, 118_287)
}

/// MLPerf Object Detection (light): SSD with a ResNet-34-style backbone at
/// 300².
pub fn mlperf_object_detection_light() -> ModelSpec {
    let mut b = ConvBuilder::new(3, 300, 300);
    b.conv(64, 7, 2, true, true).pool(3, 2);
    for _ in 0..3 {
        b.conv(64, 3, 1, true, true);
        b.conv(64, 3, 1, true, true);
    }
    b.conv(128, 3, 2, true, true);
    for _ in 0..3 {
        b.conv(128, 3, 1, true, true);
        b.conv(128, 3, 1, true, true);
    }
    b.conv(256, 3, 2, true, true);
    for _ in 0..5 {
        b.conv(256, 3, 1, true, true);
        b.conv(256, 3, 1, true, true);
    }
    // SSD extra feature layers + per-scale heads.
    b.conv(512, 3, 2, true, true);
    b.conv(512, 3, 1, true, true);
    b.conv(256, 3, 2, true, true);
    let (mut layers, hc, hh, hw) = b.finish();
    // Detection head conv on the final 5×5 extra feature map.
    layers.push(Layer::once(LayerKind::Conv2d {
        c_in: hc,
        c_out: 486,
        k: 3,
        h_out: hh,
        w_out: hw,
    }));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: 8_732,
        classes: 81,
    }));
    ModelSpec::new("SSD-ResNet34", layers, 3 * 300 * 300, 32, 118_287)
}

/// MLPerf Translation (recurrent): GNMT-style 4-layer LSTM
/// encoder-decoder with attention.
pub fn mlperf_translation_recurrent() -> ModelSpec {
    let (vocab, d, seq) = (32_000, 512, 50);
    let mut layers = vec![Layer::once(LayerKind::Embedding {
        vocab,
        dim: d,
        lookups: 2 * seq,
    })];
    layers.push(Layer::repeated(
        LayerKind::Rnn {
            kind: RnnKind::Lstm,
            d_in: d,
            d_h: d,
            steps: seq,
        },
        4,
    ));
    layers.push(Layer::repeated(
        LayerKind::Rnn {
            kind: RnnKind::Lstm,
            d_in: d,
            d_h: d,
            steps: seq,
        },
        4,
    ));
    layers.push(Layer::once(LayerKind::Attention {
        d_model: d,
        heads: 1,
        seq_q: seq,
        seq_k: seq,
    }));
    layers.push(Layer::once(LayerKind::Linear {
        d_in: d,
        d_out: vocab,
    }));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: seq,
        classes: vocab,
    }));
    ModelSpec::new("GNMT", layers, 2 * seq, 128, 4_500_000)
}

/// MLPerf Translation (non-recurrent): Transformer with a reduced
/// shared-embedding vocabulary (keeping MLPerf's parameter ceiling at
/// ~49.5M, as the paper's coverage figures report).
pub fn mlperf_translation_nonrecurrent() -> ModelSpec {
    transformer(
        "Transformer (MLPerf)",
        512,
        6,
        2048,
        16_000,
        33,
        128,
        4_500_000,
    )
}

/// MLPerf Reinforcement Learning: minigo-style policy/value network
/// (9-block residual tower on a 19×19 board). Excluded from the
/// model-characteristics figure, like AIBench's NAS.
pub fn mlperf_reinforcement_learning() -> ModelSpec {
    let mut b = ConvBuilder::new(17, 19, 19);
    b.conv(256, 3, 1, true, true);
    for _ in 0..9 {
        b.conv(256, 3, 1, true, true);
        b.conv(256, 3, 1, true, false);
        b.layers.push(Layer::once(LayerKind::Elementwise {
            n: 256 * 19 * 19,
            ops: 1,
        }));
    }
    b.conv(2, 1, 1, true, true);
    let (mut layers, _, _, _) = b.finish();
    layers.push(Layer::once(LayerKind::Linear {
        d_in: 2 * 19 * 19,
        d_out: 362,
    }));
    layers.push(Layer::once(LayerKind::Softmax {
        rows: 1,
        classes: 362,
    }));
    ModelSpec::new("Minigo", layers, 17 * 19 * 19, 64, 2_000_000)
}

/// The seventeen AIBench component-benchmark specs, in DC-AI-C order.
pub fn aibench_specs() -> Vec<ModelSpec> {
    vec![
        image_classification(),
        image_generation(),
        text_to_text(),
        image_to_text(),
        image_to_image(),
        speech_recognition(),
        face_embedding(),
        face_recognition_3d(),
        object_detection(),
        recommendation(),
        video_prediction(),
        image_compression(),
        object_reconstruction_3d(),
        text_summarization(),
        spatial_transformer(),
        learning_to_rank(),
        neural_architecture_search(),
    ]
}

/// The seven MLPerf training benchmark specs.
pub fn mlperf_specs() -> Vec<ModelSpec> {
    vec![
        image_classification(),
        mlperf_object_detection_heavy(),
        mlperf_object_detection_light(),
        mlperf_translation_recurrent(),
        mlperf_translation_nonrecurrent(),
        recommendation(),
        mlperf_reinforcement_learning(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_have_paper_counts() {
        assert_eq!(aibench_specs().len(), 17);
        assert_eq!(mlperf_specs().len(), 7);
    }

    #[test]
    fn shared_benchmarks_are_identical() {
        // The paper: AIBench and MLPerf share Image Classification and
        // Recommendation models/datasets.
        let a = aibench_specs();
        let m = mlperf_specs();
        assert_eq!(a[0], m[0]);
        assert_eq!(a[9], m[5]);
    }

    #[test]
    fn resnet_trunk_reaches_2048_channels() {
        let (_, c, h, w) = resnet50_trunk(224, 224);
        assert_eq!(c, 2048);
        assert_eq!((h, w), (7, 7));
    }

    #[test]
    fn rpn_head_reads_the_stride_16_map() {
        // Regression: the RPN convs tap the 1024-channel stage-3 activation
        // (50×69 at stride 16); 2048 channels only exist at stride 32.
        let spec = object_detection();
        let rpn: Vec<_> = spec
            .layers
            .iter()
            .filter(|l| l.role == LayerRole::Side)
            .map(|l| &l.kind)
            .collect();
        assert_eq!(rpn.len(), 2);
        match rpn[0] {
            LayerKind::Conv2d {
                c_in, h_out, w_out, ..
            } => {
                assert_eq!((*c_in, *h_out, *w_out), (1024, 50, 69));
            }
            other => panic!("unexpected RPN layer {other:?}"),
        }
    }

    #[test]
    fn mask_rcnn_heads_match_backbone_and_roi_geometry() {
        // Regression: the lateral conv consumes the actual 25×25 trunk
        // output (it used to claim an impossible 50×50 from a 25×25 input),
        // the box head pools 7×7 crops to feed the 7·7·256 FC layer, and
        // the mask head runs on its own 14×14 RoIAlign segment.
        let spec = mlperf_object_detection_heavy();
        let conv = spec
            .layers
            .iter()
            .find_map(|l| match l.kind {
                LayerKind::Conv2d {
                    c_in: 2048,
                    h_out,
                    w_out,
                    ..
                } => Some((h_out, w_out)),
                _ => None,
            })
            .expect("lateral conv");
        assert_eq!(conv, (25, 25));
        let crops: Vec<_> = spec
            .layers
            .iter()
            .filter_map(|l| match l.kind {
                LayerKind::GridSample { h, w, .. } => Some((h, w, l.role)),
                _ => None,
            })
            .collect();
        assert_eq!(
            crops,
            vec![(7, 7, LayerRole::Head), (14, 14, LayerRole::Head)]
        );
    }

    #[test]
    fn ssd_head_conv_matches_final_feature_map() {
        // Regression: the detection head consumes the 5×5 extra feature
        // layer output (it used to claim an impossible 10×10).
        let spec = mlperf_object_detection_light();
        let head = spec
            .layers
            .iter()
            .rev()
            .find_map(|l| match l.kind {
                LayerKind::Conv2d {
                    c_in,
                    c_out: 486,
                    h_out,
                    w_out,
                    ..
                } => Some((c_in, h_out, w_out)),
                _ => None,
            })
            .expect("detection head conv");
        assert_eq!(head, (256, 5, 5));
    }

    #[test]
    fn segment_heads_are_annotated() {
        // Decoder/sampler segment entry points carry the Head role so the
        // shape checker restarts propagation there.
        for (spec, heads) in [
            (image_to_image(), 4),
            (video_prediction(), 1),
            (image_compression(), 1),
            (spatial_transformer(), 1),
            (object_detection(), 1),
            (mlperf_object_detection_heavy(), 2),
        ] {
            let found = spec
                .layers
                .iter()
                .filter(|l| l.role == LayerRole::Head)
                .count();
            assert_eq!(found, heads, "{}", spec.name);
        }
    }

    #[test]
    fn all_specs_have_layers_and_inputs() {
        for spec in aibench_specs().into_iter().chain(mlperf_specs()) {
            assert!(spec.layer_count() > 3, "{} too shallow", spec.name);
            assert!(spec.input_elems > 0, "{} has no input", spec.name);
            assert!(spec.dataset_size > 0 && spec.batch_size > 0);
        }
    }
}

//! Quality metrics used by the seventeen benchmarks: accuracy-style
//! measures, sequence metrics (WER, Rouge-L, perplexity), detection mAP,
//! ranking metrics (HR@K, precision@K), and image-quality metrics
//! ((MS-)SSIM, voxel IoU).

mod detection;
mod image;
mod ranking;
mod sequence;

pub use detection::{box_iou, mean_average_precision, BoundingBox, Detection};
pub use image::{ms_ssim, per_pixel_accuracy, psnr, ssim, voxel_iou};
pub use ranking::{hit_rate_at_k, ndcg_at_k, precision_at_k};
pub use sequence::{edit_distance, perplexity, rouge_l, word_error_rate};

/// Fraction of predictions equal to their label.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn accuracy(pred: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(pred.len(), labels.len(), "accuracy: length mismatch");
    assert!(!pred.is_empty(), "accuracy of empty slice");
    let hits = pred.iter().zip(labels).filter(|(a, b)| a == b).count();
    hits as f64 / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::accuracy;

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[1, 2, 3, 4], &[1, 0, 3, 0]), 0.5);
        assert_eq!(accuracy(&[7], &[7]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[1], &[1, 2]);
    }
}

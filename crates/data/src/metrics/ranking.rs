//! Ranking and recommendation metrics: HR@K, precision@K, NDCG@K.

/// Hit rate at K: fraction of queries whose single relevant item appears in
/// the top-K ranked list. The NCF quality metric (target 63.5% HR@10 on
/// MovieLens).
///
/// `rankings[i]` is the ranked item list for query `i`; `relevant[i]` is the
/// held-out item.
///
/// # Panics
///
/// Panics if lengths differ or there are no queries.
pub fn hit_rate_at_k(rankings: &[Vec<usize>], relevant: &[usize], k: usize) -> f64 {
    assert_eq!(rankings.len(), relevant.len(), "HR@K: length mismatch");
    assert!(!rankings.is_empty(), "HR@K of empty query set");
    let hits = rankings
        .iter()
        .zip(relevant)
        .filter(|(ranked, rel)| ranked.iter().take(k).any(|i| i == *rel))
        .count();
    hits as f64 / rankings.len() as f64
}

/// Precision at K averaged over queries: the fraction of each top-K list
/// that is relevant. The Learning-to-Rank quality metric (target 14.58%
/// precision on Gowalla).
///
/// # Panics
///
/// Panics if lengths differ, there are no queries, or `k == 0`.
pub fn precision_at_k(rankings: &[Vec<usize>], relevant: &[Vec<usize>], k: usize) -> f64 {
    assert_eq!(rankings.len(), relevant.len(), "P@K: length mismatch");
    assert!(!rankings.is_empty(), "P@K of empty query set");
    assert!(k > 0, "P@K with k = 0");
    let mut total = 0.0;
    for (ranked, rel) in rankings.iter().zip(relevant) {
        let hits = ranked.iter().take(k).filter(|i| rel.contains(i)).count();
        total += hits as f64 / k as f64;
    }
    total / rankings.len() as f64
}

/// Normalized discounted cumulative gain at K with binary relevance.
///
/// # Panics
///
/// Panics if lengths differ or there are no queries.
pub fn ndcg_at_k(rankings: &[Vec<usize>], relevant: &[Vec<usize>], k: usize) -> f64 {
    assert_eq!(rankings.len(), relevant.len(), "NDCG@K: length mismatch");
    assert!(!rankings.is_empty(), "NDCG@K of empty query set");
    let mut total = 0.0;
    for (ranked, rel) in rankings.iter().zip(relevant) {
        if rel.is_empty() {
            continue;
        }
        let dcg: f64 = ranked
            .iter()
            .take(k)
            .enumerate()
            .filter(|(_, i)| rel.contains(i))
            .map(|(pos, _)| 1.0 / ((pos + 2) as f64).log2())
            .sum();
        let ideal: f64 = (0..rel.len().min(k))
            .map(|pos| 1.0 / ((pos + 2) as f64).log2())
            .sum();
        total += dcg / ideal;
    }
    total / rankings.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hr_hits_and_misses() {
        let rankings = vec![vec![3, 1, 2], vec![5, 6, 7]];
        let relevant = vec![1, 9];
        assert_eq!(hit_rate_at_k(&rankings, &relevant, 2), 0.5);
        assert_eq!(hit_rate_at_k(&rankings, &relevant, 1), 0.0);
    }

    #[test]
    fn precision_counts_fraction() {
        let rankings = vec![vec![1, 2, 3, 4]];
        let relevant = vec![vec![2, 4, 9]];
        assert_eq!(precision_at_k(&rankings, &relevant, 4), 0.5);
        assert_eq!(precision_at_k(&rankings, &relevant, 2), 0.5);
    }

    #[test]
    fn ndcg_perfect_order_is_one() {
        let rankings = vec![vec![1, 2, 3]];
        let relevant = vec![vec![1, 2]];
        assert!((ndcg_at_k(&rankings, &relevant, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ndcg_penalizes_late_hits() {
        let early = ndcg_at_k(&[vec![1, 9, 8]], &[vec![1]], 3);
        let late = ndcg_at_k(&[vec![9, 8, 1]], &[vec![1]], 3);
        assert!(early > late);
    }
}

//! Image-quality metrics: SSIM, MS-SSIM, PSNR, per-pixel accuracy, and
//! voxel IoU.

use aibench_tensor::Tensor;

const C1: f64 = 0.0001; // (0.01 * L)^2 with L = 1
const C2: f64 = 0.0009; // (0.03 * L)^2

fn window_stats(a: &[f32], b: &[f32]) -> (f64, f64, f64, f64, f64) {
    let n = a.len() as f64;
    let ma = a.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mb = b.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mut va = 0.0;
    let mut vb = 0.0;
    let mut cov = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        va += (x as f64 - ma) * (x as f64 - ma);
        vb += (y as f64 - mb) * (y as f64 - mb);
        cov += (x as f64 - ma) * (y as f64 - mb);
    }
    (ma, mb, va / n, vb / n, cov / n)
}

/// Structural similarity over non-overlapping 8×8 windows of two
/// single-channel images in `[0, 1]` of shape `[h, w]` (smaller images fall
/// back to a single whole-image window).
///
/// # Panics
///
/// Panics if shapes differ or the images are not 2-D.
pub fn ssim(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.shape(), b.shape(), "ssim: shape mismatch");
    assert_eq!(a.ndim(), 2, "ssim: images must be [h, w]");
    let (h, w) = (a.shape()[0], a.shape()[1]);
    let win = 8.min(h).min(w);
    let mut total = 0.0;
    let mut count = 0usize;
    for y0 in (0..=h - win).step_by(win) {
        for x0 in (0..=w - win).step_by(win) {
            let mut wa = Vec::with_capacity(win * win);
            let mut wb = Vec::with_capacity(win * win);
            for y in y0..y0 + win {
                for x in x0..x0 + win {
                    wa.push(a.data()[y * w + x]);
                    wb.push(b.data()[y * w + x]);
                }
            }
            let (ma, mb, va, vb, cov) = window_stats(&wa, &wb);
            let s = ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            total += s;
            count += 1;
        }
    }
    total / count.max(1) as f64
}

fn downsample2(x: &Tensor) -> Tensor {
    let (h, w) = (x.shape()[0], x.shape()[1]);
    let (ho, wo) = (h / 2, w / 2);
    Tensor::from_fn(&[ho, wo], |i| {
        let (y, xx) = (i / wo, i % wo);
        0.25 * (x.data()[2 * y * w + 2 * xx]
            + x.data()[2 * y * w + 2 * xx + 1]
            + x.data()[(2 * y + 1) * w + 2 * xx]
            + x.data()[(2 * y + 1) * w + 2 * xx + 1])
    })
}

/// Multi-scale SSIM over `scales` dyadic scales (Wang et al. 2003), the
/// Image Compression quality metric (target 0.99 MS-SSIM).
///
/// Weights follow the standard five-scale profile, renormalized to the
/// number of scales that fit the image.
///
/// # Panics
///
/// Panics if shapes differ or `scales == 0`.
pub fn ms_ssim(a: &Tensor, b: &Tensor, scales: usize) -> f64 {
    assert!(scales > 0, "ms_ssim with zero scales");
    const WEIGHTS: [f64; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];
    let usable = scales.min(5);
    let wsum: f64 = WEIGHTS[..usable].iter().sum();
    let mut cur_a = a.clone();
    let mut cur_b = b.clone();
    let mut result = 1.0f64;
    for (s, &weight) in WEIGHTS.iter().enumerate().take(usable) {
        let sv = ssim(&cur_a, &cur_b).max(1e-6);
        result *= sv.powf(weight / wsum);
        if s + 1 < usable {
            if cur_a.shape()[0] < 16 || cur_a.shape()[1] < 16 {
                break;
            }
            cur_a = downsample2(&cur_a);
            cur_b = downsample2(&cur_b);
        }
    }
    result
}

/// Peak signal-to-noise ratio in dB for images in `[0, 1]`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn psnr(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.shape(), b.shape(), "psnr: shape mismatch");
    let mse = a.sub(b).sq_norm() as f64 / a.len() as f64;
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        -10.0 * mse.log10()
    }
}

/// Fraction of pixels whose binarized values (threshold 0.5) agree — the
/// CycleGAN "per-pixel accuracy" metric.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn per_pixel_accuracy(pred: &Tensor, target: &Tensor) -> f64 {
    assert_eq!(
        pred.shape(),
        target.shape(),
        "per_pixel_accuracy: shape mismatch"
    );
    let hits = pred
        .data()
        .iter()
        .zip(target.data())
        .filter(|(&p, &t)| (p > 0.5) == (t > 0.5))
        .count();
    hits as f64 / pred.len() as f64
}

/// Intersection-over-union of two occupancy grids thresholded at 0.5 — the
/// 3D Object Reconstruction quality metric (target 45.83% average IU).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn voxel_iou(pred: &Tensor, target: &Tensor) -> f64 {
    assert_eq!(pred.shape(), target.shape(), "voxel_iou: shape mismatch");
    let mut inter = 0usize;
    let mut union = 0usize;
    for (&p, &t) in pred.data().iter().zip(target.data()) {
        let (bp, bt) = (p > 0.5, t > 0.5);
        if bp && bt {
            inter += 1;
        }
        if bp || bt {
            union += 1;
        }
    }
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_tensor::Rng;

    #[test]
    fn ssim_identical_is_one() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::rand_uniform(&[16, 16], 0.0, 1.0, &mut rng);
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_decreases_with_noise() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::rand_uniform(&[16, 16], 0.0, 1.0, &mut rng);
        let slight = a.add(&Tensor::from_fn(&[16, 16], |_| rng.normal_with(0.0, 0.02)));
        let heavy = a.add(&Tensor::from_fn(&[16, 16], |_| rng.normal_with(0.0, 0.4)));
        assert!(ssim(&a, &slight) > ssim(&a, &heavy));
    }

    #[test]
    fn ms_ssim_identical_is_one() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::rand_uniform(&[32, 32], 0.0, 1.0, &mut rng);
        assert!((ms_ssim(&a, &a, 3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn psnr_infinite_for_identical() {
        let a = Tensor::ones(&[4, 4]);
        assert!(psnr(&a, &a).is_infinite());
        let b = a.add_scalar(0.1);
        assert!((psnr(&a, &b) - 20.0).abs() < 0.1);
    }

    #[test]
    fn per_pixel_accuracy_counts() {
        let a = Tensor::from_vec(vec![0.9, 0.1, 0.8, 0.2], &[2, 2]);
        let b = Tensor::from_vec(vec![0.7, 0.6, 0.9, 0.1], &[2, 2]);
        assert_eq!(per_pixel_accuracy(&a, &b), 0.75);
    }

    #[test]
    fn voxel_iou_cases() {
        let a = Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.0], &[4]);
        let b = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4]);
        assert!((voxel_iou(&a, &b) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(voxel_iou(&a, &a), 1.0);
        let empty = Tensor::zeros(&[4]);
        assert_eq!(voxel_iou(&empty, &empty), 1.0);
    }
}

//! Object-detection metrics: IoU and PASCAL-VOC-style mean average
//! precision (the Faster R-CNN quality metric, target 75% mAP on VOC2007).

/// An axis-aligned bounding box in pixel coordinates, `(x1, y1)` inclusive
/// top-left and `(x2, y2)` exclusive bottom-right.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Left edge.
    pub x1: f32,
    /// Top edge.
    pub y1: f32,
    /// Right edge.
    pub x2: f32,
    /// Bottom edge.
    pub y2: f32,
}

impl BoundingBox {
    /// Creates a box; coordinates are normalized so `x1 <= x2`, `y1 <= y2`.
    pub fn new(x1: f32, y1: f32, x2: f32, y2: f32) -> Self {
        BoundingBox {
            x1: x1.min(x2),
            y1: y1.min(y2),
            x2: x1.max(x2),
            y2: y1.max(y2),
        }
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        (self.x2 - self.x1).max(0.0) * (self.y2 - self.y1).max(0.0)
    }
}

/// Intersection-over-union of two boxes, in `[0, 1]`.
pub fn box_iou(a: &BoundingBox, b: &BoundingBox) -> f32 {
    let ix = (a.x2.min(b.x2) - a.x1.max(b.x1)).max(0.0);
    let iy = (a.y2.min(b.y2) - a.y1.max(b.y1)).max(0.0);
    let inter = ix * iy;
    let union = a.area() + b.area() - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// A scored, classified detection attached to an image index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Index of the image this detection belongs to.
    pub image: usize,
    /// Predicted class.
    pub class: usize,
    /// Confidence score (higher ranks earlier).
    pub score: f32,
    /// Predicted box.
    pub bbox: BoundingBox,
}

/// PASCAL-VOC-style mAP at the given IoU threshold (the paper uses 0.5).
///
/// `ground_truth[i]` holds `(class, box)` pairs for image `i`. Average
/// precision per class uses the all-points interpolation; classes with no
/// ground truth are skipped.
pub fn mean_average_precision(
    detections: &[Detection],
    ground_truth: &[Vec<(usize, BoundingBox)>],
    iou_threshold: f32,
    num_classes: usize,
) -> f64 {
    let mut aps = Vec::new();
    for class in 0..num_classes {
        let total_gt: usize = ground_truth
            .iter()
            .map(|g| g.iter().filter(|(c, _)| *c == class).count())
            .sum();
        if total_gt == 0 {
            continue;
        }
        let mut dets: Vec<&Detection> = detections.iter().filter(|d| d.class == class).collect();
        dets.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Track which ground-truth boxes have been matched.
        let mut matched: Vec<Vec<bool>> =
            ground_truth.iter().map(|g| vec![false; g.len()]).collect();
        let mut tp = vec![0u32; dets.len()];
        for (di, det) in dets.iter().enumerate() {
            let gts = &ground_truth[det.image];
            let mut best_iou = 0.0;
            let mut best_j = None;
            for (j, (c, gbox)) in gts.iter().enumerate() {
                if *c != class || matched[det.image][j] {
                    continue;
                }
                let iou = box_iou(&det.bbox, gbox);
                if iou > best_iou {
                    best_iou = iou;
                    best_j = Some(j);
                }
            }
            if best_iou >= iou_threshold {
                if let Some(j) = best_j {
                    matched[det.image][j] = true;
                    tp[di] = 1;
                }
            }
        }
        // Precision-recall sweep.
        let mut cum_tp = 0u32;
        let mut ap = 0.0f64;
        let mut prev_recall = 0.0f64;
        for (di, &t) in tp.iter().enumerate() {
            cum_tp += t;
            if t == 1 {
                let recall = cum_tp as f64 / total_gt as f64;
                let precision = cum_tp as f64 / (di + 1) as f64;
                ap += (recall - prev_recall) * precision;
                prev_recall = recall;
            }
        }
        aps.push(ap);
    }
    if aps.is_empty() {
        0.0
    } else {
        aps.iter().sum::<f64>() / aps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_identical_is_one() {
        let b = BoundingBox::new(0.0, 0.0, 4.0, 4.0);
        assert!((box_iou(&b, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = BoundingBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BoundingBox::new(3.0, 3.0, 5.0, 5.0);
        assert_eq!(box_iou(&a, &b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = BoundingBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BoundingBox::new(1.0, 0.0, 3.0, 2.0);
        // intersection 2, union 6.
        assert!((box_iou(&a, &b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn perfect_detections_score_one() {
        let gt = vec![vec![(0usize, BoundingBox::new(0.0, 0.0, 4.0, 4.0))]];
        let dets = vec![Detection {
            image: 0,
            class: 0,
            score: 0.9,
            bbox: BoundingBox::new(0.0, 0.0, 4.0, 4.0),
        }];
        let map = mean_average_precision(&dets, &gt, 0.5, 1);
        assert!((map - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missed_boxes_lower_map() {
        let gt = vec![vec![
            (0usize, BoundingBox::new(0.0, 0.0, 4.0, 4.0)),
            (0usize, BoundingBox::new(10.0, 10.0, 14.0, 14.0)),
        ]];
        let dets = vec![Detection {
            image: 0,
            class: 0,
            score: 0.9,
            bbox: BoundingBox::new(0.0, 0.0, 4.0, 4.0),
        }];
        let map = mean_average_precision(&dets, &gt, 0.5, 1);
        assert!((map - 0.5).abs() < 1e-9);
    }

    #[test]
    fn false_positive_before_true_positive_hurts() {
        let gt = vec![vec![(0usize, BoundingBox::new(0.0, 0.0, 4.0, 4.0))]];
        let dets = vec![
            Detection {
                image: 0,
                class: 0,
                score: 0.95,
                bbox: BoundingBox::new(20.0, 20.0, 24.0, 24.0),
            },
            Detection {
                image: 0,
                class: 0,
                score: 0.90,
                bbox: BoundingBox::new(0.0, 0.0, 4.0, 4.0),
            },
        ];
        let map = mean_average_precision(&dets, &gt, 0.5, 1);
        assert!((map - 0.5).abs() < 1e-9);
    }

    #[test]
    fn duplicate_detection_counts_once() {
        let gt = vec![vec![(0usize, BoundingBox::new(0.0, 0.0, 4.0, 4.0))]];
        let b = BoundingBox::new(0.0, 0.0, 4.0, 4.0);
        let dets = vec![
            Detection {
                image: 0,
                class: 0,
                score: 0.95,
                bbox: b,
            },
            Detection {
                image: 0,
                class: 0,
                score: 0.90,
                bbox: b,
            },
        ];
        let map = mean_average_precision(&dets, &gt, 0.5, 1);
        assert!((map - 1.0).abs() < 1e-9);
    }

    #[test]
    fn classes_without_gt_are_skipped() {
        let gt = vec![vec![(1usize, BoundingBox::new(0.0, 0.0, 4.0, 4.0))]];
        let dets = vec![Detection {
            image: 0,
            class: 1,
            score: 0.9,
            bbox: BoundingBox::new(0.0, 0.0, 4.0, 4.0),
        }];
        let map = mean_average_precision(&dets, &gt, 0.5, 5);
        assert!((map - 1.0).abs() < 1e-9);
    }
}

//! Sequence metrics: edit distance, word error rate, Rouge-L, perplexity.

/// Levenshtein edit distance between two token sequences.
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Word error rate over a corpus: total edit distance divided by total
/// reference length. The DeepSpeech2 quality metric (lower is better).
///
/// # Panics
///
/// Panics if the corpora have different lengths or the references are all
/// empty.
pub fn word_error_rate<T: PartialEq>(references: &[Vec<T>], hypotheses: &[Vec<T>]) -> f64 {
    assert_eq!(
        references.len(),
        hypotheses.len(),
        "WER: corpus length mismatch"
    );
    let total_ref: usize = references.iter().map(Vec::len).sum();
    assert!(total_ref > 0, "WER: empty reference corpus");
    let total_edits: usize = references
        .iter()
        .zip(hypotheses)
        .map(|(r, h)| edit_distance(r, h))
        .sum();
    total_edits as f64 / total_ref as f64
}

fn lcs_len<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let m = b.len();
    let mut prev = vec![0usize; m + 1];
    let mut cur = vec![0usize; m + 1];
    for ai in a {
        for j in 1..=m {
            cur[j] = if *ai == b[j - 1] {
                prev[j - 1] + 1
            } else {
                prev[j].max(cur[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.iter_mut().for_each(|v| *v = 0);
    }
    prev[m]
}

/// Rouge-L F-measure (β = 1.2, the convention of the summarization
/// literature), averaged over the corpus and scaled to `[0, 100]` as the
/// paper reports it (target: 41 on Gigaword).
///
/// # Panics
///
/// Panics if corpus lengths differ.
pub fn rouge_l<T: PartialEq>(references: &[Vec<T>], hypotheses: &[Vec<T>]) -> f64 {
    assert_eq!(
        references.len(),
        hypotheses.len(),
        "Rouge-L: corpus length mismatch"
    );
    let beta2 = 1.2f64 * 1.2;
    let mut total = 0.0;
    let mut count = 0usize;
    for (r, h) in references.iter().zip(hypotheses) {
        if r.is_empty() || h.is_empty() {
            count += 1;
            continue;
        }
        let l = lcs_len(r, h) as f64;
        let rec = l / r.len() as f64;
        let prec = l / h.len() as f64;
        if rec + prec > 0.0 {
            total += (1.0 + beta2) * rec * prec / (rec + beta2 * prec);
        }
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

/// Perplexity from a mean negative log-likelihood (nats per token):
/// `exp(nll)`. The Image-to-Text and NAS quality metric (lower is better).
pub fn perplexity(mean_nll: f64) -> f64 {
    mean_nll.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_known_cases() {
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 3]), 1);
        assert_eq!(edit_distance::<u8>(&[], &[1, 2]), 2);
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
    }

    #[test]
    fn wer_perfect_is_zero() {
        let refs = vec![vec![1, 2, 3], vec![4, 5]];
        assert_eq!(word_error_rate(&refs, &refs), 0.0);
    }

    #[test]
    fn wer_counts_substitutions() {
        let refs = vec![vec![1, 2, 3, 4]];
        let hyps = vec![vec![1, 9, 3, 4]];
        assert_eq!(word_error_rate(&refs, &hyps), 0.25);
    }

    #[test]
    fn rouge_l_perfect_is_100() {
        let refs = vec![vec![1, 2, 3]];
        let r = rouge_l(&refs, &refs);
        assert!((r - 100.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn rouge_l_disjoint_is_zero() {
        let refs = vec![vec![1, 2, 3]];
        let hyps = vec![vec![7, 8, 9]];
        assert_eq!(rouge_l(&refs, &hyps), 0.0);
    }

    #[test]
    fn rouge_l_partial_between() {
        let refs = vec![vec![1, 2, 3, 4]];
        let hyps = vec![vec![1, 2]];
        let r = rouge_l(&refs, &hyps);
        assert!(r > 0.0 && r < 100.0, "{r}");
    }

    #[test]
    fn perplexity_of_uniform() {
        // nll = ln(V) over a vocabulary of V gives perplexity V.
        let v = 50.0f64;
        assert!((perplexity(v.ln()) - v).abs() < 1e-9);
    }
}

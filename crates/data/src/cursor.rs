//! A resumable mini-batch cursor.
//!
//! [`batches`](crate::batch::batches) reshuffles a whole epoch at once,
//! which is fine for epoch-granular checkpointing — the trainers simply
//! re-enter `train_epoch` after a restore. `BatchCursor` is the
//! finer-grained alternative: it walks the same shuffled order one batch at
//! a time and carries its complete position (epoch, next batch, the live
//! permutation, and the RNG) through [`Snapshot`]/[`Restore`], so a run can
//! stop *between batches* and resume bit-identically.

use aibench_ckpt::{key, CkptError, Restore, Snapshot, State};
use aibench_tensor::Rng;

/// A stateful iterator over shuffled index mini-batches of `0..len`,
/// reshuffling at every epoch boundary, whose exact position is
/// checkpointable.
///
/// # Example
///
/// ```
/// use aibench_data::cursor::BatchCursor;
/// use aibench_tensor::Rng;
///
/// let mut cur = BatchCursor::new(10, 4, Rng::seed_from(7));
/// let first = cur.next_batch();
/// assert_eq!(first.len(), 4);
/// assert_eq!(cur.epoch(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct BatchCursor {
    len: usize,
    batch_size: usize,
    rng: Rng,
    epoch: u64,
    next_start: usize,
    order: Vec<usize>,
}

impl BatchCursor {
    /// A cursor over `0..len` in batches of `batch_size`, shuffled by
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `batch_size == 0`.
    pub fn new(len: usize, batch_size: usize, mut rng: Rng) -> Self {
        assert!(len > 0, "BatchCursor over an empty dataset");
        assert!(batch_size > 0, "batch_size must be positive");
        let order = rng.permutation(len);
        BatchCursor {
            len,
            batch_size,
            rng,
            epoch: 0,
            next_start: 0,
            order,
        }
    }

    /// Zero-based index of the epoch the next batch belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Batches already taken from the current epoch.
    pub fn batches_into_epoch(&self) -> usize {
        self.next_start.div_ceil(self.batch_size)
    }

    /// Batches per full epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.len.div_ceil(self.batch_size)
    }

    /// Returns the next mini-batch of indices, rolling into a freshly
    /// shuffled epoch when the current one is exhausted. The final batch of
    /// an epoch may be short.
    pub fn next_batch(&mut self) -> Vec<usize> {
        if self.next_start >= self.len {
            self.order = self.rng.permutation(self.len);
            self.next_start = 0;
            self.epoch += 1;
        }
        let end = (self.next_start + self.batch_size).min(self.len);
        let batch = self.order[self.next_start..end].to_vec();
        self.next_start = end;
        batch
    }
}

impl Snapshot for BatchCursor {
    fn snapshot(&self, state: &mut State, prefix: &str) {
        state.put_usize(key(prefix, "len"), self.len);
        state.put_usize(key(prefix, "batch_size"), self.batch_size);
        state.put_u64(key(prefix, "epoch"), self.epoch);
        state.put_usize(key(prefix, "next_start"), self.next_start);
        state.put_u64s(
            key(prefix, "order"),
            self.order.iter().map(|&i| i as u64).collect(),
        );
        self.rng.snapshot(state, &key(prefix, "rng"));
    }
}

impl Restore for BatchCursor {
    fn restore(&mut self, state: &State, prefix: &str) -> Result<(), CkptError> {
        let len = state.usize(&key(prefix, "len"))?;
        let batch_size = state.usize(&key(prefix, "batch_size"))?;
        if len != self.len || batch_size != self.batch_size {
            return Err(CkptError::MetaMismatch {
                what: format!(
                    "cursor `{prefix}` is over {}/{}, snapshot is over {len}/{batch_size}",
                    self.len, self.batch_size
                ),
            });
        }
        self.epoch = state.u64(&key(prefix, "epoch"))?;
        self.next_start = state.usize(&key(prefix, "next_start"))?;
        self.order = state
            .u64s(&key(prefix, "order"))?
            .iter()
            .map(|&i| i as usize)
            .collect();
        self.rng.restore(state, &key(prefix, "rng"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_each_epoch() {
        let mut cur = BatchCursor::new(23, 5, Rng::seed_from(3));
        for _ in 0..3 {
            let mut seen: Vec<usize> = Vec::new();
            for _ in 0..cur.batches_per_epoch() {
                seen.extend(cur.next_batch());
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..23).collect::<Vec<_>>());
        }
        assert_eq!(cur.epoch(), 2);
    }

    #[test]
    fn mid_epoch_restore_resumes_the_exact_stream() {
        let mut cur = BatchCursor::new(17, 4, Rng::seed_from(9));
        // Stop in the middle of the second epoch.
        for _ in 0..7 {
            cur.next_batch();
        }
        let mut state = State::new();
        cur.snapshot(&mut state, "cursor");
        let mut resumed = BatchCursor::new(17, 4, Rng::seed_from(0));
        resumed.restore(&state, "cursor").unwrap();
        for _ in 0..20 {
            assert_eq!(cur.next_batch(), resumed.next_batch());
        }
        assert_eq!(cur.epoch(), resumed.epoch());
    }

    #[test]
    fn restore_rejects_mismatched_geometry() {
        let cur = BatchCursor::new(10, 2, Rng::seed_from(1));
        let mut state = State::new();
        cur.snapshot(&mut state, "cursor");
        let mut other = BatchCursor::new(12, 2, Rng::seed_from(1));
        assert!(matches!(
            other.restore(&state, "cursor"),
            Err(CkptError::MetaMismatch { .. })
        ));
    }
}

//! Synthetic single-view 3-D reconstruction data (ShapeNet stand-in,
//! DC-AI-C13).

use aibench_tensor::{Rng, Tensor};

const TEST_SALT: u64 = 0x5eed_0000_0007;

/// Primitive solids (boxes, spheres, cylinders) voxelized on a cubic grid;
/// the input is the 2-D silhouette projected along the depth axis and the
/// target is the full occupancy grid, mirroring the perspective-transformer
/// setup of the paper (average IoU metric).
#[derive(Debug, Clone)]
pub struct VoxelDataset {
    grid: usize,
    len: usize,
    seed: u64,
}

impl VoxelDataset {
    /// Creates `len` shapes on a `grid`³ lattice.
    pub fn new(grid: usize, len: usize, seed: u64) -> Self {
        assert!(grid >= 8, "voxel grid too small");
        VoxelDataset { grid, len, seed }
    }

    /// Number of shapes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lattice edge length.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// The `index`-th sample: `(silhouette [g, g], voxels [g, g, g])`.
    pub fn sample(&self, index: usize, test: bool) -> (Tensor, Tensor) {
        let salt = if test { TEST_SALT } else { 0 };
        let mut rng = Rng::seed_from(self.seed ^ salt ^ (index as u64).wrapping_mul(0x3d0b));
        let g = self.grid;
        let kind = rng.below(3);
        let gf = g as f32;
        let cx = rng.uniform_in(gf * 0.35, gf * 0.65);
        let cy = rng.uniform_in(gf * 0.35, gf * 0.65);
        let cz = rng.uniform_in(gf * 0.35, gf * 0.65);
        let r = rng.uniform_in(gf * 0.15, gf * 0.3);
        let mut vox = Tensor::zeros(&[g, g, g]);
        for z in 0..g {
            for y in 0..g {
                for x in 0..g {
                    let (fx, fy, fz) = (x as f32 - cx, y as f32 - cy, z as f32 - cz);
                    let inside = match kind {
                        0 => fx.abs() <= r && fy.abs() <= r && fz.abs() <= r, // box
                        1 => fx * fx + fy * fy + fz * fz <= r * r,            // sphere
                        _ => fx * fx + fy * fy <= r * r && fz.abs() <= r,     // cylinder
                    };
                    if inside {
                        vox.data_mut()[(z * g + y) * g + x] = 1.0;
                    }
                }
            }
        }
        // Silhouette: projection along z (any occupied voxel in the column).
        let mut sil = Tensor::zeros(&[g, g]);
        for y in 0..g {
            for x in 0..g {
                let occupied = (0..g).any(|z| vox.data()[(z * g + y) * g + x] > 0.5);
                sil.data_mut()[y * g + x] = if occupied { 1.0 } else { 0.0 };
            }
        }
        (sil, vox)
    }

    /// Stacks samples: `([n, 1, g, g], [n, g³])`.
    pub fn batch(&self, indices: &[usize], test: bool) -> (Tensor, Tensor) {
        let g = self.grid;
        let sil_per = g * g;
        let vox_per = g * g * g;
        let mut x = Tensor::zeros(&[indices.len(), 1, g, g]);
        let mut y = Tensor::zeros(&[indices.len(), vox_per]);
        for (bi, &i) in indices.iter().enumerate() {
            let (sil, vox) = self.sample(i, test);
            x.data_mut()[bi * sil_per..(bi + 1) * sil_per].copy_from_slice(sil.data());
            y.data_mut()[bi * vox_per..(bi + 1) * vox_per].copy_from_slice(vox.data());
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::voxel_iou;

    #[test]
    fn silhouette_is_projection_of_voxels() {
        let ds = VoxelDataset::new(10, 50, 1);
        let (sil, vox) = ds.sample(0, false);
        let g = 10;
        for y in 0..g {
            for x in 0..g {
                let col_occupied = (0..g).any(|z| vox.at(&[z, y, x]) > 0.5);
                assert_eq!(sil.at(&[y, x]) > 0.5, col_occupied);
            }
        }
    }

    #[test]
    fn shapes_are_nonempty_solids() {
        let ds = VoxelDataset::new(10, 50, 2);
        for i in 0..20 {
            let (_, vox) = ds.sample(i, false);
            let filled = vox.sum();
            assert!(filled >= 8.0, "shape {i} too small: {filled}");
            assert!(filled <= 700.0, "shape {i} fills the grid: {filled}");
        }
    }

    #[test]
    fn iou_against_self_is_one() {
        let ds = VoxelDataset::new(8, 10, 3);
        let (_, vox) = ds.sample(0, false);
        assert_eq!(voxel_iou(&vox, &vox), 1.0);
    }
}

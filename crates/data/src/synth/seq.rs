//! Token-sequence datasets: translation, summarization, and a character-
//! level language-modeling stream for the NAS benchmark.

use aibench_tensor::Rng;

/// Padding token id (shared across all sequence datasets).
pub const PAD: usize = 0;
/// Beginning-of-sequence token id.
pub const BOS: usize = 1;
/// End-of-sequence token id.
pub const EOS: usize = 2;

const SPECIALS: usize = 3;
const TEST_SALT: u64 = 0x5eed_0000_0003;

/// Synthetic WMT stand-in (DC-AI-C3 and the MLPerf translation baselines):
/// the "target language" applies a fixed vocabulary permutation to the
/// source and reverses the word order — a rule a seq2seq model must learn
/// end-to-end.
#[derive(Debug, Clone)]
pub struct TranslationDataset {
    mapping: Vec<usize>,
    vocab: usize,
    max_len: usize,
    len: usize,
    seed: u64,
}

impl TranslationDataset {
    /// Creates `len` sentence pairs over a content vocabulary of `vocab`
    /// tokens (plus PAD/BOS/EOS), with source lengths in `[3, max_len]`.
    pub fn new(vocab: usize, max_len: usize, len: usize, seed: u64) -> Self {
        assert!(max_len >= 3 && vocab >= 4, "degenerate translation task");
        let mut rng = Rng::seed_from(seed);
        let perm = rng.permutation(vocab);
        let mapping = perm.iter().map(|&p| p + SPECIALS).collect();
        TranslationDataset {
            mapping,
            vocab,
            max_len,
            len,
            seed,
        }
    }

    /// Number of sentence pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total vocabulary size including the special tokens.
    pub fn vocab_size(&self) -> usize {
        self.vocab + SPECIALS
    }

    /// Maximum source length (target adds BOS/EOS).
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// The `index`-th pair: `(source, target)`, where
    /// `target = BOS, rev(map(source)), EOS`, both padded to fixed widths
    /// (`max_len` and `max_len + 2`).
    pub fn pair(&self, index: usize, test: bool) -> (Vec<usize>, Vec<usize>) {
        let salt = if test { TEST_SALT } else { 0 };
        let mut rng = Rng::seed_from(self.seed ^ salt ^ (index as u64).wrapping_mul(0x7ab1));
        let n = 3 + rng.below(self.max_len - 2);
        let src: Vec<usize> = (0..n).map(|_| SPECIALS + rng.below(self.vocab)).collect();
        let mut tgt = Vec::with_capacity(n + 2);
        tgt.push(BOS);
        for &s in src.iter().rev() {
            tgt.push(self.mapping[s - SPECIALS]);
        }
        tgt.push(EOS);
        let mut src_p = src;
        src_p.resize(self.max_len, PAD);
        tgt.resize(self.max_len + 2, PAD);
        (src_p, tgt)
    }

    /// Applies the ground-truth translation rule (for metric computation).
    pub fn translate(&self, src: &[usize]) -> Vec<usize> {
        src.iter()
            .rev()
            .filter(|&&t| t >= SPECIALS)
            .map(|&t| self.mapping[t - SPECIALS])
            .collect()
    }
}

/// Synthetic Gigaword stand-in (DC-AI-C14): documents are filler tokens
/// with a few salient "keyword" tokens scattered through; the reference
/// summary is the keywords in order of appearance.
#[derive(Debug, Clone)]
pub struct SummarizationDataset {
    keyword_vocab: usize,
    filler_vocab: usize,
    doc_len: usize,
    summary_len: usize,
    len: usize,
    seed: u64,
}

impl SummarizationDataset {
    /// Creates `len` documents of `doc_len` tokens with `summary_len`
    /// keywords each.
    pub fn new(
        keyword_vocab: usize,
        filler_vocab: usize,
        doc_len: usize,
        summary_len: usize,
        len: usize,
        seed: u64,
    ) -> Self {
        assert!(summary_len < doc_len, "summary longer than document");
        SummarizationDataset {
            keyword_vocab,
            filler_vocab,
            doc_len,
            summary_len,
            len,
            seed,
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total vocabulary size: specials + keywords + filler.
    pub fn vocab_size(&self) -> usize {
        SPECIALS + self.keyword_vocab + self.filler_vocab
    }

    /// Document length in tokens.
    pub fn doc_len(&self) -> usize {
        self.doc_len
    }

    /// Summary length including BOS/EOS.
    pub fn summary_width(&self) -> usize {
        self.summary_len + 2
    }

    /// True if `token` is a keyword token.
    pub fn is_keyword(&self, token: usize) -> bool {
        (SPECIALS..SPECIALS + self.keyword_vocab).contains(&token)
    }

    /// The `index`-th `(document, summary)` pair; the summary is
    /// `BOS, keywords.., EOS`.
    pub fn pair(&self, index: usize, test: bool) -> (Vec<usize>, Vec<usize>) {
        let salt = if test { TEST_SALT } else { 0 };
        let mut rng = Rng::seed_from(self.seed ^ salt ^ (index as u64).wrapping_mul(0x50aa));
        let mut doc: Vec<usize> = (0..self.doc_len)
            .map(|_| SPECIALS + self.keyword_vocab + rng.below(self.filler_vocab))
            .collect();
        // Place keywords at distinct positions.
        let positions = {
            let mut p = rng.permutation(self.doc_len);
            p.truncate(self.summary_len);
            p.sort_unstable();
            p
        };
        let mut summary = Vec::with_capacity(self.summary_len + 2);
        summary.push(BOS);
        for &pos in &positions {
            let kw = SPECIALS + rng.below(self.keyword_vocab);
            doc[pos] = kw;
            summary.push(kw);
        }
        summary.push(EOS);
        (doc, summary)
    }
}

/// A deterministic order-2 Markov token stream standing in for PTB in the
/// Neural Architecture Search benchmark (DC-AI-C17): each token depends on
/// the previous two through a sparse transition table, so a recurrent child
/// model can reach low perplexity while a memoryless one cannot.
#[derive(Debug, Clone)]
pub struct CharLmDataset {
    vocab: usize,
    table: Vec<[usize; 3]>, // allowed successors per (prev2 * vocab + prev1)
    seq_len: usize,
    len: usize,
    seed: u64,
}

impl CharLmDataset {
    /// Creates `len` sequences of `seq_len` tokens over `vocab` symbols.
    pub fn new(vocab: usize, seq_len: usize, len: usize, seed: u64) -> Self {
        assert!(vocab >= 4, "vocab too small for a Markov structure");
        let mut rng = Rng::seed_from(seed);
        let table = (0..vocab * vocab)
            .map(|_| [rng.below(vocab), rng.below(vocab), rng.below(vocab)])
            .collect();
        CharLmDataset {
            vocab,
            table,
            seq_len,
            len,
            seed,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `index`-th token sequence.
    pub fn sequence(&self, index: usize, test: bool) -> Vec<usize> {
        let salt = if test { TEST_SALT } else { 0 };
        let mut rng = Rng::seed_from(self.seed ^ salt ^ (index as u64).wrapping_mul(0x1a2b));
        let mut seq = Vec::with_capacity(self.seq_len);
        seq.push(rng.below(self.vocab));
        seq.push(rng.below(self.vocab));
        for t in 2..self.seq_len {
            let key = seq[t - 2] * self.vocab + seq[t - 1];
            let choices = &self.table[key];
            seq.push(choices[rng.below(3)]);
        }
        seq
    }

    /// The best achievable perplexity of the stream (three equiprobable
    /// successors → 3, modulo collisions in the successor table).
    pub fn entropy_floor(&self) -> f64 {
        3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_rule_is_reverse_map() {
        let ds = TranslationDataset::new(10, 6, 100, 1);
        let (src, tgt) = ds.pair(0, false);
        let content: Vec<usize> = src.iter().copied().filter(|&t| t != PAD).collect();
        let expect = ds.translate(&content);
        assert_eq!(tgt[0], BOS);
        let body: Vec<usize> = tgt[1..1 + expect.len()].to_vec();
        assert_eq!(body, expect);
        assert_eq!(tgt[1 + expect.len()], EOS);
    }

    #[test]
    fn translation_padded_widths_fixed() {
        let ds = TranslationDataset::new(10, 6, 100, 2);
        for i in 0..20 {
            let (src, tgt) = ds.pair(i, false);
            assert_eq!(src.len(), 6);
            assert_eq!(tgt.len(), 8);
        }
    }

    #[test]
    fn summarization_keywords_appear_in_doc_order() {
        let ds = SummarizationDataset::new(8, 40, 20, 4, 100, 3);
        let (doc, summary) = ds.pair(0, false);
        assert_eq!(summary.len(), 6);
        assert_eq!(summary[0], BOS);
        assert_eq!(summary[5], EOS);
        let doc_keywords: Vec<usize> = doc.iter().copied().filter(|&t| ds.is_keyword(t)).collect();
        assert_eq!(doc_keywords, summary[1..5].to_vec());
    }

    #[test]
    fn markov_stream_is_predictable() {
        let ds = CharLmDataset::new(12, 50, 10, 4);
        let seq = ds.sequence(0, false);
        assert_eq!(seq.len(), 50);
        // Every transition must be one of the three allowed successors.
        for t in 2..seq.len() {
            let key = seq[t - 2] * 12 + seq[t - 1];
            assert!(ds.table[key].contains(&seq[t]));
        }
    }

    #[test]
    fn sequences_deterministic() {
        let ds = CharLmDataset::new(12, 30, 10, 5);
        assert_eq!(ds.sequence(3, false), ds.sequence(3, false));
        assert_ne!(ds.sequence(3, false), ds.sequence(3, true));
    }
}

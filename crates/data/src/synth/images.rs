//! Image datasets: classification prototypes, spatial-transformer digits,
//! and face-identity sets (RGB and RGB-D).

use aibench_tensor::{Rng, Tensor};

const TEST_SALT: u64 = 0x5eed_0000_0001;

/// Synthetic stand-in for ImageNet-style classification (DC-AI-C1, and the
/// Image Compression input distribution of DC-AI-C12).
///
/// Each class owns a random smooth prototype image; a sample is its class
/// prototype blended with per-sample noise, so a CNN must learn the class
/// templates to separate them.
#[derive(Debug, Clone)]
pub struct ImageClassDataset {
    prototypes: Vec<Tensor>,
    channels: usize,
    size: usize,
    len: usize,
    noise: f32,
    seed: u64,
}

impl ImageClassDataset {
    /// Creates a dataset of `len` training samples over `classes` classes
    /// of `channels`×`size`×`size` images.
    pub fn new(classes: usize, channels: usize, size: usize, len: usize, seed: u64) -> Self {
        Self::with_noise(classes, channels, size, len, seed, 0.6)
    }

    /// Like [`ImageClassDataset::new`] with an explicit noise level —
    /// higher noise makes the task harder and convergence more variable.
    pub fn with_noise(
        classes: usize,
        channels: usize,
        size: usize,
        len: usize,
        seed: u64,
        noise: f32,
    ) -> Self {
        assert!(classes > 0 && size > 0 && len > 0, "degenerate dataset");
        let mut rng = Rng::seed_from(seed);
        let prototypes = (0..classes)
            .map(|_| smooth_image(channels, size, &mut rng))
            .collect();
        ImageClassDataset {
            prototypes,
            channels,
            size,
            len,
            noise,
            seed,
        }
    }

    /// Number of training samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.prototypes.len()
    }

    /// Image shape `[channels, size, size]`.
    pub fn image_shape(&self) -> [usize; 3] {
        [self.channels, self.size, self.size]
    }

    fn sample(&self, index: usize, salt: u64) -> (Tensor, usize) {
        let class = index % self.prototypes.len();
        let mut rng = Rng::seed_from(self.seed ^ salt ^ (index as u64).wrapping_mul(0x9E37_79B9));
        let proto = &self.prototypes[class];
        let img = proto
            .map(|v| v) // clone via map keeps shape
            .zip(&Tensor::from_fn(proto.shape(), |_| rng.normal()), |p, n| {
                p + self.noise * n
            });
        (img, class)
    }

    /// Builds a training batch `([n, c, s, s], labels)` for the given
    /// indices.
    pub fn train_batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        self.batch(indices, 0)
    }

    /// Builds a held-out test batch (disjoint noise realizations).
    pub fn test_batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        self.batch(indices, TEST_SALT)
    }

    fn batch(&self, indices: &[usize], salt: u64) -> (Tensor, Vec<usize>) {
        let n = indices.len();
        let per = self.channels * self.size * self.size;
        let mut x = Tensor::zeros(&[n, self.channels, self.size, self.size]);
        let mut y = Vec::with_capacity(n);
        for (bi, &i) in indices.iter().enumerate() {
            let (img, class) = self.sample(i, salt);
            x.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(img.data());
            y.push(class);
        }
        (x, y)
    }
}

/// A smooth random image: sum of a few random 2-D cosine modes per channel.
fn smooth_image(channels: usize, size: usize, rng: &mut Rng) -> Tensor {
    let mut img = Tensor::zeros(&[channels, size, size]);
    for c in 0..channels {
        for _ in 0..4 {
            let fx = rng.uniform_in(0.5, 3.0);
            let fy = rng.uniform_in(0.5, 3.0);
            let px = rng.uniform_in(0.0, std::f32::consts::TAU);
            let py = rng.uniform_in(0.0, std::f32::consts::TAU);
            let amp = rng.uniform_in(0.3, 1.0);
            for y in 0..size {
                for x in 0..size {
                    let v = amp
                        * (fx * x as f32 / size as f32 * std::f32::consts::TAU + px).cos()
                        * (fy * y as f32 / size as f32 * std::f32::consts::TAU + py).cos();
                    img.data_mut()[(c * size + y) * size + x] += v;
                }
            }
        }
    }
    img.scale(0.5)
}

/// Synthetic MNIST stand-in with random affine distortion, for the Spatial
/// Transformer benchmark (DC-AI-C15): classification only succeeds once the
/// network can undo the rotation/translation/scale jitter.
#[derive(Debug, Clone)]
pub struct StnDataset {
    base: ImageClassDataset,
    max_rotate: f32,
    max_shift: f32,
}

impl StnDataset {
    /// Creates distorted-digit data over `classes` glyphs of `size`².
    pub fn new(classes: usize, size: usize, len: usize, seed: u64) -> Self {
        StnDataset {
            base: ImageClassDataset::with_noise(classes, 1, size, len, seed, 0.25),
            max_rotate: 0.4,
            max_shift: 0.2,
        }
    }

    /// Number of training samples.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.base.classes()
    }

    /// Image size (square, single channel).
    pub fn size(&self) -> usize {
        self.base.size
    }

    fn distort(&self, img: &Tensor, rng: &mut Rng) -> Tensor {
        let size = self.base.size;
        let angle = rng.uniform_in(-self.max_rotate, self.max_rotate);
        let (sx, sy) = (
            rng.uniform_in(-self.max_shift, self.max_shift),
            rng.uniform_in(-self.max_shift, self.max_shift),
        );
        let (ca, sa) = (angle.cos(), angle.sin());
        // Inverse-map each output pixel through the affine transform and
        // sample bilinearly.
        let mut out = Tensor::zeros(img.shape());
        let half = (size as f32 - 1.0) / 2.0;
        for y in 0..size {
            for x in 0..size {
                let nx = (x as f32 - half) / half;
                let ny = (y as f32 - half) / half;
                let ux = ca * nx - sa * ny + sx;
                let uy = sa * nx + ca * ny + sy;
                let px = (ux + 1.0) * half;
                let py = (uy + 1.0) * half;
                let x0 = px.floor() as isize;
                let y0 = py.floor() as isize;
                let fx = px - x0 as f32;
                let fy = py - y0 as f32;
                let mut acc = 0.0;
                for (dy, dx, wgt) in [
                    (0, 0, (1.0 - fx) * (1.0 - fy)),
                    (0, 1, fx * (1.0 - fy)),
                    (1, 0, (1.0 - fx) * fy),
                    (1, 1, fx * fy),
                ] {
                    let (yy, xx) = (y0 + dy, x0 + dx);
                    if yy >= 0 && yy < size as isize && xx >= 0 && xx < size as isize {
                        acc += wgt * img.data()[yy as usize * size + xx as usize];
                    }
                }
                out.data_mut()[y * size + x] = acc;
            }
        }
        out
    }

    fn batch(&self, indices: &[usize], salt: u64) -> (Tensor, Vec<usize>) {
        let size = self.base.size;
        let per = size * size;
        let mut x = Tensor::zeros(&[indices.len(), 1, size, size]);
        let mut labels = Vec::with_capacity(indices.len());
        for (bi, &i) in indices.iter().enumerate() {
            let (img, class) = self.base.sample(i, salt);
            let mut rng =
                Rng::seed_from(self.base.seed ^ salt ^ (i as u64).wrapping_mul(0xA5A5_1234));
            let distorted = self.distort(&img, &mut rng);
            x.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(distorted.data());
            labels.push(class);
        }
        (x, labels)
    }

    /// Builds a training batch of distorted digits.
    pub fn train_batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        self.batch(indices, 0)
    }

    /// Builds a held-out test batch.
    pub fn test_batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        self.batch(indices, TEST_SALT)
    }
}

/// Face-identity data for Face Embedding (DC-AI-C7): each identity is a
/// prototype image; samples add pose-like smooth perturbations. Supplies
/// triplets for training and same/different pairs for verification
/// accuracy.
#[derive(Debug, Clone)]
pub struct FaceDataset {
    base: ImageClassDataset,
}

impl FaceDataset {
    /// Creates `identities` identities of `size`² grayscale faces.
    pub fn new(identities: usize, size: usize, len: usize, seed: u64) -> Self {
        FaceDataset {
            base: ImageClassDataset::with_noise(identities, 1, size, len, seed, 0.35),
        }
    }

    /// Number of identities.
    pub fn identities(&self) -> usize {
        self.base.classes()
    }

    /// Image size.
    pub fn size(&self) -> usize {
        self.base.size
    }

    /// Builds a triplet batch `(anchor, positive, negative)`, each
    /// `[n, 1, s, s]`, keyed by a step counter for determinism.
    pub fn triplet_batch(&self, n: usize, step: u64) -> (Tensor, Tensor, Tensor) {
        let mut rng = Rng::seed_from(self.base.seed ^ 0xface ^ step);
        let ids = self.identities();
        let size = self.base.size;
        let per = size * size;
        let mut a = Tensor::zeros(&[n, 1, size, size]);
        let mut p = Tensor::zeros(&[n, 1, size, size]);
        let mut ng = Tensor::zeros(&[n, 1, size, size]);
        for bi in 0..n {
            let id = rng.below(ids);
            let mut neg_id = rng.below(ids);
            while neg_id == id {
                neg_id = rng.below(ids);
            }
            let (ai, _) = self.base.sample(id + ids * rng.below(64), 0);
            let (pi, _) = self.base.sample(id + ids * rng.below(64), 1);
            let (ni, _) = self.base.sample(neg_id + ids * rng.below(64), 2);
            a.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(ai.data());
            p.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(pi.data());
            ng.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(ni.data());
        }
        (a, p, ng)
    }

    /// Builds `n` verification pairs: `(left, right, same?)`.
    pub fn verification_pairs(&self, n: usize) -> (Tensor, Tensor, Vec<bool>) {
        let mut rng = Rng::seed_from(self.base.seed ^ 0xbeef);
        let ids = self.identities();
        let size = self.base.size;
        let per = size * size;
        let mut a = Tensor::zeros(&[n, 1, size, size]);
        let mut b = Tensor::zeros(&[n, 1, size, size]);
        let mut same = Vec::with_capacity(n);
        for bi in 0..n {
            let is_same = bi % 2 == 0;
            let id = rng.below(ids);
            let other = if is_same {
                id
            } else {
                let mut o = rng.below(ids);
                while o == id {
                    o = rng.below(ids);
                }
                o
            };
            let (ai, _) = self.base.sample(id + ids * rng.below(64), TEST_SALT);
            let (bi_img, _) = self.base.sample(other + ids * rng.below(64), TEST_SALT ^ 1);
            a.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(ai.data());
            b.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(bi_img.data());
            same.push(is_same);
        }
        (a, b, same)
    }
}

/// RGB-D face identification data for 3D Face Recognition (DC-AI-C8):
/// four-channel images (color + depth) classified by identity. The noise
/// level is deliberately high — the paper measures this benchmark's
/// run-to-run variation at 38.46%, the largest of the suite.
#[derive(Debug, Clone)]
pub struct FaceDepthDataset {
    base: ImageClassDataset,
}

impl FaceDepthDataset {
    /// Creates `identities` identities of 4-channel `size`² images.
    pub fn new(identities: usize, size: usize, len: usize, seed: u64) -> Self {
        FaceDepthDataset {
            base: ImageClassDataset::with_noise(identities, 4, size, len, seed, 0.9),
        }
    }

    /// Number of training samples.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Number of identities.
    pub fn identities(&self) -> usize {
        self.base.classes()
    }

    /// Image shape `[4, size, size]`.
    pub fn image_shape(&self) -> [usize; 3] {
        self.base.image_shape()
    }

    /// Builds a training batch.
    pub fn train_batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        self.base.train_batch(indices)
    }

    /// Builds a held-out test batch.
    pub fn test_batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        self.base.test_batch(indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic() {
        let ds = ImageClassDataset::new(4, 1, 8, 100, 9);
        let (a, la) = ds.train_batch(&[0, 1, 2]);
        let (b, lb) = ds.train_batch(&[0, 1, 2]);
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn test_split_differs_from_train() {
        let ds = ImageClassDataset::new(4, 1, 8, 100, 9);
        let (a, _) = ds.train_batch(&[0]);
        let (b, _) = ds.test_batch(&[0]);
        assert!(a.max_abs_diff(&b) > 1e-3);
    }

    #[test]
    fn same_class_closer_than_other_class() {
        let ds = ImageClassDataset::new(4, 1, 12, 100, 11);
        // Samples 0 and 4 share class 0; sample 1 is class 1.
        let (x, y) = ds.train_batch(&[0, 4, 1]);
        assert_eq!(y, vec![0, 0, 1]);
        let per = 144;
        let d01: f32 = (0..per)
            .map(|i| (x.data()[i] - x.data()[per + i]).powi(2))
            .sum();
        let d02: f32 = (0..per)
            .map(|i| (x.data()[i] - x.data()[2 * per + i]).powi(2))
            .sum();
        assert!(d01 < d02, "intra {d01} vs inter {d02}");
    }

    #[test]
    fn stn_distortion_changes_image() {
        let ds = StnDataset::new(4, 12, 50, 3);
        let (x, y) = ds.train_batch(&[0, 8]);
        assert_eq!(x.shape(), &[2, 1, 12, 12]);
        assert_eq!(y, vec![0, 0]);
        // Two distortions of the same class differ.
        let per = 144;
        let diff: f32 = (0..per)
            .map(|i| (x.data()[i] - x.data()[per + i]).abs())
            .sum();
        assert!(diff > 1.0);
    }

    #[test]
    fn face_triplets_shapes() {
        let ds = FaceDataset::new(6, 10, 100, 5);
        let (a, p, n) = ds.triplet_batch(4, 0);
        assert_eq!(a.shape(), &[4, 1, 10, 10]);
        assert_eq!(p.shape(), a.shape());
        assert_eq!(n.shape(), a.shape());
    }

    #[test]
    fn verification_pairs_alternate() {
        let ds = FaceDataset::new(6, 10, 100, 5);
        let (_, _, same) = ds.verification_pairs(6);
        assert_eq!(same, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn rgbd_has_four_channels() {
        let ds = FaceDepthDataset::new(5, 8, 50, 2);
        let (x, _) = ds.train_batch(&[0, 1]);
        assert_eq!(x.shape(), &[2, 4, 8, 8]);
    }
}

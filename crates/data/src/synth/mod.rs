//! Synthetic, seeded dataset generators — one per AIBench task modality.
//!
//! Each generator replaces a real dataset the paper uses (ImageNet,
//! VOC2007, Gowalla, …) with a deterministic synthetic equivalent carrying a
//! genuine learnable signal, so entire training sessions converge to
//! non-trivial quality targets. Samples are derived from per-index seeds,
//! so datasets cost O(prototypes) memory regardless of length.

mod caption;
mod detection;
mod gan;
mod image2image;
mod images;
mod ranking;
mod seq;
mod speech;
mod video;
mod voxel;

pub use caption::CaptionDataset;
pub use detection::{DetectionDataset, DetectionSample};
pub use gan::GanDataset;
pub use image2image::Image2ImageDataset;
pub use images::{FaceDataset, FaceDepthDataset, ImageClassDataset, StnDataset};
pub use ranking::{RankingDataset, RecommendationDataset};
pub use seq::{CharLmDataset, SummarizationDataset, TranslationDataset, BOS, EOS, PAD};
pub use speech::SpeechDataset;
pub use video::VideoDataset;
pub use voxel::VoxelDataset;

//! Real-data distribution for the WGAN benchmark (LSUN stand-in,
//! DC-AI-C2).

use aibench_tensor::{Rng, Tensor};

/// A structured low-dimensional image distribution: samples are
/// `x = A z + 0.05 ε` with `z ~ N(0, I_k)` for a fixed random factor matrix
/// `A`, i.e. a `k`-dimensional Gaussian manifold embedded in pixel space.
/// A WGAN with an MLP generator (the paper's architecture) can match it,
/// and the critic's loss estimates the Earth-Mover distance, which is the
/// paper's stopping criterion (EM ≈ 0.5 ± 0.005 scaled).
#[derive(Debug, Clone)]
pub struct GanDataset {
    factors: Tensor, // [k, d]
    dim: usize,
    latent: usize,
}

impl GanDataset {
    /// Creates a distribution over `dim`-dimensional samples with a
    /// `latent`-dimensional true manifold.
    pub fn new(dim: usize, latent: usize, seed: u64) -> Self {
        assert!(latent <= dim, "latent dim exceeds ambient dim");
        let mut rng = Rng::seed_from(seed);
        let factors = Tensor::from_fn(&[latent, dim], |_| {
            rng.normal_with(0.0, 1.0 / (latent as f32).sqrt())
        });
        GanDataset {
            factors,
            dim,
            latent,
        }
    }

    /// Ambient sample dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Latent manifold dimension.
    pub fn latent(&self) -> usize {
        self.latent
    }

    /// Draws `n` real samples `[n, dim]`.
    pub fn sample_real(&self, n: usize, rng: &mut Rng) -> Tensor {
        let z = Tensor::randn(&[n, self.latent], rng);
        let mut x = z.matmul(&self.factors);
        let noise = Tensor::from_fn(x.shape(), |_| rng.normal_with(0.0, 0.05));
        x = x.add(&noise);
        x
    }

    /// Draws `n` latent noise vectors `[n, latent]` for the generator.
    pub fn sample_noise(&self, n: usize, rng: &mut Rng) -> Tensor {
        Tensor::randn(&[n, self.latent], rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_samples_live_near_the_manifold() {
        let ds = GanDataset::new(16, 2, 1);
        let mut rng = Rng::seed_from(2);
        let x = ds.sample_real(200, &mut rng);
        assert_eq!(x.shape(), &[200, 16]);
        // The sample covariance should be dominated by the 2-D manifold:
        // mean squared norm >> ambient noise level (0.05² * 16 = 0.04).
        let msn = x.sq_norm() / 200.0;
        assert!(msn > 1.0, "mean squared norm {msn}");
    }

    #[test]
    fn deterministic_given_rng() {
        let ds = GanDataset::new(8, 2, 3);
        let mut r1 = Rng::seed_from(7);
        let mut r2 = Rng::seed_from(7);
        assert_eq!(ds.sample_real(5, &mut r1), ds.sample_real(5, &mut r2));
    }
}

//! Synthetic object-detection data (VOC2007 stand-in for DC-AI-C9 and the
//! MLPerf detection baselines).

use aibench_tensor::{Rng, Tensor};

use crate::metrics::BoundingBox;

const TEST_SALT: u64 = 0x5eed_0000_0002;

/// One annotated image: objects as `(class, box)` pairs.
#[derive(Debug, Clone)]
pub struct DetectionSample {
    /// The image, `[channels, size, size]`.
    pub image: Tensor,
    /// Ground-truth objects.
    pub objects: Vec<(usize, BoundingBox)>,
}

/// Synthetic detection scenes: a noisy background containing one or two
/// rectangular objects whose interior carries a class-specific texture.
/// A detector must localize the rectangle and identify the texture.
#[derive(Debug, Clone)]
pub struct DetectionDataset {
    class_patterns: Vec<(f32, f32)>, // (intensity, stripe frequency)
    channels: usize,
    size: usize,
    len: usize,
    seed: u64,
}

impl DetectionDataset {
    /// Creates `len` scenes of `size`² with `classes` object classes.
    pub fn new(classes: usize, size: usize, len: usize, seed: u64) -> Self {
        assert!(size >= 12, "detection scenes need size >= 12");
        let class_patterns = (0..classes)
            .map(|c| {
                (
                    0.6 + 0.9 * (c as f32 / classes.max(1) as f32),
                    0.8 + 1.2 * c as f32,
                )
            })
            .collect();
        DetectionDataset {
            class_patterns,
            channels: 1,
            size,
            len,
            seed,
        }
    }

    /// Number of training scenes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of object classes.
    pub fn classes(&self) -> usize {
        self.class_patterns.len()
    }

    /// Scene edge length.
    pub fn size(&self) -> usize {
        self.size
    }

    fn generate(&self, index: usize, salt: u64) -> DetectionSample {
        let mut rng = Rng::seed_from(self.seed ^ salt ^ (index as u64).wrapping_mul(0xD1CE_5EED));
        let s = self.size;
        let mut image = Tensor::from_fn(&[self.channels, s, s], |_| rng.normal_with(0.0, 0.15));
        let count = 1 + usize::from(rng.bernoulli(0.4));
        let mut objects = Vec::with_capacity(count);
        for _ in 0..count {
            let class = rng.below(self.class_patterns.len());
            let (intensity, freq) = self.class_patterns[class];
            let w = rng.below(s / 2 - 4) + 6;
            let h = rng.below(s / 2 - 4) + 6;
            let x1 = rng.below(s - w);
            let y1 = rng.below(s - h);
            for y in y1..y1 + h {
                for x in x1..x1 + w {
                    let stripe = ((x - x1) as f32 * freq).sin() * 0.3;
                    image.data_mut()[y * s + x] = intensity + stripe + rng.normal_with(0.0, 0.05);
                }
            }
            objects.push((
                class,
                BoundingBox::new(x1 as f32, y1 as f32, (x1 + w) as f32, (y1 + h) as f32),
            ));
        }
        DetectionSample { image, objects }
    }

    /// Generates the `index`-th training scene.
    pub fn train_sample(&self, index: usize) -> DetectionSample {
        self.generate(index, 0)
    }

    /// Generates the `index`-th held-out scene.
    pub fn test_sample(&self, index: usize) -> DetectionSample {
        self.generate(index, TEST_SALT)
    }

    /// Stacks training scenes into a batch tensor plus per-scene objects.
    pub fn train_batch(&self, indices: &[usize]) -> (Tensor, Vec<Vec<(usize, BoundingBox)>>) {
        self.batch(indices, 0)
    }

    /// Stacks held-out scenes into a batch tensor plus per-scene objects.
    pub fn test_batch(&self, indices: &[usize]) -> (Tensor, Vec<Vec<(usize, BoundingBox)>>) {
        self.batch(indices, TEST_SALT)
    }

    fn batch(&self, indices: &[usize], salt: u64) -> (Tensor, Vec<Vec<(usize, BoundingBox)>>) {
        let s = self.size;
        let per = self.channels * s * s;
        let mut x = Tensor::zeros(&[indices.len(), self.channels, s, s]);
        let mut objs = Vec::with_capacity(indices.len());
        for (bi, &i) in indices.iter().enumerate() {
            let sample = self.generate(i, salt);
            x.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(sample.image.data());
            objs.push(sample.objects);
        }
        (x, objs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenes_have_one_or_two_objects() {
        let ds = DetectionDataset::new(3, 16, 100, 1);
        for i in 0..50 {
            let s = ds.train_sample(i);
            assert!((1..=2).contains(&s.objects.len()));
            for (c, b) in &s.objects {
                assert!(*c < 3);
                assert!(b.x2 <= 16.0 && b.y2 <= 16.0);
                assert!(b.area() >= 16.0);
            }
        }
    }

    #[test]
    fn object_region_brighter_than_background() {
        let ds = DetectionDataset::new(3, 16, 100, 2);
        let s = ds.train_sample(0);
        let (_, b) = s.objects[0];
        let img = &s.image;
        let inside = img.at(&[
            0,
            (b.y1 as usize + b.y2 as usize) / 2,
            (b.x1 as usize + b.x2 as usize) / 2,
        ]);
        assert!(inside > 0.3, "inside {inside}");
    }

    #[test]
    fn deterministic_and_split() {
        let ds = DetectionDataset::new(3, 16, 100, 3);
        let a = ds.train_sample(5);
        let b = ds.train_sample(5);
        assert_eq!(a.image, b.image);
        let t = ds.test_sample(5);
        assert!(a.image.max_abs_diff(&t.image) > 1e-3);
    }

    #[test]
    fn batch_shapes() {
        let ds = DetectionDataset::new(2, 16, 10, 4);
        let (x, objs) = ds.train_batch(&[0, 1, 2]);
        assert_eq!(x.shape(), &[3, 1, 16, 16]);
        assert_eq!(objs.len(), 3);
    }
}

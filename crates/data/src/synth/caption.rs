//! Synthetic image-captioning data (MSCOCO stand-in for DC-AI-C4).

use aibench_tensor::{Rng, Tensor};

use super::seq::{BOS, EOS};

const SPECIALS: usize = 3;
const TEST_SALT: u64 = 0x5eed_0000_0004;

/// Scenes containing one to three shape "objects"; the caption names the
/// shapes present in canonical (left-to-right) order. A CNN encoder + RNN
/// decoder must learn to read the scene to emit the caption.
#[derive(Debug, Clone)]
pub struct CaptionDataset {
    shapes: usize,
    size: usize,
    len: usize,
    seed: u64,
}

impl CaptionDataset {
    /// Creates `len` scenes of `size`² with `shapes` distinct object kinds.
    pub fn new(shapes: usize, size: usize, len: usize, seed: u64) -> Self {
        assert!(size >= 12 && shapes >= 2, "degenerate caption task");
        CaptionDataset {
            shapes,
            size,
            len,
            seed,
        }
    }

    /// Number of scenes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Token vocabulary: specials plus one token per shape kind.
    pub fn vocab_size(&self) -> usize {
        SPECIALS + self.shapes
    }

    /// Caption width including BOS/EOS (up to 3 shapes).
    pub fn caption_width(&self) -> usize {
        5
    }

    /// Scene edge length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The `index`-th `(image, caption)` pair. The caption is
    /// `BOS, shape tokens.., EOS` padded with PAD(0) to
    /// [`CaptionDataset::caption_width`].
    pub fn pair(&self, index: usize, test: bool) -> (Tensor, Vec<usize>) {
        let salt = if test { TEST_SALT } else { 0 };
        let mut rng = Rng::seed_from(self.seed ^ salt ^ (index as u64).wrapping_mul(0xCAB1));
        let s = self.size;
        let mut image = Tensor::from_fn(&[1, s, s], |_| rng.normal_with(0.0, 0.1));
        let count = 1 + rng.below(3);
        let third = s / 3;
        // One object per horizontal third; caption reads left to right.
        let mut slots = rng.permutation(3);
        slots.truncate(count);
        slots.sort_unstable();
        let mut caption = vec![BOS];
        for slot in slots {
            let kind = rng.below(self.shapes);
            let cx = slot * third + third / 2;
            let cy = s / 2 + rng.below(third.max(1)) - third / 2;
            self.draw_shape(&mut image, kind, cx, cy);
            caption.push(SPECIALS + kind);
        }
        caption.push(EOS);
        caption.resize(self.caption_width(), 0);
        (image, caption)
    }

    fn draw_shape(&self, image: &mut Tensor, kind: usize, cx: usize, cy: usize) {
        let s = self.size;
        let r = 2 + kind % 2;
        let intensity = 0.8 + 0.5 * (kind as f32 / self.shapes as f32);
        for dy in 0..=2 * r {
            for dx in 0..=2 * r {
                let y = (cy + dy).saturating_sub(r).min(s - 1);
                let x = (cx + dx).saturating_sub(r).min(s - 1);
                let (fy, fx) = (dy as i32 - r as i32, dx as i32 - r as i32);
                let inside = match kind % 3 {
                    0 => fy.abs() + fx.abs() <= r as i32,     // diamond
                    1 => fy * fy + fx * fx <= (r * r) as i32, // disc
                    _ => fy.abs() <= (r / 2).max(1) as i32,   // bar
                };
                if inside {
                    image.data_mut()[y * s + x] = intensity;
                }
            }
        }
    }

    /// Stacks a batch of pairs: `([n, 1, s, s], captions)`.
    pub fn batch(&self, indices: &[usize], test: bool) -> (Tensor, Vec<Vec<usize>>) {
        let s = self.size;
        let per = s * s;
        let mut x = Tensor::zeros(&[indices.len(), 1, s, s]);
        let mut caps = Vec::with_capacity(indices.len());
        for (bi, &i) in indices.iter().enumerate() {
            let (img, cap) = self.pair(i, test);
            x.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(img.data());
            caps.push(cap);
        }
        (x, caps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captions_are_framed_and_padded() {
        let ds = CaptionDataset::new(4, 16, 100, 1);
        for i in 0..20 {
            let (img, cap) = ds.pair(i, false);
            assert_eq!(img.shape(), &[1, 16, 16]);
            assert_eq!(cap.len(), 5);
            assert_eq!(cap[0], BOS);
            assert!(cap.contains(&EOS));
        }
    }

    #[test]
    fn deterministic() {
        let ds = CaptionDataset::new(4, 16, 100, 2);
        let (a, ca) = ds.pair(7, false);
        let (b, cb) = ds.pair(7, false);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn shapes_brighten_the_scene() {
        let ds = CaptionDataset::new(4, 16, 100, 3);
        let (img, cap) = ds.pair(0, false);
        let objects = cap.iter().filter(|&&t| t >= SPECIALS).count();
        assert!(objects >= 1);
        assert!(img.max_val() > 0.7, "no bright object drawn");
    }
}

//! Synthetic speech-recognition data (LibriSpeech stand-in for DC-AI-C6).

use aibench_tensor::{Rng, Tensor};

const TEST_SALT: u64 = 0x5eed_0000_0005;

/// Spectrogram-like utterances: a phoneme sequence where each phoneme emits
/// a characteristic spectral column for a random 2-4 frame duration, plus
/// noise. The framewise classifier decodes greedily and collapses repeats,
/// giving a word-error-rate metric exactly as the paper's DeepSpeech2 setup
/// measures.
#[derive(Debug, Clone)]
pub struct SpeechDataset {
    phoneme_profiles: Vec<Vec<f32>>,
    bands: usize,
    frames: usize,
    len: usize,
    seed: u64,
}

impl SpeechDataset {
    /// Creates `len` utterances of `frames` spectral frames over `bands`
    /// frequency bands with `phonemes` phoneme classes.
    pub fn new(phonemes: usize, bands: usize, frames: usize, len: usize, seed: u64) -> Self {
        assert!(
            phonemes >= 2 && bands >= 4 && frames >= 8,
            "degenerate speech task"
        );
        let mut rng = Rng::seed_from(seed);
        let phoneme_profiles = (0..phonemes)
            .map(|_| (0..bands).map(|_| rng.uniform_in(-1.0, 1.0)).collect())
            .collect();
        SpeechDataset {
            phoneme_profiles,
            bands,
            frames,
            len,
            seed,
        }
    }

    /// Number of utterances.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of phoneme classes.
    pub fn phonemes(&self) -> usize {
        self.phoneme_profiles.len()
    }

    /// Frequency bands per frame.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Frames per utterance.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The `index`-th utterance: `(spectrogram [bands, frames], frame
    /// labels, phoneme sequence)`.
    pub fn utterance(&self, index: usize, test: bool) -> (Tensor, Vec<usize>, Vec<usize>) {
        let salt = if test { TEST_SALT } else { 0 };
        let mut rng = Rng::seed_from(self.seed ^ salt ^ (index as u64).wrapping_mul(0x5bee));
        let mut spec = Tensor::zeros(&[self.bands, self.frames]);
        let mut frame_labels = Vec::with_capacity(self.frames);
        let mut sequence = Vec::new();
        let mut t = 0;
        while t < self.frames {
            let ph = rng.below(self.phonemes());
            // Avoid immediate repeats so collapsing is unambiguous.
            let ph = if sequence.last() == Some(&ph) {
                (ph + 1) % self.phonemes()
            } else {
                ph
            };
            sequence.push(ph);
            let dur = (2 + rng.below(3)).min(self.frames - t);
            for _ in 0..dur {
                for b in 0..self.bands {
                    spec.data_mut()[b * self.frames + t] =
                        self.phoneme_profiles[ph][b] + rng.normal_with(0.0, 0.25);
                }
                frame_labels.push(ph);
                t += 1;
            }
        }
        (spec, frame_labels, sequence)
    }

    /// Collapses a framewise decode into a phoneme sequence by removing
    /// consecutive repeats (CTC-style greedy decode without blanks).
    pub fn collapse(frames: &[usize]) -> Vec<usize> {
        let mut out = Vec::new();
        for &f in frames {
            if out.last() != Some(&f) {
                out.push(f);
            }
        }
        out
    }

    /// Stacks utterances: `([n, 1, bands, frames], frame labels, sequences)`.
    pub fn batch(
        &self,
        indices: &[usize],
        test: bool,
    ) -> (Tensor, Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let per = self.bands * self.frames;
        let mut x = Tensor::zeros(&[indices.len(), 1, self.bands, self.frames]);
        let mut labels = Vec::with_capacity(indices.len());
        let mut seqs = Vec::with_capacity(indices.len());
        for (bi, &i) in indices.iter().enumerate() {
            let (spec, fl, seq) = self.utterance(i, test);
            x.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(spec.data());
            labels.push(fl);
            seqs.push(seq);
        }
        (x, labels, seqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_labels_cover_all_frames() {
        let ds = SpeechDataset::new(6, 8, 20, 100, 1);
        let (spec, labels, seq) = ds.utterance(0, false);
        assert_eq!(spec.shape(), &[8, 20]);
        assert_eq!(labels.len(), 20);
        assert!(!seq.is_empty());
    }

    #[test]
    fn collapse_matches_sequence() {
        let ds = SpeechDataset::new(6, 8, 24, 100, 2);
        for i in 0..20 {
            let (_, labels, seq) = ds.utterance(i, false);
            // Collapsing the true frame labels recovers the sequence,
            // except a possibly truncated final phoneme.
            let collapsed = SpeechDataset::collapse(&labels);
            assert_eq!(collapsed, seq);
        }
    }

    #[test]
    fn profiles_are_distinguishable() {
        let ds = SpeechDataset::new(6, 8, 20, 100, 3);
        // Distinct phonemes should have distinct profiles.
        for a in 0..6 {
            for b in a + 1..6 {
                let d: f32 = ds.phoneme_profiles[a]
                    .iter()
                    .zip(&ds.phoneme_profiles[b])
                    .map(|(x, y)| (x - y).powi(2))
                    .sum();
                assert!(d > 0.1, "phonemes {a} and {b} collide");
            }
        }
    }
}

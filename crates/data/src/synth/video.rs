//! Synthetic video-prediction data (robot-pushing stand-in, DC-AI-C11).

use aibench_tensor::{Rng, Tensor};

const TEST_SALT: u64 = 0x5eed_0000_0006;

/// Moving-blob sequences: a Gaussian blob translates with constant velocity
/// (bouncing off walls); the model sees the first `context` frames and must
/// predict the next one, exactly the motion-extrapolation structure of the
/// paper's motion-focused predictive model.
#[derive(Debug, Clone)]
pub struct VideoDataset {
    size: usize,
    context: usize,
    len: usize,
    seed: u64,
}

impl VideoDataset {
    /// Creates `len` sequences of `context`+1 frames of `size`².
    pub fn new(size: usize, context: usize, len: usize, seed: u64) -> Self {
        assert!(
            context >= 2,
            "need at least two context frames to infer motion"
        );
        VideoDataset {
            size,
            context,
            len,
            seed,
        }
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Frame edge length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of context frames provided as input.
    pub fn context(&self) -> usize {
        self.context
    }

    fn blob_frame(&self, cx: f32, cy: f32) -> Tensor {
        let s = self.size;
        Tensor::from_fn(&[s, s], |i| {
            let (y, x) = ((i / s) as f32, (i % s) as f32);
            let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
            (-d2 / 3.0).exp()
        })
    }

    /// The `index`-th sequence: `(context frames [context, s, s], next
    /// frame [s, s])`.
    pub fn sequence(&self, index: usize, test: bool) -> (Tensor, Tensor) {
        let salt = if test { TEST_SALT } else { 0 };
        let mut rng = Rng::seed_from(self.seed ^ salt ^ (index as u64).wrapping_mul(0x71d));
        let s = self.size as f32;
        let mut cx = rng.uniform_in(s * 0.25, s * 0.75);
        let mut cy = rng.uniform_in(s * 0.25, s * 0.75);
        let mut vx = rng.uniform_in(-1.5, 1.5);
        let mut vy = rng.uniform_in(-1.5, 1.5);
        let mut frames = Tensor::zeros(&[self.context, self.size, self.size]);
        let per = self.size * self.size;
        for t in 0..self.context {
            let f = self.blob_frame(cx, cy);
            frames.data_mut()[t * per..(t + 1) * per].copy_from_slice(f.data());
            cx += vx;
            cy += vy;
            if cx < 1.0 || cx > s - 2.0 {
                vx = -vx;
                cx = cx.clamp(1.0, s - 2.0);
            }
            if cy < 1.0 || cy > s - 2.0 {
                vy = -vy;
                cy = cy.clamp(1.0, s - 2.0);
            }
        }
        let target = self.blob_frame(cx, cy);
        (frames, target)
    }

    /// Stacks sequences: `([n, context, s, s], [n, 1, s, s])`.
    pub fn batch(&self, indices: &[usize], test: bool) -> (Tensor, Tensor) {
        let per = self.size * self.size;
        let mut x = Tensor::zeros(&[indices.len(), self.context, self.size, self.size]);
        let mut y = Tensor::zeros(&[indices.len(), 1, self.size, self.size]);
        for (bi, &i) in indices.iter().enumerate() {
            let (ctx, tgt) = self.sequence(i, test);
            x.data_mut()[bi * self.context * per..(bi + 1) * self.context * per]
                .copy_from_slice(ctx.data());
            y.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(tgt.data());
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_moves_between_frames() {
        let ds = VideoDataset::new(12, 3, 50, 1);
        let (ctx, tgt) = ds.sequence(0, false);
        assert_eq!(ctx.shape(), &[3, 12, 12]);
        assert_eq!(tgt.shape(), &[12, 12]);
        // Consecutive frames must differ (blob moved).
        let per = 144;
        let d: f32 = (0..per)
            .map(|i| (ctx.data()[i] - ctx.data()[per + i]).abs())
            .sum();
        assert!(d > 0.1, "blob did not move: {d}");
    }

    #[test]
    fn target_extrapolates_motion() {
        // The target should be closer to the last context frame than to the
        // first (smooth motion).
        let ds = VideoDataset::new(12, 3, 50, 2);
        let (ctx, tgt) = ds.sequence(1, false);
        let per = 144;
        let d_last: f32 = (0..per)
            .map(|i| (ctx.data()[2 * per + i] - tgt.data()[i]).powi(2))
            .sum();
        let d_first: f32 = (0..per)
            .map(|i| (ctx.data()[i] - tgt.data()[i]).powi(2))
            .sum();
        assert!(d_last <= d_first + 1e-3, "last {d_last} vs first {d_first}");
    }

    #[test]
    fn batch_shapes() {
        let ds = VideoDataset::new(10, 2, 20, 3);
        let (x, y) = ds.batch(&[0, 1, 2, 3], false);
        assert_eq!(x.shape(), &[4, 2, 10, 10]);
        assert_eq!(y.shape(), &[4, 1, 10, 10]);
    }
}

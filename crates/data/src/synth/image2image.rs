//! Paired image-domain translation data (Cityscapes stand-in, DC-AI-C5).

use aibench_tensor::{Rng, Tensor};

const TEST_SALT: u64 = 0x5eed_0000_0008;

/// Paired domains: domain A shows the *outline* of a random blob scene,
/// domain B shows the same scene *filled* (a segmentation-like rendering).
/// A translator must learn the outline→fill mapping; per-pixel accuracy on
/// the fill is the quality metric, mirroring the paper's Cityscapes
/// photo→label evaluation.
#[derive(Debug, Clone)]
pub struct Image2ImageDataset {
    size: usize,
    len: usize,
    seed: u64,
}

impl Image2ImageDataset {
    /// Creates `len` paired scenes of `size`².
    pub fn new(size: usize, len: usize, seed: u64) -> Self {
        assert!(size >= 12, "scenes need size >= 12");
        Image2ImageDataset { size, len, seed }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Scene edge length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The `index`-th pair `(domain A outline, domain B fill)`, each
    /// `[1, s, s]` with values in `[0, 1]`.
    pub fn pair(&self, index: usize, test: bool) -> (Tensor, Tensor) {
        let salt = if test { TEST_SALT } else { 0 };
        let mut rng = Rng::seed_from(self.seed ^ salt ^ (index as u64).wrapping_mul(0xc1c1));
        let s = self.size;
        let mut fill = Tensor::zeros(&[1, s, s]);
        // One or two rectangular blobs.
        for _ in 0..1 + usize::from(rng.bernoulli(0.5)) {
            let w = 4 + rng.below(s / 2 - 3);
            let h = 4 + rng.below(s / 2 - 3);
            let x1 = rng.below(s - w);
            let y1 = rng.below(s - h);
            for y in y1..y1 + h {
                for x in x1..x1 + w {
                    fill.data_mut()[y * s + x] = 1.0;
                }
            }
        }
        // Outline: boundary pixels of the filled region.
        let mut outline = Tensor::zeros(&[1, s, s]);
        for y in 0..s {
            for x in 0..s {
                if fill.data()[y * s + x] > 0.5 {
                    let edge = y == 0
                        || x == 0
                        || y == s - 1
                        || x == s - 1
                        || fill.data()[(y - 1) * s + x] < 0.5
                        || fill.data()[(y + 1) * s + x] < 0.5
                        || fill.data()[y * s + x - 1] < 0.5
                        || fill.data()[y * s + x + 1] < 0.5;
                    if edge {
                        outline.data_mut()[y * s + x] = 1.0;
                    }
                }
            }
        }
        // Light sensor noise on the A domain.
        let noisy = outline.zip(
            &Tensor::from_fn(outline.shape(), |_| rng.normal_with(0.0, 0.05)),
            |o, n| (o + n).clamp(0.0, 1.0),
        );
        (noisy, fill)
    }

    /// Stacks pairs: `([n, 1, s, s], [n, 1, s, s])`.
    pub fn batch(&self, indices: &[usize], test: bool) -> (Tensor, Tensor) {
        let per = self.size * self.size;
        let mut a = Tensor::zeros(&[indices.len(), 1, self.size, self.size]);
        let mut b = Tensor::zeros(&[indices.len(), 1, self.size, self.size]);
        for (bi, &i) in indices.iter().enumerate() {
            let (ai, bi_img) = self.pair(i, test);
            a.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(ai.data());
            b.data_mut()[bi * per..(bi + 1) * per].copy_from_slice(bi_img.data());
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outline_is_subset_of_fill_boundary() {
        let ds = Image2ImageDataset::new(16, 50, 1);
        let (a, b) = ds.pair(0, false);
        // Fill has strictly more bright pixels than the outline.
        let bright = |t: &aibench_tensor::Tensor| t.data().iter().filter(|&&v| v > 0.5).count();
        assert!(bright(&b) > bright(&a));
        assert!(b.sum() >= 16.0);
    }

    #[test]
    fn values_in_unit_range() {
        let ds = Image2ImageDataset::new(16, 50, 2);
        let (a, b) = ds.pair(3, false);
        assert!(a.min_val() >= 0.0 && a.max_val() <= 1.0);
        assert!(b.min_val() >= 0.0 && b.max_val() <= 1.0);
    }

    #[test]
    fn deterministic_pairs() {
        let ds = Image2ImageDataset::new(16, 50, 3);
        assert_eq!(ds.pair(5, false).1, ds.pair(5, false).1);
    }
}

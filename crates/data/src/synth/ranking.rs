//! Implicit-feedback datasets for Learning-to-Rank (Gowalla stand-in,
//! DC-AI-C16) and Recommendation (MovieLens stand-in, DC-AI-C10).

use aibench_tensor::{Rng, Tensor};

/// Latent-factor implicit feedback: users and items have hidden
/// `dim`-dimensional factors; a user "visits" the items with the highest
/// affinity (dot product plus noise). Ranking models must recover the
/// latent geometry from the observed interactions.
#[derive(Debug, Clone)]
pub struct RankingDataset {
    user_factors: Vec<Vec<f32>>,
    item_factors: Vec<Vec<f32>>,
    train_positives: Vec<Vec<usize>>,
    test_positives: Vec<Vec<usize>>,
}

impl RankingDataset {
    /// Creates `users`×`items` interactions with `per_user` training
    /// positives and `held_out` test positives per user.
    pub fn new(
        users: usize,
        items: usize,
        dim: usize,
        per_user: usize,
        held_out: usize,
        seed: u64,
    ) -> Self {
        assert!(
            per_user + held_out < items,
            "not enough items for the requested positives"
        );
        let mut rng = Rng::seed_from(seed);
        let user_factors: Vec<Vec<f32>> = (0..users)
            .map(|_| (0..dim).map(|_| rng.normal()).collect())
            .collect();
        let item_factors: Vec<Vec<f32>> = (0..items)
            .map(|_| (0..dim).map(|_| rng.normal()).collect())
            .collect();
        let mut train_positives = Vec::with_capacity(users);
        let mut test_positives = Vec::with_capacity(users);
        for uf in user_factors.iter().take(users) {
            // Rank all items by noisy affinity; the top slots are positives.
            let mut scored: Vec<(usize, f32)> = (0..items)
                .map(|i| {
                    let dot: f32 = uf.iter().zip(&item_factors[i]).map(|(a, b)| a * b).sum();
                    (i, dot + rng.normal_with(0.0, 0.3))
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let top: Vec<usize> = scored
                .iter()
                .take(per_user + held_out)
                .map(|(i, _)| *i)
                .collect();
            test_positives.push(top[..held_out].to_vec());
            train_positives.push(top[held_out..].to_vec());
        }
        RankingDataset {
            user_factors,
            item_factors,
            train_positives,
            test_positives,
        }
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.user_factors.len()
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.item_factors.len()
    }

    /// Training positives for a user.
    pub fn train_positives(&self, user: usize) -> &[usize] {
        &self.train_positives[user]
    }

    /// Held-out positives for a user (evaluation relevance set).
    pub fn test_positives(&self, user: usize) -> &[usize] {
        &self.test_positives[user]
    }

    /// All `(user, positive item)` training pairs.
    pub fn train_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for (u, ps) in self.train_positives.iter().enumerate() {
            for &i in ps {
                pairs.push((u, i));
            }
        }
        pairs
    }

    /// Samples a negative item for `user` (not in train or test positives).
    pub fn sample_negative(&self, user: usize, rng: &mut Rng) -> usize {
        loop {
            let i = rng.below(self.items());
            if !self.train_positives[user].contains(&i) && !self.test_positives[user].contains(&i) {
                return i;
            }
        }
    }
}

/// Leave-one-out recommendation data in the NCF evaluation protocol: each
/// user holds out one positive; at test time it is ranked against 99
/// sampled negatives and HR@10 is reported.
#[derive(Debug, Clone)]
pub struct RecommendationDataset {
    inner: RankingDataset,
    eval_candidates: Vec<Vec<usize>>, // per user: [held_out, 99 negatives]
}

impl RecommendationDataset {
    /// Creates the dataset with `per_user` training positives per user.
    pub fn new(users: usize, items: usize, dim: usize, per_user: usize, seed: u64) -> Self {
        let inner = RankingDataset::new(users, items, dim, per_user, 1, seed);
        let mut rng = Rng::seed_from(seed ^ 0xe7a1);
        let neg_count = 99.min(items.saturating_sub(per_user + 2));
        let eval_candidates = (0..users)
            .map(|u| {
                let mut c = vec![inner.test_positives(u)[0]];
                while c.len() < 1 + neg_count {
                    let i = inner.sample_negative(u, &mut rng);
                    if !c.contains(&i) {
                        c.push(i);
                    }
                }
                c
            })
            .collect();
        RecommendationDataset {
            inner,
            eval_candidates,
        }
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.inner.users()
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.inner.items()
    }

    /// All `(user, item)` training pairs.
    pub fn train_pairs(&self) -> Vec<(usize, usize)> {
        self.inner.train_pairs()
    }

    /// Samples a training negative for `user`.
    pub fn sample_negative(&self, user: usize, rng: &mut Rng) -> usize {
        self.inner.sample_negative(user, rng)
    }

    /// The held-out positive item for `user`.
    pub fn held_out(&self, user: usize) -> usize {
        self.inner.test_positives(user)[0]
    }

    /// Evaluation candidates for `user`: the held-out item plus 99
    /// negatives (element 0 is the relevant one).
    pub fn eval_candidates(&self, user: usize) -> &[usize] {
        &self.eval_candidates[user]
    }
}

impl RankingDataset {
    /// Ground-truth affinity matrix `[users, items]`, used by tests and as
    /// the oracle signal behind the Ranking Distillation teacher.
    pub fn affinity_matrix(&self) -> Tensor {
        let (u, i) = (self.users(), self.items());
        Tensor::from_fn(&[u, i], |idx| {
            let (uu, ii) = (idx / i, idx % i);
            self.user_factors[uu]
                .iter()
                .zip(&self.item_factors[ii])
                .map(|(a, b)| a * b)
                .sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positives_disjoint_between_splits() {
        let ds = RankingDataset::new(10, 50, 4, 5, 3, 1);
        for u in 0..10 {
            for p in ds.test_positives(u) {
                assert!(!ds.train_positives(u).contains(p));
            }
        }
    }

    #[test]
    fn positives_have_high_affinity() {
        let ds = RankingDataset::new(20, 100, 4, 5, 2, 2);
        let aff = ds.affinity_matrix();
        let items = ds.items();
        let mut pos_mean = 0.0;
        let mut all_mean = 0.0;
        for u in 0..20 {
            for &p in ds.train_positives(u) {
                pos_mean += aff.data()[u * items + p];
            }
            for i in 0..items {
                all_mean += aff.data()[u * items + i];
            }
        }
        pos_mean /= 20.0 * 5.0;
        all_mean /= 20.0 * items as f32;
        assert!(
            pos_mean > all_mean + 0.5,
            "positives {pos_mean} vs mean {all_mean}"
        );
    }

    #[test]
    fn negatives_are_never_positive() {
        let ds = RankingDataset::new(5, 30, 4, 5, 2, 3);
        let mut rng = Rng::seed_from(1);
        for _ in 0..100 {
            let n = ds.sample_negative(2, &mut rng);
            assert!(!ds.train_positives(2).contains(&n));
            assert!(!ds.test_positives(2).contains(&n));
        }
    }

    #[test]
    fn recommendation_candidates_include_held_out() {
        let ds = RecommendationDataset::new(8, 60, 4, 5, 4);
        for u in 0..8 {
            let c = ds.eval_candidates(u);
            assert_eq!(c[0], ds.held_out(u));
            assert_eq!(c.len(), 100.min(c.len()));
            // Candidates are distinct.
            let mut s = c.to_vec();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), c.len());
        }
    }
}

//! Deterministic data sharding for simulated data-parallel training.
//!
//! Every worker in a data-parallel group walks the *same* shuffled batch
//! stream (all replicas are built from the same seed, so their
//! [`BatchCursor`]s are bitwise identical) and takes a strided slice of
//! each global batch: rank `r` of `w` keeps the elements at positions
//! `r, r + w, r + 2w, …` within the batch. The rule has three properties
//! the distributed runner depends on:
//!
//! * **Coverage** — the union of all `w` shards of a batch is exactly the
//!   batch: no index is dropped and none is duplicated.
//! * **Determinism** — the shard depends only on `(world, rank)` and the
//!   shared permutation, never on execution order or thread count.
//! * **Elasticity** — re-sharding after a membership change is just a
//!   `(world, rank)` reassignment; the underlying stream position is
//!   untouched, so all survivors stay in lockstep.

use aibench_ckpt::{key, CkptError, Restore, Snapshot, State};
use aibench_tensor::Rng;

use crate::cursor::BatchCursor;

/// The strided shard of one global batch: the elements of `batch` at
/// positions congruent to `rank` modulo `world`.
///
/// # Panics
///
/// Panics if `world == 0` or `rank >= world`.
///
/// # Example
///
/// ```
/// use aibench_data::shard::shard_of_batch;
///
/// let batch = [10, 11, 12, 13, 14];
/// assert_eq!(shard_of_batch(&batch, 2, 0), vec![10, 12, 14]);
/// assert_eq!(shard_of_batch(&batch, 2, 1), vec![11, 13]);
/// ```
pub fn shard_of_batch(batch: &[usize], world: usize, rank: usize) -> Vec<usize> {
    assert!(world > 0, "world size must be positive");
    assert!(rank < world, "rank {rank} out of range for world {world}");
    batch.iter().skip(rank).step_by(world).copied().collect()
}

/// A [`BatchCursor`] wrapped with a `(world, rank)` shard assignment.
///
/// All members of a data-parallel group construct their cursor from the
/// same `(len, batch_size, rng)` triple, so the underlying global batch
/// stream is identical everywhere; [`ShardedCursor::next_batch`] advances
/// that shared stream by one global batch and returns only this rank's
/// strided slice of it. With `world == 1` the cursor degenerates to the
/// plain [`BatchCursor`] stream.
#[derive(Debug, Clone)]
pub struct ShardedCursor {
    inner: BatchCursor,
    world: usize,
    rank: usize,
}

impl ShardedCursor {
    /// A sharded cursor over `0..len` in global batches of `batch_size`,
    /// shuffled by `rng`, keeping rank `rank`'s shard of a `world`-worker
    /// group.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`, `batch_size == 0`, `world == 0`, or
    /// `rank >= world`.
    pub fn new(len: usize, batch_size: usize, rng: Rng, world: usize, rank: usize) -> Self {
        assert!(world > 0, "world size must be positive");
        assert!(rank < world, "rank {rank} out of range for world {world}");
        ShardedCursor {
            inner: BatchCursor::new(len, batch_size, rng),
            world,
            rank,
        }
    }

    /// The group size this cursor shards for.
    pub fn world(&self) -> usize {
        self.world
    }

    /// This cursor's rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Zero-based epoch of the next global batch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    /// Global batches per full epoch (identical for every rank).
    pub fn batches_per_epoch(&self) -> usize {
        self.inner.batches_per_epoch()
    }

    /// Reassigns the shard geometry without touching the stream position —
    /// the deterministic re-sharding step after an elastic membership
    /// change. Applies from the next batch onward.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0` or `rank >= world`.
    pub fn set_shard(&mut self, world: usize, rank: usize) {
        assert!(world > 0, "world size must be positive");
        assert!(rank < world, "rank {rank} out of range for world {world}");
        self.world = world;
        self.rank = rank;
    }

    /// Advances the shared stream by one global batch and returns this
    /// rank's shard of it. The shard may be empty when the (possibly
    /// short, end-of-epoch) global batch has fewer than `rank + 1`
    /// elements.
    pub fn next_batch(&mut self) -> Vec<usize> {
        let global = self.inner.next_batch();
        shard_of_batch(&global, self.world, self.rank)
    }
}

impl Snapshot for ShardedCursor {
    fn snapshot(&self, state: &mut State, prefix: &str) {
        state.put_usize(key(prefix, "world"), self.world);
        state.put_usize(key(prefix, "rank"), self.rank);
        self.inner.snapshot(state, &key(prefix, "inner"));
    }
}

impl Restore for ShardedCursor {
    fn restore(&mut self, state: &State, prefix: &str) -> Result<(), CkptError> {
        let world = state.usize(&key(prefix, "world"))?;
        let rank = state.usize(&key(prefix, "rank"))?;
        if world == 0 || rank >= world {
            return Err(CkptError::MetaMismatch {
                what: format!("cursor `{prefix}` snapshot has invalid shard {rank}/{world}"),
            });
        }
        self.inner.restore(state, &key(prefix, "inner"))?;
        self.world = world;
        self.rank = rank;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::BatchCursor;

    /// One epoch of every rank's stream, merged, must equal one epoch of
    /// the single-worker stream batch for batch — no drop, no dup, order
    /// within each global batch preserved by position.
    fn assert_union_matches(len: usize, batch_size: usize, world: usize, seed: u64) {
        let mut single = BatchCursor::new(len, batch_size, Rng::seed_from(seed));
        let mut shards: Vec<ShardedCursor> = (0..world)
            .map(|r| ShardedCursor::new(len, batch_size, Rng::seed_from(seed), world, r))
            .collect();
        for _ in 0..single.batches_per_epoch() * 2 {
            let global = single.next_batch();
            let mut merged = vec![usize::MAX; global.len()];
            for (r, cur) in shards.iter_mut().enumerate() {
                for (j, idx) in cur.next_batch().into_iter().enumerate() {
                    merged[r + j * world] = idx;
                }
            }
            assert_eq!(merged, global, "len={len} bs={batch_size} world={world}");
        }
    }

    #[test]
    fn shard_union_covers_every_global_batch() {
        for &world in &[1usize, 2, 3, 7] {
            for &(len, bs) in &[(23usize, 5usize), (24, 8), (7, 7), (100, 13), (9, 2)] {
                assert_union_matches(len, bs, world, 11);
            }
        }
    }

    #[test]
    fn world_one_is_the_plain_cursor() {
        let mut plain = BatchCursor::new(17, 4, Rng::seed_from(3));
        let mut sharded = ShardedCursor::new(17, 4, Rng::seed_from(3), 1, 0);
        for _ in 0..12 {
            assert_eq!(plain.next_batch(), sharded.next_batch());
        }
    }

    #[test]
    fn resharding_keeps_the_stream_position() {
        let mut a = ShardedCursor::new(20, 6, Rng::seed_from(5), 3, 1);
        let mut reference = BatchCursor::new(20, 6, Rng::seed_from(5));
        a.next_batch();
        reference.next_batch();
        // Shrink the group: rank 1 of 3 becomes rank 0 of 2.
        a.set_shard(2, 0);
        let global = reference.next_batch();
        assert_eq!(a.next_batch(), shard_of_batch(&global, 2, 0));
    }

    #[test]
    fn snapshot_restore_resumes_shard_and_position() {
        let mut cur = ShardedCursor::new(19, 4, Rng::seed_from(7), 3, 2);
        for _ in 0..6 {
            cur.next_batch();
        }
        let mut state = State::new();
        cur.snapshot(&mut state, "cursor");
        let mut resumed = ShardedCursor::new(19, 4, Rng::seed_from(0), 1, 0);
        resumed.restore(&state, "cursor").unwrap();
        assert_eq!(resumed.world(), 3);
        assert_eq!(resumed.rank(), 2);
        for _ in 0..10 {
            assert_eq!(cur.next_batch(), resumed.next_batch());
        }
    }

    #[test]
    #[should_panic(expected = "rank 2 out of range")]
    fn rank_must_be_below_world() {
        ShardedCursor::new(10, 2, Rng::seed_from(1), 2, 2);
    }
}

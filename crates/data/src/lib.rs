//! Synthetic datasets and quality metrics for the AIBench component
//! benchmarks.
//!
//! The paper's benchmarks train on ImageNet, VOC2007, Gowalla, LibriSpeech,
//! and a dozen other real datasets that are unavailable in this environment,
//! so each task gets a *synthetic equivalent*: a deterministic, seeded
//! generator producing data with a genuine learnable signal in the same
//! modality (images with class structure, detection boxes, token sequences
//! with a translation rule, spectrogram-like frames, implicit-feedback
//! interactions, voxel shapes, …). DESIGN.md documents each substitution.
//!
//! The [`metrics`] module implements the paper's quality measures: WER,
//! Rouge-L, mAP, HR@K, precision@K, (MS-)SSIM, voxel IoU, and perplexity.
//!
//! # Example
//!
//! ```
//! use aibench_data::synth::ImageClassDataset;
//!
//! let ds = ImageClassDataset::new(8, 1, 12, 200, 7);
//! let (x, y) = ds.train_batch(&(0..16).collect::<Vec<_>>());
//! assert_eq!(x.shape(), &[16, 1, 12, 12]);
//! assert_eq!(y.len(), 16);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod cursor;
pub mod metrics;
pub mod shard;
pub mod synth;

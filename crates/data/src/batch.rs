//! Mini-batch index iteration.

use aibench_tensor::Rng;

/// Yields shuffled index mini-batches over `0..len`, dropping no remainder
/// (the final batch may be short).
///
/// # Example
///
/// ```
/// use aibench_data::batch::batches;
/// use aibench_tensor::Rng;
///
/// let mut rng = Rng::seed_from(1);
/// let bs: Vec<Vec<usize>> = batches(10, 4, &mut rng);
/// assert_eq!(bs.len(), 3);
/// assert_eq!(bs.iter().map(Vec::len).sum::<usize>(), 10);
/// ```
pub fn batches(len: usize, batch_size: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch_size must be positive");
    let perm = rng.permutation(len);
    perm.chunks(batch_size).map(|c| c.to_vec()).collect()
}

/// Yields sequential (unshuffled) index mini-batches over `0..len`.
pub fn sequential_batches(len: usize, batch_size: usize) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch_size must be positive");
    (0..len)
        .collect::<Vec<_>>()
        .chunks(batch_size)
        .map(|c| c.to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_indices_once() {
        let mut rng = Rng::seed_from(2);
        let bs = batches(23, 5, &mut rng);
        let mut all: Vec<usize> = bs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_differs_between_epochs() {
        let mut rng = Rng::seed_from(3);
        let a = batches(50, 50, &mut rng);
        let b = batches(50, 50, &mut rng);
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn sequential_is_ordered() {
        let bs = sequential_batches(7, 3);
        assert_eq!(bs, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
    }
}

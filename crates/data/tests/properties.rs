//! Property-based tests of the metric implementations' invariants.

use aibench_data::metrics::{
    accuracy, box_iou, edit_distance, hit_rate_at_k, per_pixel_accuracy, precision_at_k, rouge_l,
    ssim, voxel_iou, word_error_rate, BoundingBox,
};
use aibench_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn tokens() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..8, 1..12)
}

proptest! {
    #[test]
    fn edit_distance_is_a_metric(a in tokens(), b in tokens(), c in tokens()) {
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
    }

    #[test]
    fn edit_distance_bounded_by_longer_sequence(a in tokens(), b in tokens()) {
        prop_assert!(edit_distance(&a, &b) <= a.len().max(b.len()));
    }

    #[test]
    fn wer_zero_iff_identical(a in prop::collection::vec(tokens(), 1..4)) {
        prop_assert_eq!(word_error_rate(&a, &a), 0.0);
    }

    #[test]
    fn rouge_l_bounded(a in prop::collection::vec(tokens(), 1..4)) {
        let r = rouge_l(&a, &a);
        prop_assert!((r - 100.0).abs() < 1e-9);
        let shuffled: Vec<Vec<usize>> = a.iter().map(|s| {
            let mut t = s.clone();
            t.reverse();
            t
        }).collect();
        let r2 = rouge_l(&a, &shuffled);
        prop_assert!((0.0..=100.0 + 1e-9).contains(&r2));
    }

    #[test]
    fn iou_is_symmetric_and_bounded(x1 in 0.0f32..10.0, y1 in 0.0f32..10.0,
                                    w1 in 0.5f32..10.0, h1 in 0.5f32..10.0,
                                    x2 in 0.0f32..10.0, y2 in 0.0f32..10.0,
                                    w2 in 0.5f32..10.0, h2 in 0.5f32..10.0) {
        let a = BoundingBox::new(x1, y1, x1 + w1, y1 + h1);
        let b = BoundingBox::new(x2, y2, x2 + w2, y2 + h2);
        let ab = box_iou(&a, &b);
        prop_assert!((box_iou(&b, &a) - ab).abs() < 1e-6);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ab));
        prop_assert!((box_iou(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_bounds(pred in prop::collection::vec(0usize..4, 1..20), seed in 0u64..100) {
        let mut rng = Rng::seed_from(seed);
        let labels: Vec<usize> = pred.iter().map(|_| rng.below(4)).collect();
        let a = accuracy(&pred, &labels);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert_eq!(accuracy(&pred, &pred), 1.0);
    }

    #[test]
    fn hit_rate_monotone_in_k(seed in 0u64..200) {
        let mut rng = Rng::seed_from(seed);
        let rankings: Vec<Vec<usize>> = (0..5).map(|_| rng.permutation(10)).collect();
        let relevant: Vec<usize> = (0..5).map(|_| rng.below(10)).collect();
        let mut prev = 0.0;
        for k in 1..=10 {
            let hr = hit_rate_at_k(&rankings, &relevant, k);
            prop_assert!(hr >= prev - 1e-12);
            prev = hr;
        }
        prop_assert!((prev - 1.0).abs() < 1e-12, "HR@10 over a full permutation must be 1");
    }

    #[test]
    fn precision_bounded(seed in 0u64..200, k in 1usize..8) {
        let mut rng = Rng::seed_from(seed);
        let rankings: Vec<Vec<usize>> = (0..4).map(|_| rng.permutation(12)).collect();
        let relevant: Vec<Vec<usize>> = (0..4).map(|_| vec![rng.below(12), rng.below(12)]).collect();
        let p = precision_at_k(&rankings, &relevant, k);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn ssim_self_is_one_and_bounded(seed in 0u64..100) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform(&[16, 16], 0.0, 1.0, &mut rng);
        prop_assert!((ssim(&a, &a) - 1.0).abs() < 1e-9);
        let b = Tensor::rand_uniform(&[16, 16], 0.0, 1.0, &mut rng);
        let s = ssim(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn voxel_iou_and_pixel_accuracy_bounds(seed in 0u64..100) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform(&[64], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[64], 0.0, 1.0, &mut rng);
        prop_assert!((0.0..=1.0).contains(&voxel_iou(&a, &b)));
        prop_assert!((0.0..=1.0).contains(&per_pixel_accuracy(&a, &b)));
        prop_assert_eq!(per_pixel_accuracy(&a, &a), 1.0);
    }
}

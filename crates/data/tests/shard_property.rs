//! Property tests of the data-parallel sharding rule: for any world size
//! and ragged dataset geometry, the union of the N worker shard streams is
//! exactly the single-worker cursor stream — no index dropped, none
//! duplicated, position within each global batch preserved.

use aibench_data::cursor::BatchCursor;
use aibench_data::shard::{shard_of_batch, ShardedCursor};
use aibench_tensor::Rng;
use proptest::prelude::*;

/// Merges one global batch's shards back by strided position.
fn merge_shards(shards: &[Vec<usize>], world: usize, global_len: usize) -> Vec<usize> {
    let mut merged = vec![usize::MAX; global_len];
    for (r, shard) in shards.iter().enumerate() {
        for (j, &idx) in shard.iter().enumerate() {
            merged[r + j * world] = idx;
        }
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn shard_union_equals_single_worker_stream(
        len in 1usize..120,
        batch in 1usize..17,
        world_pick in 0usize..4,
        seed in 0u64..1000,
    ) {
        let world = [1usize, 2, 3, 7][world_pick];
        let mut single = BatchCursor::new(len, batch, Rng::seed_from(seed));
        let mut cursors: Vec<ShardedCursor> = (0..world)
            .map(|r| ShardedCursor::new(len, batch, Rng::seed_from(seed), world, r))
            .collect();
        // Two full epochs, including the ragged end-of-epoch batch and the
        // epoch-boundary reshuffle.
        for _ in 0..single.batches_per_epoch() * 2 {
            let global = single.next_batch();
            let shards: Vec<Vec<usize>> =
                cursors.iter_mut().map(|c| c.next_batch()).collect();
            let total: usize = shards.iter().map(Vec::len).sum();
            prop_assert_eq!(total, global.len());
            prop_assert_eq!(merge_shards(&shards, world, global.len()), global);
        }
    }

    #[test]
    fn shards_are_disjoint_and_complete(
        global in prop::collection::vec(0usize..1000, 1..40),
        world_pick in 0usize..4,
    ) {
        let world = [1usize, 2, 3, 7][world_pick];
        let mut seen: Vec<usize> = Vec::new();
        for r in 0..world {
            seen.extend(shard_of_batch(&global, world, r));
        }
        let mut expected = global.clone();
        seen.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
    }
}

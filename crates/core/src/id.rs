//! Benchmark identifiers.

use std::fmt;

/// Identifier of one component benchmark: the seventeen AIBench tasks
/// (`DC-AI-C1` … `DC-AI-C17`, Table 3) plus the seven MLPerf training
/// baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    /// DC-AI-C1 Image classification (ResNet-50).
    ImageClassification,
    /// DC-AI-C2 Image generation (WGAN).
    ImageGeneration,
    /// DC-AI-C3 Text-to-Text translation (Transformer).
    TextToText,
    /// DC-AI-C4 Image-to-Text (Neural Image Caption).
    ImageToText,
    /// DC-AI-C5 Image-to-Image (CycleGAN).
    ImageToImage,
    /// DC-AI-C6 Speech recognition (DeepSpeech2).
    SpeechRecognition,
    /// DC-AI-C7 Face embedding (FaceNet).
    FaceEmbedding,
    /// DC-AI-C8 3D face recognition (RGB-D ResNet-50).
    FaceRecognition3d,
    /// DC-AI-C9 Object detection (Faster R-CNN).
    ObjectDetection,
    /// DC-AI-C10 Recommendation (Neural Collaborative Filtering).
    Recommendation,
    /// DC-AI-C11 Video prediction (motion-focused predictive model).
    VideoPrediction,
    /// DC-AI-C12 Image compression (recurrent autoencoder).
    ImageCompression,
    /// DC-AI-C13 3D object reconstruction (perspective transformer nets).
    ObjectReconstruction3d,
    /// DC-AI-C14 Text summarization (attentional seq2seq).
    TextSummarization,
    /// DC-AI-C15 Spatial transformer network.
    SpatialTransformer,
    /// DC-AI-C16 Learning to rank (Ranking Distillation).
    LearningToRank,
    /// DC-AI-C17 Neural architecture search (ENAS).
    NeuralArchitectureSearch,
    /// MLPerf Image Classification (shared with DC-AI-C1).
    MlperfImageClassification,
    /// MLPerf Object Detection, heavy (Mask R-CNN).
    MlperfObjectDetectionHeavy,
    /// MLPerf Object Detection, light (SSD).
    MlperfObjectDetectionLight,
    /// MLPerf Translation, recurrent (GNMT).
    MlperfTranslationRecurrent,
    /// MLPerf Translation, non-recurrent (Transformer).
    MlperfTranslationNonRecurrent,
    /// MLPerf Recommendation (shared with DC-AI-C10).
    MlperfRecommendation,
    /// MLPerf Reinforcement Learning (minigo).
    MlperfReinforcementLearning,
}

impl BenchmarkId {
    /// The seventeen AIBench ids in DC-AI-C order.
    pub const AIBENCH: [BenchmarkId; 17] = [
        BenchmarkId::ImageClassification,
        BenchmarkId::ImageGeneration,
        BenchmarkId::TextToText,
        BenchmarkId::ImageToText,
        BenchmarkId::ImageToImage,
        BenchmarkId::SpeechRecognition,
        BenchmarkId::FaceEmbedding,
        BenchmarkId::FaceRecognition3d,
        BenchmarkId::ObjectDetection,
        BenchmarkId::Recommendation,
        BenchmarkId::VideoPrediction,
        BenchmarkId::ImageCompression,
        BenchmarkId::ObjectReconstruction3d,
        BenchmarkId::TextSummarization,
        BenchmarkId::SpatialTransformer,
        BenchmarkId::LearningToRank,
        BenchmarkId::NeuralArchitectureSearch,
    ];

    /// The seven MLPerf ids.
    pub const MLPERF: [BenchmarkId; 7] = [
        BenchmarkId::MlperfImageClassification,
        BenchmarkId::MlperfObjectDetectionHeavy,
        BenchmarkId::MlperfObjectDetectionLight,
        BenchmarkId::MlperfTranslationRecurrent,
        BenchmarkId::MlperfTranslationNonRecurrent,
        BenchmarkId::MlperfRecommendation,
        BenchmarkId::MlperfReinforcementLearning,
    ];

    /// The paper's identifier code (e.g. `DC-AI-C1`) or an `MLPerf-*`
    /// label for baselines.
    pub fn code(self) -> &'static str {
        match self {
            BenchmarkId::ImageClassification => "DC-AI-C1",
            BenchmarkId::ImageGeneration => "DC-AI-C2",
            BenchmarkId::TextToText => "DC-AI-C3",
            BenchmarkId::ImageToText => "DC-AI-C4",
            BenchmarkId::ImageToImage => "DC-AI-C5",
            BenchmarkId::SpeechRecognition => "DC-AI-C6",
            BenchmarkId::FaceEmbedding => "DC-AI-C7",
            BenchmarkId::FaceRecognition3d => "DC-AI-C8",
            BenchmarkId::ObjectDetection => "DC-AI-C9",
            BenchmarkId::Recommendation => "DC-AI-C10",
            BenchmarkId::VideoPrediction => "DC-AI-C11",
            BenchmarkId::ImageCompression => "DC-AI-C12",
            BenchmarkId::ObjectReconstruction3d => "DC-AI-C13",
            BenchmarkId::TextSummarization => "DC-AI-C14",
            BenchmarkId::SpatialTransformer => "DC-AI-C15",
            BenchmarkId::LearningToRank => "DC-AI-C16",
            BenchmarkId::NeuralArchitectureSearch => "DC-AI-C17",
            BenchmarkId::MlperfImageClassification => "MLPerf-IC",
            BenchmarkId::MlperfObjectDetectionHeavy => "MLPerf-OD-Heavy",
            BenchmarkId::MlperfObjectDetectionLight => "MLPerf-OD-Light",
            BenchmarkId::MlperfTranslationRecurrent => "MLPerf-Trans-Rec",
            BenchmarkId::MlperfTranslationNonRecurrent => "MLPerf-Trans-NonRec",
            BenchmarkId::MlperfRecommendation => "MLPerf-Rec",
            BenchmarkId::MlperfReinforcementLearning => "MLPerf-RL",
        }
    }

    /// Whether this is an AIBench (vs MLPerf) benchmark.
    pub fn is_aibench(self) -> bool {
        Self::AIBENCH.contains(&self)
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper() {
        assert_eq!(BenchmarkId::AIBENCH.len(), 17);
        assert_eq!(BenchmarkId::MLPERF.len(), 7);
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<&str> = BenchmarkId::AIBENCH
            .iter()
            .chain(&BenchmarkId::MLPERF)
            .map(|i| i.code())
            .collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 24);
    }

    #[test]
    fn membership() {
        assert!(BenchmarkId::LearningToRank.is_aibench());
        assert!(!BenchmarkId::MlperfReinforcementLearning.is_aibench());
    }
}

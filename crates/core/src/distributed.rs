//! Distributed training sessions: the suite-level entry point into
//! `aibench-dist`'s simulated elastic data-parallel runner.
//!
//! Only benchmarks whose scaled trainers implement the
//! [`aibench_models::DataParallel`] hooks can run distributed
//! ([`crate::registry::Benchmark::supports_data_parallel`]); the others
//! return `None` rather than silently falling back to sequential training.
//!
//! # Example
//!
//! ```
//! use aibench::distributed::run_distributed_to_quality;
//! use aibench::registry::Registry;
//! use aibench::runner::RunConfig;
//! use aibench_dist::DistConfig;
//!
//! let registry = Registry::aibench();
//! let stn = registry.get("DC-AI-C15").expect("spatial transformer");
//! let config = RunConfig { max_epochs: 2, ..RunConfig::default() };
//! let report = run_distributed_to_quality(stn, 1, &config, &DistConfig::with_world(2))
//!     .expect("DC-AI-C15 supports data-parallel training");
//! assert_eq!(report.result.epochs_run, 2);
//! assert_eq!(report.dist.world_trace, vec![(1, 2), (2, 2)]);
//! ```

use std::time::Instant;

use aibench_ckpt::CheckpointSink;
use aibench_dist::{
    run_data_parallel, run_data_parallel_resumable, DistConfig, DistRunResult, RunParams,
};

use crate::registry::Benchmark;
use crate::runner::{RunConfig, RunResult};

/// The outcome of a distributed training session: the sequential-shaped
/// [`RunResult`] (so distributed runs flow into the same comparison and
/// repeatability tooling) plus the full distributed record.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// The session outcome in [`crate::runner`] shape.
    pub result: RunResult,
    /// The complete distributed outcome: world trace, fault log, reshard
    /// count, logical time, abort flag.
    pub dist: DistRunResult,
}

impl DistReport {
    fn new(benchmark: &Benchmark, dist: DistRunResult, wall_seconds: f64) -> Self {
        let result = RunResult {
            code: benchmark.id.code().to_string(),
            seed: dist.seed,
            epochs_run: dist.epochs_run,
            epochs_to_target: dist.epochs_to_target,
            quality_trace: dist.quality_trace.clone(),
            loss_trace: dist.loss_trace.clone(),
            final_quality: dist.final_quality,
            wall_seconds,
            resumed_from: dist.resumed_from,
        };
        DistReport { result, dist }
    }
}

fn run_params(config: &RunConfig) -> RunParams {
    RunParams {
        max_epochs: config.max_epochs,
        eval_every: config.eval_every,
        snapshot_every: config.checkpoint_every,
    }
}

/// Runs an entire data-parallel training session of `benchmark`: `dist.world`
/// simulated workers train to the quality target (or `config.max_epochs`),
/// under `dist`'s membership plan, fault schedule, and recovery policy.
///
/// Returns `None` when the benchmark's trainer does not implement the
/// data-parallel hooks. With `dist.world == 1` and no membership or fault
/// entries, the returned [`DistReport::result`] is `deterministic_eq` to
/// [`crate::runner::run_to_quality`] for the same seed and config.
pub fn run_distributed_to_quality(
    benchmark: &Benchmark,
    seed: u64,
    config: &RunConfig,
    dist: &DistConfig,
) -> Option<DistReport> {
    if !benchmark.supports_data_parallel() {
        return None;
    }
    if let Some(par) = config.parallel {
        par.install();
    }
    let start = Instant::now();
    let factory = |s: u64| {
        benchmark
            .build_data_parallel(s)
            .expect("supports_data_parallel was checked above")
    };
    let target_met = |q: f64| benchmark.target.met_by(q);
    let outcome = run_data_parallel(&factory, seed, &target_met, &run_params(config), dist);
    Some(DistReport::new(
        benchmark,
        outcome,
        start.elapsed().as_secs_f64(),
    ))
}

/// Like [`run_distributed_to_quality`], but resumes from the newest valid
/// group snapshot in `sink` and saves a new snapshot every
/// `config.checkpoint_every` epochs (0 disables saving).
pub fn run_distributed_to_quality_resumable(
    benchmark: &Benchmark,
    seed: u64,
    config: &RunConfig,
    dist: &DistConfig,
    sink: &mut dyn CheckpointSink,
) -> Option<DistReport> {
    if !benchmark.supports_data_parallel() {
        return None;
    }
    if let Some(par) = config.parallel {
        par.install();
    }
    let start = Instant::now();
    let factory = |s: u64| {
        benchmark
            .build_data_parallel(s)
            .expect("supports_data_parallel was checked above")
    };
    let target_met = |q: f64| benchmark.target.met_by(q);
    let outcome =
        run_data_parallel_resumable(&factory, seed, &target_met, &run_params(config), dist, sink);
    Some(DistReport::new(
        benchmark,
        outcome,
        start.elapsed().as_secs_f64(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn unsupported_benchmarks_return_none() {
        let registry = Registry::aibench();
        let gan = registry.get("DC-AI-C3").expect("image generation");
        assert!(!gan.supports_data_parallel());
        assert!(run_distributed_to_quality(
            gan,
            1,
            &RunConfig::default(),
            &DistConfig::with_world(2)
        )
        .is_none());
    }

    #[test]
    fn supported_benchmarks_report_sequential_shape() {
        let registry = Registry::aibench();
        let stn = registry.get("DC-AI-C15").expect("spatial transformer");
        assert!(stn.supports_data_parallel());
        let config = RunConfig {
            max_epochs: 2,
            ..RunConfig::default()
        };
        let report = run_distributed_to_quality(stn, 1, &config, &DistConfig::with_world(2))
            .expect("supported");
        assert_eq!(report.result.code, "DC-AI-C15");
        assert_eq!(report.result.epochs_run, 2);
        assert_eq!(report.result.loss_trace.len(), 2);
        assert_eq!(report.dist.initial_world, 2);
        assert!(!report.dist.aborted);
    }
}

//! Resumable training sessions: periodic checkpoints, crash recovery, and
//! the fault-injection harness that proves resumed runs are bitwise
//! identical to uninterrupted ones.
//!
//! A snapshot is three sections in one [`SnapshotFile`]:
//!
//! * `meta` — run identity (benchmark code, seed, and the [`RunConfig`]
//!   fields that shape the trajectory). Resume refuses a snapshot whose
//!   identity disagrees with the session being resumed.
//! * `progress` — the partial [`RunResult`]: epochs run, loss and quality
//!   traces, convergence epoch.
//! * `trainer` — everything training mutates, via
//!   [`Trainer::save_state`]: parameters, optimizer moments, RNG position,
//!   batch-norm running statistics, step counters.
//!
//! Architecture and datasets are deliberately *not* saved: the benchmark
//! factory rebuilds them deterministically from the seed, and restore then
//! overwrites the mutable state. That keeps snapshots small and makes a
//! version-skewed or corrupted snapshot recoverable — the runner just falls
//! back to the next older one.

use aibench_ckpt::{CheckpointSink, CkptError, SnapshotFile, State};
use aibench_models::Trainer;

use crate::registry::Benchmark;
use crate::runner::{RunConfig, RunResult};
use crate::session::TrainingSession;

/// The accumulated portion of a [`RunResult`] carried across sessions.
#[derive(Debug, Clone)]
pub struct PartialRun {
    /// Epochs completed so far.
    pub epochs_run: usize,
    /// Convergence epoch, if reached.
    pub epochs_to_target: Option<usize>,
    /// `(epoch, quality)` per evaluation so far.
    pub quality_trace: Vec<(usize, f64)>,
    /// Mean training loss per epoch so far.
    pub loss_trace: Vec<f32>,
    /// Most recent quality (NaN before the first evaluation).
    pub final_quality: f64,
}

impl PartialRun {
    /// The empty progress of a fresh run.
    pub fn fresh() -> Self {
        PartialRun {
            epochs_run: 0,
            epochs_to_target: None,
            quality_trace: Vec::new(),
            loss_trace: Vec::new(),
            final_quality: f64::NAN,
        }
    }
}

impl Default for PartialRun {
    fn default() -> Self {
        PartialRun::fresh()
    }
}

/// Serializes the complete session state — run identity, progress, and the
/// trainer's mutable state — into snapshot bytes.
pub fn snapshot_run(
    benchmark: &Benchmark,
    seed: u64,
    config: &RunConfig,
    progress: &PartialRun,
    trainer: &dyn Trainer,
) -> Vec<u8> {
    let mut meta = State::new();
    meta.put_str("code", benchmark.id.code());
    meta.put_u64("seed", seed);
    meta.put_usize("max_epochs", config.max_epochs);
    meta.put_usize("eval_every", config.eval_every);

    let mut prog = State::new();
    prog.put_usize("epochs_run", progress.epochs_run);
    prog.put_bool("converged", progress.epochs_to_target.is_some());
    prog.put_usize("epochs_to_target", progress.epochs_to_target.unwrap_or(0));
    prog.put_u64s(
        "quality_epochs",
        progress
            .quality_trace
            .iter()
            .map(|&(e, _)| e as u64)
            .collect(),
    );
    prog.put_f64s(
        "quality_values",
        progress.quality_trace.iter().map(|&(_, q)| q).collect(),
    );
    prog.put_f32s(
        "loss_trace",
        &[progress.loss_trace.len()],
        progress.loss_trace.clone(),
    );
    prog.put_f64("final_quality", progress.final_quality);

    let mut trainer_state = State::new();
    trainer.save_state(&mut trainer_state);

    let mut file = SnapshotFile::new();
    file.push("meta", meta);
    file.push("progress", prog);
    file.push("trainer", trainer_state);
    file.to_bytes()
}

/// Strictly decodes snapshot bytes, verifies they belong to this exact run
/// (same benchmark, seed, and trajectory-shaping config), rebuilds the
/// trainer from the seed, and restores its state.
///
/// Any defect — corruption, truncation, version skew, identity mismatch,
/// missing keys — surfaces as an error; the caller falls back to an older
/// snapshot or a fresh start.
pub fn restore_run(
    benchmark: &Benchmark,
    seed: u64,
    config: &RunConfig,
    bytes: &[u8],
) -> Result<(Box<dyn Trainer>, PartialRun), CkptError> {
    let file = SnapshotFile::from_bytes(bytes)?;

    let meta = file.section("meta")?;
    let mismatch = |what: String| CkptError::MetaMismatch { what };
    if meta.str("code")? != benchmark.id.code() {
        return Err(mismatch(format!(
            "snapshot is for `{}`, resuming `{}`",
            meta.str("code")?,
            benchmark.id.code()
        )));
    }
    if meta.u64("seed")? != seed {
        return Err(mismatch(format!(
            "snapshot seed {}, resuming seed {seed}",
            meta.u64("seed")?
        )));
    }
    if meta.usize("max_epochs")? != config.max_epochs
        || meta.usize("eval_every")? != config.eval_every
    {
        return Err(mismatch(
            "run configuration (max_epochs/eval_every) differs".to_string(),
        ));
    }

    let prog = file.section("progress")?;
    let epochs = prog.u64s("quality_epochs")?;
    let values = prog.f64s("quality_values")?;
    if epochs.len() != values.len() {
        return Err(CkptError::MetaMismatch {
            what: "quality trace epochs/values lengths differ".to_string(),
        });
    }
    let progress = PartialRun {
        epochs_run: prog.usize("epochs_run")?,
        epochs_to_target: prog
            .bool("converged")?
            .then(|| prog.usize("epochs_to_target"))
            .transpose()?,
        quality_trace: epochs
            .iter()
            .zip(values)
            .map(|(&e, &q)| (e as usize, q))
            .collect(),
        loss_trace: prog.f32s("loss_trace")?.1.to_vec(),
        final_quality: prog.f64("final_quality")?,
    };

    let mut trainer = benchmark.build(seed);
    trainer.load_state(file.section("trainer")?)?;
    Ok((trainer, progress))
}

/// Walks `sink` from the newest snapshot to the oldest and returns the
/// first that decodes, matches this run's identity, and restores cleanly,
/// together with its epoch. Unreadable (I/O error), corrupt, and mismatched
/// snapshots are skipped in favor of the next older — that fallback *is*
/// the recovery policy at this layer; callers that need to distinguish a
/// clean miss from storage trouble (the supervised runner) inspect the sink
/// themselves.
pub fn latest_valid_restore(
    benchmark: &Benchmark,
    seed: u64,
    config: &RunConfig,
    sink: &dyn CheckpointSink,
) -> Option<(Box<dyn Trainer>, PartialRun, usize)> {
    for &epoch in sink.epochs().iter().rev() {
        let Ok(Some(bytes)) = sink.load(epoch) else {
            continue;
        };
        if let Ok((t, p)) = restore_run(benchmark, seed, config, &bytes) {
            return Some((t, p, epoch));
        }
    }
    None
}

/// The engine behind the resumable runner: resumes from the newest valid
/// snapshot in `sink`, trains to the quality target or the epoch cap, and
/// saves a checkpoint every `config.checkpoint_every` epochs.
///
/// `epoch_budget` simulates a crash: after executing that many epochs *in
/// this session*, the function returns `Ok(None)` mid-run — exactly what a
/// `kill -9` leaves behind, a sink holding whatever checkpoints were saved.
/// A failed checkpoint *save* surfaces as `Err`: the caller asked for
/// durable progress and did not get it, which must not look like success.
fn run_session(
    benchmark: &Benchmark,
    seed: u64,
    config: &RunConfig,
    sink: &mut dyn CheckpointSink,
    epoch_budget: Option<usize>,
) -> Result<Option<RunResult>, CkptError> {
    let mut session = TrainingSession::resume(benchmark, seed, config, sink);

    // The session steps through exactly `run_to_quality`'s call sequence —
    // same eval cadence — so the trajectory is bit-identical. `executed`
    // counts epochs run in *this* session, for the kill budget.
    let mut executed = 0;
    while !session.finished() {
        if epoch_budget.is_some_and(|budget| executed >= budget) {
            return Ok(None); // simulated kill
        }
        executed += 1;
        session.step();
        if session.converged() {
            break; // converged runs never checkpoint their final epoch
        }
        if config.checkpoint_every > 0
            && session.epochs_run().is_multiple_of(config.checkpoint_every)
        {
            session.checkpoint(sink)?;
        }
    }

    Ok(Some(session.result()))
}

/// Runs an entire training session like
/// [`run_to_quality`](crate::runner::run_to_quality), but checkpointing
/// every `config.checkpoint_every` epochs into `sink` and resuming from the
/// newest valid snapshot already there.
///
/// The resumed result is [`RunResult::deterministic_eq`] to the result of
/// an uninterrupted run with the same benchmark, seed, and config — at any
/// `AIBENCH_THREADS` setting. Snapshots that fail their checksums (or
/// belong to a different run) are skipped in favor of older ones; with no
/// usable snapshot the session starts from scratch. A checkpoint that
/// cannot be *written* is an `Err` — durability was requested and lost.
pub fn run_to_quality_resumable(
    benchmark: &Benchmark,
    seed: u64,
    config: &RunConfig,
    sink: &mut dyn CheckpointSink,
) -> Result<RunResult, CkptError> {
    run_session(benchmark, seed, config, sink, None)
        .map(|result| result.expect("a session without an epoch budget always completes"))
}

/// Runs a resumable session but aborts it — as a crash would — after
/// `kill_after_epochs` epochs of work in this invocation. Returns the
/// result only if the session finished before the kill; `Ok(None)` means
/// the "process died" and `sink` holds whatever checkpoints were written.
pub fn run_until_killed(
    benchmark: &Benchmark,
    seed: u64,
    config: &RunConfig,
    sink: &mut dyn CheckpointSink,
    kill_after_epochs: usize,
) -> Result<Option<RunResult>, CkptError> {
    run_session(benchmark, seed, config, sink, Some(kill_after_epochs))
}

/// The outcome of a [`fault_injection_run`].
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The final, completed result.
    pub result: RunResult,
    /// Sessions killed before completion.
    pub kills: usize,
    /// The epoch each successive session resumed from (`None` = scratch).
    pub resume_points: Vec<Option<usize>>,
}

/// Repeatedly starts the session and kills it after `kill_every` epochs
/// until one session runs to completion, restarting from the sink's
/// snapshots each time — a deterministic stand-in for pulling the plug in a
/// loop.
///
/// # Panics
///
/// Panics if the schedule cannot make progress (requires
/// `kill_every >= config.checkpoint_every >= 1`, else every restart repeats
/// the same epochs and dies before saving anything new).
pub fn fault_injection_run(
    benchmark: &Benchmark,
    seed: u64,
    config: &RunConfig,
    sink: &mut dyn CheckpointSink,
    kill_every: usize,
) -> Result<FaultReport, CkptError> {
    assert!(
        config.checkpoint_every >= 1 && kill_every >= config.checkpoint_every,
        "fault injection needs kill_every >= checkpoint_every >= 1 to make progress"
    );
    let mut kills = 0;
    let mut resume_points = Vec::new();
    loop {
        match run_session(benchmark, seed, config, sink, Some(kill_every))? {
            Some(result) => {
                resume_points.push(result.resumed_from);
                return Ok(FaultReport {
                    result,
                    kills,
                    resume_points,
                });
            }
            None => {
                kills += 1;
                resume_points.push(sink.epochs().last().copied());
                assert!(
                    kills <= config.max_epochs + 2,
                    "fault-injection loop made no progress after {kills} kills"
                );
            }
        }
    }
}

/// FNV-1a fingerprint over the raw bits of every parameter, in order — a
/// compact witness that two trainers hold bitwise-identical weights.
pub fn params_fingerprint(trainer: &dyn Trainer) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for p in trainer.params() {
        for &x in p.value().data() {
            for b in x.to_bits().to_le_bytes() {
                mix(b);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use aibench_ckpt::MemorySink;

    fn cfg(max_epochs: usize, checkpoint_every: usize) -> RunConfig {
        RunConfig {
            max_epochs,
            eval_every: 1,
            checkpoint_every,
            ..RunConfig::default()
        }
    }

    #[test]
    fn resumable_without_checkpoints_matches_plain_runner() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let config = cfg(3, 0);
        let plain = crate::runner::run_to_quality(b, 1, &config);
        let mut sink = MemorySink::new();
        let resumable = run_to_quality_resumable(b, 1, &config, &mut sink).unwrap();
        assert!(plain.deterministic_eq(&resumable));
        assert!(sink.epochs().is_empty());
    }

    #[test]
    fn snapshot_restore_round_trips_progress() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let config = cfg(10, 0);
        let mut trainer = b.build(7);
        let mut progress = PartialRun::fresh();
        progress.loss_trace.push(trainer.train_epoch());
        progress.epochs_run = 1;
        progress.quality_trace.push((1, 0.25));
        progress.final_quality = 0.25;
        let bytes = snapshot_run(b, 7, &config, &progress, trainer.as_ref());
        let (restored, p2) = restore_run(b, 7, &config, &bytes).unwrap();
        assert_eq!(p2.epochs_run, 1);
        assert_eq!(p2.quality_trace, vec![(1, 0.25)]);
        assert_eq!(
            params_fingerprint(trainer.as_ref()),
            params_fingerprint(restored.as_ref())
        );
    }

    #[test]
    fn restore_rejects_other_run_identities() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let config = cfg(5, 0);
        let trainer = b.build(1);
        let bytes = snapshot_run(b, 1, &config, &PartialRun::fresh(), trainer.as_ref());
        // Wrong seed.
        assert!(matches!(
            restore_run(b, 2, &config, &bytes),
            Err(CkptError::MetaMismatch { .. })
        ));
        // Wrong benchmark.
        let other = r.get("DC-AI-C8").unwrap();
        assert!(matches!(
            restore_run(other, 1, &config, &bytes),
            Err(CkptError::MetaMismatch { .. })
        ));
        // Wrong trajectory-shaping config.
        assert!(matches!(
            restore_run(b, 1, &cfg(6, 0), &bytes),
            Err(CkptError::MetaMismatch { .. })
        ));
    }
}

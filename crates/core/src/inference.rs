//! Online-inference metrics (Section 4.2.1): query latency, tail latency,
//! throughput, and per-query energy for every component benchmark, from
//! the GPU simulator's forward-only lowering.
//!
//! The paper's suite ships an inference variant of each component
//! benchmark; its metrics are "query response latency, tail latency,
//! throughput, inference accuracy, and inference energy consumption".
//! Accuracy is the training-side quality metric evaluated on held-out
//! data; the rest are produced here.

use aibench_gpusim::{execute, lower_inference_iteration, DeviceConfig};

use crate::registry::{Benchmark, Registry};

/// Simulated online-inference metrics for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Benchmark code.
    pub code: String,
    /// Median single-query latency, milliseconds (batch of 1).
    pub latency_p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub latency_p99_ms: f64,
    /// Throughput at the serving batch size, queries/second.
    pub throughput_qps: f64,
    /// Energy per query at the serving batch size, millijoules.
    pub energy_per_query_mj: f64,
    /// Serving batch size used for throughput/energy.
    pub serving_batch: usize,
}

/// Deterministic tail model: queueing and kernel-launch jitter grow with
/// the number of kernel launches on the critical path. Calibrated so a
/// single-kernel model shows a ~1.3× p99/p50 ratio and a thousand-launch
/// RNN shows ~2.5×, the regime nvprof-based serving studies report.
fn tail_factor(launches: usize) -> f64 {
    1.3 + 0.4 * ((launches.max(1) as f64).ln() / 3.0)
}

/// Produces the inference report of one benchmark on `device`.
pub fn inference_metrics(benchmark: &Benchmark, device: &DeviceConfig) -> InferenceReport {
    let spec = benchmark.spec();
    // Single-query latency.
    let single = lower_inference_iteration(&spec, 1);
    let launches: usize = single.iter().map(|k| k.count).sum();
    let p50_s: f64 = single.iter().map(|k| execute(k, device).time_s).sum();
    // Server-side batching amortizes launch overhead.
    let serving_batch = spec.batch_size.clamp(1, 64);
    let batched = lower_inference_iteration(&spec, serving_batch);
    let profiles: Vec<_> = batched.iter().map(|k| execute(k, device)).collect();
    let batch_s: f64 = profiles.iter().map(|p| p.time_s).sum();
    let batch_j: f64 = profiles.iter().map(|p| p.energy_j).sum();
    InferenceReport {
        code: benchmark.id.code().to_string(),
        latency_p50_ms: p50_s * 1e3,
        latency_p99_ms: p50_s * tail_factor(launches) * 1e3,
        throughput_qps: serving_batch as f64 / batch_s,
        energy_per_query_mj: batch_j / serving_batch as f64 * 1e3,
        serving_batch,
    }
}

/// Inference reports for a whole registry.
pub fn inference_table(registry: &Registry, device: &DeviceConfig) -> Vec<InferenceReport> {
    registry
        .benchmarks()
        .iter()
        .map(|b| inference_metrics(b, device))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_exceeds_median_everywhere() {
        let device = DeviceConfig::titan_xp();
        for r in inference_table(&Registry::aibench(), &device) {
            assert!(r.latency_p99_ms > r.latency_p50_ms, "{}", r.code);
            assert!(r.latency_p99_ms < 10.0 * r.latency_p50_ms, "{}", r.code);
            assert!(r.throughput_qps > 0.0);
            assert!(r.energy_per_query_mj > 0.0);
        }
    }

    #[test]
    fn batching_raises_throughput_over_single_query_rate() {
        let device = DeviceConfig::titan_xp();
        let registry = Registry::aibench();
        // Image Classification serves batches of 64+; throughput must beat
        // the 1/p50 single-stream rate.
        let r = inference_metrics(registry.get("DC-AI-C1").unwrap(), &device);
        let single_stream_qps = 1e3 / r.latency_p50_ms;
        assert!(
            r.throughput_qps > single_stream_qps,
            "{} vs {}",
            r.throughput_qps,
            single_stream_qps
        );
    }

    #[test]
    fn big_models_are_slower_than_small_ones() {
        let device = DeviceConfig::titan_xp();
        let registry = Registry::aibench();
        let ic = inference_metrics(registry.get("DC-AI-C1").unwrap(), &device);
        let stn = inference_metrics(registry.get("DC-AI-C15").unwrap(), &device);
        assert!(ic.latency_p50_ms > stn.latency_p50_ms);
    }

    #[test]
    fn inference_is_cheaper_than_training_per_iteration() {
        let device = DeviceConfig::titan_xp();
        let registry = Registry::aibench();
        let b = registry.get("DC-AI-C1").unwrap();
        let spec = b.spec();
        let inf: f64 = lower_inference_iteration(&spec, spec.batch_size)
            .iter()
            .map(|k| execute(k, &device).time_s)
            .sum();
        let train: f64 = aibench_gpusim::lower_training_iteration(&spec)
            .iter()
            .map(|k| execute(k, &device).time_s)
            .sum();
        assert!(inf < 0.6 * train, "inference {inf} vs training {train}");
    }
}

//! Static suite-comparison data behind Table 1: which AI benchmark suites
//! cover which component tasks, datasets, and software stacks.

/// Coverage facts for one benchmark suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteInfo {
    /// Suite name.
    pub name: &'static str,
    /// Component tasks with training coverage.
    pub train_tasks: &'static [&'static str],
    /// Whether the suite defines an affordable subset.
    pub has_subset: bool,
    /// Real-world dataset counts: (text, image, 3D, audio, video).
    pub datasets: (u8, u8, u8, u8, u8),
    /// Software stacks provided.
    pub software_stacks: u8,
}

impl SuiteInfo {
    /// Number of training component benchmarks.
    pub fn train_count(&self) -> usize {
        self.train_tasks.len()
    }

    /// Total real-world datasets.
    pub fn dataset_count(&self) -> u8 {
        let (t, i, d3, a, v) = self.datasets;
        t + i + d3 + a + v
    }
}

const AIBENCH_TASKS: &[&str] = &[
    "Image classification",
    "Image generation",
    "Text-to-Text translation",
    "Image-to-Text",
    "Image-to-Image",
    "Speech recognition",
    "Face embedding",
    "3D Face Recognition",
    "Object detection",
    "Recommendation",
    "Video prediction",
    "Image compression",
    "3D object reconstruction",
    "Text summarization",
    "Spatial transformer",
    "Learning to rank",
    "Neural architecture search",
];

/// The suite-comparison rows of Table 1.
pub fn suites() -> Vec<SuiteInfo> {
    vec![
        SuiteInfo {
            name: "AIBench",
            train_tasks: AIBENCH_TASKS,
            has_subset: true,
            datasets: (3, 8, 2, 1, 1),
            software_stacks: 3,
        },
        SuiteInfo {
            name: "MLPerf",
            train_tasks: &[
                "Image classification",
                "Object detection",
                "Text-to-Text translation",
                "Recommendation",
                "Games",
            ],
            has_subset: false,
            datasets: (1, 2, 0, 0, 0),
            software_stacks: 2,
        },
        SuiteInfo {
            name: "Fathom",
            train_tasks: &[
                "Image classification",
                "Text-to-Text translation",
                "Speech recognition",
                "Image compression",
                "Games",
                "Memory network",
            ],
            has_subset: false,
            datasets: (2, 2, 0, 1, 1),
            software_stacks: 1,
        },
        SuiteInfo {
            name: "DeepBench",
            train_tasks: &[],
            has_subset: false,
            datasets: (0, 0, 0, 0, 0),
            software_stacks: 1,
        },
        SuiteInfo {
            name: "DNNMark",
            train_tasks: &[],
            has_subset: false,
            datasets: (0, 0, 0, 0, 0),
            software_stacks: 1,
        },
        SuiteInfo {
            name: "DAWNBench",
            train_tasks: &["Image classification", "Question answering"],
            has_subset: false,
            datasets: (1, 2, 0, 0, 0),
            software_stacks: 2,
        },
        SuiteInfo {
            name: "TBD",
            train_tasks: &[
                "Image classification",
                "Image generation",
                "Text-to-Text translation",
                "Speech recognition",
                "Object detection",
                "Recommendation",
                "Games",
            ],
            has_subset: false,
            datasets: (1, 4, 0, 1, 0),
            software_stacks: 4,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aibench_has_most_component_benchmarks_and_only_subset() {
        let all = suites();
        let aibench = &all[0];
        assert_eq!(aibench.train_count(), 17);
        assert!(aibench.has_subset);
        for other in &all[1..] {
            assert!(
                other.train_count() < aibench.train_count(),
                "{}",
                other.name
            );
            assert!(!other.has_subset, "{}", other.name);
        }
    }

    #[test]
    fn micro_benchmark_suites_have_no_component_tasks() {
        let all = suites();
        let deepbench = all.iter().find(|s| s.name == "DeepBench").unwrap();
        assert_eq!(deepbench.train_count(), 0);
        assert_eq!(deepbench.dataset_count(), 0);
    }

    #[test]
    fn dataset_counts_match_table1() {
        let aibench = &suites()[0];
        assert_eq!(aibench.dataset_count(), 15);
        assert_eq!(aibench.software_stacks, 3);
    }
}

//! The minimum-subset selector (Section 5.4): keep benchmarking affordable
//! by choosing the smallest set of component benchmarks that is
//! repeatable, properly measurable, and preserves the suite's diversity.
//!
//! The paper's criteria, in order:
//! 1. a widely accepted quality metric (excludes the GAN tasks);
//! 2. low run-to-run variation (the paper uses < 2%);
//! 3. diversity of model complexity, computational cost, and convergence
//!    rate — the chosen benchmarks must land in different clusters of the
//!    workload-characterization space.
//!
//! Applied to the measured suite, the selector recovers the paper's
//! subset: Image Classification (DC-AI-C1), Object Detection (DC-AI-C9),
//! and Learning-to-Rank (DC-AI-C16).

use aibench_analysis::kmeans;

/// Inputs to subset selection for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetCandidate {
    /// Benchmark code.
    pub code: String,
    /// Whether the task has a widely accepted metric.
    pub has_accepted_metric: bool,
    /// Measured run-to-run variation in percent (`None` = not measurable).
    pub variation_pct: Option<f64>,
    /// Workload-characterization feature vector (micro-architectural
    /// metrics and/or model characteristics).
    pub features: Vec<f64>,
}

/// The selection outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetSelection {
    /// Chosen benchmark codes, ordered by variation (most repeatable
    /// first).
    pub chosen: Vec<String>,
    /// Cluster assignment of every candidate, aligned with the input
    /// order.
    pub clusters: Vec<usize>,
}

/// Selects a `k`-benchmark subset per the paper's criteria.
///
/// Candidate features are clustered as given — pass pre-normalized (and,
/// if desired, weighted) vectors such as those from
/// `aibench::characterize::combined_features`.
///
/// # Panics
///
/// Panics if fewer than `k` candidates pass the metric/variation filters.
pub fn select_subset(candidates: &[SubsetCandidate], k: usize, seed: u64) -> SubsetSelection {
    let features: Vec<Vec<f64>> = candidates.iter().map(|c| c.features.clone()).collect();
    let clusters = kmeans(&features, k, seed);

    // Eligible: accepted metric + measurable variation, sorted ascending.
    let mut eligible: Vec<(usize, f64)> = candidates
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            if c.has_accepted_metric {
                c.variation_pct.map(|v| (i, v))
            } else {
                None
            }
        })
        .collect();
    eligible.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    assert!(
        eligible.len() >= k,
        "only {} eligible candidates for a subset of {k}",
        eligible.len()
    );

    // Greedy: walk candidates from most repeatable, taking one per
    // cluster, so the subset maximizes diversity at minimum variation.
    let mut chosen = Vec::with_capacity(k);
    let mut covered = vec![false; k];
    for &(i, _) in &eligible {
        let cl = clusters[i];
        if !covered[cl] {
            covered[cl] = true;
            chosen.push(candidates[i].code.clone());
            if chosen.len() == k {
                break;
            }
        }
    }
    // If some cluster had no eligible member, fill with the next most
    // repeatable candidates regardless of cluster.
    for &(i, _) in &eligible {
        if chosen.len() == k {
            break;
        }
        if !chosen.contains(&candidates[i].code) {
            chosen.push(candidates[i].code.clone());
        }
    }
    SubsetSelection { chosen, clusters }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(code: &str, var: Option<f64>, accepted: bool, f: [f64; 2]) -> SubsetCandidate {
        SubsetCandidate {
            code: code.into(),
            has_accepted_metric: accepted,
            variation_pct: var,
            features: f.to_vec(),
        }
    }

    #[test]
    fn picks_most_repeatable_per_cluster() {
        let candidates = vec![
            // Cluster A (near origin).
            candidate("a-good", Some(1.0), true, [0.0, 0.0]),
            candidate("a-bad", Some(20.0), true, [0.1, 0.0]),
            // Cluster B.
            candidate("b-good", Some(2.0), true, [10.0, 0.0]),
            candidate("b-bad", Some(30.0), true, [10.1, 0.0]),
            // Cluster C.
            candidate("c-good", Some(1.5), true, [0.0, 10.0]),
        ];
        let sel = select_subset(&candidates, 3, 1);
        let mut chosen = sel.chosen.clone();
        chosen.sort();
        assert_eq!(chosen, vec!["a-good", "b-good", "c-good"]);
    }

    #[test]
    fn excludes_gan_style_candidates() {
        let candidates = vec![
            candidate("gan", None, false, [0.0, 0.0]),
            candidate("x", Some(1.0), true, [0.05, 0.0]),
            candidate("y", Some(1.0), true, [10.0, 0.0]),
            candidate("z", Some(1.0), true, [0.0, 10.0]),
        ];
        let sel = select_subset(&candidates, 3, 2);
        assert!(!sel.chosen.contains(&"gan".to_string()));
    }

    #[test]
    #[should_panic(expected = "eligible candidates")]
    fn too_few_eligible_panics() {
        let candidates = vec![
            candidate("only", Some(1.0), true, [0.0, 0.0]),
            candidate("gan", None, false, [1.0, 0.0]),
            candidate("gan2", None, false, [0.0, 1.0]),
        ];
        let _ = select_subset(&candidates, 3, 3);
    }
}

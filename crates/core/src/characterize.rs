//! Workload characterization (Section 5.2): model characteristics from the
//! FLOPs counter and micro-architectural vectors from the GPU simulator.

use aibench_gpusim::{DeviceConfig, MicroarchMetrics, Simulator};
use aibench_opcount::count;

use crate::id::BenchmarkId;
use crate::registry::Registry;

/// Model characteristics of one benchmark (the three Figure-2 axes).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCharacteristics {
    /// Benchmark code.
    pub code: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Learnable parameters in millions.
    pub params_m: f64,
    /// Forward FLOPs in M-FLOPs.
    pub mflops: f64,
}

/// Benchmarks excluded from the model-characteristics comparison because
/// their FLOPs vary per epoch (the paper excludes the reinforcement-
/// learning models: AIBench's NAS and MLPerf's Game).
pub fn excluded_from_model_characteristics(id: BenchmarkId) -> bool {
    matches!(
        id,
        BenchmarkId::NeuralArchitectureSearch | BenchmarkId::MlperfReinforcementLearning
    )
}

/// Computes params/FLOPs for every (non-excluded) benchmark of a registry.
pub fn model_characteristics(registry: &Registry) -> Vec<ModelCharacteristics> {
    registry
        .benchmarks()
        .iter()
        .filter(|b| !excluded_from_model_characteristics(b.id))
        .map(|b| {
            let spec = b.spec();
            let c = count(&spec);
            ModelCharacteristics {
                code: b.id.code().to_string(),
                algorithm: spec.name.clone(),
                params_m: c.params_m(),
                mflops: c.mflops(),
            }
        })
        .collect()
}

/// Simulated micro-architectural metric vectors for every benchmark
/// (Figure 3's radar data and Figure 4's clustering features).
pub fn microarch_vectors(
    registry: &Registry,
    device: DeviceConfig,
) -> Vec<(String, MicroarchMetrics)> {
    let sim = Simulator::new(device);
    registry
        .benchmarks()
        .iter()
        .map(|b| (b.id.code().to_string(), sim.profile(&b.spec()).metrics))
        .collect()
}

/// Combined clustering features for one benchmark: the five simulated
/// micro-architectural metrics plus log-scaled model characteristics
/// (parameters, FLOPs) and measured epochs-to-quality.
///
/// The paper clusters on the micro-architectural metrics alone; our
/// analytical simulator compresses micro-architectural diversity (CNN
/// backbones produce near-identical vectors), so the subset-diversity
/// axes of Section 5.4.1 — model complexity, computational cost,
/// convergence rate — are appended. Features are min-max normalized, then
/// the five micro-architectural dimensions are down-weighted so the two
/// feature groups contribute comparable total variance; the vectors are
/// ready for clustering as returned.
pub fn combined_features(
    registry: &Registry,
    device: DeviceConfig,
    epochs: &std::collections::BTreeMap<String, f64>,
) -> Vec<(String, Vec<f64>)> {
    let sim = aibench_gpusim::Simulator::new(device);
    let raw: Vec<(String, Vec<f64>)> = registry
        .benchmarks()
        .iter()
        .map(|b| {
            let spec = b.spec();
            let m = sim.profile(&spec).metrics;
            let c = count(&spec);
            let mut f = m.as_vector().to_vec();
            f.push((c.params_m().max(1e-3)).ln());
            f.push((c.mflops().max(1e-3)).ln());
            f.push(epochs.get(b.id.code()).copied().unwrap_or(0.0));
            (b.id.code().to_string(), f)
        })
        .collect();
    let mut normalized = aibench_analysis::min_max_normalize(
        &raw.iter().map(|(_, f)| f.clone()).collect::<Vec<_>>(),
    );
    // The FLOPs distribution is heavy-tailed (0.03 M to 110 G), so its
    // min-max image bunches most models near the top and a couple of tiny
    // ones at the bottom; a rank transform spreads the axis evenly, which
    // is what "small / medium / large computational cost" means in
    // Section 5.4.2.
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by(|&a, &b| {
        raw[a].1[6]
            .partial_cmp(&raw[b].1[6])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (rank, &idx) in order.iter().enumerate() {
        normalized[idx][6] = rank as f64 / (raw.len().max(2) - 1) as f64;
    }
    raw.into_iter()
        .zip(normalized)
        .map(|((code, _), mut f)| {
            // Section 5.4.2 frames the subset's diversity primarily as
            // small/medium/large computational cost ("both small for
            // Learning-to-Rank, medium for Image Classification, and large
            // for Object Detection"), so the log-FLOPs axis carries full
            // weight; parameters, convergence rate, and the five simulated
            // micro-architectural metrics act as tie-breakers. (Our
            // analytical simulator gives near-identical micro-arch vectors
            // to models sharing a backbone — e.g. ResNet-50 in both Image
            // Classification and Object Detection — where real nvprof
            // traces differ, so they cannot drive the clustering.)
            for v in f.iter_mut().take(5) {
                *v *= 0.1;
            }
            f[5] *= 0.2; // log-params
            f[7] *= 0.2; // epochs
            (code, f)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusions_match_paper() {
        assert!(excluded_from_model_characteristics(
            BenchmarkId::NeuralArchitectureSearch
        ));
        assert!(excluded_from_model_characteristics(
            BenchmarkId::MlperfReinforcementLearning
        ));
        assert!(!excluded_from_model_characteristics(
            BenchmarkId::ImageClassification
        ));
    }

    #[test]
    fn aibench_characterizes_sixteen() {
        let chars = model_characteristics(&Registry::aibench());
        assert_eq!(chars.len(), 16);
        for c in &chars {
            assert!(c.params_m > 0.0 && c.mflops > 0.0, "{}", c.code);
        }
    }

    #[test]
    fn microarch_vectors_cover_registry() {
        let v = microarch_vectors(&Registry::mlperf(), DeviceConfig::titan_xp());
        assert_eq!(v.len(), 7);
        for (_, m) in &v {
            assert!(m.ipc_efficiency > 0.0 && m.ipc_efficiency < 1.0);
        }
    }
}

//! The session lifecycle API: an open, steppable training session.
//!
//! [`run_to_quality`](crate::runner::run_to_quality) and the resumable
//! runner treat a session as a closed loop — start it, get a
//! [`RunResult`] back. A scheduler (the `aibench-serve` server) needs the
//! loop *open*: run one epoch, look at the progress, snapshot the session,
//! park it to free its worker slot, and resume it later — bitwise
//! identically — when capacity returns. [`TrainingSession`] is that open
//! form; the closed runners are thin drivers over it.
//!
//! # Determinism contract
//!
//! Stepping a session epoch by epoch performs exactly the call sequence of
//! [`run_to_quality`](crate::runner::run_to_quality) — `train_epoch`, then
//! `evaluate` on the same cadence — so a driven session reproduces the
//! plain runner's trajectory bit for bit. [`TrainingSession::park`] saves
//! a snapshot through [`snapshot_run`] and
//! [`TrainingSession::unpark`] restores it through the same strict path
//! the resumable runner uses, so a parked-and-resumed session is
//! [`RunResult::deterministic_eq`] to one that never stopped.

use std::time::Instant;

use aibench_ckpt::{CheckpointSink, CkptError};
use aibench_models::Trainer;

use crate::ckpt::{latest_valid_restore, snapshot_run, PartialRun};
use crate::registry::Benchmark;
use crate::runner::{RunConfig, RunResult};

/// One open training session: a trainer plus its accumulated progress,
/// steppable one epoch at a time and parkable between epochs.
pub struct TrainingSession<'a> {
    benchmark: &'a Benchmark,
    seed: u64,
    config: RunConfig,
    /// `None` while parked: the trainer's state lives in the snapshot the
    /// park wrote, not in memory.
    trainer: Option<Box<dyn Trainer>>,
    progress: PartialRun,
    resumed_from: Option<usize>,
    start: Instant,
}

impl<'a> TrainingSession<'a> {
    /// Opens a fresh session at epoch 0. Installs `config.parallel` if set,
    /// exactly like the closed runners.
    pub fn fresh(benchmark: &'a Benchmark, seed: u64, config: &RunConfig) -> Self {
        if let Some(par) = config.parallel {
            par.install();
        }
        let start = Instant::now();
        TrainingSession {
            benchmark,
            seed,
            config: *config,
            trainer: Some(benchmark.build(seed)),
            progress: PartialRun::fresh(),
            resumed_from: None,
            start,
        }
    }

    /// Opens a session from the newest valid snapshot in `sink`, falling
    /// back to a fresh start when no snapshot survives validation.
    pub fn resume(
        benchmark: &'a Benchmark,
        seed: u64,
        config: &RunConfig,
        sink: &dyn CheckpointSink,
    ) -> Self {
        if let Some(par) = config.parallel {
            par.install();
        }
        let start = Instant::now();
        let (trainer, progress, resumed_from) =
            match latest_valid_restore(benchmark, seed, config, sink) {
                Some((t, p, epoch)) => (t, p, Some(epoch)),
                None => (benchmark.build(seed), PartialRun::fresh(), None),
            };
        TrainingSession {
            benchmark,
            seed,
            config: *config,
            trainer: Some(trainer),
            progress,
            resumed_from,
            start,
        }
    }

    /// The benchmark this session trains.
    pub fn benchmark(&self) -> &'a Benchmark {
        self.benchmark
    }

    /// The session's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Epochs committed so far.
    pub fn epochs_run(&self) -> usize {
        self.progress.epochs_run
    }

    /// The accumulated progress.
    pub fn progress(&self) -> &PartialRun {
        &self.progress
    }

    /// Whether the session reached its quality target.
    pub fn converged(&self) -> bool {
        self.progress.epochs_to_target.is_some()
    }

    /// Whether the session is over: converged, or out of epochs.
    pub fn finished(&self) -> bool {
        self.converged() || self.progress.epochs_run >= self.config.max_epochs
    }

    /// Whether the session is parked (trainer dropped; state lives in the
    /// park snapshot).
    pub fn is_parked(&self) -> bool {
        self.trainer.is_none()
    }

    fn trainer_mut(&mut self) -> &mut dyn Trainer {
        self.trainer
            .as_deref_mut()
            .expect("session is parked; unpark before stepping")
    }

    /// Runs the next epoch's training pass and returns its mean loss
    /// *without* committing it — the split exists so supervised drivers can
    /// inspect (or override) the loss before it enters the trace.
    ///
    /// # Panics
    ///
    /// Panics if the session is parked or [`finished`](Self::finished).
    pub fn train_next(&mut self) -> f32 {
        assert!(!self.finished(), "session is finished; no epochs left");
        self.trainer_mut().train_epoch()
    }

    /// Commits `loss` as the next epoch's result and evaluates on the
    /// runner's cadence (`eval_every`, plus always at the epoch cap).
    /// Returns the quality if this epoch evaluated.
    pub fn commit(&mut self, loss: f32) -> Option<f64> {
        let epoch = self.progress.epochs_run + 1;
        self.progress.loss_trace.push(loss);
        self.progress.epochs_run = epoch;
        if epoch.is_multiple_of(self.config.eval_every.max(1)) || epoch == self.config.max_epochs {
            let q = self.trainer_mut().evaluate();
            self.progress.quality_trace.push((epoch, q));
            self.progress.final_quality = q;
            if self.benchmark.target.met_by(q) {
                self.progress.epochs_to_target = Some(epoch);
            }
            Some(q)
        } else {
            None
        }
    }

    /// Runs and commits one epoch: [`train_next`](Self::train_next) then
    /// [`commit`](Self::commit). Returns `(loss, quality)`.
    pub fn step(&mut self) -> (f32, Option<f64>) {
        let loss = self.train_next();
        let quality = self.commit(loss);
        (loss, quality)
    }

    /// Serializes the session (identity, progress, trainer state) into
    /// snapshot bytes.
    pub fn snapshot(&self) -> Vec<u8> {
        let trainer = self
            .trainer
            .as_deref()
            .expect("session is parked; its state is already in the park snapshot");
        snapshot_run(
            self.benchmark,
            self.seed,
            &self.config,
            &self.progress,
            trainer,
        )
    }

    /// Saves a snapshot of the current state into `sink` under the current
    /// epoch.
    pub fn checkpoint(&self, sink: &mut dyn CheckpointSink) -> Result<(), CkptError> {
        sink.save(self.progress.epochs_run, &self.snapshot())
    }

    /// Parks the session: snapshots it into `sink` and drops the trainer,
    /// freeing its memory and worker slot. Returns the epoch the park
    /// snapshot was taken at. The session stays queryable (progress,
    /// finished) but cannot step until [`unpark`](Self::unpark)ed.
    pub fn park(&mut self, sink: &mut dyn CheckpointSink) -> Result<usize, CkptError> {
        let epoch = self.progress.epochs_run;
        sink.save(epoch, &self.snapshot())?;
        self.trainer = None;
        Ok(epoch)
    }

    /// Unparks (or rolls back) the session from the newest valid snapshot
    /// in `sink`, returning the epoch restored from; with no usable
    /// snapshot the session restarts from scratch and `None` is returned.
    pub fn unpark(&mut self, sink: &dyn CheckpointSink) -> Option<usize> {
        match latest_valid_restore(self.benchmark, self.seed, &self.config, sink) {
            Some((trainer, progress, epoch)) => {
                self.trainer = Some(trainer);
                self.progress = progress;
                Some(epoch)
            }
            None => {
                self.trainer = Some(self.benchmark.build(self.seed));
                self.progress = PartialRun::fresh();
                None
            }
        }
    }

    /// Closes the session into a [`RunResult`].
    pub fn result(&self) -> RunResult {
        RunResult {
            code: self.benchmark.id.code().to_string(),
            seed: self.seed,
            epochs_run: self.progress.epochs_run,
            epochs_to_target: self.progress.epochs_to_target,
            quality_trace: self.progress.quality_trace.clone(),
            loss_trace: self.progress.loss_trace.clone(),
            final_quality: self.progress.final_quality,
            wall_seconds: self.start.elapsed().as_secs_f64(),
            resumed_from: self.resumed_from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::runner::run_to_quality;
    use aibench_ckpt::MemorySink;

    fn cfg(max_epochs: usize) -> RunConfig {
        RunConfig {
            max_epochs,
            eval_every: 1,
            ..RunConfig::default()
        }
    }

    #[test]
    fn stepped_session_matches_plain_runner() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let config = cfg(3);
        let plain = run_to_quality(b, 1, &config);
        let mut session = TrainingSession::fresh(b, 1, &config);
        while !session.finished() {
            session.step();
        }
        assert!(plain.deterministic_eq(&session.result()));
    }

    #[test]
    fn park_and_unpark_is_bitwise_neutral() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let config = cfg(4);
        let plain = run_to_quality(b, 1, &config);

        let mut sink = MemorySink::new();
        let mut session = TrainingSession::fresh(b, 1, &config);
        session.step();
        session.step();
        let parked_at = session.park(&mut sink).unwrap();
        assert_eq!(parked_at, 2);
        assert!(session.is_parked());
        assert_eq!(session.epochs_run(), 2);
        let resumed_from = session.unpark(&sink);
        assert_eq!(resumed_from, Some(2));
        while !session.finished() {
            session.step();
        }
        assert!(plain.deterministic_eq(&session.result()));
    }

    #[test]
    fn park_before_first_epoch_resumes_from_scratch_state() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let config = cfg(2);
        let plain = run_to_quality(b, 7, &config);
        let mut sink = MemorySink::new();
        let mut session = TrainingSession::fresh(b, 7, &config);
        assert_eq!(session.park(&mut sink).unwrap(), 0);
        assert_eq!(session.unpark(&sink), Some(0));
        while !session.finished() {
            session.step();
        }
        assert!(plain.deterministic_eq(&session.result()));
    }

    #[test]
    fn unpark_without_snapshot_restarts_from_scratch() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let config = cfg(2);
        let mut session = TrainingSession::fresh(b, 1, &config);
        session.step();
        session.trainer = None; // park without saving: the defective path
        let empty = MemorySink::new();
        assert_eq!(session.unpark(&empty), None);
        assert_eq!(session.epochs_run(), 0, "lost work restarts from scratch");
    }
}

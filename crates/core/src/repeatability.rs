//! Run-to-run variation (Table 5): the coefficient of variation of the
//! epochs needed to reach a convergent quality across repeated runs.

use aibench_analysis::{coefficient_of_variation, mean};
use std::thread;

use crate::registry::Benchmark;
use crate::runner::{run_to_quality, RunConfig, RunResult};

/// Repeatability measurement for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationReport {
    /// Benchmark code.
    pub code: String,
    /// Epochs-to-target of each converged run.
    pub epochs: Vec<f64>,
    /// Number of runs attempted.
    pub runs: usize,
    /// Coefficient of variation in percent over converged runs (`None`
    /// when the benchmark lacks an accepted metric or fewer than two runs
    /// converged).
    pub variation_pct: Option<f64>,
    /// Mean epochs-to-target over converged runs.
    pub mean_epochs: Option<f64>,
}

/// Repeats entire training sessions of `benchmark` with seeds
/// `1..=repeats` and reports the variation of epochs-to-quality.
///
/// Benchmarks without a widely accepted metric (the GAN tasks) return
/// `variation_pct: None`, mirroring the paper's "Not available" entries.
/// Runs execute in parallel worker threads.
pub fn measure_variation(
    benchmark: &Benchmark,
    repeats: usize,
    config: &RunConfig,
) -> VariationReport {
    let results: Vec<RunResult> = thread::scope(|s| {
        let handles: Vec<_> = (1..=repeats as u64)
            .map(|seed| s.spawn(move || run_to_quality(benchmark, seed, config)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("runner thread panicked"))
            .collect()
    });

    let epochs: Vec<f64> = results
        .iter()
        .filter_map(|r| r.epochs_to_target)
        .map(|e| e as f64)
        .collect();
    let usable = benchmark.has_accepted_metric && epochs.len() >= 2;
    VariationReport {
        code: benchmark.id.code().to_string(),
        runs: repeats,
        variation_pct: if usable {
            Some(coefficient_of_variation(&epochs))
        } else {
            None
        },
        mean_epochs: if epochs.is_empty() {
            None
        } else {
            Some(mean(&epochs))
        },
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn gan_benchmark_reports_not_available() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C2").unwrap();
        let report = measure_variation(
            b,
            2,
            &RunConfig {
                max_epochs: 1,
                eval_every: 1,
                ..RunConfig::default()
            },
        );
        assert_eq!(report.variation_pct, None);
    }

    #[test]
    fn variation_computed_for_converging_benchmark() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let report = measure_variation(
            b,
            3,
            &RunConfig {
                max_epochs: 40,
                eval_every: 1,
                ..RunConfig::default()
            },
        );
        assert_eq!(report.runs, 3);
        assert!(
            report.variation_pct.is_some(),
            "no converged runs: {:?}",
            report.epochs
        );
        assert!(report.variation_pct.unwrap() >= 0.0);
    }
}

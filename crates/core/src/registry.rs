//! The benchmark registry: metadata, scaled-trainer factories, and
//! full-scale specs for all seventeen AIBench benchmarks and the seven
//! MLPerf baselines.

use aibench_models::catalog;
use aibench_models::scaled::{
    DetectionConfig, Face3dRecognition, FaceEmbedding, ImageClassification, ImageCompression,
    ImageGeneration, ImageToImage, ImageToText, LearningToRank, NeuralArchitectureSearch,
    ObjectDetection, ObjectReconstruction3d, Recommendation, ReinforcementLearning,
    SpatialTransformer, SpeechRecognition, TextSummarization, Translation, TranslationArch,
    VideoPrediction,
};
use aibench_models::{ModelSpec, Trainer};

use crate::id::BenchmarkId;
use crate::quality::QualityTarget;

/// Numbers the paper reports for a benchmark, kept for paper-vs-measured
/// comparisons (Tables 3, 5, and 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperFacts {
    /// Table 3 target quality, verbatim.
    pub target_quality: &'static str,
    /// Table 5 run-to-run variation in percent (`None` = "Not available").
    pub variation_pct: Option<f64>,
    /// Table 5 repeat count.
    pub repeats: Option<u32>,
    /// Table 6 seconds per epoch.
    pub time_per_epoch_s: Option<f64>,
    /// Table 6 total training hours (`None` = N/A).
    pub total_hours: Option<f64>,
}

/// One registered component benchmark.
pub struct Benchmark {
    /// Identifier.
    pub id: BenchmarkId,
    /// Task name (Table 3 column 2).
    pub task: &'static str,
    /// Algorithm/model name (Table 3 column 3).
    pub algorithm: &'static str,
    /// Original dataset and our synthetic stand-in.
    pub dataset: &'static str,
    /// Quality metric name for the scaled benchmark.
    pub metric: &'static str,
    /// Convergence target for the scaled benchmark.
    pub target: QualityTarget,
    /// Whether the task has a widely-accepted quality metric (the GAN
    /// tasks do not, per Section 5.3.1).
    pub has_accepted_metric: bool,
    /// The paper's reported numbers.
    pub paper: PaperFacts,
    factory: fn(u64) -> Box<dyn Trainer>,
    spec: fn() -> ModelSpec,
}

impl Benchmark {
    /// Builds a fresh scaled trainer seeded with `seed`.
    pub fn build(&self, seed: u64) -> Box<dyn Trainer> {
        (self.factory)(seed)
    }

    /// The full-scale model specification.
    pub fn spec(&self) -> ModelSpec {
        (self.spec)()
    }

    /// Whether this benchmark's scaled trainer implements the
    /// [`aibench_models::DataParallel`] hooks, i.e. can run as a replica of
    /// a simulated data-parallel group (`aibench-dist`).
    pub fn supports_data_parallel(&self) -> bool {
        matches!(
            self.id,
            BenchmarkId::ImageClassification
                | BenchmarkId::MlperfImageClassification
                | BenchmarkId::SpatialTransformer
        )
    }

    /// Builds a fresh data-parallel replica seeded with `seed`, or `None`
    /// for benchmarks whose trainers do not implement the hooks.
    pub fn build_data_parallel(&self, seed: u64) -> Option<Box<dyn aibench_models::DataParallel>> {
        match self.id {
            BenchmarkId::ImageClassification | BenchmarkId::MlperfImageClassification => {
                Some(Box::new(ImageClassification::new(seed)))
            }
            BenchmarkId::SpatialTransformer => Some(Box::new(SpatialTransformer::new(seed))),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Benchmark({}, {})", self.id, self.task)
    }
}

macro_rules! facts {
    ($tq:expr, $var:expr, $rep:expr, $tpe:expr, $tot:expr) => {
        PaperFacts {
            target_quality: $tq,
            variation_pct: $var,
            repeats: $rep,
            time_per_epoch_s: $tpe,
            total_hours: $tot,
        }
    };
}

/// A collection of benchmarks (the full suite, one of the two suites, or a
/// subset).
#[derive(Debug)]
pub struct Registry {
    benchmarks: Vec<Benchmark>,
}

impl Registry {
    /// The seventeen AIBench component benchmarks, in DC-AI-C order.
    pub fn aibench() -> Self {
        Registry {
            benchmarks: aibench_benchmarks(),
        }
    }

    /// The seven MLPerf training baselines.
    pub fn mlperf() -> Self {
        Registry {
            benchmarks: mlperf_benchmarks(),
        }
    }

    /// All twenty-four benchmarks (AIBench then MLPerf).
    pub fn all() -> Self {
        let mut benchmarks = aibench_benchmarks();
        benchmarks.extend(mlperf_benchmarks());
        Registry { benchmarks }
    }

    /// The registered benchmarks.
    pub fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Looks up a benchmark by its code (e.g. `"DC-AI-C9"`).
    pub fn get(&self, code: &str) -> Option<&Benchmark> {
        self.benchmarks.iter().find(|b| b.id.code() == code)
    }

    /// Looks up a benchmark by id.
    pub fn by_id(&self, id: BenchmarkId) -> Option<&Benchmark> {
        self.benchmarks.iter().find(|b| b.id == id)
    }
}

fn aibench_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            id: BenchmarkId::ImageClassification,
            task: "Image classification",
            algorithm: "ResNet50",
            dataset: "ImageNet -> synthetic class prototypes",
            metric: "accuracy",
            target: QualityTarget::at_least(0.88),
            has_accepted_metric: true,
            paper: facts!(
                "74.9% (accuracy)",
                Some(1.12),
                Some(5),
                Some(10516.91),
                Some(130.0)
            ),
            factory: |seed| Box::new(ImageClassification::new(seed)),
            spec: catalog::image_classification,
        },
        Benchmark {
            id: BenchmarkId::ImageGeneration,
            task: "Image generation",
            algorithm: "WassersteinGAN",
            dataset: "LSUN -> synthetic low-rank manifold",
            metric: "moment distance",
            target: QualityTarget::at_most(0.12),
            has_accepted_metric: false,
            paper: facts!("N/A", None, None, Some(3935.75), None),
            factory: |seed| Box::new(ImageGeneration::new(seed)),
            spec: catalog::image_generation,
        },
        Benchmark {
            id: BenchmarkId::TextToText,
            task: "Text-to-Text translation",
            algorithm: "Transformer",
            dataset: "WMT En-De -> synthetic reverse-map language",
            metric: "token accuracy",
            target: QualityTarget::at_least(0.75),
            has_accepted_metric: true,
            paper: facts!(
                "55% (accuracy)",
                Some(9.38),
                Some(6),
                Some(64.83),
                Some(1.72)
            ),
            factory: |seed| Box::new(Translation::new(seed, TranslationArch::Transformer)),
            spec: catalog::text_to_text,
        },
        Benchmark {
            id: BenchmarkId::ImageToText,
            task: "Image-to-Text",
            algorithm: "Neural Image Caption",
            dataset: "MSCOCO -> synthetic shape scenes",
            metric: "perplexity",
            target: QualityTarget::at_most(2.4),
            has_accepted_metric: true,
            paper: facts!(
                "4.2 (perplexity)",
                Some(23.53),
                Some(5),
                Some(845.02),
                Some(10.21)
            ),
            factory: |seed| Box::new(ImageToText::new(seed)),
            spec: catalog::image_to_text,
        },
        Benchmark {
            id: BenchmarkId::ImageToImage,
            task: "Image-to-Image",
            algorithm: "CycleGAN",
            dataset: "Cityscapes -> synthetic outline/fill domains",
            metric: "per-pixel accuracy",
            target: QualityTarget::at_least(0.93),
            has_accepted_metric: false,
            paper: facts!("N/A", None, None, Some(251.67), None),
            factory: |seed| Box::new(ImageToImage::new(seed)),
            spec: catalog::image_to_image,
        },
        Benchmark {
            id: BenchmarkId::SpeechRecognition,
            task: "Speech recognition",
            algorithm: "DeepSpeech2",
            dataset: "LibriSpeech -> synthetic phoneme spectrograms",
            metric: "WER",
            target: QualityTarget::at_most(0.03),
            has_accepted_metric: true,
            paper: facts!(
                "5.33% (WER)",
                Some(12.08),
                Some(4),
                Some(14326.86),
                Some(42.78)
            ),
            factory: |seed| Box::new(SpeechRecognition::new(seed)),
            spec: catalog::speech_recognition,
        },
        Benchmark {
            id: BenchmarkId::FaceEmbedding,
            task: "Face embedding",
            algorithm: "FaceNet",
            dataset: "VGGFace2 -> synthetic identity prototypes",
            metric: "verification accuracy",
            target: QualityTarget::at_least(0.85),
            has_accepted_metric: true,
            paper: facts!(
                "98.97% (accuracy)",
                Some(5.73),
                Some(8),
                Some(214.73),
                Some(3.43)
            ),
            factory: |seed| Box::new(FaceEmbedding::new(seed)),
            spec: catalog::face_embedding,
        },
        Benchmark {
            id: BenchmarkId::FaceRecognition3d,
            task: "3D Face Recognition",
            algorithm: "RGB-D ResNet-50",
            dataset: "Intellifusion RGB-D -> synthetic 4-channel identities",
            metric: "accuracy",
            target: QualityTarget::at_least(0.45),
            has_accepted_metric: true,
            paper: facts!(
                "94.64% (accuracy)",
                Some(38.46),
                Some(4),
                Some(36.99),
                Some(12.02)
            ),
            factory: |seed| Box::new(Face3dRecognition::new(seed)),
            spec: catalog::face_recognition_3d,
        },
        Benchmark {
            id: BenchmarkId::ObjectDetection,
            task: "Object detection",
            algorithm: "Faster R-CNN",
            dataset: "VOC2007 -> synthetic textured-box scenes",
            metric: "mAP@0.5",
            target: QualityTarget::at_least(0.30),
            has_accepted_metric: true,
            paper: facts!("75% (mAP)", Some(0.0), Some(10), Some(1627.39), Some(2.52)),
            factory: |seed| Box::new(ObjectDetection::new(seed, DetectionConfig::aibench())),
            spec: catalog::object_detection,
        },
        Benchmark {
            id: BenchmarkId::Recommendation,
            task: "Recommendation",
            algorithm: "Neural collaborative filtering",
            dataset: "MovieLens -> synthetic latent-factor feedback",
            metric: "HR@10",
            target: QualityTarget::at_least(0.68),
            has_accepted_metric: true,
            paper: facts!(
                "63.5% (HR@10)",
                Some(9.95),
                Some(5),
                Some(36.72),
                Some(0.16)
            ),
            factory: |seed| Box::new(Recommendation::new(seed)),
            spec: catalog::recommendation,
        },
        Benchmark {
            id: BenchmarkId::VideoPrediction,
            task: "Video prediction",
            algorithm: "Motion-focused predictive model",
            dataset: "Robot pushing -> synthetic moving blobs",
            metric: "MSE",
            target: QualityTarget::at_most(0.033),
            has_accepted_metric: true,
            paper: facts!("72 (MSE)", Some(11.83), Some(4), Some(24.99), Some(2.11)),
            factory: |seed| Box::new(VideoPrediction::new(seed)),
            spec: catalog::video_prediction,
        },
        Benchmark {
            id: BenchmarkId::ImageCompression,
            task: "Image compression",
            algorithm: "Recurrent neural network",
            dataset: "ImageNet -> synthetic smooth images",
            metric: "MS-SSIM",
            target: QualityTarget::at_least(0.90),
            has_accepted_metric: true,
            paper: facts!(
                "0.99 (MS-SSIM)",
                Some(22.49),
                Some(4),
                Some(763.44),
                Some(5.67)
            ),
            factory: |seed| Box::new(ImageCompression::new(seed)),
            spec: catalog::image_compression,
        },
        Benchmark {
            id: BenchmarkId::ObjectReconstruction3d,
            task: "3D object reconstruction",
            algorithm: "Convolutional encoder-decoder",
            dataset: "ShapeNet -> synthetic primitive solids",
            metric: "voxel IoU",
            target: QualityTarget::at_least(0.45),
            has_accepted_metric: true,
            paper: facts!("45.83% (IU)", Some(16.07), Some(4), Some(28.41), Some(0.38)),
            factory: |seed| Box::new(ObjectReconstruction3d::new(seed)),
            spec: catalog::object_reconstruction_3d,
        },
        Benchmark {
            id: BenchmarkId::TextSummarization,
            task: "Text summarization",
            algorithm: "Sequence-to-sequence model",
            dataset: "Gigaword -> synthetic keyword documents",
            metric: "Rouge-L",
            target: QualityTarget::at_least(60.0),
            has_accepted_metric: true,
            paper: facts!(
                "41 (Rouge-L)",
                Some(24.72),
                Some(5),
                Some(1923.33),
                Some(6.41)
            ),
            factory: |seed| Box::new(TextSummarization::new(seed)),
            spec: catalog::text_summarization,
        },
        Benchmark {
            id: BenchmarkId::SpatialTransformer,
            task: "Spatial transformer",
            algorithm: "Spatial transformer networks",
            dataset: "MNIST -> synthetic distorted glyphs",
            metric: "accuracy",
            target: QualityTarget::at_least(0.90),
            has_accepted_metric: true,
            paper: facts!(
                "99% (accuracy)",
                Some(7.29),
                Some(4),
                Some(6.38),
                Some(0.06)
            ),
            factory: |seed| Box::new(SpatialTransformer::new(seed)),
            spec: catalog::spatial_transformer,
        },
        Benchmark {
            id: BenchmarkId::LearningToRank,
            task: "Learning to rank",
            algorithm: "Ranking distillation",
            dataset: "Gowalla -> synthetic latent-factor check-ins",
            metric: "precision@5",
            target: QualityTarget::at_least(0.25),
            has_accepted_metric: true,
            paper: facts!(
                "14.58% (accuracy)",
                Some(1.90),
                Some(4),
                Some(74.16),
                Some(0.47)
            ),
            factory: |seed| Box::new(LearningToRank::new(seed)),
            spec: catalog::learning_to_rank,
        },
        Benchmark {
            id: BenchmarkId::NeuralArchitectureSearch,
            task: "Neural architecture search",
            algorithm: "Efficient neural architecture search",
            dataset: "PTB -> synthetic order-2 Markov stream",
            metric: "perplexity",
            target: QualityTarget::at_most(7.0),
            has_accepted_metric: true,
            paper: facts!(
                "100 (perplexity)",
                Some(6.15),
                Some(6),
                Some(932.79),
                Some(7.47)
            ),
            factory: |seed| Box::new(NeuralArchitectureSearch::new(seed)),
            spec: catalog::neural_architecture_search,
        },
    ]
}

fn mlperf_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            id: BenchmarkId::MlperfImageClassification,
            task: "Image classification",
            algorithm: "ResNet50",
            dataset: "ImageNet -> synthetic class prototypes",
            metric: "accuracy",
            target: QualityTarget::at_least(0.88),
            has_accepted_metric: true,
            paper: facts!("74.9% (accuracy)", None, None, None, Some(130.0)),
            factory: |seed| Box::new(ImageClassification::new(seed)),
            spec: catalog::image_classification,
        },
        Benchmark {
            id: BenchmarkId::MlperfObjectDetectionHeavy,
            task: "Object detection (heavy)",
            algorithm: "Mask R-CNN",
            dataset: "COCO -> synthetic textured-box scenes",
            metric: "mAP@0.5",
            target: QualityTarget::at_least(0.40),
            has_accepted_metric: true,
            paper: facts!("37.7 (BBOX)", None, None, None, Some(73.34)),
            factory: |seed| Box::new(ObjectDetection::new(seed, DetectionConfig::mlperf_heavy())),
            spec: catalog::mlperf_object_detection_heavy,
        },
        Benchmark {
            id: BenchmarkId::MlperfObjectDetectionLight,
            task: "Object detection (light)",
            algorithm: "SSD-ResNet34",
            dataset: "COCO -> synthetic textured-box scenes",
            metric: "mAP@0.5",
            target: QualityTarget::at_least(0.22),
            has_accepted_metric: true,
            paper: facts!("22.47 (mAP)", None, None, None, Some(23.7)),
            factory: |seed| Box::new(ObjectDetection::new(seed, DetectionConfig::mlperf_light())),
            spec: catalog::mlperf_object_detection_light,
        },
        Benchmark {
            id: BenchmarkId::MlperfTranslationRecurrent,
            task: "Translation (recurrent)",
            algorithm: "GNMT",
            dataset: "WMT En-De -> synthetic reverse-map language",
            metric: "token accuracy",
            target: QualityTarget::at_least(0.55),
            has_accepted_metric: true,
            paper: facts!("22.21 (BLEU)", None, None, None, Some(16.52)),
            factory: |seed| Box::new(Translation::new(seed, TranslationArch::Recurrent)),
            spec: catalog::mlperf_translation_recurrent,
        },
        Benchmark {
            id: BenchmarkId::MlperfTranslationNonRecurrent,
            task: "Translation (non-recurrent)",
            algorithm: "Transformer",
            dataset: "WMT En-De -> synthetic reverse-map language",
            metric: "token accuracy",
            target: QualityTarget::at_least(0.80),
            has_accepted_metric: true,
            paper: facts!("25.25 (BLEU)", None, None, None, Some(22.0)),
            factory: |seed| Box::new(Translation::new(seed, TranslationArch::Transformer)),
            spec: catalog::mlperf_translation_nonrecurrent,
        },
        Benchmark {
            id: BenchmarkId::MlperfRecommendation,
            task: "Recommendation",
            algorithm: "Neural collaborative filtering",
            dataset: "MovieLens -> synthetic latent-factor feedback",
            metric: "HR@10",
            target: QualityTarget::at_least(0.72),
            has_accepted_metric: true,
            paper: facts!("63.5% (HR@10)", None, None, None, Some(0.16)),
            factory: |seed| Box::new(Recommendation::new(seed)),
            spec: catalog::recommendation,
        },
        Benchmark {
            id: BenchmarkId::MlperfReinforcementLearning,
            task: "Reinforcement learning",
            algorithm: "Minigo",
            dataset: "Go self-play -> gridworld self-play",
            metric: "success rate",
            target: QualityTarget::at_least(0.995),
            has_accepted_metric: true,
            // The paper trained minigo for 96+ hours without reaching the
            // 40% pro-move target (reached 34%).
            paper: facts!("40% (pro move)", None, None, None, Some(96.0)),
            factory: |seed| Box::new(ReinforcementLearning::new(seed)),
            spec: catalog::mlperf_reinforcement_learning,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_sizes() {
        assert_eq!(Registry::aibench().benchmarks().len(), 17);
        assert_eq!(Registry::mlperf().benchmarks().len(), 7);
        assert_eq!(Registry::all().benchmarks().len(), 24);
    }

    #[test]
    fn lookup_by_code() {
        let r = Registry::aibench();
        assert_eq!(r.get("DC-AI-C9").unwrap().task, "Object detection");
        assert!(r.get("DC-AI-C99").is_none());
    }

    #[test]
    fn gan_benchmarks_lack_accepted_metrics() {
        let r = Registry::aibench();
        assert!(
            !r.by_id(BenchmarkId::ImageGeneration)
                .unwrap()
                .has_accepted_metric
        );
        assert!(
            !r.by_id(BenchmarkId::ImageToImage)
                .unwrap()
                .has_accepted_metric
        );
        let accepted = r
            .benchmarks()
            .iter()
            .filter(|b| b.has_accepted_metric)
            .count();
        assert_eq!(accepted, 15);
    }

    #[test]
    fn factories_build_trainers() {
        let r = Registry::aibench();
        let t = r.get("DC-AI-C15").unwrap().build(1);
        assert!(t.param_count() > 0);
    }

    #[test]
    fn specs_match_benchmarks() {
        let r = Registry::all();
        for b in r.benchmarks() {
            let spec = b.spec();
            assert!(spec.layer_count() > 0, "{} has empty spec", b.id);
        }
    }

    #[test]
    fn paper_variation_matches_table5() {
        let r = Registry::aibench();
        assert_eq!(
            r.by_id(BenchmarkId::FaceRecognition3d)
                .unwrap()
                .paper
                .variation_pct,
            Some(38.46)
        );
        assert_eq!(
            r.by_id(BenchmarkId::ObjectDetection)
                .unwrap()
                .paper
                .variation_pct,
            Some(0.0)
        );
        assert_eq!(
            r.by_id(BenchmarkId::ImageGeneration)
                .unwrap()
                .paper
                .variation_pct,
            None
        );
    }
}

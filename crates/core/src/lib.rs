//! AIBench Training: the balanced industry-standard AI training benchmark
//! suite (Tang et al., ISPASS 2021), reproduced in Rust.
//!
//! This crate ties the workspace together into the paper's methodology:
//!
//! * a [`registry`] of the seventeen AIBench component benchmarks
//!   (DC-AI-C1..C17) plus the seven MLPerf training baselines, each pairing
//!   a full-scale [`aibench_models::ModelSpec`] with a scaled trainable
//!   instance and a quality target;
//! * a training [`runner`] that executes entire training sessions to a
//!   target quality and records epochs, quality traces, and wall time;
//! * resumable sessions ([`ckpt`]): periodic checksummed checkpoints, crash
//!   recovery from the newest valid snapshot, and a fault-injection harness
//!   proving resumed runs are bitwise identical to uninterrupted ones;
//! * [`distributed`] sessions: simulated elastic data-parallel training
//!   (`aibench-dist`) over the benchmarks whose trainers expose replica
//!   hooks, with worker fault injection and deterministic recovery;
//! * a [`repeatability`] harness measuring run-to-run variation
//!   (coefficient of variation of epochs-to-quality, Table 5);
//! * [`cost`] accounting combining measured epochs with simulated
//!   full-scale epoch times and energy (Table 6);
//! * [`inference`] — the Section 4.2.1 online-inference metrics (latency,
//!   tail latency, throughput, energy per query);
//! * the [`subset`] selector implementing Section 5.4's criteria, which
//!   recovers the paper's minimum subset — Image Classification, Object
//!   Detection, and Learning-to-Rank;
//! * [`characterize`], the model- and micro-architecture-characterization
//!   pipeline behind Figures 1-7.
//!
//! # Example
//!
//! ```
//! use aibench::registry::Registry;
//! use aibench::runner::{run_to_quality, RunConfig};
//!
//! let registry = Registry::aibench();
//! let stn = registry.get("DC-AI-C15").expect("spatial transformer");
//! let result = run_to_quality(stn, 1, &RunConfig { max_epochs: 3, ..RunConfig::default() });
//! assert!(result.epochs_run >= 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod characterize;
pub mod ckpt;
pub mod cost;
pub mod distributed;
pub mod id;
pub mod inference;
pub mod quality;
pub mod registry;
pub mod repeatability;
pub mod runner;
pub mod session;
pub mod subset;
pub mod suite_comparison;

pub use id::BenchmarkId;
pub use quality::{Direction, QualityTarget};
pub use registry::{Benchmark, PaperFacts, Registry};

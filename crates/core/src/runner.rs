//! The training runner: executes entire training sessions of the scaled
//! benchmarks to their quality targets.

use std::time::Instant;

use crate::registry::Benchmark;

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Hard cap on epochs (an "entire training session" stops here even if
    /// the target was not reached).
    pub max_epochs: usize,
    /// Evaluate every `eval_every` epochs (1 = every epoch).
    pub eval_every: usize,
    /// Host threading configuration installed before the session runs.
    /// `None` leaves the process-wide setting (from `AIBENCH_THREADS` or a
    /// prior install) untouched. Thread count never changes results — the
    /// kernels are deterministic by construction — only wall time.
    pub parallel: Option<aibench_parallel::ParallelConfig>,
    /// Save a checkpoint every `checkpoint_every` epochs during resumable
    /// sessions (`0` disables checkpointing). Plain [`run_to_quality`]
    /// ignores this; see [`crate::ckpt::run_to_quality_resumable`].
    pub checkpoint_every: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_epochs: 60,
            eval_every: 1,
            parallel: None,
            checkpoint_every: 0,
        }
    }
}

/// The outcome of one training session.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Benchmark code.
    pub code: String,
    /// Seed used.
    pub seed: u64,
    /// Epochs actually executed.
    pub epochs_run: usize,
    /// First epoch (1-based) at which the quality target was met, if ever.
    pub epochs_to_target: Option<usize>,
    /// Quality after each evaluation, `(epoch, quality)`.
    pub quality_trace: Vec<(usize, f64)>,
    /// Mean training loss per epoch.
    pub loss_trace: Vec<f32>,
    /// Final quality.
    pub final_quality: f64,
    /// Wall-clock seconds spent training (scaled benchmark, this machine).
    pub wall_seconds: f64,
    /// Epoch of the snapshot this session resumed from (`None` for a run
    /// started from scratch).
    pub resumed_from: Option<usize>,
}

impl RunResult {
    /// Whether the session converged to the target.
    pub fn converged(&self) -> bool {
        self.epochs_to_target.is_some()
    }

    /// Encodes the result into a ckpt [`State`](aibench_ckpt::State) —
    /// the compact typed byte format results cross the serving wire in
    /// (no serde anywhere in the workspace). Floats round-trip bitwise,
    /// NaN included, so [`RunResult::deterministic_eq`] survives
    /// serialization.
    pub fn to_state(&self) -> aibench_ckpt::State {
        let mut state = aibench_ckpt::State::new();
        state.put_str("code", &self.code);
        state.put_u64("seed", self.seed);
        state.put_usize("epochs_run", self.epochs_run);
        state.put_bool("converged", self.epochs_to_target.is_some());
        state.put_usize("epochs_to_target", self.epochs_to_target.unwrap_or(0));
        state.put_u64s(
            "quality_epochs",
            self.quality_trace.iter().map(|&(e, _)| e as u64).collect(),
        );
        state.put_f64s(
            "quality_values",
            self.quality_trace.iter().map(|&(_, q)| q).collect(),
        );
        state.put_f32s(
            "loss_trace",
            &[self.loss_trace.len()],
            self.loss_trace.clone(),
        );
        state.put_f64("final_quality", self.final_quality);
        state.put_f64("wall_seconds", self.wall_seconds);
        state.put_bool("resumed", self.resumed_from.is_some());
        state.put_usize("resumed_from", self.resumed_from.unwrap_or(0));
        state
    }

    /// Decodes a result encoded by [`RunResult::to_state`]. Any missing or
    /// mistyped key surfaces as an error — wire corruption must never pass
    /// for a result.
    pub fn from_state(state: &aibench_ckpt::State) -> Result<RunResult, aibench_ckpt::CkptError> {
        let epochs = state.u64s("quality_epochs")?;
        let values = state.f64s("quality_values")?;
        if epochs.len() != values.len() {
            return Err(aibench_ckpt::CkptError::MetaMismatch {
                what: "quality trace epochs/values lengths differ".to_string(),
            });
        }
        Ok(RunResult {
            code: state.str("code")?.to_string(),
            seed: state.u64("seed")?,
            epochs_run: state.usize("epochs_run")?,
            epochs_to_target: state
                .bool("converged")?
                .then(|| state.usize("epochs_to_target"))
                .transpose()?,
            quality_trace: epochs
                .iter()
                .zip(values)
                .map(|(&e, &q)| (e as usize, q))
                .collect(),
            loss_trace: state.f32s("loss_trace")?.1.to_vec(),
            final_quality: state.f64("final_quality")?,
            wall_seconds: state.f64("wall_seconds")?,
            resumed_from: state
                .bool("resumed")?
                .then(|| state.usize("resumed_from"))
                .transpose()?,
        })
    }

    /// Bitwise equality of everything the training computation determines:
    /// epochs, quality trace, loss trace, and final quality, with floats
    /// compared by raw bit pattern (so NaN == NaN and `-0.0 != 0.0`).
    ///
    /// `wall_seconds` (timing noise) and `resumed_from` (provenance of this
    /// particular session, not of the training trajectory) are excluded —
    /// an interrupted-and-resumed run must be `deterministic_eq` to an
    /// uninterrupted one.
    pub fn deterministic_eq(&self, other: &RunResult) -> bool {
        self.code == other.code
            && self.seed == other.seed
            && self.epochs_run == other.epochs_run
            && self.epochs_to_target == other.epochs_to_target
            && self.quality_trace.len() == other.quality_trace.len()
            && self
                .quality_trace
                .iter()
                .zip(&other.quality_trace)
                .all(|((ea, qa), (eb, qb))| ea == eb && qa.to_bits() == qb.to_bits())
            && self.loss_trace.len() == other.loss_trace.len()
            && self
                .loss_trace
                .iter()
                .zip(&other.loss_trace)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.final_quality.to_bits() == other.final_quality.to_bits()
    }
}

/// Runs an entire training session of `benchmark` with the given seed:
/// trains epoch by epoch, evaluating the quality metric, until the target
/// is met or `config.max_epochs` is exhausted.
pub fn run_to_quality(benchmark: &Benchmark, seed: u64, config: &RunConfig) -> RunResult {
    if let Some(par) = config.parallel {
        par.install();
    }
    let start = Instant::now();
    let mut trainer = benchmark.build(seed);
    let mut quality_trace = Vec::new();
    let mut loss_trace = Vec::new();
    let mut epochs_to_target = None;
    let mut final_quality = f64::NAN;
    let mut epochs_run = 0;
    for epoch in 1..=config.max_epochs {
        loss_trace.push(trainer.train_epoch());
        epochs_run = epoch;
        if epoch % config.eval_every.max(1) == 0 || epoch == config.max_epochs {
            let q = trainer.evaluate();
            quality_trace.push((epoch, q));
            final_quality = q;
            if benchmark.target.met_by(q) {
                epochs_to_target = Some(epoch);
                break;
            }
        }
    }
    RunResult {
        code: benchmark.id.code().to_string(),
        seed,
        epochs_run,
        epochs_to_target,
        quality_trace,
        loss_trace,
        final_quality,
        wall_seconds: start.elapsed().as_secs_f64(),
        resumed_from: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn session_stops_at_cap() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let res = run_to_quality(
            b,
            1,
            &RunConfig {
                max_epochs: 2,
                eval_every: 1,
                ..RunConfig::default()
            },
        );
        assert_eq!(res.epochs_run, 2);
        assert_eq!(res.quality_trace.len(), 2);
        assert_eq!(res.loss_trace.len(), 2);
    }

    #[test]
    fn converging_session_reports_epoch() {
        // Spatial transformer converges quickly; give it room.
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let res = run_to_quality(
            b,
            2,
            &RunConfig {
                max_epochs: 40,
                eval_every: 1,
                ..RunConfig::default()
            },
        );
        assert!(
            res.converged(),
            "did not converge: final {:.3}",
            res.final_quality
        );
        assert_eq!(res.epochs_to_target, Some(res.epochs_run));
        assert!(b.target.met_by(res.final_quality));
    }

    #[test]
    fn eval_every_thins_the_trace() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let res = run_to_quality(
            b,
            1,
            &RunConfig {
                max_epochs: 4,
                eval_every: 2,
                ..RunConfig::default()
            },
        );
        assert!(res.quality_trace.len() <= 2);
    }
}

//! Benchmarking-cost accounting (Table 6 and Section 5.4.2): per-epoch
//! simulated time at paper scale × measured epochs-to-convergence, plus
//! the subset's cost-reduction claims.

use aibench_gpusim::{DeviceConfig, Simulator};

use crate::registry::{Benchmark, Registry};

/// Cost entry for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEntry {
    /// Benchmark code.
    pub code: String,
    /// Task name.
    pub task: &'static str,
    /// Simulated seconds per epoch at paper scale.
    pub sim_seconds_per_epoch: f64,
    /// Epochs used for the total (measured epochs-to-target when
    /// available, otherwise the convergence cap).
    pub epochs: f64,
    /// Total simulated training hours.
    pub total_hours: f64,
    /// Total simulated energy to train to target, kilowatt-hours.
    pub total_kwh: f64,
    /// The paper's reported per-epoch seconds (Table 6).
    pub paper_seconds_per_epoch: Option<f64>,
    /// The paper's reported total hours (Table 6).
    pub paper_total_hours: Option<f64>,
}

/// Computes Table-6-style costs: each benchmark's simulated epoch time on
/// the given device, multiplied by `epochs(benchmark)` (typically the
/// measured epochs-to-quality from the runner).
pub fn training_costs(
    registry: &Registry,
    device: DeviceConfig,
    epochs: impl Fn(&Benchmark) -> f64,
) -> Vec<CostEntry> {
    let sim = Simulator::new(device);
    registry
        .benchmarks()
        .iter()
        .map(|b| {
            let profile = sim.profile(&b.spec());
            let e = epochs(b);
            CostEntry {
                code: b.id.code().to_string(),
                task: b.task,
                sim_seconds_per_epoch: profile.epoch_seconds,
                epochs: e,
                total_hours: profile.epoch_seconds * e / 3600.0,
                total_kwh: profile.epoch_joules * e / 3.6e6,
                paper_seconds_per_epoch: b.paper.time_per_epoch_s,
                paper_total_hours: b.paper.total_hours,
            }
        })
        .collect()
}

/// Percentage cost reduction of running only `subset_codes` instead of all
/// of `costs` (the paper: the subset shortens AIBench's cost by 41%).
pub fn subset_saving_pct(costs: &[CostEntry], subset_codes: &[&str]) -> f64 {
    let total: f64 = costs.iter().map(|c| c.total_hours).sum();
    let subset: f64 = costs
        .iter()
        .filter(|c| subset_codes.contains(&c.code.as_str()))
        .map(|c| c.total_hours)
        .sum();
    if total <= 0.0 {
        0.0
    } else {
        100.0 * (1.0 - subset / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_positive_and_complete() {
        let r = Registry::aibench();
        let costs = training_costs(&r, DeviceConfig::titan_xp(), |_| 10.0);
        assert_eq!(costs.len(), 17);
        for c in &costs {
            assert!(c.sim_seconds_per_epoch > 0.0, "{}", c.code);
            assert!(c.total_hours > 0.0);
            assert!(c.total_kwh > 0.0, "{}", c.code);
            // Mean power implied by (kWh, hours) stays under the TDP.
            let watts = c.total_kwh * 1000.0 / c.total_hours;
            assert!(watts <= 260.0, "{}: {watts} W", c.code);
        }
    }

    #[test]
    fn image_classification_is_most_expensive_per_epoch_among_cnn_tasks() {
        let r = Registry::aibench();
        let costs = training_costs(&r, DeviceConfig::titan_xp(), |_| 1.0);
        let get = |code: &str| {
            costs
                .iter()
                .find(|c| c.code == code)
                .unwrap()
                .sim_seconds_per_epoch
        };
        // Table 6 shape: IC epoch cost dwarfs STN's.
        assert!(get("DC-AI-C1") > 100.0 * get("DC-AI-C15"));
    }

    #[test]
    fn subset_saves_cost() {
        let r = Registry::aibench();
        let costs = training_costs(&r, DeviceConfig::titan_xp(), |_| 10.0);
        let saving = subset_saving_pct(&costs, &["DC-AI-C1", "DC-AI-C9", "DC-AI-C16"]);
        assert!(saving > 0.0 && saving < 100.0, "saving {saving}");
    }
}

//! Quality targets: each component benchmark trains until its metric
//! reaches a target (the paper's "entire training session" definition).

use std::fmt;

/// Whether larger or smaller metric values are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Accuracy-style metrics.
    HigherBetter,
    /// Error/perplexity-style metrics.
    LowerBetter,
}

/// A convergence target in the metric's native units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityTarget {
    /// Target value.
    pub value: f64,
    /// Metric direction.
    pub direction: Direction,
}

impl QualityTarget {
    /// A target where larger values are better (accuracy, mAP, HR@K, …).
    pub fn at_least(value: f64) -> Self {
        QualityTarget {
            value,
            direction: Direction::HigherBetter,
        }
    }

    /// A target where smaller values are better (WER, MSE, perplexity, …).
    pub fn at_most(value: f64) -> Self {
        QualityTarget {
            value,
            direction: Direction::LowerBetter,
        }
    }

    /// Whether `quality` satisfies the target.
    pub fn met_by(&self, quality: f64) -> bool {
        match self.direction {
            Direction::HigherBetter => quality >= self.value,
            Direction::LowerBetter => quality <= self.value,
        }
    }

    /// Whether `a` is strictly better than `b` under this direction.
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self.direction {
            Direction::HigherBetter => a > b,
            Direction::LowerBetter => a < b,
        }
    }
}

impl fmt::Display for QualityTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.direction {
            Direction::HigherBetter => write!(f, ">= {}", self.value),
            Direction::LowerBetter => write!(f, "<= {}", self.value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_better_semantics() {
        let t = QualityTarget::at_least(0.75);
        assert!(t.met_by(0.75));
        assert!(t.met_by(0.9));
        assert!(!t.met_by(0.74));
        assert!(t.better(0.8, 0.7));
    }

    #[test]
    fn lower_better_semantics() {
        let t = QualityTarget::at_most(5.33);
        assert!(t.met_by(5.0));
        assert!(!t.met_by(5.34));
        assert!(t.better(4.0, 5.0));
    }

    #[test]
    fn display() {
        assert_eq!(QualityTarget::at_least(0.5).to_string(), ">= 0.5");
        assert_eq!(QualityTarget::at_most(72.0).to_string(), "<= 72");
    }
}

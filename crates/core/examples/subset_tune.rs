//! Target-sweep tool for the subset members: epochs-to-quality and its
//! coefficient of variation across seeds for candidate quality targets.
//!
//! ```sh
//! cargo run --release -p aibench --example subset_tune
//! ```

use aibench_models::scaled::*;
use aibench_models::Trainer;

fn epochs_to(
    f: impl Fn(u64) -> Box<dyn Trainer>,
    target: f64,
    higher: bool,
    seeds: u64,
    cap: usize,
) -> Vec<usize> {
    (1..=seeds)
        .map(|s| {
            let mut t = f(s);
            for e in 1..=cap {
                t.train_epoch();
                let q = t.evaluate();
                if (higher && q >= target) || (!higher && q <= target) {
                    return e;
                }
            }
            cap
        })
        .collect()
}

fn cov(e: &[usize]) -> f64 {
    let m = e.iter().sum::<usize>() as f64 / e.len() as f64;
    let v = e.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / (e.len() - 1) as f64;
    100.0 * v.sqrt() / m
}

fn main() {
    for target in [0.88, 0.90, 0.93] {
        let e = epochs_to(
            |s| Box::new(ImageClassification::new(s)),
            target,
            true,
            5,
            45,
        );
        println!("C1 target {target}: {e:?} cov {:.1}%", cov(&e));
    }
    for target in [0.30, 0.40, 0.50] {
        let e = epochs_to(
            |s| Box::new(ObjectDetection::new(s, DetectionConfig::aibench())),
            target,
            true,
            5,
            45,
        );
        println!("C9 target {target}: {e:?} cov {:.1}%", cov(&e));
    }
    for target in [0.25, 0.30, 0.35] {
        let e = epochs_to(|s| Box::new(LearningToRank::new(s)), target, true, 5, 45);
        println!("C16 target {target}: {e:?} cov {:.1}%", cov(&e));
    }
}

//! Calibration tool: one training session per registered benchmark with
//! per-epoch quality traces, used to pick the scaled quality targets.
//!
//! ```sh
//! cargo run --release -p aibench --example calibrate
//! ```

use aibench::registry::Registry;
use aibench::runner::{run_to_quality, RunConfig};

fn main() {
    let r = Registry::all();
    let cfg = RunConfig {
        max_epochs: 45,
        eval_every: 1,
        ..RunConfig::default()
    };
    for b in r.benchmarks() {
        if !b.id.is_aibench()
            && !matches!(
                b.id.code(),
                "MLPerf-OD-Heavy" | "MLPerf-OD-Light" | "MLPerf-Trans-Rec" | "MLPerf-RL"
            )
        {
            continue; // shared instances already measured on the AIBench side
        }
        let res = run_to_quality(b, 1, &cfg);
        let qs: Vec<String> = res
            .quality_trace
            .iter()
            .filter(|(e, _)| e % 5 == 0 || *e == 1)
            .map(|(e, q)| format!("e{e}:{q:.3}"))
            .collect();
        println!(
            "{:<22} target {:<9} conv@{:?} final {:.3} | {}",
            b.id.code(),
            b.target.to_string(),
            res.epochs_to_target,
            res.final_quality,
            qs.join(" ")
        );
    }
}

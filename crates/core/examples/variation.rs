//! Repeatability tool: measures the Table-5 run-to-run variation of all
//! seventeen AIBench benchmarks at their paper repeat counts.
//!
//! ```sh
//! cargo run --release -p aibench --example variation
//! ```

use aibench::registry::Registry;
use aibench::repeatability::measure_variation;
use aibench::runner::RunConfig;

fn main() {
    let r = Registry::aibench();
    let cfg = RunConfig {
        max_epochs: 45,
        eval_every: 1,
        ..RunConfig::default()
    };
    for b in r.benchmarks() {
        let repeats = b.paper.repeats.unwrap_or(4) as usize;
        let rep = measure_variation(b, repeats, &cfg);
        println!(
            "{:<12} runs {} epochs {:?} cov {:?} paper {:?}",
            b.id.code(),
            rep.runs,
            rep.epochs,
            rep.variation_pct.map(|v| format!("{v:.2}%")),
            b.paper.variation_pct
        );
    }
}

//! Determinism lints over recorded region effects.
//!
//! These catch code that is memory-safe but breaks the bitwise
//! reproducibility contract: float accumulation whose fold order depends on
//! chunk scheduling, RNG streams consumed in scheduling order, and chunk
//! boundaries derived from the thread count.

use crate::Finding;
use aibench_parallel::effects::{AccessKind, EffectReport};
use std::collections::BTreeMap;

/// Per-region lints: order-unstable accumulation and RNG use inside
/// parallel regions.
pub fn lint_regions(subject: &str, report: &EffectReport) -> Vec<Finding> {
    let mut findings = Vec::new();
    for region in &report.regions {
        // Accumulate declarations are read-modify-write folds into shared
        // state. Inside `parallel_reduce` the per-chunk partials are folded
        // in ascending chunk order by construction; anywhere else the fold
        // order is whatever the scheduler produced.
        if region.primitive != "parallel_reduce" {
            let accums: Vec<_> = region
                .accesses
                .iter()
                .filter(|a| a.kind == AccessKind::Accumulate)
                .collect();
            if let Some(first) = accums.first() {
                findings.push(Finding {
                    subject: subject.to_string(),
                    rule: "unstable-accumulation",
                    expected: format!(
                        "kernel `{}` folds float partials through the order-stable \
                         parallel_reduce/sum_f32 combiners",
                        region.kernel
                    ),
                    found: format!(
                        "{} accumulate declaration(s) inside a {} region (first: chunk {} \
                         at [{}..{})) — fold order follows chunk scheduling",
                        accums.len(),
                        region.primitive,
                        first.chunk,
                        first.range.start,
                        first.range.end,
                    ),
                });
            }
        }
        if region.rng_draws > 0 {
            findings.push(Finding {
                subject: subject.to_string(),
                rule: "rng-in-region",
                expected: format!(
                    "kernel `{}` draws random numbers outside parallel regions \
                     (or from per-chunk forked generators)",
                    region.kernel
                ),
                found: format!(
                    "{} RNG draw(s) from inside the region's chunks — a shared \
                     generator's stream order would depend on chunk scheduling",
                    region.rng_draws
                ),
            });
        }
    }
    findings
}

/// Chunk-boundary descriptor multiset of a report: one `(kernel,
/// primitive, n, chunk)` entry per region. Chunk boundaries are a pure
/// function of `(n, chunk)`, so two runs of the same workload — at any two
/// thread counts — must produce identical multisets. Region *order* is
/// deliberately ignored: nested regions open in scheduling order.
fn boundary_multiset(report: &EffectReport) -> BTreeMap<(String, &'static str, usize, usize), i64> {
    let mut counts = BTreeMap::new();
    for r in &report.regions {
        *counts
            .entry((r.kernel.clone(), r.primitive, r.n, r.chunk))
            .or_insert(0) += 1;
    }
    counts
}

/// At most this many differing descriptors are reported per benchmark.
const DIFFS_REPORTED: usize = 3;

/// Compares the chunk-boundary descriptors of the same workload recorded
/// at two thread counts. Any difference means some kernel derives its
/// chunking from the thread count (or otherwise schedules differently),
/// which moves reduction boundaries and breaks bitwise reproducibility.
pub fn lint_chunking(
    subject: &str,
    threads_a: usize,
    threads_b: usize,
    a: &EffectReport,
    b: &EffectReport,
) -> Vec<Finding> {
    let mut counts = boundary_multiset(a);
    for (key, n) in boundary_multiset(b) {
        *counts.entry(key).or_insert(0) -= n;
    }
    counts.retain(|_, n| *n != 0);
    let mut findings = Vec::new();
    for ((kernel, primitive, n, chunk), delta) in counts.into_iter().take(DIFFS_REPORTED) {
        let (more, fewer) = if delta > 0 {
            (threads_a, threads_b)
        } else {
            (threads_b, threads_a)
        };
        findings.push(Finding {
            subject: subject.to_string(),
            rule: "thread-dependent-chunking",
            expected: format!(
                "identical chunk descriptors at {threads_a} and {threads_b} thread(s) \
                 (boundaries must depend only on problem size)"
            ),
            found: format!(
                "kernel `{kernel}` ({primitive}, n={n}, chunk={chunk}) ran {} more \
                 time(s) at {more} thread(s) than at {fewer}",
                delta.abs()
            ),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_recording;
    use aibench_parallel::effects;

    #[test]
    fn order_stable_sum_passes_the_accumulation_lint() {
        let (total, report) = with_recording(|| aibench_parallel::sum_f32(&vec![0.5f32; 10_000]));
        assert_eq!(total, 5000.0);
        assert!(!report.regions.is_empty());
        assert!(lint_regions("test", &report).is_empty());
    }

    #[test]
    fn rng_outside_regions_is_clean() {
        let (_, report) = with_recording(|| {
            let mut rng = aibench_tensor::Rng::seed_from(1);
            let draws: Vec<u64> = (0..100).map(|_| rng.next_u64()).collect();
            let mut out = vec![0.0f32; 100];
            aibench_parallel::parallel_slice_mut(&mut out, 10, |range, o| {
                for (v, i) in o.iter_mut().zip(range) {
                    *v = (draws[i] % 7) as f32;
                }
            });
        });
        assert!(lint_regions("test", &report).is_empty());
    }

    #[test]
    fn identical_workloads_pass_the_chunking_lint() {
        let workload = || {
            let mut data = vec![0.0f32; 999];
            let _s = effects::kernel_scope("probe");
            aibench_parallel::parallel_slice_mut(&mut data, 10, |_, o| o.fill(1.0));
            aibench_parallel::sum_f32(&data)
        };
        let (_, a) = with_recording(|| {
            aibench_parallel::set_threads(1);
            workload()
        });
        let (_, b) = with_recording(|| {
            aibench_parallel::set_threads(4);
            let r = workload();
            aibench_parallel::set_threads(1);
            r
        });
        assert!(lint_chunking("test", 1, 4, &a, &b).is_empty());
    }
}

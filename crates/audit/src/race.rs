//! Cross-chunk race detection over recorded region effects.

use crate::interval;
use crate::Finding;
use aibench_parallel::effects::{Access, AccessKind, BufId, EffectReport, RegionEffects};
use std::collections::BTreeMap;

/// At most this many conflicting pairs are reported per region — one is
/// enough to fail the audit, a few help localize the bug, hundreds of
/// repeats of the same halo error would drown the report.
const PAIRS_PER_REGION: usize = 3;

/// Scans every recorded region for cross-chunk conflicts: two chunks whose
/// declared ranges on the same buffer overlap, at least one of them
/// mutating. Disjoint-by-construction kernels (everything built on
/// `parallel_slice_mut` with honest read declarations) come back clean.
pub fn detect_races(subject: &str, report: &EffectReport) -> Vec<Finding> {
    let mut findings = Vec::new();
    for region in &report.regions {
        // Group the region's accesses by buffer; a buffer nobody mutates
        // cannot host a conflict, which skips the common shared-operand
        // case (every chunk reading all of a weight matrix).
        let mut by_buffer: BTreeMap<BufId, Vec<&Access>> = BTreeMap::new();
        for a in &region.accesses {
            by_buffer.entry(a.buffer).or_default().push(a);
        }
        for accesses in by_buffer.values() {
            if accesses.iter().all(|a| a.kind == AccessKind::Read) {
                continue;
            }
            for (a, b) in interval::conflicting_pairs(accesses, PAIRS_PER_REGION) {
                findings.push(conflict_finding(subject, region, a, b));
            }
        }
    }
    findings
}

fn conflict_finding(subject: &str, region: &RegionEffects, a: &Access, b: &Access) -> Finding {
    Finding {
        subject: subject.to_string(),
        rule: "region-race",
        expected: format!(
            "disjoint cross-chunk access sets in kernel `{}` ({}, n={}, chunk={})",
            region.kernel, region.primitive, region.n, region.chunk
        ),
        found: format!(
            "chunk {} {} [{}..{}) overlaps chunk {} {} [{}..{})",
            a.chunk,
            kind_name(a.kind),
            a.range.start,
            a.range.end,
            b.chunk,
            kind_name(b.kind),
            b.range.start,
            b.range.end,
        ),
    }
}

fn kind_name(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "reads",
        AccessKind::Write => "writes",
        AccessKind::Accumulate => "accumulates",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_recording;
    use aibench_parallel::effects;

    #[test]
    fn clean_slice_mut_kernel_reports_no_races() {
        let ((), report) = with_recording(|| {
            let src = vec![1.0f32; 300];
            let mut dst = vec![0.0f32; 300];
            let _s = effects::kernel_scope("clean_copy");
            aibench_parallel::parallel_slice_mut(&mut dst, 32, |range, out| {
                effects::read(&src, range.clone());
                for (o, i) in out.iter_mut().zip(range) {
                    *o = src[i];
                }
            });
        });
        assert!(!report.regions.is_empty());
        assert!(detect_races("test", &report).is_empty());
    }

    #[test]
    fn declared_halo_write_is_reported_with_kernel_and_ranges() {
        let findings = crate::fixtures::racy_kernel();
        assert!(!findings.is_empty());
        let f = &findings[0];
        assert_eq!(f.rule, "region-race");
        assert!(f.expected.contains("fixture_racy_halo"), "{f}");
        assert!(f.found.contains("overlaps"), "{f}");
    }
}

//! `aibench-audit`: region-effect analyses over the deterministic kernel
//! layer.
//!
//! `aibench-parallel`'s determinism contract — disjoint chunk writes,
//! order-stable reductions, size-only chunk boundaries — is enforced by
//! convention at every kernel call site. This crate checks the convention
//! mechanically, using the access sets kernels declare through
//! [`aibench_parallel::effects`] (compiled in via the `sanitize` feature,
//! which depending on this crate enables):
//!
//! * [`race`] — cross-chunk write-write and read-write overlap detection
//!   over each recorded parallel region's interval sets, reported with the
//!   kernel name and the offending element ranges.
//! * [`lints`] — determinism lints: float accumulation outside the
//!   order-stable `parallel_reduce` combiners, RNG draws from inside a
//!   parallel region, and chunk boundaries that change with the thread
//!   count instead of depending only on problem size.
//! * [`coverage`] — snapshot-coverage analysis: the buffers a trainer
//!   mutates during an epoch (its *mutation fingerprint*) are diffed
//!   against its `save_state` tree; a mutated parameter with no
//!   bitwise-equal snapshot entry would silently not survive
//!   checkpoint/resume.
//!
//! [`fixtures`] holds seeded defects (an intentionally racy kernel, an
//! unstable reduction, a trainer that forgets state, and friends) proving
//! each analysis fires. `aibench-check --audit` runs [`audit_benchmark`]
//! over the full registry.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod coverage;
pub mod fixtures;
pub mod interval;
pub mod lints;
pub mod race;

use aibench::Benchmark;
use aibench_ckpt::State;
use aibench_parallel::effects::{self, EffectReport};
use std::fmt;
use std::sync::Mutex;

/// Seed every audit probe builds trainers from. Fixed so findings are
/// reproducible run to run.
pub const AUDIT_SEED: u64 = 2024;

/// One audit violation: which analysis fired, where, and what it saw.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Benchmark code, fixture name, or kernel label the finding is about.
    pub subject: String,
    /// Stable rule identifier (`region-race`, `unstable-accumulation`,
    /// `rng-in-region`, `thread-dependent-chunking`, `snapshot-coverage`).
    pub rule: &'static str,
    /// The contract the subject was expected to uphold.
    pub expected: String,
    /// What the recorded effects actually show.
    pub found: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] expected {}, found {}",
            self.subject, self.rule, self.expected, self.found
        )
    }
}

/// The effect recorder is process-global, so audit sessions (and any test
/// that records) must not interleave.
static SESSION: Mutex<()> = Mutex::new(());

/// Runs `f` with effect recording on, returning its result plus everything
/// recorded. Sessions are serialized process-wide; the recorder is drained
/// on entry and exit, so concurrent test threads cannot contaminate each
/// other's reports.
pub fn with_recording<R>(f: impl FnOnce() -> R) -> (R, EffectReport) {
    let _g = SESSION.lock().unwrap_or_else(|e| e.into_inner());
    effects::start_recording();
    let r = f();
    (r, effects::take_report())
}

/// Audits one benchmark end to end: records a full training epoch of a
/// fresh [`AUDIT_SEED`]-seeded trainer, then runs every analysis over the
/// recording —
///
/// 1. race detection and the per-region lints,
/// 2. snapshot coverage of the trainer's post-epoch `save_state` tree,
/// 3. the chunking lint, by re-recording the same epoch (fresh same-seed
///    trainer) at a different thread count and requiring identical chunk
///    descriptors.
///
/// The configured thread count is restored before returning. An empty
/// return means the benchmark upholds the determinism contract.
pub fn audit_benchmark(b: &Benchmark) -> Vec<Finding> {
    let _g = SESSION.lock().unwrap_or_else(|e| e.into_inner());
    let code = b.id.code();
    let base_threads = aibench_parallel::threads();

    let mut trainer = b.build(AUDIT_SEED);
    effects::start_recording();
    trainer.train_epoch();
    let report = effects::take_report();

    let mut findings = race::detect_races(code, &report);
    findings.extend(lints::lint_regions(code, &report));

    let mut state = State::new();
    trainer.save_state(&mut state);
    findings.extend(coverage::check_coverage(
        code,
        &trainer.params(),
        &state,
        &report,
    ));

    let alt_threads = if base_threads == 1 { 4 } else { 1 };
    aibench_parallel::set_threads(alt_threads);
    let mut retrainer = b.build(AUDIT_SEED);
    effects::start_recording();
    retrainer.train_epoch();
    let alt_report = effects::take_report();
    aibench_parallel::set_threads(base_threads);
    findings.extend(lints::lint_chunking(
        code,
        base_threads,
        alt_threads,
        &report,
        &alt_report,
    ));

    findings
}

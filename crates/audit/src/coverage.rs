//! Snapshot-coverage analysis: does `save_state` capture everything the
//! trainer mutates?
//!
//! The checkpoint layer can only restore what a trainer chose to save. A
//! parameter the training loop updates but `save_state` omits is invisible
//! to every resume test that compares final metrics — until a fault lands
//! between the mutation and the comparison. This analysis closes that gap
//! statically-ish: the effect recorder tells us which buffers an epoch
//! *wrote* (the trainer's mutation fingerprint), and each written parameter
//! must appear in the snapshot tree as a bitwise-equal tensor entry.

use crate::Finding;
use aibench_autograd::Param;
use aibench_ckpt::{State, Value};
use aibench_parallel::effects::{BufId, EffectReport};

/// Checks that every parameter mutated during the recorded epoch has a
/// bitwise-equal `F32s` entry (same shape, same bits) in the post-epoch
/// snapshot tree. Parameters the epoch never wrote are exempt — frozen
/// embeddings or buffers reconstructed from the seed need no entry.
pub fn check_coverage(
    subject: &str,
    params: &[Param],
    state: &State,
    report: &EffectReport,
) -> Vec<Finding> {
    let written = report.written_buffers();
    let mut findings = Vec::new();
    for p in params {
        let value = p.value();
        if written.binary_search(&BufId::of(value.data())).is_err() {
            continue;
        }
        if !has_bitwise_entry(state, &p.shape(), value.data()) {
            findings.push(Finding {
                subject: subject.to_string(),
                rule: "snapshot-coverage",
                expected: format!(
                    "mutated parameter `{}` ({} element(s), shape {:?}) saved by \
                     save_state with its exact post-epoch bits",
                    p.name(),
                    value.data().len(),
                    p.shape(),
                ),
                found: format!(
                    "the epoch wrote this parameter's buffer but no snapshot entry \
                     matches it bitwise — it would not survive checkpoint/resume \
                     ({} entr(ies) searched)",
                    state.len(),
                ),
            });
        }
    }
    findings
}

/// Whether any tensor entry in the snapshot tree equals `data` bitwise with
/// the same shape. Matching by content rather than by key keeps the
/// analysis independent of each trainer's key-naming scheme.
fn has_bitwise_entry(state: &State, shape: &[usize], data: &[f32]) -> bool {
    state.iter().any(|(_, v)| match v {
        Value::F32s { shape: s, data: d } => {
            s == shape
                && d.len() == data.len()
                && d.iter().zip(data).all(|(a, b)| a.to_bits() == b.to_bits())
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_recording;
    use aibench_ckpt::Snapshot as _;
    use aibench_tensor::Tensor;

    fn param(name: &str, len: usize, fill: f32) -> Param {
        Param::new(name, Tensor::from_vec(vec![fill; len], &[len]))
    }

    #[test]
    fn unwritten_params_need_no_snapshot_entry() {
        let p = param("frozen", 64, 1.0);
        let ((), report) = with_recording(|| {
            // Epoch touches an unrelated buffer only.
            let mut other = vec![0.0f32; 64];
            aibench_parallel::parallel_slice_mut(&mut other, 16, |_, o| o.fill(2.0));
        });
        let state = State::new();
        assert!(check_coverage("test", &[p], &state, &report).is_empty());
    }

    #[test]
    fn written_param_with_bitwise_snapshot_passes() {
        let p = param("w", 64, 0.0);
        let ((), report) = with_recording(|| {
            let mut v = p.value_mut();
            aibench_parallel::parallel_slice_mut(v.data_mut(), 16, |range, o| {
                for (x, i) in o.iter_mut().zip(range) {
                    *x = i as f32 * 0.25;
                }
            });
        });
        let mut state = State::new();
        p.snapshot(&mut state, "w");
        assert!(check_coverage("test", &[p], &state, &report).is_empty());
    }

    #[test]
    fn written_param_missing_from_snapshot_is_flagged() {
        let p = param("forgotten", 64, 0.0);
        let ((), report) = with_recording(|| {
            let mut v = p.value_mut();
            aibench_parallel::parallel_slice_mut(v.data_mut(), 16, |_, o| o.fill(3.0));
        });
        let state = State::new();
        let findings = check_coverage("test", &[p], &state, &report);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "snapshot-coverage");
        assert!(findings[0].expected.contains("forgotten"));
    }

    #[test]
    fn stale_snapshot_bits_are_flagged() {
        let p = param("stale", 32, 0.0);
        let mut state = State::new();
        p.snapshot(&mut state, "stale"); // snapshot BEFORE the mutation
        let ((), report) = with_recording(|| {
            let mut v = p.value_mut();
            aibench_parallel::parallel_slice_mut(v.data_mut(), 8, |_, o| o.fill(7.0));
        });
        let findings = check_coverage("test", &[p], &state, &report);
        assert_eq!(findings.len(), 1);
    }
}

//! Seeded defect fixtures proving each audit analysis fires.
//!
//! Each fixture builds a small, intentionally broken workload — memory-safe
//! (the workspace forbids unsafe outside the kernel hot paths) but in
//! violation of the determinism contract the audit enforces — records it,
//! and returns the findings the corresponding analysis produces. An empty
//! return from any of these means the analysis has gone blind;
//! `aibench-check`'s fixture harness fails in that case.

use crate::{coverage, lints, race, with_recording, Finding};
use aibench_autograd::Param;
use aibench_ckpt::{Snapshot as _, State};
use aibench_models::Trainer;
use aibench_parallel::effects;
use aibench_tensor::{Rng, Tensor};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// A kernel whose chunks each write one element past their range — the
/// classic halo/off-by-one stencil bug. The cells are atomics so the
/// overlap is memory-safe to *execute*; the declared access sets still
/// overlap, which is exactly what the race detector keys on.
pub fn racy_kernel() -> Vec<Finding> {
    let n = 64;
    let cells: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let ((), report) = with_recording(|| {
        let _s = effects::kernel_scope("fixture_racy_halo");
        aibench_parallel::parallel_for(n, 16, |range| {
            // Declares (and performs) the buggy halo write: the chunk's
            // own range plus one element of its right neighbour.
            let halo = range.start..(range.end + 1).min(n);
            effects::write(&cells, halo.clone());
            for i in halo {
                cells[i].fetch_add(1, Ordering::Relaxed);
            }
        });
    });
    race::detect_races("audit-racy-kernel", &report)
}

/// A reduction hand-rolled over `parallel_for` folding float partials into
/// a shared accumulator. The sum's value depends on which chunk locks the
/// mutex first — the accumulation lint flags the `Accumulate` declaration
/// outside `parallel_reduce`.
pub fn unstable_reduction() -> Vec<Finding> {
    let data = vec![0.1f32; 1000];
    let acc = Mutex::new(0.0f32);
    let ((), report) = with_recording(|| {
        let _s = effects::kernel_scope("fixture_unstable_sum");
        aibench_parallel::parallel_for(data.len(), 128, |range| {
            effects::read(&data, range.clone());
            let partial: f32 = range.map(|i| data[i]).sum();
            let mut g = acc.lock().unwrap();
            effects::accumulate(std::slice::from_ref(&*g), 0..1);
            *g += partial;
        });
    });
    lints::lint_regions("audit-unstable-reduction", &report)
}

/// A toy trainer that updates two parameters every epoch but snapshots
/// only one of them. Checkpoint/resume would silently lose `b`; the
/// snapshot-coverage analysis catches the omission by diffing the epoch's
/// mutation fingerprint against the `save_state` tree.
struct ForgetfulTrainer {
    w: Param,
    b: Param,
}

impl ForgetfulTrainer {
    fn new() -> Self {
        ForgetfulTrainer {
            w: Param::new("w", Tensor::zeros(&[32])),
            b: Param::new("b", Tensor::zeros(&[8])),
        }
    }
}

impl Trainer for ForgetfulTrainer {
    fn train_epoch(&mut self) -> f32 {
        for p in [&self.w, &self.b] {
            let mut v = p.value_mut();
            aibench_parallel::parallel_slice_mut(v.data_mut(), 8, |range, out| {
                for (x, i) in out.iter_mut().zip(range) {
                    *x += 0.5 + i as f32 * 0.01;
                }
            });
        }
        0.0
    }

    fn evaluate(&mut self) -> f64 {
        0.0
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.b.clone()]
    }

    fn save_state(&self, state: &mut State) {
        // The seeded defect: `b` is mutated every epoch but never saved.
        self.w.snapshot(state, "w");
    }

    fn load_state(&mut self, state: &State) -> Result<(), aibench_ckpt::CkptError> {
        aibench_ckpt::Restore::restore(&mut self.w, state, "w")
    }
}

/// Runs the forgetful trainer through the same record-epoch/diff-snapshot
/// flow `audit_benchmark` uses and returns the coverage findings.
pub fn unsnapshotted_state() -> Vec<Finding> {
    let mut trainer = ForgetfulTrainer::new();
    let (_, report) = with_recording(|| trainer.train_epoch());
    let mut state = State::new();
    trainer.save_state(&mut state);
    coverage::check_coverage(
        "audit-unsnapshotted-state",
        &trainer.params(),
        &state,
        &report,
    )
}

/// A kernel drawing from a shared RNG inside its chunks: the stream
/// position each chunk observes depends on scheduling order, so the output
/// is not reproducible. Flagged by the RNG lint via the draw counter the
/// generator itself maintains.
pub fn rng_in_region() -> Vec<Finding> {
    let rng = Mutex::new(Rng::seed_from(7));
    let mut out = vec![0.0f32; 256];
    let ((), report) = with_recording(|| {
        let _s = effects::kernel_scope("fixture_rng_noise");
        aibench_parallel::parallel_slice_mut(&mut out, 64, |_, o| {
            let mut g = rng.lock().unwrap();
            for x in o {
                *x = (g.next_u64() % 1000) as f32;
            }
        });
    });
    lints::lint_regions("audit-rng-in-region", &report)
}

/// A kernel that sizes its chunks from the live thread count
/// (`n.div_ceil(threads)`), so its reduction boundaries move whenever the
/// pool is resized. Recorded at two thread counts; the chunking lint
/// requires the descriptor multisets to match and reports the drift.
pub fn thread_dependent_chunking() -> Vec<Finding> {
    let run = || {
        let n: usize = 1000;
        let chunk = n.div_ceil(aibench_parallel::threads()).max(1);
        let mut data = vec![0.0f32; n];
        let _s = effects::kernel_scope("fixture_elastic_chunks");
        aibench_parallel::parallel_slice_mut(&mut data, chunk, |_, o| o.fill(1.0));
    };
    let base = aibench_parallel::threads();
    let ((), report_a) = with_recording(|| {
        aibench_parallel::set_threads(1);
        run();
    });
    let ((), report_b) = with_recording(|| {
        aibench_parallel::set_threads(2);
        run();
        aibench_parallel::set_threads(base);
    });
    lints::lint_chunking("audit-thread-chunking", 1, 2, &report_a, &report_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_fires_its_analysis() {
        for (name, findings, rule) in [
            ("racy_kernel", racy_kernel(), "region-race"),
            (
                "unstable_reduction",
                unstable_reduction(),
                "unstable-accumulation",
            ),
            (
                "unsnapshotted_state",
                unsnapshotted_state(),
                "snapshot-coverage",
            ),
            ("rng_in_region", rng_in_region(), "rng-in-region"),
            (
                "thread_dependent_chunking",
                thread_dependent_chunking(),
                "thread-dependent-chunking",
            ),
        ] {
            assert!(!findings.is_empty(), "{name} produced no findings");
            assert!(
                findings.iter().any(|f| f.rule == rule),
                "{name} fired {:?}, expected rule {rule}",
                findings.iter().map(|f| f.rule).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn forgetful_trainer_flags_exactly_the_forgotten_param() {
        let findings = unsnapshotted_state();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].expected.contains("`b`"), "{}", findings[0]);
    }
}

//! Interval overlap detection over declared access sets.
//!
//! Accesses are half-open element ranges `[start, end)` within one buffer.
//! The race detector needs exactly one primitive from this module: find
//! pairs of accesses, from *different* chunks, whose ranges intersect and
//! where at least one side mutates. A line sweep over start-sorted accesses
//! with an active list pruned by range end keeps this near-linear for the
//! disjoint access sets that correct kernels produce.

use aibench_parallel::effects::{Access, AccessKind};

/// Whether two half-open ranges share at least one element. Empty ranges
/// never overlap anything.
pub fn overlaps(a: &std::ops::Range<usize>, b: &std::ops::Range<usize>) -> bool {
    a.start < b.end && b.start < a.end
}

/// Whether an overlapping pair of accesses from different chunks is a
/// memory conflict.
///
/// Read-read sharing is always fine. Accumulate-accumulate overlap is
/// *order-unstable*, not a memory race — it is reported by the
/// accumulation lint instead, so it is excluded here. Every other mixed
/// pair involves a plain write racing another access.
pub fn conflicting_kinds(a: AccessKind, b: AccessKind) -> bool {
    !matches!(
        (a, b),
        (AccessKind::Read, AccessKind::Read) | (AccessKind::Accumulate, AccessKind::Accumulate)
    )
}

/// Finds up to `cap` conflicting pairs among accesses to **one buffer**:
/// overlapping ranges, different chunks, [`conflicting_kinds`]. Pairs are
/// returned in sweep order (ascending range start of the later access).
pub fn conflicting_pairs<'a>(accesses: &[&'a Access], cap: usize) -> Vec<(&'a Access, &'a Access)> {
    let mut sorted: Vec<&Access> = accesses.to_vec();
    sorted.sort_by_key(|a| (a.range.start, a.range.end, a.chunk));
    let mut active: Vec<&Access> = Vec::new();
    let mut out = Vec::new();
    for a in sorted {
        if a.range.is_empty() {
            continue;
        }
        active.retain(|b| b.range.end > a.range.start);
        for b in &active {
            debug_assert!(overlaps(&a.range, &b.range));
            if a.chunk != b.chunk && conflicting_kinds(a.kind, b.kind) {
                out.push((*b, a));
                if out.len() >= cap {
                    return out;
                }
            }
        }
        active.push(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_parallel::effects::BufId;

    fn access(chunk: usize, kind: AccessKind, range: std::ops::Range<usize>) -> Access {
        Access {
            chunk,
            buffer: BufId(0x1000),
            kind,
            range,
        }
    }

    #[test]
    fn adjacent_but_disjoint_ranges_do_not_conflict() {
        // [0,8) and [8,16): touching endpoints share no element.
        let a = access(0, AccessKind::Write, 0..8);
        let b = access(1, AccessKind::Write, 8..16);
        assert!(!overlaps(&a.range, &b.range));
        assert!(conflicting_pairs(&[&a, &b], 8).is_empty());
    }

    #[test]
    fn exact_overlap_is_a_conflict() {
        let a = access(0, AccessKind::Write, 4..12);
        let b = access(1, AccessKind::Write, 4..12);
        let pairs = conflicting_pairs(&[&a, &b], 8);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.chunk, 0);
        assert_eq!(pairs[0].1.chunk, 1);
    }

    #[test]
    fn off_by_one_halo_is_a_conflict() {
        // Chunk 0 writes [0,9) — one element past its 8-element share —
        // while chunk 1 writes [8,16): exactly the halo-write bug class.
        let a = access(0, AccessKind::Write, 0..9);
        let b = access(1, AccessKind::Write, 8..16);
        let pairs = conflicting_pairs(&[&a, &b], 8);
        assert_eq!(pairs.len(), 1);
        // And shrinking the halo back by one element clears it.
        let a2 = access(0, AccessKind::Write, 0..8);
        assert!(conflicting_pairs(&[&a2, &b], 8).is_empty());
    }

    #[test]
    fn read_read_sharing_is_clean() {
        let a = access(0, AccessKind::Read, 0..100);
        let b = access(1, AccessKind::Read, 0..100);
        assert!(conflicting_pairs(&[&a, &b], 8).is_empty());
    }

    #[test]
    fn read_write_overlap_across_chunks_conflicts() {
        let r = access(0, AccessKind::Read, 0..100);
        let w = access(1, AccessKind::Write, 50..60);
        assert_eq!(conflicting_pairs(&[&r, &w], 8).len(), 1);
    }

    #[test]
    fn same_chunk_overlap_is_not_a_conflict() {
        // One chunk may freely read and write its own range.
        let r = access(2, AccessKind::Read, 0..10);
        let w = access(2, AccessKind::Write, 0..10);
        assert!(conflicting_pairs(&[&r, &w], 8).is_empty());
    }

    #[test]
    fn accumulate_pairs_route_to_the_lint_not_the_race() {
        let a = access(0, AccessKind::Accumulate, 0..1);
        let b = access(1, AccessKind::Accumulate, 0..1);
        assert!(conflicting_pairs(&[&a, &b], 8).is_empty());
        // But accumulate against a plain read or write is still a race.
        let r = access(2, AccessKind::Read, 0..1);
        assert_eq!(conflicting_pairs(&[&a, &r], 8).len(), 1);
    }

    #[test]
    fn empty_ranges_never_conflict() {
        let a = access(0, AccessKind::Write, 5..5);
        let b = access(1, AccessKind::Write, 0..10);
        assert!(conflicting_pairs(&[&a, &b], 8).is_empty());
    }

    #[test]
    fn cap_limits_reported_pairs() {
        let accesses: Vec<Access> = (0..10)
            .map(|c| access(c, AccessKind::Write, 0..4))
            .collect();
        let refs: Vec<&Access> = accesses.iter().collect();
        assert_eq!(conflicting_pairs(&refs, 3).len(), 3);
    }
}

//! Property tests of the audit's no-false-positive guarantee: the shipped
//! kernels declare disjoint cross-chunk access sets at every thread count,
//! so the race detector and the per-region lints stay silent on them.

use aibench_audit::{lints, race, with_recording};
use aibench_tensor::ops::{conv2d, matmul, Conv2dArgs};
use aibench_tensor::{Rng, Tensor};
use proptest::prelude::*;

/// Thread counts the contract is exercised at. `with_recording` serializes
/// sessions process-wide, so mutating the global pool inside it is safe.
const THREADS: [usize; 3] = [1, 4, 8];

fn assert_clean(label: &str, threads: usize, f: impl Fn()) {
    let base = aibench_parallel::threads();
    let ((), report) = with_recording(|| {
        aibench_parallel::set_threads(threads);
        f();
        aibench_parallel::set_threads(base);
    });
    assert!(
        !report.regions.is_empty(),
        "{label}: kernel recorded no regions at {threads} thread(s)"
    );
    let races = race::detect_races(label, &report);
    assert!(races.is_empty(), "{label} at {threads} threads: {races:?}");
    let lints = lints::lint_regions(label, &report);
    assert!(lints.is_empty(), "{label} at {threads} threads: {lints:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matmul_access_sets_are_disjoint_at_every_thread_count(
        m in 1usize..9, k in 1usize..9, n in 1usize..9, s in 0u64..100
    ) {
        let mut rng = Rng::seed_from(s);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        for threads in THREADS {
            assert_clean("matmul", threads, || {
                matmul(&a, &b);
            });
        }
    }

    #[test]
    fn conv2d_access_sets_are_disjoint_at_every_thread_count(
        n in 1usize..3, cin in 1usize..3, hw in 3usize..7, s in 0u64..100
    ) {
        let mut rng = Rng::seed_from(s ^ 0xc0);
        let input = Tensor::randn(&[n, cin, hw, hw], &mut rng);
        let weight = Tensor::randn(&[2, cin, 3, 3], &mut rng);
        for threads in THREADS {
            assert_clean("conv2d", threads, || {
                conv2d(&input, &weight, Conv2dArgs { stride: 1, pad: 1 });
            });
        }
    }

    #[test]
    fn reductions_stay_order_stable_at_every_thread_count(
        len in 1usize..4096, s in 0u64..100
    ) {
        let mut rng = Rng::seed_from(s ^ 0xdead);
        let data = Tensor::randn(&[len], &mut rng);
        let baseline = aibench_parallel::sum_f32(data.data());
        for threads in THREADS {
            assert_clean("sum_f32", threads, || {
                let total = aibench_parallel::sum_f32(data.data());
                assert_eq!(total.to_bits(), baseline.to_bits());
            });
        }
    }
}

//! Region-effect tracking for the deterministic kernels (the `sanitize`
//! feature).
//!
//! Every parallel primitive in this crate partitions work into chunks whose
//! boundaries depend only on the problem size. The *determinism contract*
//! behind that design has two unstated obligations the type system cannot
//! enforce:
//!
//! 1. chunks must touch **disjoint** writable memory (no cross-chunk
//!    write-write or read-write overlap), and
//! 2. order-sensitive float accumulation must go through the order-stable
//!    combiners ([`crate::parallel_reduce`] / [`crate::sum_f32`]), never
//!    through ad-hoc shared accumulators.
//!
//! This module records, per parallel region, the index ranges each chunk
//! declares it reads and writes — an *access set* over the underlying
//! buffers — so an external analysis (the `aibench-audit` crate) can verify
//! both obligations mechanically instead of by example-based testing.
//!
//! With the `sanitize` feature **disabled** every function here is an empty
//! `#[inline]` stub and the tracker costs literally nothing. With the
//! feature enabled but recording **off** (the default), the cost is one
//! relaxed atomic load per region plus a thread-local push/pop per kernel
//! scope. Recording is only ever turned on by an auditing harness.
//!
//! # Declaring a kernel's access set
//!
//! Kernels name the region via [`kernel_scope`] and declare reads inside
//! the chunk closure; writes through [`crate::parallel_slice_mut`] are
//! recorded automatically:
//!
//! ```
//! use aibench_parallel as par;
//! let src = vec![1.0f32; 256];
//! let mut dst = vec![0.0f32; 256];
//! let _scope = par::effects::kernel_scope("double");
//! par::parallel_slice_mut(&mut dst, 64, |range, out| {
//!     par::effects::read(&src, range.clone()); // declared read
//!     for (o, i) in out.iter_mut().zip(range) {
//!         *o = 2.0 * src[i];
//!     }
//! });
//! ```

use std::ops::Range;

/// The kind of one declared buffer access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The chunk reads the range.
    Read,
    /// The chunk writes the range (exclusively, if the kernel is correct).
    Write,
    /// The chunk folds a float contribution into the range (read-modify-
    /// write). Accumulation into shared state outside
    /// [`crate::parallel_reduce`] is order-unstable by construction, so
    /// declaring it is how a kernel self-reports a determinism hazard.
    Accumulate,
}

/// Identity of a tracked buffer: the address of its first element.
///
/// Buffers are compared by base address, and access ranges are element
/// indices relative to that base, so two accesses conflict only when they
/// name the same allocation *and* their index ranges overlap. Addresses are
/// only meaningful within one recording session (an allocation freed during
/// the session may be reused), which is why the snapshot-coverage analysis
/// resolves them against buffers that are provably live for the whole
/// session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufId(pub usize);

impl BufId {
    /// The identity of a slice's backing buffer.
    pub fn of<T>(buf: &[T]) -> BufId {
        BufId(buf.as_ptr() as usize)
    }
}

/// One declared access: which chunk touched which element range of which
/// buffer, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Index of the chunk (within its region) that performed the access.
    pub chunk: usize,
    /// The buffer touched.
    pub buffer: BufId,
    /// Read, write, or order-sensitive accumulate.
    pub kind: AccessKind,
    /// Element range within the buffer.
    pub range: Range<usize>,
}

/// The recorded effects of one parallel region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionEffects {
    /// Kernel label from the innermost [`kernel_scope`] on the opening
    /// thread, prefixed with the parent kernel's label for nested regions
    /// (e.g. `conv2d_fwd/gemm`); the primitive name when unlabeled.
    pub kernel: String,
    /// Which primitive opened the region (`parallel_slice_mut`,
    /// `parallel_reduce`, ...).
    pub primitive: &'static str,
    /// Problem size the region was split over.
    pub n: usize,
    /// Fixed chunk size (after clamping to at least 1).
    pub chunk: usize,
    /// Configured thread count when the region ran.
    pub threads: usize,
    /// Every access declared by the region's chunks, in recording order.
    pub accesses: Vec<Access>,
    /// RNG draws made from inside this region's chunks — any value above
    /// zero is a determinism hazard (draw order would depend on chunk
    /// scheduling if the generator were shared).
    pub rng_draws: u64,
}

impl RegionEffects {
    /// Chunk boundary descriptor `(n, chunk)` — equal descriptors produce
    /// identical chunk boundaries, by the crate's size-only chunking rule.
    pub fn boundary_key(&self) -> (usize, usize) {
        (self.n, self.chunk)
    }
}

/// Everything recorded between [`start_recording`] and [`take_report`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EffectReport {
    /// One entry per parallel region, in open order.
    pub regions: Vec<RegionEffects>,
}

impl EffectReport {
    /// Buffers written (or accumulated into) by any recorded region.
    pub fn written_buffers(&self) -> Vec<BufId> {
        let mut out: Vec<BufId> = self
            .regions
            .iter()
            .flat_map(|r| r.accesses.iter())
            .filter(|a| a.kind != AccessKind::Read)
            .map(|a| a.buffer)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(feature = "sanitize")]
mod imp {
    use super::{Access, AccessKind, BufId, EffectReport, RegionEffects};
    use std::cell::{Cell, RefCell};
    use std::ops::Range;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    static RECORDING: AtomicBool = AtomicBool::new(false);
    static RECORDER: Mutex<EffectReport> = Mutex::new(EffectReport {
        regions: Vec::new(),
    });

    thread_local! {
        /// `(region index, chunk index)` of the chunk the current thread is
        /// executing, if any. Set by the parallel primitives around each
        /// chunk call; saved/restored across nested regions.
        static CURRENT: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
        /// Kernel labels pushed by [`super::kernel_scope`] on this thread.
        static LABELS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// See [the module docs](super) — `true` here.
    pub fn sanitize_compiled() -> bool {
        true
    }

    /// Whether effect recording is currently on.
    #[inline]
    pub fn recording() -> bool {
        RECORDING.load(Ordering::Relaxed)
    }

    /// Starts a recording session, discarding any prior unclaimed report.
    pub fn start_recording() {
        let mut rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
        rec.regions.clear();
        RECORDING.store(true, Ordering::Relaxed);
    }

    /// Stops recording and returns everything captured since
    /// [`start_recording`].
    pub fn take_report() -> EffectReport {
        RECORDING.store(false, Ordering::Relaxed);
        let mut rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *rec)
    }

    /// RAII guard popping a [`super::kernel_scope`] label on drop.
    pub struct KernelScope {
        _private: (),
    }

    impl Drop for KernelScope {
        fn drop(&mut self) {
            LABELS.with(|l| {
                l.borrow_mut().pop();
            });
        }
    }

    /// Pushes `name` as the label for regions opened by this thread while
    /// the returned guard lives.
    pub fn kernel_scope(name: &'static str) -> KernelScope {
        LABELS.with(|l| l.borrow_mut().push(name));
        KernelScope { _private: () }
    }

    /// Opens a region record; `None` when recording is off.
    #[inline]
    pub(crate) fn open_region(
        primitive: &'static str,
        n: usize,
        chunk: usize,
        threads: usize,
    ) -> Option<usize> {
        if !recording() {
            return None;
        }
        let label = LABELS.with(|l| l.borrow().last().copied());
        let parent = CURRENT.with(|c| c.get()).map(|(r, _)| r);
        let mut rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
        let local = label.unwrap_or(primitive);
        let kernel = match parent.and_then(|r| rec.regions.get(r)) {
            Some(p) => format!("{}/{}", p.kernel, local),
            None => local.to_string(),
        };
        rec.regions.push(RegionEffects {
            kernel,
            primitive,
            n,
            chunk,
            threads,
            accesses: Vec::new(),
            rng_draws: 0,
        });
        Some(rec.regions.len() - 1)
    }

    /// Runs one chunk with the `(region, chunk)` context set, restoring the
    /// previous context afterwards (also on unwind, so a panicking kernel
    /// does not corrupt attribution for the rest of the session).
    #[inline]
    pub(crate) fn in_chunk<R>(region: &Option<usize>, chunk: usize, f: impl FnOnce() -> R) -> R {
        let Some(r) = *region else {
            return f();
        };
        struct Reset(Option<(usize, usize)>);
        impl Drop for Reset {
            fn drop(&mut self) {
                CURRENT.with(|c| c.set(self.0));
            }
        }
        let _reset = Reset(CURRENT.with(|c| c.replace(Some((r, chunk)))));
        f()
    }

    fn record(buffer: BufId, kind: AccessKind, range: Range<usize>) {
        let Some((region, chunk)) = CURRENT.with(|c| c.get()) else {
            return;
        };
        let mut rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(r) = rec.regions.get_mut(region) {
            r.accesses.push(Access {
                chunk,
                buffer,
                kind,
                range,
            });
        }
    }

    /// Declares that the current chunk reads `buf[range]`. No-op outside a
    /// recorded chunk.
    #[inline]
    pub fn read<T>(buf: &[T], range: Range<usize>) {
        record(BufId::of(buf), AccessKind::Read, range);
    }

    /// Declares that the current chunk writes `buf[range]`. No-op outside a
    /// recorded chunk.
    #[inline]
    pub fn write<T>(buf: &[T], range: Range<usize>) {
        record(BufId::of(buf), AccessKind::Write, range);
    }

    /// Declares that the current chunk accumulates into `buf[range]`
    /// (an order-sensitive read-modify-write). No-op outside a recorded
    /// chunk.
    #[inline]
    pub fn accumulate<T>(buf: &[T], range: Range<usize>) {
        record(BufId::of(buf), AccessKind::Accumulate, range);
    }

    /// Records a write by raw base address (used by
    /// [`crate::parallel_slice_mut`], which only holds a pointer to the
    /// buffer being split).
    #[inline]
    pub(crate) fn record_write_raw(addr: usize, range: Range<usize>) {
        record(BufId(addr), AccessKind::Write, range);
    }

    /// Notes one RNG draw; attributed to the current region when the draw
    /// happens inside a recorded chunk. Called by `aibench-tensor`'s `Rng`.
    #[inline]
    pub fn note_rng_draw() {
        if !recording() {
            return;
        }
        let Some((region, _)) = CURRENT.with(|c| c.get()) else {
            return;
        };
        let mut rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(r) = rec.regions.get_mut(region) {
            r.rng_draws += 1;
        }
    }
}

#[cfg(not(feature = "sanitize"))]
mod imp {
    //! Zero-cost stubs compiled when the `sanitize` feature is off.
    use super::EffectReport;
    use std::ops::Range;

    /// See [the module docs](super) — `false` here.
    pub fn sanitize_compiled() -> bool {
        false
    }

    /// Always `false` without the `sanitize` feature.
    #[inline(always)]
    pub fn recording() -> bool {
        false
    }

    /// No-op without the `sanitize` feature.
    #[inline(always)]
    pub fn start_recording() {}

    /// Always empty without the `sanitize` feature.
    #[inline(always)]
    pub fn take_report() -> EffectReport {
        EffectReport::default()
    }

    /// Zero-sized stand-in for the recording guard.
    pub struct KernelScope {
        _private: (),
    }

    /// No-op without the `sanitize` feature.
    #[inline(always)]
    pub fn kernel_scope(_name: &'static str) -> KernelScope {
        KernelScope { _private: () }
    }

    #[inline(always)]
    pub(crate) fn open_region(
        _primitive: &'static str,
        _n: usize,
        _chunk: usize,
        _threads: usize,
    ) -> Option<usize> {
        None
    }

    #[inline(always)]
    pub(crate) fn in_chunk<R>(_region: &Option<usize>, _chunk: usize, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// No-op without the `sanitize` feature.
    #[inline(always)]
    pub fn read<T>(_buf: &[T], _range: Range<usize>) {}

    /// No-op without the `sanitize` feature.
    #[inline(always)]
    pub fn write<T>(_buf: &[T], _range: Range<usize>) {}

    /// No-op without the `sanitize` feature.
    #[inline(always)]
    pub fn accumulate<T>(_buf: &[T], _range: Range<usize>) {}

    #[inline(always)]
    pub(crate) fn record_write_raw(_addr: usize, _range: Range<usize>) {}

    /// No-op without the `sanitize` feature.
    #[inline(always)]
    pub fn note_rng_draw() {}
}

pub use imp::{
    accumulate, kernel_scope, note_rng_draw, read, recording, sanitize_compiled, start_recording,
    take_report, write, KernelScope,
};
pub(crate) use imp::{in_chunk, open_region, record_write_raw};

#[cfg(all(test, feature = "sanitize"))]
mod tests {
    use super::*;
    use crate::{parallel_reduce, parallel_slice_mut, set_threads};
    use std::sync::Mutex;

    /// Recording is process-global; serialize the tests that use it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn recorded<R>(threads: usize, f: impl FnOnce() -> R) -> (R, EffectReport) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(threads);
        start_recording();
        let r = f();
        let report = take_report();
        set_threads(1);
        (r, report)
    }

    #[test]
    fn slice_mut_auto_records_disjoint_writes() {
        let (_, report) = recorded(4, || {
            let mut data = vec![0u64; 100];
            let _scope = kernel_scope("fill");
            parallel_slice_mut(&mut data, 16, |range, out| {
                for (o, i) in out.iter_mut().zip(range) {
                    *o = i as u64;
                }
            });
        });
        assert_eq!(report.regions.len(), 1);
        let region = &report.regions[0];
        assert_eq!(region.kernel, "fill");
        assert_eq!(region.primitive, "parallel_slice_mut");
        assert_eq!(region.boundary_key(), (100, 16));
        // 7 chunks, each with exactly one auto-recorded write; together
        // they cover 0..100 without overlap.
        let mut writes: Vec<_> = region
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .map(|a| (a.range.start, a.range.end, a.chunk))
            .collect();
        writes.sort_unstable();
        assert_eq!(writes.len(), 7);
        assert_eq!(writes[0].0, 0);
        assert_eq!(writes[6].1, 100);
        for pair in writes.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "adjacent chunk writes must abut");
        }
        assert_eq!(report.written_buffers().len(), 1);
    }

    #[test]
    fn declared_reads_attach_to_their_chunk() {
        let src = vec![1.0f32; 64];
        let (_, report) = recorded(2, || {
            let mut dst = vec![0.0f32; 64];
            parallel_slice_mut(&mut dst, 8, |range, out| {
                read(&src, range.clone());
                for (o, i) in out.iter_mut().zip(range) {
                    *o = src[i];
                }
            });
        });
        let region = &report.regions[0];
        let reads: Vec<_> = region
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Read)
            .collect();
        assert_eq!(reads.len(), 8);
        assert!(reads.iter().all(|a| a.buffer == BufId::of(&src)));
        for a in &reads {
            assert_eq!(a.range, a.chunk * 8..(a.chunk + 1) * 8);
        }
    }

    #[test]
    fn nested_regions_keep_separate_attribution() {
        let (_, report) = recorded(4, || {
            let mut outer = vec![0.0f32; 8];
            let _scope = kernel_scope("outer");
            parallel_slice_mut(&mut outer, 1, |_, piece| {
                let _inner = kernel_scope("inner");
                let mut tmp = vec![0.0f32; 32];
                parallel_slice_mut(&mut tmp, 8, |_, t| {
                    for v in t {
                        *v = 1.0;
                    }
                });
                piece[0] = tmp.iter().sum();
            });
        });
        let outer: Vec<_> = report
            .regions
            .iter()
            .filter(|r| r.kernel == "outer")
            .collect();
        let inner: Vec<_> = report
            .regions
            .iter()
            .filter(|r| r.kernel == "outer/inner")
            .collect();
        assert_eq!(outer.len(), 1);
        assert_eq!(inner.len(), 8, "one nested region per outer chunk");
        // Nested (inline-serial) regions still record per-chunk writes.
        assert!(inner.iter().all(|r| r.accesses.len() == 4));
    }

    #[test]
    fn reduce_records_its_primitive_and_reads() {
        let data = vec![1.0f32; 100];
        let ((), report) = recorded(3, || {
            let _scope = kernel_scope("sum_test");
            let total = parallel_reduce(
                data.len(),
                16,
                || 0.0f32,
                |range| {
                    read(&data, range.clone());
                    data[range].iter().sum()
                },
                |a, b| a + b,
            );
            assert_eq!(total, 100.0);
        });
        let region = &report.regions[0];
        assert_eq!(region.primitive, "parallel_reduce");
        assert_eq!(region.kernel, "sum_test");
        assert_eq!(region.accesses.len(), 7);
    }

    #[test]
    fn recording_off_records_nothing() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(2);
        // No start_recording: primitives must not record.
        let mut data = vec![0.0f32; 64];
        parallel_slice_mut(&mut data, 8, |_, out| out.fill(1.0));
        start_recording();
        let report = take_report();
        set_threads(1);
        assert!(report.regions.is_empty());
    }

    #[test]
    fn report_is_thread_count_invariant_for_clean_kernels() {
        let run = |threads| {
            let (_, mut report) = recorded(threads, || {
                let mut data = vec![0.0f32; 333];
                let _s = kernel_scope("probe");
                parallel_slice_mut(&mut data, 10, |range, out| {
                    for (o, i) in out.iter_mut().zip(range) {
                        *o = i as f32;
                    }
                });
            });
            for r in &mut report.regions {
                r.threads = 0; // normalize the one field allowed to differ
                r.accesses
                    .sort_by_key(|a| (a.chunk, a.range.start, a.range.end));
                for a in &mut r.accesses {
                    a.buffer = BufId(0); // allocation addresses differ per run
                }
            }
            report
        };
        let one = run(1);
        for t in [2, 8] {
            assert_eq!(run(t), one, "thread count {t}");
        }
    }
}

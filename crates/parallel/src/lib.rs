//! Deterministic multi-threaded execution for the AIBench kernels.
//!
//! This crate is a dependency-free, std-only threading runtime built around
//! one rule: **thread count must never change numeric results**. Every
//! primitive partitions its work into chunks whose boundaries depend only on
//! the problem size (never on the thread count), each chunk is computed by
//! exactly one thread with the same per-element order as serial code, and
//! reductions combine per-chunk partials in ascending chunk order. A kernel
//! built on these primitives is therefore bitwise identical for any
//! `AIBENCH_THREADS` value — including 1 — which preserves the paper's
//! run-to-run variation methodology (Section 5.4: CoV < 2% must measure the
//! *benchmark*, not the host's scheduler).
//!
//! The worker pool is persistent: threads are spawned once (lazily, from
//! `AIBENCH_THREADS` or the machine's available parallelism) and parked
//! between regions, so per-region overhead is a broadcast wake-up rather
//! than thread creation. The calling thread always participates, so a
//! one-thread configuration executes entirely inline with zero
//! synchronization.
//!
//! # Example
//!
//! ```
//! use aibench_parallel as par;
//!
//! // A map over disjoint chunks: deterministic for any thread count.
//! let mut squares = vec![0u64; 1000];
//! par::parallel_slice_mut(&mut squares, 64, |range, out| {
//!     for (v, i) in out.iter_mut().zip(range) {
//!         *v = (i as u64) * (i as u64);
//!     }
//! });
//! assert_eq!(squares[31], 961);
//!
//! // An order-stable reduction: partials are folded in chunk order.
//! let total = par::parallel_reduce(
//!     1000,
//!     64,
//!     || 0u64,
//!     |range| range.map(|i| i as u64).sum(),
//!     |acc, part| acc + part,
//! );
//! assert_eq!(total, 499_500);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod effects;
mod pool;

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use pool::{default_threads, in_parallel_region, ThreadPool};

/// Thread-count configuration, plumbed through the runner and the benches
/// so thread sweeps are explicit rather than environmental.
///
/// # Example
///
/// ```
/// use aibench_parallel::ParallelConfig;
/// ParallelConfig::with_threads(1).install();
/// assert_eq!(aibench_parallel::threads(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of participating threads (the caller plus `threads - 1`
    /// pool workers); clamped to at least 1 on install.
    pub threads: usize,
}

impl ParallelConfig {
    /// The environment's configuration: `AIBENCH_THREADS` if set to a
    /// positive integer, otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        ParallelConfig {
            threads: pool::default_threads(),
        }
    }

    /// An explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
        }
    }

    /// Makes this configuration the process-wide one, replacing the worker
    /// pool if the thread count changed. Results of all kernels built on
    /// this crate are unaffected by construction; only wall time changes.
    pub fn install(self) {
        pool::install_global(self.threads);
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::from_env()
    }
}

/// Number of threads parallel regions currently run on.
pub fn threads() -> usize {
    pool::global_pool().threads()
}

/// Sets the process-wide thread count (see [`ParallelConfig::install`]).
pub fn set_threads(threads: usize) {
    ParallelConfig::with_threads(threads).install()
}

/// Utilization snapshot of the process-wide pool (see [`stats`]).
///
/// Counters are cumulative; subtract two snapshots (via [`PoolStats::delta`])
/// to attribute work to one phase, e.g. one simulated model profile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PoolStats {
    /// Configured thread count at snapshot time.
    pub threads: usize,
    /// Parallel regions that engaged the pool (inline-serial regions — too
    /// little work, nested, or a one-thread pool — are not counted).
    pub regions: u64,
    /// Chunks executed per participant; index 0 is the calling thread.
    pub per_worker: Vec<u64>,
}

impl PoolStats {
    /// Total chunks executed across all participants.
    pub fn chunks(&self) -> u64 {
        self.per_worker.iter().sum()
    }

    /// Fraction of chunks taken by the busiest participant, in
    /// `[1/threads, 1]`; lower is better balanced. Returns 1.0 when no
    /// chunks ran.
    pub fn imbalance(&self) -> f64 {
        let total = self.chunks();
        if total == 0 {
            return 1.0;
        }
        let max = self.per_worker.iter().copied().max().unwrap_or(0);
        max as f64 / total as f64
    }

    /// Counter-wise difference `self - earlier`, for attributing pool work
    /// to a phase. Worker vectors of different lengths (the pool was
    /// reconfigured in between) are compared position-wise.
    pub fn delta(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            threads: self.threads,
            regions: self.regions.saturating_sub(earlier.regions),
            per_worker: self
                .per_worker
                .iter()
                .enumerate()
                .map(|(i, &c)| c.saturating_sub(earlier.per_worker.get(i).copied().unwrap_or(0)))
                .collect(),
        }
    }
}

/// Snapshots the process-wide pool's cumulative utilization counters.
pub fn stats() -> PoolStats {
    let pool = pool::global_pool();
    PoolStats {
        threads: pool.threads(),
        regions: pool.counters.regions.load(Ordering::Relaxed),
        per_worker: pool
            .counters
            .per_worker
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
    }
}

/// Splits `0..n` into `ceil(n / chunk)` fixed chunks and calls
/// `f(chunk_index, index_range)` once per chunk. Chunk boundaries depend
/// only on `n` and `chunk`, never on the thread count; chunks are claimed
/// dynamically by the participating threads (or executed in ascending order
/// serially). `f` must therefore be safe to call for disjoint ranges in any
/// order — which every pure per-element computation is.
///
/// `chunk` is clamped to at least 1.
pub fn for_each_chunk(n: usize, chunk: usize, f: impl Fn(usize, Range<usize>) + Sync) {
    for_each_chunk_tagged("for_each_chunk", n, chunk, f)
}

/// [`for_each_chunk`] with the opening primitive's name recorded in the
/// region's effect descriptor (only meaningful under the `sanitize`
/// feature; see [`effects`]).
fn for_each_chunk_tagged(
    primitive: &'static str,
    n: usize,
    chunk: usize,
    f: impl Fn(usize, Range<usize>) + Sync,
) {
    let chunk = chunk.max(1);
    let nchunks = n.div_ceil(chunk);
    if nchunks == 0 {
        return;
    }
    let range_of = |c: usize| c * chunk..((c + 1) * chunk).min(n);
    let pool = pool::global_pool();
    let region = effects::open_region(primitive, n, chunk, pool.threads());
    if nchunks == 1 || pool.threads() == 1 || in_parallel_region() {
        for c in 0..nchunks {
            effects::in_chunk(&region, c, || f(c, range_of(c)));
        }
        return;
    }
    pool.counters.regions.fetch_add(1, Ordering::Relaxed);
    let next = AtomicUsize::new(0);
    pool.broadcast(&|who| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= nchunks {
            break;
        }
        effects::in_chunk(&region, c, || f(c, range_of(c)));
        pool.counters.per_worker[who].fetch_add(1, Ordering::Relaxed);
    });
}

/// [`for_each_chunk`] without the chunk index: calls `f` on disjoint
/// subranges of `0..n` covering it exactly once.
pub fn parallel_for(n: usize, chunk: usize, f: impl Fn(Range<usize>) + Sync) {
    for_each_chunk_tagged("parallel_for", n, chunk, |_, range| f(range));
}

/// Splits `data` into fixed `chunk`-sized pieces and calls
/// `f(index_range, piece)` on each, in parallel. The ranges are the
/// absolute element indices of the piece, so `f` can read aligned slices of
/// other inputs. Writes are disjoint by construction, so results never
/// depend on the thread count.
pub fn parallel_slice_mut<T: Send>(
    data: &mut [T],
    chunk: usize,
    f: impl Fn(Range<usize>, &mut [T]) + Sync,
) {
    let len = data.len();
    let addr = data.as_ptr() as usize;
    let base = SendPtr(data.as_mut_ptr());
    // Capture the `Sync` wrapper, not the raw pointer field (2021 edition
    // closures capture disjoint fields by default).
    let base = &base;
    for_each_chunk_tagged("parallel_slice_mut", len, chunk, move |_, range| {
        // The piece handed to `f` is written by this chunk exclusively;
        // record that fact so the audit layer sees it without every caller
        // having to declare the obvious.
        effects::record_write_raw(addr, range.clone());
        // SAFETY: `for_each_chunk_tagged` hands out disjoint subranges of
        // `0..len`, each claimed by exactly one thread, so the
        // reconstructed slices never alias; the borrow of `data` outlives
        // the region.
        #[allow(unsafe_code)]
        let piece = unsafe { std::slice::from_raw_parts_mut(base.0.add(range.start), range.len()) };
        f(range, piece);
    });
}

/// A raw pointer that may cross thread boundaries. The primitives using it
/// guarantee disjoint access per thread.
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` is only ever used by `parallel_slice_mut`, which hands
// each thread a disjoint element range of the pointee; no two threads touch
// the same element, and the exclusive borrow it was created from pins the
// allocation for the whole region.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: see the `Send` impl above — shared references to the wrapper only
// ever dereference disjoint ranges.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Order-stable parallel reduction.
///
/// `0..n` is split into fixed chunks (boundaries independent of thread
/// count), `map` produces one partial per chunk, and `fold` combines the
/// partials into `init()` **in ascending chunk order**. Serial and parallel
/// execution perform the exact same sequence of `fold` applications, so
/// floating-point results are bitwise identical for any thread count. The
/// price is that all partials of a parallel run are buffered before
/// folding; keep partials small (scalars or one flat buffer per chunk).
///
/// # Ordering guarantee
///
/// The fold sequence is `fold(...fold(fold(init(), map(chunk 0)),
/// map(chunk 1))..., map(chunk last))` — ascending chunk index, left
/// associated — regardless of which threads computed which chunks or in
/// what order they finished:
///
/// ```
/// use aibench_parallel as par;
/// // A non-commutative fold observes the exact chunk order:
/// let order = par::parallel_reduce(
///     100,
///     9,
///     Vec::new,
///     |range| vec![range.start],
///     |mut acc, part| {
///         acc.extend(part);
///         acc
///     },
/// );
/// assert_eq!(order, (0..100).step_by(9).collect::<Vec<_>>());
///
/// // So float sums are bitwise reproducible at any thread count:
/// let data: Vec<f32> = (0..50_000).map(|i| (i as f32).sin()).collect();
/// let one = par::sum_f32(&data);
/// par::set_threads(8);
/// assert_eq!(par::sum_f32(&data).to_bits(), one.to_bits());
/// par::set_threads(1);
/// ```
pub fn parallel_reduce<T: Send>(
    n: usize,
    chunk: usize,
    init: impl FnOnce() -> T,
    map: impl Fn(Range<usize>) -> T + Sync,
    mut fold: impl FnMut(T, T) -> T,
) -> T {
    let chunk = chunk.max(1);
    let nchunks = n.div_ceil(chunk);
    let range_of = |c: usize| c * chunk..((c + 1) * chunk).min(n);
    let mut acc = init();
    if nchunks == 0 {
        return acc;
    }
    let pool = pool::global_pool();
    let region = effects::open_region("parallel_reduce", n, chunk, pool.threads());
    if nchunks == 1 || pool.threads() == 1 || in_parallel_region() {
        for c in 0..nchunks {
            let part = effects::in_chunk(&region, c, || map(range_of(c)));
            acc = fold(acc, part);
        }
        return acc;
    }
    pool.counters.regions.fetch_add(1, Ordering::Relaxed);
    let partials: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(nchunks));
    let next = AtomicUsize::new(0);
    pool.broadcast(&|who| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= nchunks {
            break;
        }
        let part = effects::in_chunk(&region, c, || map(range_of(c)));
        partials
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((c, part));
        pool.counters.per_worker[who].fetch_add(1, Ordering::Relaxed);
    });
    let mut partials = partials.into_inner().unwrap_or_else(|e| e.into_inner());
    partials.sort_by_key(|&(c, _)| c); // restore deterministic fold order
    for (_, part) in partials {
        acc = fold(acc, part);
    }
    acc
}

/// Parallel map producing a `Vec` in index order: `out[i] = f(i)`.
///
/// Items are computed in fixed chunks and reassembled by chunk index, so
/// the output order (and therefore any downstream order-sensitive
/// aggregation) is independent of the thread count.
pub fn parallel_map<T: Send>(n: usize, chunk: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let pieces: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    for_each_chunk_tagged("parallel_map", n, chunk, |c, range| {
        let part: Vec<T> = range.map(&f).collect();
        pieces
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((c, part));
    });
    let mut pieces = pieces.into_inner().unwrap_or_else(|e| e.into_inner());
    pieces.sort_by_key(|&(c, _)| c); // reassemble in index order
    let mut out = Vec::with_capacity(n);
    for (_, part) in pieces {
        out.extend(part);
    }
    out
}

/// Canonical fixed chunk size (elements) for order-stable scalar
/// reductions such as sums and squared norms.
///
/// This constant is part of the determinism contract: it defines where
/// partial-sum boundaries fall, so changing it changes low-order bits of
/// reduced values (for tensors larger than one chunk) exactly as a serial
/// algorithm change would. It must never be derived from the thread count.
pub const REDUCE_CHUNK: usize = 4096;

/// Default chunk size (elements) for elementwise maps and copies. Pure
/// per-element work is order-insensitive, so this is a performance knob
/// only — large enough that chunk dispatch is amortized, small enough to
/// split work across threads for mid-sized tensors.
pub const ELEMWISE_CHUNK: usize = 8192;

/// Number of independent accumulator lanes used inside one reduction
/// chunk (see [`lane_sum_f32`]).
///
/// Like [`REDUCE_CHUNK`], this constant is part of the determinism
/// contract: it fixes which elements each lane accumulates, so changing it
/// changes low-order bits of reduced values exactly as a serial algorithm
/// change would. It must never be derived from the thread count.
pub const REDUCE_LANES: usize = 8;

/// Blocked, order-stable sum of one slice: [`REDUCE_LANES`] accumulator
/// lanes, lane `j` summing elements `j, j + LANES, j + 2*LANES, ...` in
/// ascending order, then folded left-to-right (`((l0 + l1) + l2) + ...`).
///
/// The lane assignment and fold order depend only on the slice length, so
/// the result is a pure function of the data — reproducible across runs,
/// thread counts, and the `simd` feature — while the independent lanes let
/// the compiler vectorize what a strictly sequential sum cannot. This is
/// the per-chunk kernel of [`sum_f32`]; use it directly only when the data
/// is known to fit one chunk.
///
/// # Example
///
/// ```
/// use aibench_parallel::{lane_sum_f32, REDUCE_LANES};
/// let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
/// // Emulate the documented order scalar-wise:
/// let mut lanes = [0.0f32; REDUCE_LANES];
/// for (i, &x) in data.iter().enumerate() {
///     lanes[i % REDUCE_LANES] += x;
/// }
/// let expect = lanes.iter().skip(1).fold(lanes[0], |a, &l| a + l);
/// assert_eq!(lane_sum_f32(&data).to_bits(), expect.to_bits());
/// ```
pub fn lane_sum_f32(data: &[f32]) -> f32 {
    lane_sum_map_f32(data, |x| x)
}

/// [`lane_sum_f32`] over `f(x)` instead of `x` (same lane assignment and
/// fold order).
pub fn lane_sum_map_f32(data: &[f32], f: impl Fn(f32) -> f32) -> f32 {
    let mut lanes = [0.0f32; REDUCE_LANES];
    let mut groups = data.chunks_exact(REDUCE_LANES);
    for g in groups.by_ref() {
        for (l, &x) in lanes.iter_mut().zip(g) {
            *l += f(x);
        }
    }
    for (l, &x) in lanes.iter_mut().zip(groups.remainder()) {
        *l += f(x);
    }
    lanes.iter().skip(1).fold(lanes[0], |a, &l| a + l)
}

/// Order-stable sum of an `f32` slice: [`lane_sum_f32`] partials over
/// fixed [`REDUCE_CHUNK`]-element chunks, folded in chunk order. Bitwise
/// identical for any thread count (including 1); within a chunk the
/// blocked lane order of [`lane_sum_f32`] applies.
///
/// # Example
///
/// ```
/// use aibench_parallel as par;
/// let data = vec![0.5f32; 10_000];
/// let reference = par::sum_f32(&data);
/// par::set_threads(4);
/// assert_eq!(par::sum_f32(&data).to_bits(), reference.to_bits());
/// par::set_threads(1);
/// ```
pub fn sum_f32(data: &[f32]) -> f32 {
    parallel_reduce(
        data.len(),
        REDUCE_CHUNK,
        || 0.0f32,
        |range| {
            effects::read(data, range.clone());
            lane_sum_f32(&data[range])
        },
        |acc, part| acc + part,
    )
}

/// Order-stable sum of `f(x)` over an `f32` slice (chunked and
/// lane-blocked like [`sum_f32`]); used for squared norms and similar
/// scalar reductions.
pub fn sum_map_f32(data: &[f32], f: impl Fn(f32) -> f32 + Sync) -> f32 {
    parallel_reduce(
        data.len(),
        REDUCE_CHUNK,
        || 0.0f32,
        |range| {
            effects::read(data, range.clone());
            lane_sum_map_f32(&data[range], &f)
        },
        |acc, part| acc + part,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Tests mutate the global pool; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(n);
        let r = f();
        set_threads(1);
        r
    }

    #[test]
    fn chunk_boundaries_are_thread_independent() {
        let boundaries = |threads: usize| {
            with_threads(threads, || {
                let seen = Mutex::new(Vec::new());
                for_each_chunk(1000, 64, |c, r| {
                    seen.lock().unwrap().push((c, r.start, r.end));
                });
                let mut v = seen.into_inner().unwrap();
                v.sort_unstable();
                v
            })
        };
        let one = boundaries(1);
        assert_eq!(one.len(), 16);
        assert_eq!(one[15], (15, 960, 1000));
        for t in [2, 3, 8] {
            assert_eq!(boundaries(t), one, "thread count {t}");
        }
    }

    #[test]
    fn every_index_covered_exactly_once() {
        with_threads(4, || {
            let hits: Vec<AtomicU64> = (0..777).map(|_| AtomicU64::new(0)).collect();
            parallel_for(777, 10, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn slice_mut_writes_disjoint_pieces() {
        with_threads(3, || {
            let mut data = vec![0usize; 500];
            parallel_slice_mut(&mut data, 7, |range, piece| {
                for (v, i) in piece.iter_mut().zip(range) {
                    *v = i * 2;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i * 2));
        });
    }

    #[test]
    fn reduce_is_bitwise_stable_across_thread_counts() {
        // A sum whose result depends on association order: catches any
        // thread-count-dependent fold order.
        let data: Vec<f32> = (0..100_000)
            .map(|i| ((i * 2654435761u64 as usize) % 1000) as f32 * 1e-3 + 1e-7)
            .collect();
        let reference = with_threads(1, || sum_f32(&data));
        for t in [2, 3, 8] {
            let got = with_threads(t, || sum_f32(&data));
            assert_eq!(got.to_bits(), reference.to_bits(), "thread count {t}");
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        with_threads(4, || {
            let out = parallel_map(1000, 13, |i| i * i);
            assert_eq!(out.len(), 1000);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        });
    }

    #[test]
    fn nested_regions_degrade_to_serial() {
        with_threads(4, || {
            let count = AtomicU64::new(0);
            parallel_for(8, 1, |_| {
                assert!(in_parallel_region());
                // Nested region: must run inline without deadlock.
                parallel_for(100, 10, |r| {
                    count.fetch_add(r.len() as u64, Ordering::Relaxed);
                });
            });
            assert_eq!(count.load(Ordering::Relaxed), 800);
        });
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        with_threads(4, || {
            let mut data: Vec<f32> = Vec::new();
            let before = stats();
            parallel_slice_mut(&mut data, ELEMWISE_CHUNK, |_, _| {
                panic!("must not be called for an empty slice");
            });
            assert_eq!(stats().delta(&before).regions, 0);
            assert!(data.is_empty());
            // The zero-length degenerate of the other primitives too.
            assert_eq!(sum_f32(&[]), 0.0);
            assert!(parallel_map(0, 8, |i| i).is_empty());
        });
    }

    #[test]
    fn slice_shorter_than_thread_count_is_covered_exactly() {
        // More threads than elements: every element must still be written
        // exactly once, with chunk boundaries from the size-only rule.
        with_threads(8, || {
            for len in 1..6usize {
                let mut data = vec![0usize; len];
                parallel_slice_mut(&mut data, 1, |range, piece| {
                    piece[0] = range.start + 1;
                });
                assert!(
                    data.iter().enumerate().all(|(i, &v)| v == i + 1),
                    "len {len}"
                );
            }
        });
    }

    #[test]
    fn nested_slice_mut_degrades_without_aliasing() {
        // A slice_mut region opened inside another parallel region must run
        // inline on the calling thread and still hand out disjoint pieces.
        with_threads(4, || {
            let mut out = vec![0.0f32; 16];
            parallel_slice_mut(&mut out, 1, |range, piece| {
                let mut scratch = vec![0.0f32; 64];
                parallel_slice_mut(&mut scratch, 8, |inner, s| {
                    for (v, i) in s.iter_mut().zip(inner) {
                        *v = (range.start * 100 + i) as f32;
                    }
                });
                piece[0] = scratch.iter().sum();
            });
            for (i, &v) in out.iter().enumerate() {
                let expect = (0..64).map(|j| (i * 100 + j) as f32).sum::<f32>();
                assert_eq!(v.to_bits(), expect.to_bits(), "outer chunk {i}");
            }
        });
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        with_threads(4, || {
            let result = std::panic::catch_unwind(|| {
                parallel_for(64, 1, |r| {
                    if r.start == 33 {
                        panic!("boom from chunk 33");
                    }
                });
            });
            assert!(result.is_err());
            // The pool must still be usable afterwards.
            let sum = parallel_reduce(
                100,
                10,
                || 0u64,
                |r| r.map(|i| i as u64).sum(),
                |a, b| a + b,
            );
            assert_eq!(sum, 4950);
        });
    }

    #[test]
    fn stats_count_engaged_regions() {
        with_threads(2, || {
            let before = stats();
            parallel_for(100_000, 100, |_| {});
            let after = stats();
            let d = after.delta(&before);
            assert_eq!(d.regions, 1);
            assert_eq!(d.chunks(), 1000);
            assert!(d.imbalance() >= 0.5 / d.threads as f64 && d.imbalance() <= 1.0);
        });
    }

    #[test]
    fn env_parsing_clamps_garbage() {
        // Not set / garbage falls back to available parallelism >= 1.
        assert!(default_threads() >= 1);
        assert_eq!(ParallelConfig::with_threads(0).threads, 1);
    }

    #[test]
    fn small_work_runs_inline() {
        with_threads(4, || {
            let before = stats();
            parallel_for(10, 100, |r| assert_eq!(r, 0..10)); // one chunk
            let d = stats().delta(&before);
            assert_eq!(d.regions, 0, "single-chunk work must not engage the pool");
        });
    }
}

//! The persistent worker pool and the global pool registry.
//!
//! One [`ThreadPool`] owns `threads - 1` parked worker threads (the caller
//! of a parallel region is always participant 0, so a one-thread pool spawns
//! nothing and runs entirely inline). Work is published to every worker at
//! once via [`ThreadPool::broadcast`]; the higher-level primitives in the
//! crate root layer deterministic chunk scheduling on top of it.

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

thread_local! {
    /// Set while the current thread is executing inside a parallel region.
    /// Nested regions detect it and degrade to inline serial execution,
    /// which keeps the pool deadlock-free (a worker never waits on itself).
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is already inside a parallel region.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(|f| f.get())
}

/// Runs `f` with the region marker set, restoring it afterwards (also on
/// unwind, so a panicking task does not leave the marker stuck).
fn with_region_marker<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            IN_PARALLEL_REGION.with(|m| m.set(self.0));
        }
    }
    let _reset = Reset(IN_PARALLEL_REGION.with(|m| m.replace(true)));
    f()
}

/// A type-erased pointer to the borrowed job closure of one broadcast.
///
/// The pointee only lives for the duration of [`ThreadPool::broadcast`],
/// which does not return (or unwind) before every worker has finished with
/// it — that join is what makes the lifetime erasure sound.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared invocation from many threads is
// allowed) and `broadcast` joins all workers before the borrow expires.
#[allow(unsafe_code)]
unsafe impl Send for JobPtr {}

/// State shared between the pool handle and its workers.
struct Shared {
    slot: Mutex<Slot>,
    /// Signalled when a new job (or shutdown) is published.
    work_ready: Condvar,
    /// Signalled when a worker finishes its share of the current job.
    work_done: Condvar,
}

struct Slot {
    /// Monotonic id of the current job; workers run each epoch once.
    epoch: u64,
    job: Option<JobPtr>,
    /// Workers still executing the current job.
    remaining: usize,
    /// First panic payload captured from a worker, if any.
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

/// Per-pool utilization counters (see [`PoolStats`]).
pub(crate) struct Counters {
    /// Parallel regions that actually engaged the pool.
    pub(crate) regions: AtomicU64,
    /// Chunks executed, per participant (index 0 = the calling thread).
    pub(crate) per_worker: Vec<AtomicU64>,
}

/// A persistent pool of `threads - 1` worker threads plus the caller.
///
/// The pool is usually managed through the crate-level registry
/// ([`crate::set_threads`], [`crate::threads`]) rather than constructed
/// directly; constructing one is useful for tests that need an isolated
/// pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes broadcasts from distinct caller threads.
    broadcast_lock: Mutex<()>,
    threads: usize,
    pub(crate) counters: Counters,
}

impl ThreadPool {
    /// Creates a pool that runs parallel regions on `threads` participants:
    /// the calling thread plus `threads - 1` spawned workers. `threads` is
    /// clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aibench-worker-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn aibench worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            broadcast_lock: Mutex::new(()),
            threads,
            counters: Counters {
                regions: AtomicU64::new(0),
                per_worker: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            },
        }
    }

    /// Number of participants (caller + workers) of a parallel region.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(participant_index)` concurrently on every participant —
    /// the calling thread as index 0 and each worker as 1..threads — and
    /// returns once all of them have finished. Panics from any participant
    /// are re-raised on the caller after the join.
    ///
    /// Called from inside a parallel region (or on a one-thread pool) this
    /// degrades to `f(0)` inline.
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.threads == 1 || in_parallel_region() {
            with_region_marker(|| f(0));
            return;
        }
        let _serialize = self
            .broadcast_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // SAFETY: erase the borrow lifetime of `f` for storage in the shared
        // slot. The `JoinOnDrop` guard below blocks until every worker is
        // done with the pointer before this frame can return or unwind.
        let short = f as *const (dyn Fn(usize) + Sync + '_);
        #[allow(clippy::missing_transmute_annotations)] // widens only the lifetime bound
        #[allow(unsafe_code)]
        let job = JobPtr(unsafe { std::mem::transmute(short) });
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            slot.epoch += 1;
            slot.job = Some(job);
            slot.remaining = self.handles.len();
            self.shared.work_ready.notify_all();
        }

        struct JoinOnDrop<'a>(&'a Shared);
        impl Drop for JoinOnDrop<'_> {
            fn drop(&mut self) {
                let mut slot = self.0.slot.lock().unwrap_or_else(|e| e.into_inner());
                while slot.remaining > 0 {
                    slot = self
                        .0
                        .work_done
                        .wait(slot)
                        .unwrap_or_else(|e| e.into_inner());
                }
                slot.job = None;
            }
        }
        let join = JoinOnDrop(&self.shared);
        let caller_result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| with_region_marker(|| f(0))));
        drop(join); // blocks until every worker has finished
        let worker_panic = {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            slot.panic.take()
        };
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            slot.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadPool({} threads)", self.threads)
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen_epoch {
                    seen_epoch = slot.epoch;
                    break slot.job.expect("published epoch carries a job");
                }
                slot = shared
                    .work_ready
                    .wait(slot)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: the broadcaster keeps the pointee alive until `remaining`
        // drops to zero, which only happens after this call returns.
        #[allow(unsafe_code)]
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_region_marker(|| unsafe { (*job.0)(idx) })
        }));
        let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(payload) = result {
            slot.panic.get_or_insert(payload);
        }
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.work_done.notify_all();
        }
    }
}

// ----------------------------------------------------------------------
// Global pool registry
// ----------------------------------------------------------------------

static GLOBAL: RwLock<Option<Arc<ThreadPool>>> = RwLock::new(None);

/// The process-wide pool, created on first use from [`default_threads`].
pub(crate) fn global_pool() -> Arc<ThreadPool> {
    if let Some(pool) = GLOBAL.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
        return Arc::clone(pool);
    }
    let mut slot = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(slot.get_or_insert_with(|| Arc::new(ThreadPool::new(default_threads()))))
}

/// Replaces the process-wide pool with one of `threads` participants.
pub(crate) fn install_global(threads: usize) {
    let threads = threads.max(1);
    let mut slot = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    if slot.as_ref().is_some_and(|p| p.threads() == threads) {
        return;
    }
    // The old pool shuts down once every outstanding Arc is dropped.
    *slot = Some(Arc::new(ThreadPool::new(threads)));
}

/// The thread count requested by the environment: `AIBENCH_THREADS` if it
/// parses as a positive integer, otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    match std::env::var("AIBENCH_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available_threads(),
        },
        Err(_) => available_threads(),
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

//! Whole-registry acceptance tests: every registered benchmark must pass
//! every static rule, and the independent count derivation must agree
//! with `aibench-opcount` exactly.

use aibench::Registry;
use aibench_check::{counts, shape, trace};
use proptest::prelude::*;

#[test]
fn every_registered_spec_is_shape_consistent() {
    for b in Registry::all().benchmarks() {
        let diags = shape::check_spec(b.id.code(), &b.spec());
        assert!(diags.is_empty(), "{}: {:?}", b.id.code(), diags);
    }
}

#[test]
fn derived_counts_match_opcount_exactly_for_every_benchmark() {
    for b in Registry::all().benchmarks() {
        let spec = b.spec();
        let diags = counts::verify_spec(b.id.code(), &spec);
        assert!(diags.is_empty(), "{}: {:?}", b.id.code(), diags);
        // Totals are integer-exact, not approximately equal.
        let ours = counts::derive_spec(&spec);
        let theirs = aibench_opcount::count(&spec);
        assert_eq!(ours.params, theirs.params as u128, "{} params", b.id.code());
        assert_eq!(ours.flops as f64, theirs.flops, "{} flops", b.id.code());
    }
}

#[test]
fn every_registered_benchmark_passes_trace_lints() {
    for b in Registry::all().benchmarks() {
        let diags = trace::check_benchmark(b.id.code(), &b.spec());
        assert!(diags.is_empty(), "{}: {:?}", b.id.code(), diags);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Sampled form of the exact-agreement contract: whichever benchmark
    // and layer the sampler lands on, the independent per-layer
    // derivation equals opcount's to the bit.
    #[test]
    fn sampled_layer_counts_agree_with_opcount(bench_idx in 0usize..24, salt in 0usize..1000) {
        let registry = Registry::all();
        let b = &registry.benchmarks()[bench_idx % registry.benchmarks().len()];
        let spec = b.spec();
        let layer = &spec.layers[salt % spec.layers.len()];
        let ours = counts::derive_layer(&layer.kind);
        let theirs = aibench_opcount::count_layer(&layer.kind);
        prop_assert_eq!(ours.params, theirs.params as u128);
        prop_assert_eq!(ours.flops as f64, theirs.flops);
    }
}

//! Invariant lints over `aibench-gpusim` kernel traces and profiles.
//!
//! The classifier table below restates the paper's Table-7 taxonomy by
//! kernel *name*, independently of the category the lowering pass tagged:
//! an unmapped name or a tag that disagrees with the table is a violation.
//! Conservation lints check that per-category times and hotspot/stall
//! shares account for the whole trace, and a forward/backward lint checks
//! that training cost sits within the 1 forward : 2 backward convention's
//! plausible band relative to inference.

use crate::Diagnostic;
use aibench_gpusim::{
    lower_inference_iteration, lower_training_iteration, DeviceConfig, Kernel, KernelCategory,
    ModelProfile, Simulator,
};
use aibench_models::ModelSpec;

/// Name → Table-7 category table. Substring patterns, checked in order;
/// first hit wins. Every kernel the lowering pass may emit must match one.
const CLASSIFIER: &[(&str, KernelCategory)] = &[
    ("CUDA memcpy", KernelCategory::Memcpy),
    // Backward batch-norm before the generic "bn" patterns.
    ("bn_bw", KernelCategory::BatchNorm),
    ("bn_fw", KernelCategory::BatchNorm),
    ("layer_norm", KernelCategory::BatchNorm),
    ("batch_norm", KernelCategory::BatchNorm),
    // ReLU-fused convolution is categorized as ReLU by the paper's
    // name-based accounting, so it must precede the scudnn patterns.
    ("relu", KernelCategory::Relu),
    ("winograd", KernelCategory::Convolution),
    ("wgrad", KernelCategory::Convolution),
    // Remaining scudnn kernels are im2col/transform data movement.
    ("stridedB", KernelCategory::DataArrangement),
    ("grid_sampler", KernelCategory::DataArrangement),
    ("sgemm", KernelCategory::Gemm),
    ("element_wise", KernelCategory::ElementWise),
    ("softmax", KernelCategory::ElementWise),
    ("Pool", KernelCategory::Pooling),
];

/// Kernel-name substrings that can only appear in gradient or optimizer
/// work, and are therefore banned from inference traces.
const GRADIENT_MARKERS: &[&str] = &[
    "backward",
    "Backward",
    "wgrad",
    "bn_bw",
    "DtoD",
    "threshold",
];

/// Classifies a kernel name against the Table-7 taxonomy.
pub fn classify(name: &str) -> Option<KernelCategory> {
    CLASSIFIER
        .iter()
        .find(|(pat, _)| name.contains(pat))
        .map(|&(_, cat)| cat)
}

/// Lints one kernel trace: every name must map to a category, and the
/// mapped category must agree with the tag the lowering pass attached.
pub fn check_trace(bench: &str, trace: &[Kernel]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for k in trace {
        match classify(&k.name) {
            None => out.push(Diagnostic::global(
                bench,
                "kernel-unmapped",
                "a Table-7 category for every kernel name",
                format!("unmapped kernel `{}`", k.name),
            )),
            Some(cat) if cat != k.category => out.push(Diagnostic::global(
                bench,
                "kernel-category",
                format!("`{}` tagged {:?}", k.name, cat),
                format!("{:?}", k.category),
            )),
            Some(_) => {}
        }
    }
    out
}

/// Lints a simulated profile's conservation invariants: category shares
/// and hotspot percentages account for the whole trace, and every stall
/// breakdown sums to 100%.
pub fn check_profile(bench: &str, profile: &ModelProfile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let share_sum: f64 = profile.categories.iter().map(|c| c.share).sum();
    if (share_sum - 1.0).abs() > 1e-6 {
        out.push(Diagnostic::global(
            bench,
            "time-conservation",
            "category time shares summing to 1",
            format!("{share_sum:.9}"),
        ));
    }
    // Re-derive each category's share from the raw kernel times: the
    // summary table must be an aggregation of the trace, not a new claim.
    let total: f64 = profile.kernels.iter().map(|p| p.time_s).sum();
    if total > 0.0 {
        for c in &profile.categories {
            let cat_time: f64 = profile
                .kernels
                .iter()
                .filter(|p| p.kernel.category == c.category)
                .map(|p| p.time_s)
                .sum();
            if (c.share - cat_time / total).abs() > 1e-6 {
                out.push(Diagnostic::global(
                    bench,
                    "time-conservation",
                    format!(
                        "{:?} share {:.6} from kernel times",
                        c.category,
                        cat_time / total
                    ),
                    format!("{:.6}", c.share),
                ));
            }
        }
    }
    if profile.iteration_seconds <= total {
        out.push(Diagnostic::global(
            bench,
            "time-conservation",
            "iteration time = kernel time + host overhead",
            format!(
                "iteration {:.6}s <= kernel total {:.6}s",
                profile.iteration_seconds, total
            ),
        ));
    }
    let hotspot_sum: f64 = profile.hotspots.iter().map(|(_, p)| p).sum();
    if (hotspot_sum - 100.0).abs() > 1e-6 {
        out.push(Diagnostic::global(
            bench,
            "hotspot-conservation",
            "hotspot percentages summing to 100",
            format!("{hotspot_sum:.6}"),
        ));
    }
    for c in &profile.categories {
        let stall_sum: f64 = c.stalls.iter().map(|(_, s)| s).sum();
        if (stall_sum - 100.0).abs() > 1e-6 {
            out.push(Diagnostic::global(
                bench,
                "stall-conservation",
                format!("{:?} stall shares summing to 100", c.category),
                format!("{stall_sum:.6}"),
            ));
        }
    }
    for p in &profile.kernels {
        let stall_sum: f64 = p.stalls.iter().map(|(_, s)| s).sum();
        if (stall_sum - 100.0).abs() > 1e-6 {
            out.push(Diagnostic::global(
                bench,
                "stall-conservation",
                format!("`{}` stall shares summing to 100", p.kernel.name),
                format!("{stall_sum:.6}"),
            ));
        }
    }
    out
}

/// Lints the forward/backward FLOP convention: with backward costed at
/// twice forward, a training iteration must spend between 1.5x and 3.5x
/// the FLOPs of an inference pass over the same batch (the band absorbs
/// layers whose backward is cheaper, optimizer work, and data movement).
pub fn check_fwd_bwd(bench: &str, spec: &ModelSpec) -> Vec<Diagnostic> {
    // `Kernel::flops` is per launch; `count` multiplies it.
    let train: f64 = lower_training_iteration(spec)
        .iter()
        .map(|k| k.flops * k.count as f64)
        .sum();
    let infer: f64 = lower_inference_iteration(spec, spec.batch_size)
        .iter()
        .map(|k| k.flops * k.count as f64)
        .sum();
    if infer <= 0.0 {
        return vec![Diagnostic::global(
            bench,
            "fwd-bwd-ratio",
            "a nonempty inference trace",
            "zero inference FLOPs",
        )];
    }
    let ratio = train / infer;
    if !(1.5..=3.5).contains(&ratio) {
        return vec![Diagnostic::global(
            bench,
            "fwd-bwd-ratio",
            "training/inference FLOP ratio in [1.5, 3.5]",
            format!("{ratio:.3}"),
        )];
    }
    Vec::new()
}

/// Lints inference purity: a forward-only trace must not contain gradient
/// or optimizer kernels.
pub fn check_inference_purity(bench: &str, spec: &ModelSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for k in lower_inference_iteration(spec, spec.batch_size) {
        if let Some(marker) = GRADIENT_MARKERS.iter().find(|m| k.name.contains(*m)) {
            out.push(Diagnostic::global(
                bench,
                "inference-purity",
                "no gradient/optimizer kernels in inference traces",
                format!("`{}` (marker `{marker}`)", k.name),
            ));
        }
    }
    out
}

/// Lints the deterministic-parallelism contract: the profile simulated on
/// one thread and on the environment's full thread count must agree
/// exactly (host-pool utilization aside — that legitimately differs), and
/// the conservation lints of [`check_profile`] must hold for both.
pub fn check_parallel_determinism(bench: &str, spec: &ModelSpec) -> Vec<Diagnostic> {
    let sim = Simulator::new(DeviceConfig::titan_xp());
    let max = aibench_parallel::default_threads();
    aibench_parallel::set_threads(1);
    let serial = sim.profile(spec);
    aibench_parallel::set_threads(max);
    let parallel = sim.profile(spec);
    aibench_parallel::ParallelConfig::from_env().install();

    let mut out = check_profile(bench, &serial);
    out.extend(check_profile(bench, &parallel));
    let mut a = serial;
    let mut b = parallel;
    a.host_pool = Default::default();
    b.host_pool = Default::default();
    if a != b {
        out.push(Diagnostic::global(
            bench,
            "parallel-determinism",
            "identical profiles at 1 thread and at the full thread count",
            format!("profiles diverge between 1 and {max} thread(s)"),
        ));
    }
    out
}

/// Runs every trace lint for one benchmark spec: classifier agreement on
/// both training and inference traces, conservation on the simulated
/// profile at one thread *and* at the full thread count (which also lints
/// parallel determinism), the fwd:bwd band, and inference purity.
pub fn check_benchmark(bench: &str, spec: &ModelSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(check_trace(bench, &lower_training_iteration(spec)));
    out.extend(check_trace(
        bench,
        &lower_inference_iteration(spec, spec.batch_size),
    ));
    out.extend(check_parallel_determinism(bench, spec));
    out.extend(check_fwd_bwd(bench, spec));
    out.extend(check_inference_purity(bench, spec));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_covers_every_lowered_kernel_name() {
        for b in aibench::Registry::all().benchmarks() {
            let spec = b.spec();
            for k in lower_training_iteration(&spec) {
                assert!(
                    classify(&k.name).is_some(),
                    "{}: unmapped kernel `{}`",
                    b.id.code(),
                    k.name
                );
            }
        }
    }

    #[test]
    fn unmapped_kernel_is_flagged() {
        let k = Kernel::new("my_custom_kernel", KernelCategory::Gemm, 1.0, 1.0, 32, 1);
        let diags = check_trace("mini", &[k]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "kernel-unmapped");
    }

    #[test]
    fn misclassified_kernel_is_flagged() {
        let k = Kernel::new(
            "softmax_warp_forward",
            KernelCategory::Gemm,
            1.0,
            1.0,
            32,
            1,
        );
        let diags = check_trace("mini", &[k]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "kernel-category");
    }

    #[test]
    fn profiles_agree_across_thread_counts() {
        let spec = aibench::Registry::all().benchmarks()[0].spec();
        let diags = check_parallel_determinism("mini", &spec);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn tampered_profile_breaks_time_conservation() {
        let spec = aibench::Registry::all().benchmarks()[0].spec();
        let mut profile = Simulator::new(DeviceConfig::titan_xp()).profile(&spec);
        assert!(check_profile("mini", &profile).is_empty());
        profile.categories[0].share *= 0.5;
        assert!(check_profile("mini", &profile)
            .iter()
            .any(|d| d.rule == "time-conservation"));
    }
}

//! Independent re-derivation of per-layer parameters and forward FLOPs,
//! cross-checked against `aibench-opcount` *exactly*.
//!
//! Every formula below is restated from the layer geometry in integer
//! (`u128`) arithmetic — not read back from the opcount crate — so a
//! regression in either implementation makes the two disagree. All paper
//! counts fit far below 2^53, so the opcount crate's `f64` totals are
//! integer-exact and equality (not tolerance) is the contract.

use crate::Diagnostic;
use aibench_models::{LayerKind, ModelSpec};
use aibench_opcount::count;

/// Exact per-layer parameter and forward-FLOP counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCount {
    /// Learnable parameters of one copy of the layer.
    pub params: u128,
    /// Forward FLOPs of one copy (MAC-counting convention: one
    /// multiply-accumulate = one FLOP).
    pub flops: u128,
}

/// Derives one layer's counts from its geometry alone.
pub fn derive_layer(kind: &LayerKind) -> LayerCount {
    let (params, flops) = match *kind {
        // A k x k kernel per (input, output) channel pair; each output
        // pixel accumulates k*k*c_in MACs per output channel. The
        // transposed convolution is counted as the convolution it
        // transposes.
        LayerKind::Conv2d {
            c_in,
            c_out,
            k,
            h_out,
            w_out,
        }
        | LayerKind::ConvTranspose2d {
            c_in,
            c_out,
            k,
            h_out,
            w_out,
        } => {
            let (c_in, c_out, k, h, w) = (
                c_in as u128,
                c_out as u128,
                k as u128,
                h_out as u128,
                w_out as u128,
            );
            (k * k * c_in * c_out, k * k * c_in * c_out * h * w)
        }
        // Weight matrix plus bias; one MAC per weight.
        LayerKind::Linear { d_in, d_out } => {
            let (d_in, d_out) = (d_in as u128, d_out as u128);
            (d_in * d_out + d_out, d_in * d_out)
        }
        // Scale and shift per channel; normalize + affine = 4 ops/element.
        LayerKind::BatchNorm2d { c, h, w } => {
            let (c, h, w) = (c as u128, h as u128, w as u128);
            (2 * c, 4 * c * h * w)
        }
        // Gain and bias per feature; mean, variance, normalize = 6
        // ops/element over `rows` rows.
        LayerKind::LayerNorm { rows, d } => {
            let (rows, d) = (rows as u128, d as u128);
            (2 * d, 6 * rows * d)
        }
        LayerKind::Relu { n } | LayerKind::Activation { n } => (0, n as u128),
        // One k x k window reduction per output element.
        LayerKind::Pool { c, h_out, w_out, k } => {
            let (c, h, w, k) = (c as u128, h_out as u128, w_out as u128, k as u128);
            (0, c * h * w * k * k)
        }
        // Table rows are parameters; a lookup copies `dim` values.
        LayerKind::Embedding {
            vocab,
            dim,
            lookups,
        } => {
            let (vocab, dim, lookups) = (vocab as u128, dim as u128, lookups as u128);
            (vocab * dim, lookups * dim)
        }
        // Per gate: an input matrix, a recurrent matrix, and a bias;
        // each step multiplies the concatenated (input, hidden) vector.
        LayerKind::Rnn {
            kind,
            d_in,
            d_h,
            steps,
        } => {
            let g = kind.gates() as u128;
            let (d_in, d_h, steps) = (d_in as u128, d_h as u128, steps as u128);
            (
                g * (d_in * d_h + d_h * d_h + d_h),
                g * (d_in + d_h) * d_h * steps,
            )
        }
        // Q, K, V, and output projections (4 d^2 each in params, one MAC
        // per weight per query), plus the score and context matmuls.
        LayerKind::Attention {
            d_model,
            heads: _,
            seq_q,
            seq_k,
        } => {
            let (d, q, k) = (d_model as u128, seq_q as u128, seq_k as u128);
            (4 * d * d, 4 * q * d * d + 2 * q * k * d)
        }
        // Max, subtract, exp, sum, divide = 5 ops/element.
        LayerKind::Softmax { rows, classes } => (0, 5 * rows as u128 * classes as u128),
        LayerKind::Elementwise { n, ops } => (0, n as u128 * ops as u128),
        // Bilinear sample: 4 taps x (2 muls + weight) ≈ 11 ops/output.
        LayerKind::GridSample { c, h, w } => (0, 11 * c as u128 * h as u128 * w as u128),
    };
    LayerCount { params, flops }
}

/// Whole-spec totals under the repeat/sharing convention: FLOPs always
/// scale with `repeat`, parameters only when the repeats have independent
/// weights.
pub fn derive_spec(spec: &ModelSpec) -> LayerCount {
    let mut total = LayerCount {
        params: 0,
        flops: 0,
    };
    for layer in &spec.layers {
        let one = derive_layer(&layer.kind);
        let reps = layer.repeat as u128;
        total.params += one.params * if layer.share_params { 1 } else { reps };
        total.flops += one.flops * reps;
    }
    total
}

/// Converts an exact integer count to the `f64` domain `aibench-opcount`
/// reports in. Counts at paper scale are far below 2^53, so this is exact.
fn as_f64(x: u128) -> f64 {
    x as f64
}

/// Cross-checks the independent derivation against `aibench-opcount` for
/// one spec: per-layer and whole-spec, parameters and FLOPs, all exact.
pub fn verify_spec(bench: &str, spec: &ModelSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, layer) in spec.layers.iter().enumerate() {
        let ours = derive_layer(&layer.kind);
        let theirs = aibench_opcount::count_layer(&layer.kind);
        if theirs.params as u128 != ours.params {
            out.push(Diagnostic::at_layer(
                bench,
                i,
                "param-crosscheck",
                format!("{} params", ours.params),
                format!("{} params", theirs.params),
            ));
        }
        if theirs.flops != as_f64(ours.flops) {
            out.push(Diagnostic::at_layer(
                bench,
                i,
                "flop-crosscheck",
                format!("{} flops", ours.flops),
                format!("{} flops", theirs.flops),
            ));
        }
    }
    let claimed = count(spec);
    out.extend(verify_claim(bench, spec, claimed.params, claimed.flops));
    out
}

/// Checks an externally claimed (params, flops) total against the
/// independent derivation. Exposed separately so corrupted claims can be
/// linted (and seeded as fixtures) without going through opcount.
pub fn verify_claim(
    bench: &str,
    spec: &ModelSpec,
    claimed_params: u64,
    claimed_flops: f64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let totals = derive_spec(spec);
    if claimed_params as u128 != totals.params {
        out.push(Diagnostic::global(
            bench,
            "param-crosscheck",
            format!("{} total params", totals.params),
            format!("{claimed_params} total params"),
        ));
    }
    if claimed_flops != as_f64(totals.flops) {
        out.push(Diagnostic::global(
            bench,
            "flop-crosscheck",
            format!("{} total flops", totals.flops),
            format!("{claimed_flops} total flops"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_models::{Layer, RnnKind};

    #[test]
    fn lstm_gate_count_enters_both_params_and_flops() {
        let c = derive_layer(&LayerKind::Rnn {
            kind: RnnKind::Lstm,
            d_in: 10,
            d_h: 20,
            steps: 3,
        });
        assert_eq!(c.params, 4 * (10 * 20 + 20 * 20 + 20));
        assert_eq!(c.flops, 4 * (10 + 20) * 20 * 3);
    }

    #[test]
    fn shared_repeats_count_params_once() {
        let spec = ModelSpec::new(
            "mini",
            vec![Layer::shared(LayerKind::Linear { d_in: 4, d_out: 4 }, 10)],
            1,
            1,
            1,
        );
        let t = derive_spec(&spec);
        assert_eq!(t.params, 4 * 4 + 4);
        assert_eq!(t.flops, 10 * 4 * 4);
    }

    #[test]
    fn corrupted_claim_is_flagged() {
        let spec = ModelSpec::new(
            "mini",
            vec![Layer::once(LayerKind::Linear { d_in: 4, d_out: 2 })],
            1,
            1,
            1,
        );
        let good = verify_claim("mini", &spec, 10, 8.0);
        assert!(good.is_empty());
        let bad = verify_claim("mini", &spec, 10, 9.0);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "flop-crosscheck");
    }
}

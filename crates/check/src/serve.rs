//! Serving-layer lints over `aibench-serve`: the multi-tenant scheduler's
//! contracts, checked by replaying fixed request traces through the live
//! server core.
//!
//! * **Schedule determinism** — the same request trace replayed twice, and
//!   again at a different thread count, must produce the identical
//!   admission/preemption schedule and bitwise-identical per-session
//!   results.
//! * **Fair share** — a tenant flooding the queue must not starve a lone
//!   tenant: accumulated service breaks admission ties, so the lone
//!   tenant's request is admitted after at most one of the flooder's.
//! * **Preemption snapshots** — every `resume@e` in the schedule log must
//!   match the `park@e` that preceded it (a victim silently restarted from
//!   older state is a lost snapshot), and a preempted-then-resumed session
//!   must finish bitwise identical to the same session run uninterrupted.
//! * **Budget invariant** — replaying the schedule log, the number of
//!   concurrently running sessions must never exceed the worker budget.
//!
//! Each lint has a `_with` variant taking an explicit [`ServeConfig`] so
//! the seeded-defect fixtures can switch on an `aibench_serve::Quirks`
//! flag and prove the rule fires.

use aibench::Registry;
use aibench_fault::{FaultKind, FaultSchedule};
use aibench_serve::{run_trace, RunRequest, SchedAction, ServeConfig, ServeReport};

use crate::Diagnostic;

/// Benchmark code every serving lint trains: cheap and deterministic.
const PROBE: &str = "DC-AI-C15";

fn probe_missing(rule: &'static str) -> Vec<Diagnostic> {
    vec![Diagnostic::global(
        "registry",
        rule,
        format!("{PROBE} registered for the serving probe"),
        "benchmark missing from the registry",
    )]
}

fn has_probe(registry: &Registry) -> bool {
    registry.benchmarks().iter().any(|b| b.id.code() == PROBE)
}

/// The determinism probe trace: two tenants, a staggered arrival, one
/// faulted session, one priority preempt.
fn determinism_trace() -> Vec<(u64, RunRequest)> {
    vec![
        (0, RunRequest::new("acme", PROBE, 1, 3)),
        (0, RunRequest::new("zeta", PROBE, 2, 2)),
        (
            1,
            RunRequest::new("zeta", PROBE, 3, 2).with_faults(
                FaultSchedule::new(4).inject(1, FaultKind::GradExplosion { scale: 1e12 }),
            ),
        ),
        (2, RunRequest::new("ops", PROBE, 4, 2).with_priority(5)),
    ]
}

/// The same trace replayed twice — and replayed at another thread count —
/// must produce the identical schedule and bitwise-identical results.
pub fn check_schedule_determinism(registry: &Registry) -> Vec<Diagnostic> {
    let rule = "serve-schedule-determinism";
    if !has_probe(registry) {
        return probe_missing(rule);
    }
    let trace = determinism_trace();
    let config = ServeConfig::default();
    let mut out = Vec::new();

    aibench_parallel::set_threads(1);
    let first = run_trace(registry, config, &trace);
    let replay = run_trace(registry, config, &trace);
    aibench_parallel::set_threads(4);
    let threaded = run_trace(registry, config, &trace);
    aibench_parallel::ParallelConfig::default().install();

    for (what, other) in [("replay", &replay), ("4-thread run", &threaded)] {
        if first.schedule_signature() != other.schedule_signature() {
            out.push(Diagnostic::global(
                PROBE,
                rule,
                format!("the {what} reproduces the schedule"),
                format!(
                    "`{}` vs `{}`",
                    first.schedule_signature(),
                    other.schedule_signature()
                ),
            ));
        } else if !first.deterministic_eq(other) {
            out.push(Diagnostic::global(
                PROBE,
                rule,
                format!("the {what} reproduces every session's bits"),
                "identical schedule but diverging session results".to_string(),
            ));
        }
    }
    out
}

/// The fair-share probe: one tenant floods four requests, a lone tenant
/// submits one, all at tick 0, against a single worker slot.
fn flood_trace() -> Vec<(u64, RunRequest)> {
    let mut trace: Vec<(u64, RunRequest)> = (0..4)
        .map(|i| (0, RunRequest::new("flood", PROBE, i + 1, 2)))
        .collect();
    trace.push((0, RunRequest::new("lone", PROBE, 9, 2)));
    trace
}

/// Fair share with an explicit config (fixtures pass a quirked one).
pub fn check_fair_share_with(registry: &Registry, config: ServeConfig) -> Vec<Diagnostic> {
    let rule = "serve-fair-share";
    if !has_probe(registry) {
        return probe_missing(rule);
    }
    let report = run_trace(registry, config, &flood_trace());
    // The lone tenant's session is the last submitted (id 4). Count how
    // many flood admissions the scheduler placed before it: fair share
    // lets exactly one through (the slot was empty; services were tied).
    let admits: Vec<u64> = report
        .schedule
        .iter()
        .filter(|e| matches!(e.action, SchedAction::Admit))
        .map(|e| e.session)
        .collect();
    let lone = report
        .sessions
        .iter()
        .find(|s| s.tenant == "lone")
        .map(|s| s.session);
    let Some(lone) = lone else {
        return vec![Diagnostic::global(
            PROBE,
            rule,
            "the lone tenant's session finishes",
            "no finished session for tenant `lone`".to_string(),
        )];
    };
    let ahead = admits.iter().take_while(|&&s| s != lone).count();
    if ahead > 1 {
        vec![Diagnostic::global(
            PROBE,
            rule,
            "the lone tenant admitted after at most one flooding session",
            format!("{ahead} flooding session(s) admitted first (order {admits:?})"),
        )]
    } else {
        Vec::new()
    }
}

/// Fair share under the default single-slot configuration.
pub fn check_fair_share(registry: &Registry) -> Vec<Diagnostic> {
    check_fair_share_with(
        registry,
        ServeConfig {
            budget: 1,
            ..ServeConfig::default()
        },
    )
}

/// The preemption probe: a low-priority session holding the only slot, a
/// high-priority arrival one tick later.
fn preemption_trace() -> Vec<(u64, RunRequest)> {
    vec![
        (0, RunRequest::new("low", PROBE, 1, 4)),
        (1, RunRequest::new("high", PROBE, 2, 1).with_priority(9)),
    ]
}

/// Preemption snapshots with an explicit config (fixtures pass a quirked
/// one).
pub fn check_preemption_snapshot_with(registry: &Registry, config: ServeConfig) -> Vec<Diagnostic> {
    let rule = "serve-preemption-snapshot";
    if !has_probe(registry) {
        return probe_missing(rule);
    }
    let preempted = run_trace(registry, config, &preemption_trace());
    let mut out = resume_matches_park(&preempted, rule);
    if !preempted
        .schedule
        .iter()
        .any(|e| matches!(e.action, SchedAction::Park { .. }))
    {
        out.push(Diagnostic::global(
            PROBE,
            rule,
            "the high-priority arrival preempts the running session",
            format!("no park in schedule `{}`", preempted.schedule_signature()),
        ));
        return out;
    }
    // The victim, preempted and resumed, must still finish with the exact
    // bits of an uninterrupted run.
    let solo = run_trace(registry, config, &preemption_trace()[..1]);
    if !preempted.sessions[0]
        .done
        .result
        .deterministic_eq(&solo.sessions[0].done.result)
    {
        out.push(Diagnostic::global(
            PROBE,
            "serve-preemption-divergence",
            "a preempted-then-resumed session bitwise identical to an uninterrupted one",
            format!(
                "{} epoch(s) to {:.9} preempted vs {} epoch(s) to {:.9} solo",
                preempted.sessions[0].done.result.epochs_run,
                preempted.sessions[0].done.result.final_quality,
                solo.sessions[0].done.result.epochs_run,
                solo.sessions[0].done.result.final_quality,
            ),
        ));
    }
    out
}

/// Walks a schedule log asserting every resume restores the epoch of the
/// park that preceded it.
fn resume_matches_park(report: &ServeReport, rule: &'static str) -> Vec<Diagnostic> {
    let mut last_park: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    let mut out = Vec::new();
    for e in &report.schedule {
        match e.action {
            SchedAction::Park { at_epoch } => {
                last_park.insert(e.session, at_epoch);
            }
            SchedAction::Resume { from_epoch } => {
                let parked = last_park.remove(&e.session);
                if from_epoch != parked {
                    out.push(Diagnostic::global(
                        PROBE,
                        rule,
                        format!(
                            "session {} resumed from its park snapshot (epoch {:?})",
                            e.session, parked
                        ),
                        match from_epoch {
                            Some(epoch) => format!("resumed from epoch {epoch}"),
                            None => "park snapshot lost; restarted from scratch".to_string(),
                        },
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// Preemption snapshots under the default single-slot configuration.
pub fn check_preemption_snapshot(registry: &Registry) -> Vec<Diagnostic> {
    check_preemption_snapshot_with(
        registry,
        ServeConfig {
            budget: 1,
            ..ServeConfig::default()
        },
    )
}

/// Budget invariant with an explicit config (fixtures pass a quirked one).
pub fn check_budget_invariant_with(registry: &Registry, config: ServeConfig) -> Vec<Diagnostic> {
    let rule = "serve-budget-overcommit";
    if !has_probe(registry) {
        return probe_missing(rule);
    }
    let report = run_trace(registry, config, &flood_trace());
    // Replay the schedule log counting concurrently running sessions:
    // admits and resumes occupy a slot, parks and finishes release one.
    let mut running = 0usize;
    let mut worst = 0usize;
    let mut at_tick = 0u64;
    for e in &report.schedule {
        match e.action {
            SchedAction::Admit | SchedAction::Resume { .. } => {
                running += 1;
                if running > worst {
                    worst = running;
                    at_tick = e.tick;
                }
            }
            SchedAction::Park { .. } | SchedAction::Finish { .. } => {
                running = running.saturating_sub(1);
            }
            SchedAction::Arrive | SchedAction::Reject { .. } => {}
        }
    }
    if worst > config.budget {
        vec![Diagnostic::global(
            PROBE,
            rule,
            format!("at most {} session(s) running concurrently", config.budget),
            format!("{worst} running at tick {at_tick}"),
        )]
    } else {
        Vec::new()
    }
}

/// Budget invariant under a two-slot configuration.
pub fn check_budget_invariant(registry: &Registry) -> Vec<Diagnostic> {
    check_budget_invariant_with(registry, ServeConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_scheduler_passes_every_serving_lint() {
        let registry = Registry::aibench();
        assert!(check_schedule_determinism(&registry).is_empty());
        assert!(check_fair_share(&registry).is_empty());
        assert!(check_preemption_snapshot(&registry).is_empty());
        assert!(check_budget_invariant(&registry).is_empty());
    }
}

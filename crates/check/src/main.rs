//! `aibench-check` CLI: runs the static analyses and invariant lints over
//! the full benchmark registry and exits nonzero on any violation.
//!
//! ```text
//! aibench-check [--all | --specs | --traces | --tape | --ckpt | --faults | --audit | --dist
//!                | --serve | --chaos] [--benchmark CODE] [--fixture NAME]
//! ```
//!
//! * `--specs`  shape inference + exact FLOP/param cross-check
//! * `--traces` kernel classification and conservation lints
//! * `--tape`   probe one training epoch per scaled model (slow)
//! * `--ckpt`   snapshot wire-format + restore round-trip byte-stability
//! * `--faults` supervised-runner contracts: empty-schedule identity,
//!   injection replay, rollback integrity, fault-kind coverage (slow)
//! * `--audit`  region-effect audit: race detection over recorded access
//!   sets, determinism lints, snapshot-coverage diffing (slow)
//! * `--dist`   distributed contracts: shard partitioning, 1-worker
//!   identity with the sequential runner, fault-schedule replay, and
//!   thread-count invariance (slow)
//! * `--serve`  serving contracts: schedule determinism across replays and
//!   thread counts, fair-share admission, park/resume snapshot integrity,
//!   and the worker-budget invariant (slow)
//! * `--chaos`  chaos-hardening contracts: seeded-soak determinism across
//!   replays and thread counts, empty-schedule identity, result-bit
//!   invariance under chaos, lease resume after connection resets,
//!   idempotent submission, and load shedding (slow)
//! * `--all`    everything above (default)
//! * `--benchmark CODE` restrict any mode to one benchmark (e.g. DC-AI-C1)
//! * `--fixture NAME` run one seeded-defect fixture (see `--list-fixtures`);
//!   exits nonzero because the fixture's defect is detected

#![forbid(unsafe_code)]

use aibench::{Benchmark, Registry};
use aibench_check::{
    audit, chaos, ckpt, counts, dist, faults, fixtures, serve, shape, tape, trace, CheckReport,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: aibench-check [--all | --specs | --traces | --tape | --ckpt | --faults | --audit \
         | --dist | --serve | --chaos] [--benchmark CODE] [--fixture NAME | --list-fixtures]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = None;
    let mut fixture = None;
    let mut benchmark = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" | "--specs" | "--traces" | "--tape" | "--ckpt" | "--faults" | "--audit"
            | "--dist" | "--serve" | "--chaos" => {
                if mode.replace(arg.clone()).is_some() {
                    return usage();
                }
            }
            "--fixture" => match it.next() {
                Some(name) => fixture = Some(name.clone()),
                None => return usage(),
            },
            "--benchmark" => match it.next() {
                Some(code) => benchmark = Some(code.clone()),
                None => return usage(),
            },
            "--list-fixtures" => {
                for name in fixtures::FIXTURES {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if let Some(name) = fixture {
        let Some(diags) = fixtures::run(&name) else {
            eprintln!("unknown fixture `{name}`; try --list-fixtures");
            return ExitCode::from(2);
        };
        for d in &diags {
            println!("{d}");
        }
        println!("fixture `{name}`: {} violation(s) detected", diags.len());
        // A fixture is a seeded defect: finding it means exiting nonzero,
        // and finding nothing means the rule itself regressed.
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mode = mode.unwrap_or_else(|| "--all".to_string());
    let registry = Registry::all();
    let selected: Vec<&Benchmark> = match &benchmark {
        Some(code) => match registry.benchmarks().iter().find(|b| b.id.code() == *code) {
            Some(b) => vec![b],
            None => {
                eprintln!("unknown benchmark `{code}`");
                return ExitCode::from(2);
            }
        },
        None => registry.benchmarks().iter().collect(),
    };
    let mut report = CheckReport::new();

    if mode == "--all" || mode == "--specs" {
        for b in &selected {
            let spec = b.spec();
            let code = b.id.code();
            report.absorb(shape::check_spec(code, &spec));
            report.absorb(counts::verify_spec(code, &spec));
        }
        report.absorb(tape::check_gradcheck_coverage());
    }
    if mode == "--all" || mode == "--traces" {
        for b in &selected {
            report.absorb(trace::check_benchmark(b.id.code(), &b.spec()));
        }
    }
    if mode == "--all" || mode == "--tape" {
        for b in &selected {
            report.absorb(tape::probe_benchmark(b));
        }
    }
    if mode == "--all" || mode == "--ckpt" {
        for b in &selected {
            report.absorb(ckpt::check_roundtrip(b));
        }
    }
    if mode == "--all" || mode == "--faults" {
        for b in &selected {
            report.absorb(faults::check_empty_schedule_identity(b));
            report.absorb(faults::check_injection_replay(b));
        }
        report.absorb(faults::check_resume_integrity(&registry));
        report.absorb(faults::check_fixture_coverage());
    }
    if mode == "--all" || mode == "--audit" {
        for b in &selected {
            report.absorb(audit::audit_benchmark(b));
        }
    }
    if mode == "--all" || mode == "--dist" {
        report.absorb(dist::check_shard_partition());
        for b in &selected {
            report.absorb(dist::check_single_worker_equivalence(b));
        }
        report.absorb(dist::check_replay_stability(&registry));
        report.absorb(dist::check_thread_invariance(&registry));
    }
    if mode == "--all" || mode == "--serve" {
        report.absorb(serve::check_schedule_determinism(&registry));
        report.absorb(serve::check_fair_share(&registry));
        report.absorb(serve::check_preemption_snapshot(&registry));
        report.absorb(serve::check_budget_invariant(&registry));
    }
    if mode == "--all" || mode == "--chaos" {
        report.absorb(chaos::check_chaos_determinism(&registry));
        report.absorb(chaos::check_empty_schedule_identity(&registry));
        report.absorb(chaos::check_result_invariance(&registry));
        report.absorb(chaos::check_lease_resume(&registry));
        report.absorb(chaos::check_idempotent_submit(&registry));
        report.absorb(chaos::check_load_shed(&registry));
    }

    for d in &report.diagnostics {
        println!("{d}");
    }
    println!(
        "aibench-check: {} benchmark(s), {} check batch(es), {} violation(s)",
        selected.len(),
        report.checks_run,
        report.diagnostics.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Seeded-defect fixtures: known-broken inputs proving each rule family
//! fires. The CLI exposes them via `--fixture <name>`, and the test suite
//! asserts every fixture produces at least one diagnostic of its family's
//! rule, so a silently weakened rule fails the build rather than shipping.

use crate::{audit, chaos, ckpt, counts, faults, serve, shape, tape, trace, Diagnostic};
use aibench::runner::RunConfig;
use aibench_ckpt::{FailingSink, MemorySink, SnapshotFile, State};
use aibench_dist::{DistConfig, DistFaultKind, DistSchedule};
use aibench_fault::{
    supervised_run, supervised_run_with_sink, FaultKind, FaultSchedule, RecoveryPolicy,
    SentinelConfig, SupervisorConfig,
};
use aibench_gpusim::{DeviceConfig, Kernel, KernelCategory, Simulator};
use aibench_models::{Layer, LayerKind, ModelSpec, Trainer};
use aibench_serve::{Quirks, ServeConfig};

/// Names of all seeded-defect fixtures, in canonical order.
pub const FIXTURES: &[&str] = &[
    "shape-mismatch",
    "flop-disagreement",
    "unmapped-kernel",
    "time-conservation",
    "dead-parameter",
    "ckpt-truncation",
    "ckpt-bit-flip",
    "ckpt-version-mismatch",
    "ckpt-orphan-section",
    "fault-non-finite-loss",
    "fault-loss-spike",
    "fault-non-finite-param",
    "fault-exploding-grad-norm",
    "fault-kernel-panic",
    "fault-checkpoint-io",
    "fault-stalled-progress",
    "fault-budget-exhausted",
    "fault-straggler-delay",
    "fault-worker-drop",
    "fault-corrupt-grad-shard",
    "fault-lost-contribution",
    "fault-frame-corrupt",
    "fault-connection-lost",
    "fault-store-corrupt",
    "audit-racy-kernel",
    "audit-unstable-reduction",
    "audit-unsnapshotted-state",
    "audit-rng-in-region",
    "audit-thread-chunking",
    "serve-starved-tenant",
    "serve-lost-park-snapshot",
    "serve-budget-overcommit",
    "chaos-dropped-lease",
    "chaos-duplicate-session",
    "chaos-unbounded-queue",
];

/// Runs one fixture by name; `None` for an unknown name. Each returned
/// list is non-empty by construction — a fixture that comes back clean
/// means its rule regressed.
pub fn run(name: &str) -> Option<Vec<Diagnostic>> {
    match name {
        "shape-mismatch" => Some(shape_mismatch()),
        "flop-disagreement" => Some(flop_disagreement()),
        "unmapped-kernel" => Some(unmapped_kernel()),
        "time-conservation" => Some(time_conservation()),
        "dead-parameter" => Some(dead_parameter()),
        "ckpt-truncation" => Some(ckpt_truncation()),
        "ckpt-bit-flip" => Some(ckpt_bit_flip()),
        "ckpt-version-mismatch" => Some(ckpt_version_mismatch()),
        "ckpt-orphan-section" => Some(ckpt_orphan_section()),
        "fault-non-finite-loss" => Some(fault_non_finite_loss()),
        "fault-loss-spike" => Some(fault_loss_spike()),
        "fault-non-finite-param" => Some(fault_non_finite_param()),
        "fault-exploding-grad-norm" => Some(fault_exploding_grad_norm()),
        "fault-kernel-panic" => Some(fault_kernel_panic()),
        "fault-checkpoint-io" => Some(fault_checkpoint_io()),
        "fault-stalled-progress" => Some(fault_stalled_progress()),
        "fault-budget-exhausted" => Some(fault_budget_exhausted()),
        "fault-straggler-delay" => Some(fault_straggler_delay()),
        "fault-worker-drop" => Some(fault_worker_drop()),
        "fault-corrupt-grad-shard" => Some(fault_corrupt_grad_shard()),
        "fault-lost-contribution" => Some(fault_lost_contribution()),
        "fault-frame-corrupt" => Some(fault_frame_corrupt()),
        "fault-connection-lost" => Some(fault_connection_lost()),
        "fault-store-corrupt" => Some(fault_store_corrupt()),
        // The audit fixtures live next to the analyses they prove, in
        // `aibench_audit::fixtures`; here they only need rendering.
        "audit-racy-kernel" => Some(audit::to_diagnostics(aibench_audit::fixtures::racy_kernel())),
        "audit-unstable-reduction" => Some(audit::to_diagnostics(
            aibench_audit::fixtures::unstable_reduction(),
        )),
        "audit-unsnapshotted-state" => Some(audit::to_diagnostics(
            aibench_audit::fixtures::unsnapshotted_state(),
        )),
        "audit-rng-in-region" => Some(audit::to_diagnostics(
            aibench_audit::fixtures::rng_in_region(),
        )),
        "audit-thread-chunking" => Some(audit::to_diagnostics(
            aibench_audit::fixtures::thread_dependent_chunking(),
        )),
        "serve-starved-tenant" => Some(serve_starved_tenant()),
        "serve-lost-park-snapshot" => Some(serve_lost_park_snapshot()),
        "serve-budget-overcommit" => Some(serve_budget_overcommit()),
        "chaos-dropped-lease" => Some(chaos_dropped_lease()),
        "chaos-duplicate-session" => Some(chaos_duplicate_session()),
        "chaos-unbounded-queue" => Some(chaos_unbounded_queue()),
        _ => None,
    }
}

/// A conv stack whose second layer declares the wrong input channel count.
fn shape_mismatch() -> Vec<Diagnostic> {
    let spec = ModelSpec::new(
        "fixture/shape-mismatch",
        vec![
            Layer::once(LayerKind::Conv2d {
                c_in: 3,
                c_out: 16,
                k: 3,
                h_out: 32,
                w_out: 32,
            }),
            Layer::once(LayerKind::Conv2d {
                c_in: 32,
                c_out: 8,
                k: 3,
                h_out: 32,
                w_out: 32,
            }),
        ],
        3 * 32 * 32,
        4,
        64,
    );
    shape::check_spec("fixture/shape-mismatch", &spec)
}

/// A spec whose externally claimed FLOP total is off by one.
fn flop_disagreement() -> Vec<Diagnostic> {
    let spec = ModelSpec::new(
        "fixture/flop-disagreement",
        vec![Layer::once(LayerKind::Linear {
            d_in: 64,
            d_out: 10,
        })],
        64,
        4,
        64,
    );
    let truth = counts::derive_spec(&spec);
    counts::verify_claim(
        "fixture/flop-disagreement",
        &spec,
        truth.params as u64,
        truth.flops as f64 + 1.0,
    )
}

/// A trace containing a kernel name outside the Table-7 taxonomy and a
/// kernel tagged with the wrong category.
fn unmapped_kernel() -> Vec<Diagnostic> {
    let trace = vec![
        Kernel::new(
            "my_secret_kernel_v2",
            KernelCategory::Gemm,
            1e6,
            1e5,
            256,
            1,
        ),
        Kernel::new(
            "softmax_warp_forward",
            KernelCategory::Gemm,
            1e4,
            1e4,
            256,
            1,
        ),
    ];
    trace::check_trace("fixture/unmapped-kernel", &trace)
}

/// A real simulated profile with one category share tampered after the
/// fact, breaking time conservation.
fn time_conservation() -> Vec<Diagnostic> {
    let spec = aibench::Registry::all().benchmarks()[0].spec();
    let mut profile = Simulator::new(DeviceConfig::titan_xp()).profile(&spec);
    if let Some(c) = profile.categories.first_mut() {
        c.share *= 0.5;
    }
    trace::check_profile("fixture/time-conservation", &profile)
}

/// A toy trainer with a parameter the loss never touches.
fn dead_parameter() -> Vec<Diagnostic> {
    use aibench_autograd::{Graph, Param};
    use aibench_nn::{Optimizer, Sgd};
    use aibench_tensor::Tensor;

    struct Lopsided {
        live: Param,
        opt: Sgd,
    }

    impl Trainer for Lopsided {
        fn train_epoch(&mut self) -> f32 {
            let mut g = Graph::new();
            let x = g.param(&self.live);
            let sq = g.square(x);
            let loss = g.sum(sq);
            let out = g.value(loss).item();
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
            out
        }

        fn evaluate(&mut self) -> f64 {
            0.0
        }

        fn param_count(&self) -> usize {
            self.opt.params().iter().map(|p| p.len()).sum()
        }

        fn params(&self) -> Vec<Param> {
            self.opt.params().to_vec()
        }

        fn save_state(&self, state: &mut aibench_ckpt::State) {
            aibench_ckpt::Snapshot::snapshot(&self.opt, state, "opt");
        }

        fn load_state(
            &mut self,
            state: &aibench_ckpt::State,
        ) -> Result<(), aibench_ckpt::CkptError> {
            aibench_ckpt::Restore::restore(&mut self.opt, state, "opt")
        }
    }

    let live = Param::new("w", Tensor::from_vec(vec![0.5, -0.5], &[2]));
    let orphan = Param::new("orphan", Tensor::from_vec(vec![1.0, 1.0], &[2]));
    let opt = Sgd::new(vec![live.clone(), orphan], 0.1);
    let mut t = Lopsided { live, opt };
    tape::probe_trainer("fixture/dead-parameter", &mut t)
}

/// A small but structurally complete snapshot to damage: two sections with
/// a few typed entries each.
fn sample_snapshot() -> Vec<u8> {
    let mut meta = State::new();
    meta.put_str("code", "fixture");
    meta.put_u64("seed", 42);
    let mut trainer = State::new();
    trainer.put_f32s("w", &[2, 2], vec![1.0, -2.0, 0.5, 4.0]);
    trainer.put_u64("step", 7);
    let mut file = SnapshotFile::new();
    file.push("meta", meta);
    file.push("trainer", trainer);
    file.to_bytes()
}

/// A snapshot cut off mid-section, as an interrupted write would leave it.
fn ckpt_truncation() -> Vec<Diagnostic> {
    let bytes = sample_snapshot();
    ckpt::check_snapshot("fixture/ckpt-truncation", &bytes[..bytes.len() / 2])
}

/// A snapshot with one payload bit flipped; the section CRC must notice.
fn ckpt_bit_flip() -> Vec<Diagnostic> {
    let mut bytes = sample_snapshot();
    let last = bytes.len() - 5;
    bytes[last] ^= 0x01;
    ckpt::check_snapshot("fixture/ckpt-bit-flip", &bytes)
}

/// A snapshot written by a future (unknown) format version.
fn ckpt_version_mismatch() -> Vec<Diagnostic> {
    let mut meta = State::new();
    meta.put_str("code", "fixture");
    let mut file = SnapshotFile::new();
    file.push("meta", meta);
    ckpt::check_snapshot(
        "fixture/ckpt-version-mismatch",
        &file.to_bytes_with_version(99),
    )
}

/// A snapshot with trailing bytes the section count does not account for.
fn ckpt_orphan_section() -> Vec<Diagnostic> {
    let mut bytes = sample_snapshot();
    bytes.extend_from_slice(b"stray section bytes");
    ckpt::check_snapshot("fixture/ckpt-orphan-section", &bytes)
}

/// Detect-without-recovering supervisor: every fault quarantines, so the
/// fixture's injected defect surfaces as exactly its own fault kind.
fn detect_only() -> SupervisorConfig {
    SupervisorConfig {
        policy: RecoveryPolicy::detect_only(),
        ..SupervisorConfig::default()
    }
}

/// Runs the rollback probe benchmark under supervision with a seeded
/// schedule and renders the fault log as diagnostics.
fn fault_probe(
    name: &str,
    schedule: FaultSchedule,
    sup: &SupervisorConfig,
    max_epochs: usize,
) -> Vec<Diagnostic> {
    let registry = aibench::Registry::aibench();
    let benchmark = registry.get("DC-AI-C15").expect("rollback probe benchmark");
    let config = RunConfig {
        max_epochs,
        eval_every: 1,
        ..RunConfig::default()
    };
    let run = supervised_run(benchmark, 2, &config, &schedule, sup);
    faults::diagnose(name, &run)
}

/// A training loss replaced by NaN at epoch 2.
fn fault_non_finite_loss() -> Vec<Diagnostic> {
    let schedule = FaultSchedule::new(1).inject(2, FaultKind::LossValue { value: f32::NAN });
    fault_probe(
        "fixture/fault-non-finite-loss",
        schedule,
        &detect_only(),
        10,
    )
}

/// A finite but absurd loss at epoch 3 (after a 1-epoch spike warmup).
fn fault_loss_spike() -> Vec<Diagnostic> {
    let schedule = FaultSchedule::new(2).inject(3, FaultKind::LossValue { value: 1e12 });
    let sup = SupervisorConfig {
        sentinels: SentinelConfig {
            loss_spike_warmup: 1,
            ..SentinelConfig::default()
        },
        ..detect_only()
    };
    fault_probe("fixture/fault-loss-spike", schedule, &sup, 10)
}

/// One parameter value poisoned with NaN at epoch 2.
fn fault_non_finite_param() -> Vec<Diagnostic> {
    let schedule = FaultSchedule::new(3).inject(2, FaultKind::ParamNan);
    fault_probe(
        "fixture/fault-non-finite-param",
        schedule,
        &detect_only(),
        10,
    )
}

/// One parameter's gradient blown up to 1e12 at epoch 2.
fn fault_exploding_grad_norm() -> Vec<Diagnostic> {
    let schedule = FaultSchedule::new(4).inject(2, FaultKind::GradExplosion { scale: 1e12 });
    fault_probe(
        "fixture/fault-exploding-grad-norm",
        schedule,
        &detect_only(),
        10,
    )
}

/// A parallel kernel that panics mid-region at epoch 2.
fn fault_kernel_panic() -> Vec<Diagnostic> {
    let schedule = FaultSchedule::new(5).inject(2, FaultKind::KernelPanic);
    fault_probe("fixture/fault-kernel-panic", schedule, &detect_only(), 10)
}

/// A checkpoint sink whose save at epoch 1 fails (the `FailingSink` test
/// double), under a schedule that injects nothing itself.
fn fault_checkpoint_io() -> Vec<Diagnostic> {
    let registry = aibench::Registry::aibench();
    let benchmark = registry.get("DC-AI-C15").expect("rollback probe benchmark");
    let config = RunConfig {
        max_epochs: 4,
        eval_every: 1,
        ..RunConfig::default()
    };
    let mut sink = FailingSink::new(MemorySink::new()).fail_save_at(1);
    let run = supervised_run_with_sink(
        benchmark,
        2,
        &config,
        &FaultSchedule::empty(),
        &detect_only(),
        &mut sink,
    );
    faults::diagnose("fixture/fault-checkpoint-io", &run)
}

/// A frozen quality metric with the stall sentinel opted in.
fn fault_stalled_progress() -> Vec<Diagnostic> {
    let schedule = FaultSchedule::new(6).inject_persistent(1, FaultKind::EvalFreeze);
    let sup = SupervisorConfig {
        sentinels: SentinelConfig {
            stall_window: Some(3),
            ..SentinelConfig::default()
        },
        ..detect_only()
    };
    fault_probe("fixture/fault-stalled-progress", schedule, &sup, 12)
}

/// A persistent NaN loss under a rollback policy with an effectively
/// unlimited recovery cap: the epoch watchdog must end the run.
fn fault_budget_exhausted() -> Vec<Diagnostic> {
    let schedule =
        FaultSchedule::new(7).inject_persistent(2, FaultKind::LossValue { value: f32::NAN });
    let sup = SupervisorConfig {
        max_recoveries: 1000,
        epoch_budget_factor: 1,
        ..SupervisorConfig::default()
    };
    fault_probe("fixture/fault-budget-exhausted", schedule, &sup, 3)
}

/// Runs a two-worker distributed session of the probe benchmark under a
/// seeded distributed fault schedule and renders the engine's fault log
/// as diagnostics. Recovery is left to the default `DistPolicy` — the
/// point here is that every injected distributed defect is *recorded*
/// under its own rule, whatever the engine does about it.
fn dist_fault_probe(name: &str, schedule: DistSchedule) -> Vec<Diagnostic> {
    let registry = aibench::Registry::aibench();
    let benchmark = registry
        .get("DC-AI-C15")
        .expect("distributed probe benchmark");
    let config = RunConfig {
        max_epochs: 2,
        eval_every: 1,
        ..RunConfig::default()
    };
    let dist = DistConfig {
        schedule,
        ..DistConfig::with_world(2)
    };
    let report = aibench::distributed::run_distributed_to_quality(benchmark, 2, &config, &dist)
        .expect("DC-AI-C15 supports data-parallel training");
    faults::diagnose_dist(name, &report.dist)
}

/// Worker 1 runs 3 ticks late at epoch 1, step 2; the default policy
/// absorbs the delay into logical time.
fn fault_straggler_delay() -> Vec<Diagnostic> {
    let schedule =
        DistSchedule::empty().inject(1, 2, 1, DistFaultKind::StragglerDelay { ticks: 3 });
    dist_fault_probe("fixture/fault-straggler-delay", schedule)
}

/// Worker 1 drops out mid-epoch; the survivor takes over via
/// exclude-and-reshard.
fn fault_worker_drop() -> Vec<Diagnostic> {
    let schedule = DistSchedule::empty().inject(1, 2, 1, DistFaultKind::WorkerDrop);
    dist_fault_probe("fixture/fault-worker-drop", schedule)
}

/// Worker 0's gradient shard arrives with flipped bits; the CRC sentinel
/// catches it and the shard is quarantined out of the reduction.
fn fault_corrupt_grad_shard() -> Vec<Diagnostic> {
    let schedule = DistSchedule::empty().inject(1, 1, 0, DistFaultKind::CorruptGradShard);
    dist_fault_probe("fixture/fault-corrupt-grad-shard", schedule)
}

/// Worker 1's all-reduce contribution never arrives; the group rolls back
/// to the epoch-boundary snapshot and replays the epoch.
fn fault_lost_contribution() -> Vec<Diagnostic> {
    let schedule = DistSchedule::empty().inject(1, 1, 1, DistFaultKind::LostContribution);
    dist_fault_probe("fixture/fault-lost-contribution", schedule)
}

/// A scheduler that breaks admission ties by arrival order alone
/// (`starve_fifo`), letting the flooding tenant drain its whole queue
/// before the lone tenant's request runs.
fn serve_starved_tenant() -> Vec<Diagnostic> {
    let registry = aibench::Registry::aibench();
    let config = ServeConfig {
        budget: 1,
        quirks: Quirks {
            starve_fifo: true,
            ..Quirks::default()
        },
        ..ServeConfig::default()
    };
    serve::check_fair_share_with(&registry, config)
}

/// A scheduler that drops the park snapshot right after preempting a
/// victim (`lose_park_snapshot`): the victim silently restarts from older
/// state, and the schedule log's resume no longer matches its park.
fn serve_lost_park_snapshot() -> Vec<Diagnostic> {
    let registry = aibench::Registry::aibench();
    let config = ServeConfig {
        budget: 1,
        quirks: Quirks {
            lose_park_snapshot: true,
            ..Quirks::default()
        },
        ..ServeConfig::default()
    };
    serve::check_preemption_snapshot_with(&registry, config)
}

/// A scheduler admitting one session beyond its worker budget
/// (`overcommit_by`): replaying the schedule log exposes the extra
/// concurrently running session.
fn serve_budget_overcommit() -> Vec<Diagnostic> {
    let registry = aibench::Registry::aibench();
    let config = ServeConfig {
        quirks: Quirks {
            overcommit_by: 1,
            ..Quirks::default()
        },
        ..ServeConfig::default()
    };
    serve::check_budget_invariant_with(&registry, config)
}

/// Runs a tiny chaos soak and renders the lifted chaos-event log as
/// diagnostics, one per lifted fault, each under the rule of its fault
/// kind — the chaos analogue of [`faults::diagnose`].
fn chaos_fault_probe(name: &str, schedule: aibench_chaos::ChaosSchedule) -> Vec<Diagnostic> {
    let registry = aibench::Registry::aibench();
    let report = aibench_chaos::run_soak(
        &registry,
        &[
            aibench_serve::RunRequest::new("acme", "DC-AI-C15", 1, 3),
            aibench_serve::RunRequest::new("zeta", "DC-AI-C15", 2, 3),
        ],
        &schedule,
        aibench_chaos::SoakConfig::default(),
    );
    report
        .lifted_faults()
        .iter()
        .map(|event| {
            Diagnostic::global(
                name,
                faults::rule_for_kind(event.fault.kind()),
                "a chaos-free serving soak",
                format!("{} (action: {})", event.fault, event.action.kind()),
            )
        })
        .collect()
}

/// A submit frame with one flipped bit: the CRC refuses it, the client
/// retransmits, and the chaos log lifts to `frame-corrupt`.
fn fault_frame_corrupt() -> Vec<Diagnostic> {
    let schedule = aibench_chaos::ChaosSchedule::new(11).inject(
        aibench_chaos::ChaosSite::ClientToServer,
        1,
        aibench_chaos::ChaosKind::BitFlip { bit: 65 },
    );
    chaos_fault_probe("fixture/fault-frame-corrupt", schedule)
}

/// A mid-stream connection reset: the client reconnects and redeems its
/// lease, and the chaos log lifts to `connection-lost`.
fn fault_connection_lost() -> Vec<Diagnostic> {
    let schedule = aibench_chaos::ChaosSchedule::new(12).inject(
        aibench_chaos::ChaosSite::ServerToClient,
        4,
        aibench_chaos::ChaosKind::Reset,
    );
    chaos_fault_probe("fixture/fault-connection-lost", schedule)
}

/// A torn checkpoint write: CRC validation rejects the snapshot on load
/// and recovery falls back, and the chaos log lifts to `store-corrupt`.
fn fault_store_corrupt() -> Vec<Diagnostic> {
    let schedule = aibench_chaos::ChaosSchedule::new(13).inject(
        aibench_chaos::ChaosSite::Store,
        0,
        aibench_chaos::ChaosKind::TornWrite { keep: 8 },
    );
    chaos_fault_probe("fixture/fault-store-corrupt", schedule)
}

/// A server that forgets a disconnected client's buffered events and
/// result (`drop_lease`): the reconnecting client finds no lease to
/// redeem and is stranded.
fn chaos_dropped_lease() -> Vec<Diagnostic> {
    let config = ServeConfig {
        quirks: Quirks {
            drop_lease: true,
            ..Quirks::default()
        },
        ..ServeConfig::default()
    };
    chaos::check_lease_resume_with(&aibench::Registry::aibench(), config)
}

/// A server that ignores idempotency keys (`duplicate_submission`): a
/// retransmitted submit creates a second session instead of attaching to
/// the first.
fn chaos_duplicate_session() -> Vec<Diagnostic> {
    let config = ServeConfig {
        quirks: Quirks {
            duplicate_submission: true,
            ..Quirks::default()
        },
        ..ServeConfig::default()
    };
    chaos::check_idempotent_submit_with(&aibench::Registry::aibench(), config)
}

/// A server that ignores its admission bound (`ignore_queue_bound`):
/// nothing is ever shed and the queue grows without limit.
fn chaos_unbounded_queue() -> Vec<Diagnostic> {
    let config = ServeConfig {
        budget: 1,
        max_queue: 2,
        quirks: Quirks {
            ignore_queue_bound: true,
            ..Quirks::default()
        },
        ..ServeConfig::default()
    };
    chaos::check_load_shed_with(&aibench::Registry::aibench(), config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_fires_its_rule() {
        let expected_rules: &[(&str, &str)] = &[
            ("shape-mismatch", "channel-agreement"),
            ("flop-disagreement", "flop-crosscheck"),
            ("unmapped-kernel", "kernel-unmapped"),
            ("time-conservation", "time-conservation"),
            ("dead-parameter", "dead-parameter"),
            ("ckpt-truncation", "ckpt-truncated"),
            ("ckpt-bit-flip", "ckpt-crc"),
            ("ckpt-version-mismatch", "ckpt-version"),
            ("ckpt-orphan-section", "ckpt-orphan-section"),
            ("fault-non-finite-loss", "fault-non-finite-loss"),
            ("fault-loss-spike", "fault-loss-spike"),
            ("fault-non-finite-param", "fault-non-finite-param"),
            ("fault-exploding-grad-norm", "fault-exploding-grad-norm"),
            ("fault-kernel-panic", "fault-kernel-panic"),
            ("fault-checkpoint-io", "fault-checkpoint-io"),
            ("fault-stalled-progress", "fault-stalled-progress"),
            ("fault-budget-exhausted", "fault-budget-exhausted"),
            ("fault-straggler-delay", "fault-straggler-delay"),
            ("fault-worker-drop", "fault-worker-drop"),
            ("fault-corrupt-grad-shard", "fault-corrupt-grad-shard"),
            ("fault-lost-contribution", "fault-lost-contribution"),
            ("fault-frame-corrupt", "fault-frame-corrupt"),
            ("fault-connection-lost", "fault-connection-lost"),
            ("fault-store-corrupt", "fault-store-corrupt"),
            ("audit-racy-kernel", "region-race"),
            ("audit-unstable-reduction", "unstable-accumulation"),
            ("audit-unsnapshotted-state", "snapshot-coverage"),
            ("audit-rng-in-region", "rng-in-region"),
            ("audit-thread-chunking", "thread-dependent-chunking"),
            ("serve-starved-tenant", "serve-fair-share"),
            ("serve-lost-park-snapshot", "serve-preemption-snapshot"),
            ("serve-budget-overcommit", "serve-budget-overcommit"),
            ("chaos-dropped-lease", "chaos-lease-resume"),
            ("chaos-duplicate-session", "chaos-idempotent-submit"),
            ("chaos-unbounded-queue", "chaos-load-shed"),
        ];
        for &(fixture, rule) in expected_rules {
            let diags = run(fixture).expect("known fixture");
            assert!(
                diags.iter().any(|d| d.rule == rule),
                "fixture `{fixture}` did not fire `{rule}`: {diags:?}"
            );
        }
    }

    #[test]
    fn unknown_fixture_is_none() {
        assert!(run("no-such-fixture").is_none());
    }
}

//! Forward shape inference over [`ModelSpec`] layer graphs.
//!
//! The checker walks a spec's layers propagating an abstract activation
//! shape ([`Flow`]) and fires a structured [`Diagnostic`] whenever a
//! layer's declared geometry cannot consume the running shape. The rules
//! are deliberately independent of `aibench-opcount` and `aibench-gpusim`:
//! they re-derive what each layer must see from its own fields.
//!
//! Dataflow annotations on [`Layer::role`] steer the walk: a `Head` layer
//! restarts propagation (new input or reseeded decoder state), and `Side`
//! layers form a parallel branch that is checked against itself without
//! disturbing the main chain.
//!
//! Shared repeats (`share_params == true`) model *parallel instances* of
//! one sub-network (RoI heads, per-slice decoders): the transition is
//! applied once and the instance count is remembered, because later
//! aggregate layers (a softmax over all proposals) are sized against it.
//! Non-shared repeats compose sequentially, so the layer must be
//! self-composable and the transition is applied `repeat` times.

use crate::Diagnostic;
use aibench_models::{Layer, LayerKind, LayerRole, ModelSpec};

/// Abstract activation shape flowing between layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// A `c`×`h`×`w` feature volume.
    Image {
        /// Channels.
        c: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// A sequence of `len` positions of width `d`.
    Seq {
        /// Positions.
        len: usize,
        /// Feature width.
        d: usize,
    },
    /// A flat feature vector of width `d`.
    Flat {
        /// Feature width.
        d: usize,
    },
    /// Unconstrained (segment entry; nothing to check against yet).
    Unknown,
}

impl Flow {
    /// Total element count, when the shape is known.
    pub fn elems(&self) -> Option<usize> {
        match *self {
            Flow::Image { c, h, w } => Some(c * h * w),
            Flow::Seq { len, d } => Some(len * d),
            Flow::Flat { d } => Some(d),
            Flow::Unknown => None,
        }
    }

    fn describe(&self) -> String {
        match *self {
            Flow::Image { c, h, w } => format!("image {c}x{h}x{w}"),
            Flow::Seq { len, d } => format!("seq {len}x{d}"),
            Flow::Flat { d } => format!("flat {d}"),
            Flow::Unknown => "unknown".to_string(),
        }
    }
}

/// A violated transition: which rule, what the layer needed, what arrived.
struct Broken {
    rule: &'static str,
    expected: String,
    found: String,
}

impl Broken {
    fn new(rule: &'static str, expected: impl Into<String>, found: impl Into<String>) -> Self {
        Broken {
            rule,
            expected: expected.into(),
            found: found.into(),
        }
    }
}

/// The declared output shape of a layer, independent of its input. Used to
/// seed segment heads and to resynchronize after a violation so a single
/// bug does not cascade into every downstream layer.
fn output_of(kind: &LayerKind, input: Flow) -> Flow {
    match *kind {
        LayerKind::Conv2d {
            c_out,
            h_out,
            w_out,
            ..
        }
        | LayerKind::ConvTranspose2d {
            c_out,
            h_out,
            w_out,
            ..
        } => Flow::Image {
            c: c_out,
            h: h_out,
            w: w_out,
        },
        LayerKind::Linear { d_out, .. } => match input {
            Flow::Seq { len, d } if d != 0 => Flow::Seq { len, d: d_out },
            _ => Flow::Flat { d: d_out },
        },
        LayerKind::BatchNorm2d { c, h, w } => Flow::Image { c, h, w },
        LayerKind::LayerNorm { rows, d } => Flow::Seq { len: rows, d },
        LayerKind::Pool {
            c, h_out, w_out, ..
        } => Flow::Image {
            c,
            h: h_out,
            w: w_out,
        },
        LayerKind::Embedding { dim, lookups, .. } => Flow::Seq {
            len: lookups,
            d: dim,
        },
        LayerKind::Rnn { d_h, steps, .. } => Flow::Seq { len: steps, d: d_h },
        LayerKind::Attention { d_model, seq_q, .. } => Flow::Seq {
            len: seq_q,
            d: d_model,
        },
        LayerKind::GridSample { c, h, w } => Flow::Image { c, h, w },
        // Pointwise layers pass the shape through.
        LayerKind::Relu { .. }
        | LayerKind::Activation { .. }
        | LayerKind::Softmax { .. }
        | LayerKind::Elementwise { .. } => input,
    }
}

/// Applies one layer to `input`, returning the output shape or the broken
/// rule. `instances` is the parallel-instance count of the running shape
/// (from an upstream shared repeat); `concat_embed` is `Some(len, d)` when
/// the previous layer was an embedding whose output the walker may widen
/// (side-by-side feature concatenation, as in NCF's dual embeddings).
fn transition(
    kind: &LayerKind,
    input: Flow,
    instances: usize,
    concat_embed: Option<(usize, usize)>,
) -> Result<Flow, Broken> {
    let elems = input.elems();
    match *kind {
        LayerKind::Conv2d {
            c_in,
            k,
            h_out,
            w_out,
            ..
        } => {
            match input {
                Flow::Image { c, h, w } => {
                    if c != c_in {
                        return Err(Broken::new(
                            "channel-agreement",
                            format!("c_in = {c}"),
                            format!("c_in = {c_in}"),
                        ));
                    }
                    if h_out > h || w_out > w {
                        return Err(Broken::new(
                            "conv-geometry",
                            format!("output no larger than {h}x{w}"),
                            format!("{h_out}x{w_out}"),
                        ));
                    }
                }
                Flow::Flat { d } => {
                    // Unflatten: a conv over a vector reshaped to c_in maps.
                    if !d.is_multiple_of(c_in) {
                        return Err(Broken::new(
                            "unflatten",
                            format!("width divisible by c_in = {c_in}"),
                            format!("width {d}"),
                        ));
                    }
                    let area = d / c_in;
                    let side = (area as f64).sqrt().round() as usize;
                    if side * side == area && h_out > side {
                        return Err(Broken::new(
                            "conv-geometry",
                            format!("output no larger than {side}x{side}"),
                            format!("{h_out}x{w_out}"),
                        ));
                    }
                }
                Flow::Seq { .. } => {
                    return Err(Broken::new(
                        "dataflow-kind",
                        "image or flat input for Conv2d",
                        input.describe(),
                    ));
                }
                Flow::Unknown => {}
            }
            if k == 0 || h_out == 0 || w_out == 0 {
                return Err(Broken::new(
                    "degenerate-geometry",
                    "nonzero kernel and output extent",
                    format!("k={k}, out {h_out}x{w_out}"),
                ));
            }
            Ok(output_of(kind, input))
        }
        LayerKind::ConvTranspose2d {
            c_in, h_out, w_out, ..
        } => {
            match input {
                Flow::Image { c, h, w } => {
                    if c != c_in {
                        return Err(Broken::new(
                            "channel-agreement",
                            format!("c_in = {c}"),
                            format!("c_in = {c_in}"),
                        ));
                    }
                    if h_out < h || w_out < w {
                        return Err(Broken::new(
                            "deconv-geometry",
                            format!("output no smaller than {h}x{w}"),
                            format!("{h_out}x{w_out}"),
                        ));
                    }
                }
                Flow::Flat { d } => {
                    if !d.is_multiple_of(c_in) {
                        return Err(Broken::new(
                            "unflatten",
                            format!("width divisible by c_in = {c_in}"),
                            format!("width {d}"),
                        ));
                    }
                    let area = d / c_in;
                    let side = (area as f64).sqrt().round() as usize;
                    if side * side == area && h_out < side {
                        return Err(Broken::new(
                            "deconv-geometry",
                            format!("output no smaller than {side}x{side}"),
                            format!("{h_out}x{w_out}"),
                        ));
                    }
                }
                Flow::Seq { .. } => {
                    return Err(Broken::new(
                        "dataflow-kind",
                        "image or flat input for ConvTranspose2d",
                        input.describe(),
                    ));
                }
                Flow::Unknown => {}
            }
            Ok(output_of(kind, input))
        }
        LayerKind::Linear { d_in, d_out } => {
            if d_out == 0 || d_in == 0 {
                return Err(Broken::new(
                    "degenerate-geometry",
                    "nonzero feature widths",
                    format!("{d_in} -> {d_out}"),
                ));
            }
            match input {
                Flow::Flat { d } => {
                    if d != d_in {
                        return Err(Broken::new(
                            "feature-agreement",
                            format!("d_in = {d}"),
                            format!("d_in = {d_in}"),
                        ));
                    }
                    Ok(Flow::Flat { d: d_out })
                }
                Flow::Image { c, h, w } => {
                    if c * h * w != d_in {
                        return Err(Broken::new(
                            "flatten-agreement",
                            format!("d_in = {c}*{h}*{w} = {}", c * h * w),
                            format!("d_in = {d_in}"),
                        ));
                    }
                    Ok(Flow::Flat { d: d_out })
                }
                Flow::Seq { len, d } => {
                    if d == d_in || d_in == 2 * d {
                        // Applied per position (a doubled width consumes a
                        // bidirectional RNN's concatenated directions).
                        Ok(Flow::Seq { len, d: d_out })
                    } else if len * d == d_in {
                        // Applied to the flattened sequence.
                        Ok(Flow::Flat { d: d_out })
                    } else {
                        Err(Broken::new(
                            "feature-agreement",
                            format!(
                                "d_in = {d} (per position), {} (bidirectional), or {} (flattened)",
                                2 * d,
                                len * d
                            ),
                            format!("d_in = {d_in}"),
                        ))
                    }
                }
                Flow::Unknown => Ok(Flow::Flat { d: d_out }),
            }
        }
        LayerKind::BatchNorm2d { c, h, w } => {
            if let Flow::Image {
                c: ci,
                h: hi,
                w: wi,
            } = input
            {
                if (ci, hi, wi) != (c, h, w) {
                    return Err(Broken::new(
                        "batchnorm-geometry",
                        format!("{ci}x{hi}x{wi}"),
                        format!("{c}x{h}x{w}"),
                    ));
                }
            } else if input != Flow::Unknown {
                return Err(Broken::new(
                    "dataflow-kind",
                    "image input for BatchNorm2d",
                    input.describe(),
                ));
            }
            Ok(Flow::Image { c, h, w })
        }
        LayerKind::LayerNorm { rows, d } => match input {
            Flow::Seq { len, d: di } => {
                if len != rows || di != d {
                    Err(Broken::new(
                        "layernorm-geometry",
                        format!("{len} rows of width {di}"),
                        format!("{rows} rows of width {d}"),
                    ))
                } else {
                    Ok(input)
                }
            }
            Flow::Flat { d: di } => {
                if rows != 1 || di != d {
                    Err(Broken::new(
                        "layernorm-geometry",
                        format!("1 row of width {di}"),
                        format!("{rows} rows of width {d}"),
                    ))
                } else {
                    Ok(input)
                }
            }
            Flow::Image { .. } => {
                if elems == Some(rows * d) {
                    Ok(input)
                } else {
                    Err(Broken::new(
                        "layernorm-geometry",
                        format!("{} elements", elems.unwrap_or(0)),
                        format!("{rows}x{d} = {}", rows * d),
                    ))
                }
            }
            Flow::Unknown => Ok(Flow::Seq { len: rows, d }),
        },
        LayerKind::Relu { n } => {
            if let Some(e) = elems {
                if n != e {
                    return Err(Broken::new(
                        "activation-size",
                        format!("n = {e}"),
                        format!("n = {n}"),
                    ));
                }
            }
            Ok(input)
        }
        // Sigmoid/tanh layers may run several times over the same stream
        // (gates, iterative refinement), so any whole multiple is legal.
        LayerKind::Activation { n } | LayerKind::Elementwise { n, .. } => {
            if let Some(e) = elems {
                if e == 0 || !n.is_multiple_of(e) {
                    return Err(Broken::new(
                        "activation-size",
                        format!("n = multiple of {e}"),
                        format!("n = {n}"),
                    ));
                }
            }
            Ok(input)
        }
        LayerKind::Pool { c, h_out, w_out, k } => {
            if let Flow::Image { c: ci, h, w } = input {
                if ci != c {
                    return Err(Broken::new(
                        "channel-agreement",
                        format!("c = {ci}"),
                        format!("c = {c}"),
                    ));
                }
                if h_out > h || w_out > w {
                    return Err(Broken::new(
                        "pool-geometry",
                        format!("output no larger than {h}x{w}"),
                        format!("{h_out}x{w_out}"),
                    ));
                }
                if k > h.max(w) {
                    return Err(Broken::new(
                        "pool-window",
                        format!("window within {h}x{w} input"),
                        format!("k = {k}"),
                    ));
                }
            } else if input != Flow::Unknown {
                return Err(Broken::new(
                    "dataflow-kind",
                    "image input for Pool",
                    input.describe(),
                ));
            }
            Ok(Flow::Image {
                c,
                h: h_out,
                w: w_out,
            })
        }
        LayerKind::Embedding {
            vocab,
            dim,
            lookups,
        } => {
            if vocab == 0 || dim == 0 || lookups == 0 {
                return Err(Broken::new(
                    "degenerate-geometry",
                    "nonzero vocab/dim/lookups",
                    format!("{vocab}/{dim}/{lookups}"),
                ));
            }
            // Embeddings read token ids, not the previous activation, so
            // they always reseed the flow — except that two embeddings in a
            // row with equal lookup counts concatenate their features.
            if let Some((len, d)) = concat_embed {
                if len == lookups {
                    return Ok(Flow::Seq { len, d: d + dim });
                }
            }
            Ok(Flow::Seq {
                len: lookups,
                d: dim,
            })
        }
        LayerKind::Rnn {
            d_in, d_h, steps, ..
        } => {
            if d_h == 0 || steps == 0 {
                return Err(Broken::new(
                    "degenerate-geometry",
                    "nonzero hidden width and steps",
                    format!("d_h = {d_h}, steps = {steps}"),
                ));
            }
            match input {
                // Sequence input: widths must agree per position; a doubled
                // input width means the previous (bidirectional) stack's two
                // directions are concatenated. Step counts are *not*
                // checked: encoder-decoder stacks legally change length.
                Flow::Seq { d, .. } => {
                    if d_in != d && d_in != 2 * d {
                        return Err(Broken::new(
                            "rnn-input-width",
                            format!("d_in = {d} or {} (bidirectional concat)", 2 * d),
                            format!("d_in = {d_in}"),
                        ));
                    }
                }
                // Image input (spectrograms): the model may feed whole
                // frames (c*h per step across w steps), flattened volumes,
                // or per-channel features.
                Flow::Image { c, h, w } => {
                    let frame_ok = d_in == c * h && steps == w;
                    if d_in != c * h * w && !frame_ok && d_in != c {
                        return Err(Broken::new(
                            "rnn-input-width",
                            format!(
                                "d_in from {c}x{h}x{w} (volume {}, frame {}, channels {c})",
                                c * h * w,
                                c * h
                            ),
                            format!("d_in = {d_in}"),
                        ));
                    }
                }
                Flow::Flat { d } => {
                    if d_in != d {
                        return Err(Broken::new(
                            "rnn-input-width",
                            format!("d_in = {d}"),
                            format!("d_in = {d_in}"),
                        ));
                    }
                }
                Flow::Unknown => {}
            }
            Ok(Flow::Seq { len: steps, d: d_h })
        }
        LayerKind::Attention {
            d_model,
            heads,
            seq_q,
            seq_k,
        } => {
            // The head-divisibility rule binds even at a segment entry.
            if heads == 0 || !d_model.is_multiple_of(heads) {
                return Err(Broken::new(
                    "attention-heads",
                    format!("d_model divisible by {heads} heads"),
                    format!("d_model = {d_model}"),
                ));
            }
            if seq_q == 0 || seq_k == 0 {
                return Err(Broken::new(
                    "degenerate-geometry",
                    "nonzero query/key lengths",
                    format!("seq_q = {seq_q}, seq_k = {seq_k}"),
                ));
            }
            match input {
                Flow::Seq { len, d } => {
                    if d != d_model {
                        return Err(Broken::new(
                            "feature-agreement",
                            format!("d_model = {d}"),
                            format!("d_model = {d_model}"),
                        ));
                    }
                    // Queries come from the running sequence (possibly a
                    // prefix during decoding); keys may come from a
                    // cross-attended encoder, so seq_k is unconstrained.
                    if seq_q > len {
                        return Err(Broken::new(
                            "attention-length",
                            format!("seq_q <= {len}"),
                            format!("seq_q = {seq_q}"),
                        ));
                    }
                }
                Flow::Flat { .. } | Flow::Image { .. } => {
                    return Err(Broken::new(
                        "dataflow-kind",
                        "sequence input for Attention",
                        input.describe(),
                    ));
                }
                Flow::Unknown => {}
            }
            Ok(Flow::Seq {
                len: seq_q,
                d: d_model,
            })
        }
        LayerKind::Softmax { rows, classes } => {
            if classes == 0 || rows == 0 {
                return Err(Broken::new(
                    "degenerate-geometry",
                    "nonzero rows and classes",
                    format!("{rows}x{classes}"),
                ));
            }
            // A softmax may normalize the running activation exactly, per
            // parallel instance (one row per RoI head), or over per-anchor
            // class columns carved out of a larger prediction map — every
            // case requires the class width to tile the element count.
            let ok = match input {
                Flow::Seq { len, d } => {
                    (rows == len && classes == d) || (len * d).is_multiple_of(classes)
                }
                Flow::Flat { d } => {
                    (rows * classes == d)
                        || (rows == instances && d.is_multiple_of(classes))
                        || d.is_multiple_of(classes)
                }
                Flow::Image { .. } => elems.is_some_and(|e| e.is_multiple_of(classes)),
                Flow::Unknown => true,
            };
            if !ok {
                return Err(Broken::new(
                    "softmax-geometry",
                    format!("{} elements tiled by class width", elems.unwrap_or(0)),
                    format!("{rows} rows x {classes} classes"),
                ));
            }
            Ok(input)
        }
        LayerKind::GridSample { c, h, w } => {
            if let Flow::Image { c: ci, .. } = input {
                // Sampling resamples the spatial grid but preserves depth.
                if ci != c {
                    return Err(Broken::new(
                        "channel-agreement",
                        format!("c = {ci}"),
                        format!("c = {c}"),
                    ));
                }
            } else if !matches!(input, Flow::Unknown) {
                return Err(Broken::new(
                    "dataflow-kind",
                    "image input for GridSample",
                    input.describe(),
                ));
            }
            Ok(Flow::Image { c, h, w })
        }
    }
}

/// Shape-propagation state for one chain (main or side branch).
#[derive(Clone, Copy)]
struct Chain {
    flow: Flow,
    /// Parallel instances of `flow` produced by an upstream shared repeat.
    instances: usize,
    /// Set when the last layer was an embedding: (lookups, total width).
    embed: Option<(usize, usize)>,
}

impl Chain {
    fn start() -> Self {
        Chain {
            flow: Flow::Unknown,
            instances: 1,
            embed: None,
        }
    }

    /// Runs one layer through this chain, appending any violation.
    fn step(&mut self, bench: &str, index: usize, layer: &Layer, out: &mut Vec<Diagnostic>) {
        let input = if layer.role == LayerRole::Head {
            Flow::Unknown
        } else {
            self.flow
        };
        let reps = layer.repeat.max(1);
        let (next, next_instances) = if layer.share_params && reps > 1 {
            // Parallel instances of one shared sub-layer: one transition.
            let r = transition(&layer.kind, input, self.instances, self.embed);
            (r, reps)
        } else {
            // Sequential composition: fold the transition `repeat` times,
            // reporting at most one violation per layer entry.
            let mut cur = input;
            let mut result = Ok(cur);
            for step in 0..reps {
                match transition(
                    &layer.kind,
                    cur,
                    self.instances,
                    if step == 0 { self.embed } else { None },
                ) {
                    Ok(f) => {
                        cur = f;
                        result = Ok(f);
                    }
                    Err(b) => {
                        result = Err(b);
                        break;
                    }
                }
            }
            (result, 1)
        };
        match next {
            Ok(f) => {
                self.flow = f;
                self.instances = next_instances;
            }
            Err(b) => {
                out.push(Diagnostic::at_layer(
                    bench, index, b.rule, b.expected, b.found,
                ));
                // Resynchronize on the layer's own declared output so one
                // defect does not cascade down the rest of the chain.
                self.flow = output_of(&layer.kind, Flow::Unknown);
                self.instances = next_instances;
            }
        }
        self.embed = match (&layer.kind, self.flow) {
            (LayerKind::Embedding { .. }, Flow::Seq { len, d }) => Some((len, d)),
            _ => None,
        };
    }
}

/// Validates every shape/dataflow rule over one spec. Returns all
/// violations (empty when the spec is consistent).
pub fn check_spec(bench: &str, spec: &ModelSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut main = Chain::start();
    let mut side: Option<Chain> = None;
    for (i, layer) in spec.layers.iter().enumerate() {
        if layer.role == LayerRole::Side {
            // A side branch taps the current main activation; consecutive
            // side layers chain among themselves.
            let mut branch = side.take().unwrap_or(Chain {
                flow: main.flow,
                ..main
            });
            branch.step(bench, i, layer, &mut out);
            side = Some(branch);
        } else {
            side = None;
            main.step(bench, i, layer, &mut out);
        }
    }
    if spec.layers.is_empty() {
        out.push(Diagnostic::global(
            bench,
            "empty-spec",
            "at least one layer",
            "0 layers",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_models::RnnKind;

    fn spec(layers: Vec<Layer>) -> ModelSpec {
        ModelSpec::new("mini", layers, 1, 1, 1)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_conv_chain_passes() {
        let s = spec(vec![
            Layer::once(LayerKind::Conv2d {
                c_in: 3,
                c_out: 16,
                k: 3,
                h_out: 32,
                w_out: 32,
            }),
            Layer::once(LayerKind::BatchNorm2d {
                c: 16,
                h: 32,
                w: 32,
            }),
            Layer::once(LayerKind::Relu { n: 16 * 32 * 32 }),
            Layer::once(LayerKind::Pool {
                c: 16,
                h_out: 16,
                w_out: 16,
                k: 2,
            }),
            Layer::once(LayerKind::Linear {
                d_in: 16 * 16 * 16,
                d_out: 10,
            }),
            Layer::once(LayerKind::Softmax {
                rows: 1,
                classes: 10,
            }),
        ]);
        assert!(check_spec("mini", &s).is_empty());
    }

    #[test]
    fn channel_mismatch_fires() {
        let s = spec(vec![
            Layer::once(LayerKind::Conv2d {
                c_in: 3,
                c_out: 16,
                k: 3,
                h_out: 32,
                w_out: 32,
            }),
            Layer::once(LayerKind::Conv2d {
                c_in: 32,
                c_out: 8,
                k: 3,
                h_out: 32,
                w_out: 32,
            }),
        ]);
        assert_eq!(rules(&check_spec("mini", &s)), vec!["channel-agreement"]);
    }

    #[test]
    fn conv_cannot_upsample() {
        let s = spec(vec![
            Layer::once(LayerKind::Conv2d {
                c_in: 3,
                c_out: 16,
                k: 3,
                h_out: 8,
                w_out: 8,
            }),
            Layer::once(LayerKind::Conv2d {
                c_in: 16,
                c_out: 16,
                k: 3,
                h_out: 16,
                w_out: 16,
            }),
        ]);
        assert_eq!(rules(&check_spec("mini", &s)), vec!["conv-geometry"]);
    }

    #[test]
    fn deconv_cannot_downsample() {
        let s = spec(vec![
            Layer::once(LayerKind::Conv2d {
                c_in: 3,
                c_out: 16,
                k: 3,
                h_out: 8,
                w_out: 8,
            }),
            Layer::once(LayerKind::ConvTranspose2d {
                c_in: 16,
                c_out: 8,
                k: 4,
                h_out: 4,
                w_out: 4,
            }),
        ]);
        assert_eq!(rules(&check_spec("mini", &s)), vec!["deconv-geometry"]);
    }

    #[test]
    fn linear_width_mismatch_fires() {
        let s = spec(vec![
            Layer::once(LayerKind::Linear {
                d_in: 64,
                d_out: 32,
            }),
            Layer::once(LayerKind::Linear { d_in: 33, d_out: 8 }),
        ]);
        assert_eq!(rules(&check_spec("mini", &s)), vec!["feature-agreement"]);
    }

    #[test]
    fn relu_size_must_match_exactly() {
        let s = spec(vec![
            Layer::once(LayerKind::Linear {
                d_in: 64,
                d_out: 32,
            }),
            Layer::once(LayerKind::Relu { n: 31 }),
        ]);
        assert_eq!(rules(&check_spec("mini", &s)), vec!["activation-size"]);
    }

    #[test]
    fn attention_head_divisibility_fires() {
        let s = spec(vec![Layer::once(LayerKind::Attention {
            d_model: 512,
            heads: 7,
            seq_q: 10,
            seq_k: 10,
        })]);
        assert_eq!(rules(&check_spec("mini", &s)), vec!["attention-heads"]);
    }

    #[test]
    fn rnn_width_mismatch_fires_and_bidirectional_passes() {
        let bad = spec(vec![
            Layer::once(LayerKind::Rnn {
                kind: RnnKind::Lstm,
                d_in: 10,
                d_h: 20,
                steps: 5,
            }),
            Layer::once(LayerKind::Rnn {
                kind: RnnKind::Lstm,
                d_in: 30,
                d_h: 20,
                steps: 5,
            }),
        ]);
        assert_eq!(rules(&check_spec("mini", &bad)), vec!["rnn-input-width"]);
        let bidir = spec(vec![
            Layer::once(LayerKind::Rnn {
                kind: RnnKind::Gru,
                d_in: 10,
                d_h: 20,
                steps: 5,
            }),
            Layer::once(LayerKind::Rnn {
                kind: RnnKind::Gru,
                d_in: 40,
                d_h: 20,
                steps: 5,
            }),
        ]);
        assert!(check_spec("mini", &bidir).is_empty());
    }

    #[test]
    fn head_restarts_propagation() {
        // Without the Head annotation the 1x28x28 grid sample cannot
        // consume the 10-wide softmax output; with it, propagation
        // restarts and the spec is clean.
        let layers = |role| {
            vec![
                Layer::once(LayerKind::Linear {
                    d_in: 784,
                    d_out: 10,
                }),
                Layer::once(LayerKind::GridSample { c: 1, h: 28, w: 28 }).with_role(role),
            ]
        };
        assert_eq!(
            rules(&check_spec("mini", &spec(layers(LayerRole::Chain)))),
            vec!["dataflow-kind"]
        );
        assert!(check_spec("mini", &spec(layers(LayerRole::Head))).is_empty());
    }

    #[test]
    fn side_branch_preserves_main_chain() {
        let s = spec(vec![
            Layer::once(LayerKind::Conv2d {
                c_in: 3,
                c_out: 64,
                k: 3,
                h_out: 28,
                w_out: 28,
            }),
            // Side head taps the 64-channel map...
            Layer::side(LayerKind::Conv2d {
                c_in: 64,
                c_out: 8,
                k: 1,
                h_out: 28,
                w_out: 28,
            }),
            // ...and the main chain still sees 64 channels here.
            Layer::once(LayerKind::Conv2d {
                c_in: 64,
                c_out: 128,
                k: 3,
                h_out: 14,
                w_out: 14,
            }),
        ]);
        assert!(check_spec("mini", &s).is_empty());
    }

    #[test]
    fn side_branch_mismatch_fires() {
        let s = spec(vec![
            Layer::once(LayerKind::Conv2d {
                c_in: 3,
                c_out: 64,
                k: 3,
                h_out: 28,
                w_out: 28,
            }),
            Layer::side(LayerKind::Conv2d {
                c_in: 32,
                c_out: 8,
                k: 1,
                h_out: 28,
                w_out: 28,
            }),
        ]);
        assert_eq!(rules(&check_spec("mini", &s)), vec!["channel-agreement"]);
    }

    #[test]
    fn shared_repeat_sets_instances_for_softmax() {
        // 300 shared RoI heads of width 84 feeding a 300x21 softmax: legal
        // because each row of the softmax covers one instance and 21 | 84.
        let s = spec(vec![
            Layer::once(LayerKind::Linear {
                d_in: 64,
                d_out: 84,
            }),
            Layer::shared(
                LayerKind::Linear {
                    d_in: 84,
                    d_out: 84,
                },
                300,
            ),
            Layer::once(LayerKind::Softmax {
                rows: 300,
                classes: 21,
            }),
        ]);
        assert!(check_spec("mini", &s).is_empty());
    }

    #[test]
    fn sequential_repeat_must_self_compose() {
        let s = spec(vec![Layer::repeated(
            LayerKind::Linear {
                d_in: 32,
                d_out: 16,
            },
            2,
        )]);
        // 32 -> 16, then 16 into a d_in=32 layer: fires once.
        assert_eq!(rules(&check_spec("mini", &s)), vec!["feature-agreement"]);
    }

    #[test]
    fn one_defect_reports_once_not_cascading() {
        let s = spec(vec![
            Layer::once(LayerKind::Conv2d {
                c_in: 3,
                c_out: 16,
                k: 3,
                h_out: 32,
                w_out: 32,
            }),
            Layer::once(LayerKind::Conv2d {
                c_in: 99,
                c_out: 16,
                k: 3,
                h_out: 32,
                w_out: 32,
            }),
            // Consistent with layer 1's declared output: must not re-fire.
            Layer::once(LayerKind::BatchNorm2d {
                c: 16,
                h: 32,
                w: 32,
            }),
        ]);
        assert_eq!(check_spec("mini", &s).len(), 1);
    }

    #[test]
    fn embedding_concat_widens_features() {
        let s = spec(vec![
            Layer::once(LayerKind::Embedding {
                vocab: 100,
                dim: 8,
                lookups: 4,
            }),
            Layer::once(LayerKind::Embedding {
                vocab: 50,
                dim: 8,
                lookups: 4,
            }),
            Layer::once(LayerKind::Linear { d_in: 64, d_out: 1 }),
        ]);
        assert!(check_spec("mini", &s).is_empty());
    }
}

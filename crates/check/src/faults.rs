//! Fault-supervision lints over `aibench-fault`: the supervised runner's
//! contracts, checked per benchmark.
//!
//! * **Empty-schedule identity** — a supervised run with no injections must
//!   be bitwise identical to the plain runner, and the sentinels must stay
//!   silent on healthy training (no false positives).
//! * **Injection replay** — the same seed + the same fault schedule must
//!   reproduce the identical run: trajectory, fault log, and outcome.
//! * **Resume integrity** — rollback recovery must skip an unreadable
//!   newest snapshot and restore the next older one.
//! * **Fault-kind coverage** — every [`TrainFault`] kind has a seeded
//!   fixture whose defect is detected under its own rule.

use aibench::runner::{run_to_quality, RunConfig};
use aibench::{Benchmark, Registry};
use aibench_fault::{
    supervised_run, ActionTaken, FaultKind, FaultSchedule, SupervisedRun, SupervisorConfig,
    TrainFault,
};

use crate::Diagnostic;

/// Seed every fault lint trains under (matches the other dynamic probes).
const SEED: u64 = 1;

/// Short sessions are enough: the contracts under test are structural
/// (identity, replay, rollback), not convergence.
fn lint_config(max_epochs: usize) -> RunConfig {
    RunConfig {
        max_epochs,
        eval_every: 1,
        ..RunConfig::default()
    }
}

/// Maps a [`TrainFault`] kind name to the stable diagnostic rule its
/// detection is reported under.
pub fn rule_for_kind(kind: &str) -> &'static str {
    match kind {
        "non-finite-loss" => "fault-non-finite-loss",
        "loss-spike" => "fault-loss-spike",
        "non-finite-param" => "fault-non-finite-param",
        "exploding-grad-norm" => "fault-exploding-grad-norm",
        "kernel-panic" => "fault-kernel-panic",
        "checkpoint-io" => "fault-checkpoint-io",
        "stalled-progress" => "fault-stalled-progress",
        "budget-exhausted" => "fault-budget-exhausted",
        "straggler-delay" => "fault-straggler-delay",
        "worker-drop" => "fault-worker-drop",
        "corrupt-grad-shard" => "fault-corrupt-grad-shard",
        "lost-contribution" => "fault-lost-contribution",
        "frame-corrupt" => "fault-frame-corrupt",
        "connection-lost" => "fault-connection-lost",
        "store-corrupt" => "fault-store-corrupt",
        _ => "fault-unknown-kind",
    }
}

/// Renders a supervised run's fault log as diagnostics, one per event,
/// each under the rule of its fault kind. Used by the seeded fixtures: an
/// injected defect *must* surface here.
pub fn diagnose(code: &str, run: &SupervisedRun) -> Vec<Diagnostic> {
    run.faults
        .iter()
        .map(|event| {
            Diagnostic::global(
                code,
                rule_for_kind(event.fault.kind()),
                "a fault-free supervised run",
                format!("{} (action: {})", event.fault, event.action.kind()),
            )
        })
        .collect()
}

/// Renders a distributed run's fault log as diagnostics, one per event,
/// by lifting each [`aibench_dist::DistFaultEvent`] into the sequential
/// taxonomy ([`aibench_fault::FaultEvent::from_dist`]) and reporting it
/// under its kind's rule. Used by the distributed seeded fixtures.
pub fn diagnose_dist(code: &str, run: &aibench_dist::DistRunResult) -> Vec<Diagnostic> {
    run.faults
        .iter()
        .map(|event| {
            let lifted = aibench_fault::FaultEvent::from_dist(event);
            Diagnostic::global(
                code,
                rule_for_kind(lifted.fault.kind()),
                "a fault-free distributed run",
                format!(
                    "{} (action: {}, world after: {})",
                    lifted.fault,
                    lifted.action.kind(),
                    event.world_after
                ),
            )
        })
        .collect()
}

/// A supervised run under the empty schedule must be bitwise identical to
/// the plain runner and record zero faults.
pub fn check_empty_schedule_identity(benchmark: &Benchmark) -> Vec<Diagnostic> {
    let code = benchmark.id.code();
    let config = lint_config(2);
    let plain = run_to_quality(benchmark, SEED, &config);
    let supervised = supervised_run(
        benchmark,
        SEED,
        &config,
        &FaultSchedule::empty(),
        &SupervisorConfig::default(),
    );
    let mut out = Vec::new();
    if !plain.deterministic_eq(&supervised.result) {
        out.push(Diagnostic::global(
            code,
            "fault-empty-schedule-identity",
            "bitwise-identical trajectory under an empty fault schedule",
            format!(
                "plain ran {} epoch(s) to quality {:.6}; supervised ran {} to {:.6}",
                plain.epochs_run,
                plain.final_quality,
                supervised.result.epochs_run,
                supervised.result.final_quality
            ),
        ));
    }
    if !supervised.faults.is_empty() {
        out.push(Diagnostic::global(
            code,
            "fault-sentinel-false-positive",
            "silent sentinels on healthy training",
            supervised.fault_signature(),
        ));
    }
    out
}

/// The same seed + the same non-empty schedule must replay bit for bit:
/// the injections must actually land, and two runs must agree on the
/// trajectory, the fault log, and the outcome.
pub fn check_injection_replay(benchmark: &Benchmark) -> Vec<Diagnostic> {
    let code = benchmark.id.code();
    let config = lint_config(2);
    let schedule = FaultSchedule::new(SEED)
        .inject(1, FaultKind::GradNan)
        .inject(2, FaultKind::GradExplosion { scale: 1e12 });
    let sup = SupervisorConfig::default();
    let first = supervised_run(benchmark, SEED, &config, &schedule, &sup);
    let second = supervised_run(benchmark, SEED, &config, &schedule, &sup);
    let mut out = Vec::new();
    if first.faults.is_empty() {
        out.push(Diagnostic::global(
            code,
            "fault-injection-inert",
            "scheduled gradient corruption reaches the trainer's parameters",
            "no fault detected under a corrupting schedule",
        ));
    }
    if !first.deterministic_eq(&second) {
        out.push(Diagnostic::global(
            code,
            "fault-replay-divergence",
            "identical runs under the same seed and schedule",
            format!(
                "fault logs `{}` vs `{}`, outcomes `{}` vs `{}`",
                first.fault_signature(),
                second.fault_signature(),
                first.outcome.signature(),
                second.outcome.signature()
            ),
        ));
    }
    out
}

/// Rollback recovery must skip an unreadable newest snapshot and restore
/// the next older one. Snapshots exist at epochs 1 and 2 when the fault
/// fires at epoch 3; the injected read failure forces the epoch-1 restore.
pub fn check_resume_integrity(registry: &Registry) -> Vec<Diagnostic> {
    let rule = "fault-resume-integrity";
    let Some(benchmark) = registry
        .benchmarks()
        .iter()
        .find(|b| b.id.code() == "DC-AI-C15")
    else {
        return vec![Diagnostic::global(
            "registry",
            rule,
            "DC-AI-C15 registered for the rollback probe",
            "benchmark missing from the registry",
        )];
    };
    let schedule = FaultSchedule::new(8)
        .inject(3, FaultKind::LoadFail)
        .inject(3, FaultKind::LossValue { value: f32::NAN });
    let run = supervised_run(
        benchmark,
        2,
        &lint_config(40),
        &schedule,
        &SupervisorConfig::default(),
    );
    let restored = run.faults.iter().find_map(|e| match e.action {
        ActionTaken::RolledBack { to_epoch, .. } => Some(to_epoch),
        _ => None,
    });
    match restored {
        Some(Some(1)) => Vec::new(),
        Some(other) => vec![Diagnostic::global(
            "DC-AI-C15",
            rule,
            "rollback skips the unreadable epoch-2 snapshot and restores epoch 1",
            format!("restored {other:?}"),
        )],
        None => vec![Diagnostic::global(
            "DC-AI-C15",
            rule,
            "a rollback recovery for the injected NaN loss",
            format!("fault log `{}`", run.fault_signature()),
        )],
    }
}

/// Every [`TrainFault`] kind must have a seeded fixture (named
/// `fault-<kind>`) whose injected defect is detected under that kind's
/// rule.
pub fn check_fixture_coverage() -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for kind in TrainFault::KINDS {
        let fixture = format!("fault-{kind}");
        let rule = rule_for_kind(kind);
        match crate::fixtures::run(&fixture) {
            Some(diags) if diags.iter().any(|d| d.rule == rule) => {}
            Some(diags) => out.push(Diagnostic::global(
                "fixtures",
                "fault-kind-coverage",
                format!("fixture `{fixture}` fires rule `{rule}`"),
                format!(
                    "fired {:?}",
                    diags.iter().map(|d| d.rule).collect::<Vec<_>>()
                ),
            )),
            None => out.push(Diagnostic::global(
                "fixtures",
                "fault-kind-coverage",
                format!("a seeded fixture named `{fixture}`"),
                "no such fixture",
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_benchmark_passes_identity_and_replay() {
        let registry = Registry::aibench();
        let b = registry.get("DC-AI-C15").unwrap();
        assert!(check_empty_schedule_identity(b).is_empty());
        assert!(check_injection_replay(b).is_empty());
    }

    #[test]
    fn resume_integrity_is_clean_on_the_real_stack() {
        assert!(check_resume_integrity(&Registry::aibench()).is_empty());
    }

    #[test]
    fn every_fault_kind_is_covered_by_a_fixture() {
        let missing = check_fixture_coverage();
        assert!(missing.is_empty(), "{missing:?}");
    }

    #[test]
    fn unknown_kind_maps_to_the_sentinel_rule() {
        assert_eq!(rule_for_kind("not-a-kind"), "fault-unknown-kind");
    }
}

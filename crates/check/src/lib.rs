//! `aibench-check`: static shape/dataflow validator and invariant lint
//! suite for the AIBench workspace.
//!
//! Three analyses live here, each independent of the code it checks:
//!
//! * [`shape`] — forward shape propagation over [`aibench_models::ModelSpec`]
//!   layer graphs (channel/feature agreement, conv/pool output geometry,
//!   RNN gate dimensions, attention head divisibility) plus an independent
//!   re-derivation of per-layer parameters and forward FLOPs that must
//!   agree with `aibench-opcount` *exactly*.
//! * [`trace`] — invariant lints over `aibench-gpusim` kernel traces and
//!   profiles: every kernel name maps to its Table-7 category, per-category
//!   times are conserved, stall fractions sum to one, the training/inference
//!   FLOP ratio respects the fwd:bwd convention, and inference traces are
//!   free of gradient/optimizer kernels.
//! * [`tape`] — a dynamic sanitizer for the autograd tape: one probe epoch
//!   per scaled model flags dead parameters (no training effect),
//!   NaN/Inf parameter values, and forward ops without gradcheck coverage.
//! * [`ckpt`] — checkpoint lints: snapshot bytes are validated against the
//!   `aibench-ckpt` wire format (magic, version, checksums, framing), and
//!   every benchmark's snapshot/restore round-trip must be byte-stable.
//! * [`audit`] — region-effect analyses over `aibench-audit`: cross-chunk
//!   race detection on recorded access sets, determinism lints (unstable
//!   accumulation, RNG in parallel regions, thread-dependent chunking),
//!   and snapshot-coverage diffing of each trainer's mutation fingerprint
//!   against its `save_state` tree.
//! * [`faults`] — fault-supervision lints over `aibench-fault`: an empty
//!   schedule must be bitwise identical to the plain runner, injections
//!   must replay bit for bit, rollback must skip unreadable snapshots, and
//!   every fault kind must have a seeded fixture that is detected.
//! * [`dist`] — distributed-training lints over `aibench-dist`: strided
//!   sharding must partition every batch, a 1-worker group must be bitwise
//!   identical to the sequential runner, distributed fault schedules must
//!   replay bit for bit, and multi-worker runs must be invariant to the
//!   thread count.
//! * [`serve`] — serving-layer lints over `aibench-serve`: a fixed request
//!   trace must replay to the identical schedule and bits at any thread
//!   count, a flooding tenant must not starve a lone one, every resume
//!   must restore its park snapshot's epoch, and the running set must
//!   never exceed the worker budget.
//! * [`chaos`] — chaos-hardening lints over `aibench-chaos`: a seeded
//!   chaos soak must replay bit for bit at any thread count, the empty
//!   schedule must be a true no-op, chaos must never change result bits,
//!   reset connections must lease-resume, retransmitted submissions must
//!   stay idempotent, and a full queue must shed load with a retryable
//!   rejection.
//!
//! [`fixtures`] holds seeded-defect inputs proving each rule fires; the
//! `aibench-check` binary runs everything over the benchmark registry and
//! exits nonzero on any violation.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod chaos;
pub mod ckpt;
pub mod counts;
pub mod dist;
pub mod faults;
pub mod fixtures;
pub mod serve;
pub mod shape;
pub mod tape;
pub mod trace;

use std::fmt;

/// One rule violation, with enough structure to locate and explain it.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Benchmark code or model name the violation belongs to.
    pub benchmark: String,
    /// Layer index within the spec, when the rule is layer-scoped.
    pub layer: Option<usize>,
    /// Stable rule identifier (e.g. `channel-agreement`).
    pub rule: &'static str,
    /// What the rule expected at this site.
    pub expected: String,
    /// What was actually found.
    pub found: String,
}

impl Diagnostic {
    /// Creates a layer-scoped diagnostic.
    pub fn at_layer(
        benchmark: impl Into<String>,
        layer: usize,
        rule: &'static str,
        expected: impl Into<String>,
        found: impl Into<String>,
    ) -> Self {
        Diagnostic {
            benchmark: benchmark.into(),
            layer: Some(layer),
            rule,
            expected: expected.into(),
            found: found.into(),
        }
    }

    /// Creates a benchmark-scoped diagnostic (no single layer to blame).
    pub fn global(
        benchmark: impl Into<String>,
        rule: &'static str,
        expected: impl Into<String>,
        found: impl Into<String>,
    ) -> Self {
        Diagnostic {
            benchmark: benchmark.into(),
            layer: None,
            rule,
            expected: expected.into(),
            found: found.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.layer {
            Some(i) => write!(
                f,
                "{} layer {}: [{}] expected {}, found {}",
                self.benchmark, i, self.rule, self.expected, self.found
            ),
            None => write!(
                f,
                "{}: [{}] expected {}, found {}",
                self.benchmark, self.rule, self.expected, self.found
            ),
        }
    }
}

/// Accumulated result of one or more checks.
#[derive(Debug, Default, Clone)]
pub struct CheckReport {
    /// Every violation found, in check order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of rule evaluations that ran (clean or not).
    pub checks_run: usize,
}

impl CheckReport {
    /// An empty report.
    pub fn new() -> Self {
        CheckReport::default()
    }

    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Folds another batch of diagnostics into this report.
    pub fn absorb(&mut self, diags: Vec<Diagnostic>) {
        self.checks_run += 1;
        self.diagnostics.extend(diags);
    }
}

/// Runs every static analysis (specs, counts, traces) over the full
/// benchmark registry, plus the gradcheck coverage lint. The dynamic tape
/// probe is excluded here because it trains every scaled model (seconds,
/// not milliseconds); call [`tape::probe_registry`] separately.
pub fn run_static(registry: &aibench::Registry) -> CheckReport {
    let mut report = CheckReport::new();
    for b in registry.benchmarks() {
        let spec = b.spec();
        let code = b.id.code();
        report.absorb(shape::check_spec(code, &spec));
        report.absorb(counts::verify_spec(code, &spec));
        report.absorb(trace::check_benchmark(code, &spec));
    }
    report.absorb(tape::check_gradcheck_coverage());
    report
}

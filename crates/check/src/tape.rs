//! Dynamic sanitizer for the autograd tape.
//!
//! [`probe_trainer`] runs one training epoch on a scaled model and flags
//! parameters the tape never moved (dead: disconnected from the loss or
//! shadowed by a bug in gradient routing) and parameters or gradients
//! that went non-finite. [`check_gradcheck_coverage`] is a static
//! companion lint: every differentiable op the `Graph` exposes must be
//! exercised by a `check_gradients` test somewhere in the autograd crate.

use crate::Diagnostic;
use aibench::Benchmark;
use aibench_models::Trainer;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Epoch budget for the dead-parameter probe: sparse-reward trainers
/// (policy gradients with a cold-start plateau) can legitimately leave
/// every weight untouched for an epoch or two, so a parameter is only
/// dead if nothing moves it within this many epochs.
const PROBE_EPOCHS: usize = 5;

/// Probes one trainer: snapshots every registered parameter, trains up to
/// `PROBE_EPOCHS` (five) epochs, and reports parameters the tape never moved
/// plus non-finite values or gradients.
pub fn probe_trainer(bench: &str, trainer: &mut dyn Trainer) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let params = trainer.params();
    if params.is_empty() {
        out.push(Diagnostic::global(
            bench,
            "empty-tape",
            "at least one registered parameter",
            "0 parameters",
        ));
        return out;
    }
    let before: Vec<Vec<f32>> = params.iter().map(|p| p.value().data().to_vec()).collect();
    for epoch in 0..PROBE_EPOCHS {
        let loss = trainer.train_epoch();
        if !loss.is_finite() {
            out.push(Diagnostic::global(
                bench,
                "nonfinite-loss",
                "a finite training loss",
                format!("{loss}"),
            ));
        }
        let _ = epoch;
        let all_moved = params
            .iter()
            .zip(&before)
            .all(|(p, old)| p.value().data() != old.as_slice());
        if all_moved {
            break;
        }
    }
    // Parameters registered under several optimizers (or aliased) appear
    // once per registration; report each name once.
    let mut seen = BTreeSet::new();
    for (p, old) in params.iter().zip(&before) {
        if !seen.insert(p.name()) {
            continue;
        }
        let val = p.value();
        let new = val.data();
        if new.iter().any(|x| !x.is_finite()) {
            out.push(Diagnostic::global(
                bench,
                "nonfinite-parameter",
                format!("finite values in `{}`", p.name()),
                "NaN/Inf entries".to_string(),
            ));
        }
        if p.grad().data().iter().any(|x| !x.is_finite()) {
            out.push(Diagnostic::global(
                bench,
                "nonfinite-gradient",
                format!("finite gradient for `{}`", p.name()),
                "NaN/Inf entries".to_string(),
            ));
        }
        if new == old.as_slice() {
            out.push(Diagnostic::global(
                bench,
                "dead-parameter",
                format!(
                    "`{}` to change within {PROBE_EPOCHS} training epochs",
                    p.name()
                ),
                "bitwise-identical values".to_string(),
            ));
        }
    }
    out
}

/// Builds and probes one registered benchmark at a fixed seed.
pub fn probe_benchmark(b: &Benchmark) -> Vec<Diagnostic> {
    let mut trainer = b.build(1);
    probe_trainer(b.id.code(), trainer.as_mut())
}

/// Probes every benchmark in a registry. This trains each scaled model
/// for one epoch, so it is the slow part of the suite.
pub fn probe_registry(registry: &aibench::Registry) -> crate::CheckReport {
    let mut report = crate::CheckReport::new();
    for b in registry.benchmarks() {
        report.absorb(probe_benchmark(b));
    }
    report
}

/// Ops that exist for inference or bookkeeping rather than training, so a
/// missing gradcheck is not a defect.
const GRADCHECK_ALLOWLIST: &[&str] = &["batch_norm2d_inference", "dropout"];

/// Locates the autograd crate's source tree relative to this crate.
fn autograd_src_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../autograd")
}

/// Statically lints gradcheck coverage: every `pub fn` op defined in the
/// autograd crate's `ops_*.rs` files must be invoked somewhere in that
/// crate's test code (inline `#[cfg(test)]` modules or `tests/`), unless
/// allowlisted as non-differentiable. Returns nothing when the autograd
/// sources are not present (e.g. an installed binary far from the repo).
pub fn check_gradcheck_coverage() -> Vec<Diagnostic> {
    check_gradcheck_coverage_in(&autograd_src_dir())
}

/// [`check_gradcheck_coverage`] against an explicit autograd crate root.
pub fn check_gradcheck_coverage_in(autograd_root: &Path) -> Vec<Diagnostic> {
    let src = autograd_root.join("src");
    if !src.is_dir() {
        return Vec::new();
    }
    let mut ops: Vec<String> = Vec::new();
    let mut test_text = String::new();
    let mut files: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(&src) {
        files.extend(entries.flatten().map(|e| e.path()));
    }
    if let Ok(entries) = fs::read_dir(autograd_root.join("tests")) {
        files.extend(entries.flatten().map(|e| e.path()));
    }
    files.sort();
    for path in files {
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("ops_") {
            // `pub fn foo(` at method indentation: the Graph op surface.
            for line in text.lines() {
                if let Some(rest) = line.strip_prefix("    pub fn ") {
                    if let Some(fn_name) = rest
                        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                        .next()
                    {
                        if !fn_name.is_empty() {
                            ops.push(fn_name.to_string());
                        }
                    }
                }
            }
        }
        // Inline test modules count, as does anything under tests/.
        if path
            .parent()
            .and_then(|p| p.file_name())
            .and_then(|n| n.to_str())
            == Some("tests")
        {
            test_text.push_str(&text);
        } else if let Some(idx) = text.find("#[cfg(test)]") {
            test_text.push_str(&text[idx..]);
        }
    }
    let mut out = Vec::new();
    for op in ops {
        if GRADCHECK_ALLOWLIST.contains(&op.as_str()) {
            continue;
        }
        let invoked = test_text
            .match_indices(&format!("{op}("))
            .any(|(i, _)| matches!(test_text[..i].chars().next_back(), Some('.') | Some(' ')));
        if !invoked {
            out.push(Diagnostic::global(
                "autograd",
                "gradcheck-coverage",
                format!("a test invoking `{op}`"),
                "no test-module call site".to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_autograd::{Graph, Param};
    use aibench_nn::{Optimizer, Sgd};
    use aibench_tensor::Tensor;

    /// A toy trainer with one live and one deliberately dead parameter.
    struct HalfDead {
        live: Param,
        dead: Param,
        opt: Sgd,
    }

    impl HalfDead {
        fn new() -> Self {
            let live = Param::new("live", Tensor::from_vec(vec![1.0, 2.0], &[2]));
            let dead = Param::new("dead", Tensor::from_vec(vec![3.0, 4.0], &[2]));
            let opt = Sgd::new(vec![live.clone(), dead.clone()], 0.1);
            HalfDead { live, dead, opt }
        }
    }

    impl Trainer for HalfDead {
        fn train_epoch(&mut self) -> f32 {
            let mut g = Graph::new();
            let x = g.param(&self.live);
            // `dead` never enters the graph.
            let sq = g.square(x);
            let loss = g.sum(sq);
            let out = g.value(loss).item();
            g.backward(loss);
            self.opt.step();
            self.opt.zero_grad();
            out
        }

        fn evaluate(&mut self) -> f64 {
            0.0
        }

        fn param_count(&self) -> usize {
            self.live.len() + self.dead.len()
        }

        fn params(&self) -> Vec<Param> {
            self.opt.params().to_vec()
        }

        fn save_state(&self, state: &mut aibench_ckpt::State) {
            aibench_ckpt::Snapshot::snapshot(&self.opt, state, "opt");
        }

        fn load_state(
            &mut self,
            state: &aibench_ckpt::State,
        ) -> Result<(), aibench_ckpt::CkptError> {
            aibench_ckpt::Restore::restore(&mut self.opt, state, "opt")
        }
    }

    #[test]
    fn dead_parameter_is_flagged_and_live_is_not() {
        let mut t = HalfDead::new();
        let diags = probe_trainer("toy", &mut t);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "dead-parameter");
        assert!(diags[0].expected.contains("dead"));
    }

    #[test]
    fn gradcheck_coverage_is_complete_in_this_repo() {
        let diags = check_gradcheck_coverage();
        assert!(
            diags.is_empty(),
            "uncovered ops: {:?}",
            diags.iter().map(|d| &d.expected).collect::<Vec<_>>()
        );
    }

    #[test]
    fn missing_source_tree_skips_gracefully() {
        assert!(check_gradcheck_coverage_in(Path::new("/nonexistent")).is_empty());
    }
}

//! Bridge to `aibench-audit`: region-effect race detection, determinism
//! lints, and snapshot-coverage analysis, rendered as check diagnostics.
//!
//! Depending on `aibench-audit` compiles `aibench-parallel` with its
//! `sanitize` feature, so the kernels running under this binary record the
//! access sets the audit analyzes. The heavy lifting — recording a
//! training epoch per benchmark at two thread counts and diffing the
//! effects — lives in [`aibench_audit::audit_benchmark`]; this module only
//! translates its findings into the [`Diagnostic`] shape the CLI reports.

use crate::Diagnostic;
use aibench::Benchmark;
use aibench_audit::Finding;

/// Converts audit findings into check diagnostics, preserving the audit's
/// rule identifiers (`region-race`, `unstable-accumulation`,
/// `rng-in-region`, `thread-dependent-chunking`, `snapshot-coverage`).
pub fn to_diagnostics(findings: Vec<Finding>) -> Vec<Diagnostic> {
    findings
        .into_iter()
        .map(|f| Diagnostic::global(f.subject, f.rule, f.expected, f.found))
        .collect()
}

/// Audits one benchmark end to end (recorded epoch, race + lint pass,
/// snapshot coverage, cross-thread-count chunking comparison).
pub fn audit_benchmark(b: &Benchmark) -> Vec<Diagnostic> {
    to_diagnostics(aibench_audit::audit_benchmark(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_map_to_global_diagnostics() {
        let diags = to_diagnostics(vec![Finding {
            subject: "DC-AI-C1".into(),
            rule: "region-race",
            expected: "disjoint access sets".into(),
            found: "overlap".into(),
        }]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].benchmark, "DC-AI-C1");
        assert_eq!(diags[0].rule, "region-race");
        assert_eq!(diags[0].layer, None);
    }

    #[test]
    fn first_registry_benchmark_audits_clean() {
        let registry = aibench::Registry::all();
        let b = &registry.benchmarks()[0];
        let diags = audit_benchmark(b);
        assert!(diags.is_empty(), "{diags:?}");
    }
}

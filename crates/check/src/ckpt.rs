//! Checkpoint lints: validates snapshot bytes against the `aibench-ckpt`
//! wire format and proves snapshot/restore round-trips are byte-stable for
//! every registered benchmark.
//!
//! [`check_snapshot`] is the lenient walker — it maps every defect the
//! format validator collects (bad magic, version skew, checksum failures,
//! truncation, framing damage, orphan bytes) onto stable rule names, so a
//! damaged checkpoint produces a full inventory of what is wrong rather
//! than only the first error. [`check_roundtrip`] is the semantic
//! companion: a fresh snapshot of a just-built trainer must validate
//! clean, restore into a rebuilt trainer, and re-snapshot to the *exact
//! same bytes* — the property resumable training rests on.

use crate::Diagnostic;
use aibench::ckpt::{restore_run, snapshot_run, PartialRun};
use aibench::runner::RunConfig;
use aibench::Benchmark;
use aibench_ckpt::{validate, CkptError};

/// Stable rule name for one validator error.
fn rule_for(err: &CkptError) -> &'static str {
    match err {
        CkptError::BadMagic => "ckpt-magic",
        CkptError::VersionMismatch { .. } => "ckpt-version",
        CkptError::HeaderChecksum => "ckpt-header-crc",
        CkptError::SectionChecksum { .. } => "ckpt-crc",
        CkptError::Truncated { .. } => "ckpt-truncated",
        CkptError::OrphanBytes { .. } => "ckpt-orphan-section",
        CkptError::DuplicateSection { .. } => "ckpt-duplicate-section",
        CkptError::Malformed { .. } => "ckpt-malformed",
        CkptError::MissingSection { .. }
        | CkptError::MissingKey { .. }
        | CkptError::WrongType { .. }
        | CkptError::ShapeMismatch { .. }
        | CkptError::MetaMismatch { .. } => "ckpt-missing",
        CkptError::Io { .. } => "ckpt-io",
    }
}

/// Lints raw snapshot bytes: every defect the format validator finds
/// becomes one diagnostic under its rule name. Clean bytes produce an
/// empty list.
pub fn check_snapshot(bench: &str, bytes: &[u8]) -> Vec<Diagnostic> {
    validate(bytes)
        .into_iter()
        .map(|err| {
            Diagnostic::global(
                bench,
                rule_for(&err),
                "a well-formed snapshot".to_string(),
                err.to_string(),
            )
        })
        .collect()
}

/// Round-trip lint for one benchmark: snapshot a freshly built trainer,
/// validate the bytes, restore into a rebuilt trainer, and require the
/// re-snapshot to be byte-identical. Any asymmetry here means a trainer's
/// `save_state`/`load_state` pair would silently perturb a resumed run.
pub fn check_roundtrip(b: &Benchmark) -> Vec<Diagnostic> {
    const SEED: u64 = 1;
    let code = b.id.code();
    let config = RunConfig::default();
    let trainer = b.build(SEED);
    let progress = PartialRun::fresh();
    let bytes = snapshot_run(b, SEED, &config, &progress, trainer.as_ref());

    let mut out = check_snapshot(code, &bytes);
    match restore_run(b, SEED, &config, &bytes) {
        Ok((restored, _)) => {
            let again = snapshot_run(b, SEED, &config, &progress, restored.as_ref());
            if again != bytes {
                out.push(Diagnostic::global(
                    code,
                    "ckpt-roundtrip",
                    "restore + re-snapshot to reproduce the bytes exactly",
                    format!(
                        "{} vs {} byte(s), first difference at offset {:?}",
                        bytes.len(),
                        again.len(),
                        bytes.iter().zip(&again).position(|(a, b)| a != b)
                    ),
                ));
            }
        }
        Err(err) => out.push(Diagnostic::global(
            code,
            "ckpt-roundtrip",
            "a fresh snapshot to restore cleanly",
            err.to_string(),
        )),
    }
    out
}

/// Runs the round-trip lint over every benchmark in a registry.
pub fn check_registry(registry: &aibench::Registry) -> crate::CheckReport {
    let mut report = crate::CheckReport::new();
    for b in registry.benchmarks() {
        report.absorb(check_roundtrip(b));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench::Registry;

    #[test]
    fn fresh_snapshots_lint_clean_for_every_benchmark() {
        let registry = Registry::all();
        let report = check_registry(&registry);
        assert!(
            report.is_clean(),
            "fresh snapshots produced diagnostics: {:?}",
            report.diagnostics
        );
        assert_eq!(report.checks_run, registry.benchmarks().len());
    }

    #[test]
    fn each_defect_maps_to_its_rule() {
        let r = Registry::aibench();
        let b = r.get("DC-AI-C15").unwrap();
        let trainer = b.build(1);
        let bytes = snapshot_run(
            b,
            1,
            &RunConfig::default(),
            &PartialRun::fresh(),
            trainer.as_ref(),
        );

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(check_snapshot("t", &bad)
            .iter()
            .any(|d| d.rule == "ckpt-magic"));

        // Payload bit flip → section CRC.
        let mut bad = bytes.clone();
        let last = bad.len() - 5;
        bad[last] ^= 0x01;
        assert!(check_snapshot("t", &bad)
            .iter()
            .any(|d| d.rule == "ckpt-crc"));

        // Truncation.
        let cut = bytes.len() / 2;
        assert!(check_snapshot("t", &bytes[..cut])
            .iter()
            .any(|d| d.rule == "ckpt-truncated"));

        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.extend_from_slice(b"junk");
        assert!(check_snapshot("t", &bad)
            .iter()
            .any(|d| d.rule == "ckpt-orphan-section"));

        // Clean bytes are clean.
        assert!(check_snapshot("t", &bytes).is_empty());
    }
}

//! Distributed-training lints over `aibench-dist`: the elastic
//! data-parallel engine's contracts, checked against the live registry.
//!
//! * **Shard partition** — strided sharding must partition every global
//!   batch: each example lands on exactly one rank, rank order preserves
//!   batch order, and re-sharding to a new world size re-partitions the
//!   same stream.
//! * **Single-worker identity** — a one-worker group with no membership
//!   changes and no faults must be bitwise identical to the sequential
//!   runner for the same seed and config.
//! * **Injection replay** — the same seed + the same distributed fault
//!   schedule must reproduce the identical run: trajectory, fault log,
//!   world trace, and logical time.
//! * **Thread invariance** — a multi-worker run must be bitwise identical
//!   at any thread count; the tree all-reduce's ordering discipline is
//!   what this exercises.

use aibench::distributed::run_distributed_to_quality;
use aibench::runner::{run_to_quality, RunConfig};
use aibench::{Benchmark, Registry};
use aibench_data::shard::shard_of_batch;
use aibench_dist::{DistConfig, DistFaultKind, DistSchedule};
use aibench_parallel::ParallelConfig;

use crate::Diagnostic;

/// Seed every distributed lint trains under (matches the fault lints).
const SEED: u64 = 1;

/// Benchmark code the group-level probes run on: cheap, deterministic,
/// and `DataParallel`-capable.
const PROBE: &str = "DC-AI-C15";

fn lint_config(max_epochs: usize) -> RunConfig {
    RunConfig {
        max_epochs,
        eval_every: 1,
        ..RunConfig::default()
    }
}

fn probe<'a>(registry: &'a Registry, rule: &'static str) -> Result<&'a Benchmark, Vec<Diagnostic>> {
    registry
        .benchmarks()
        .iter()
        .find(|b| b.id.code() == PROBE)
        .ok_or_else(|| {
            vec![Diagnostic::global(
                "registry",
                rule,
                format!("{PROBE} registered for the distributed probe"),
                "benchmark missing from the registry",
            )]
        })
}

/// Strided sharding must partition the batch: every global position on
/// exactly one rank, and concatenating shards rank-by-rank in stride
/// order reproduces the original batch exactly.
pub fn check_shard_partition() -> Vec<Diagnostic> {
    let rule = "dist-shard-partition";
    let mut out = Vec::new();
    for &(world, len) in &[(1usize, 7usize), (2, 8), (3, 10), (4, 16), (5, 4)] {
        // A non-trivial (non-identity) batch so ordering bugs can't hide.
        let batch: Vec<usize> = (0..len).map(|i| i * 3 + 1).collect();
        let shards: Vec<Vec<usize>> = (0..world)
            .map(|rank| shard_of_batch(&batch, world, rank))
            .collect();
        let total: usize = shards.iter().map(Vec::len).sum();
        if total != batch.len() {
            out.push(Diagnostic::global(
                "dist",
                rule,
                format!("{} example(s) across {} shard(s)", batch.len(), world),
                format!("{total} example(s) after sharding"),
            ));
            continue;
        }
        // Each position i of the batch belongs to rank i % world, at
        // in-shard offset i / world.
        for (i, &example) in batch.iter().enumerate() {
            let got = shards[i % world].get(i / world).copied();
            if got != Some(example) {
                out.push(Diagnostic::global(
                    "dist",
                    rule,
                    format!(
                        "batch position {i} = example {example} on rank {} offset {}",
                        i % world,
                        i / world
                    ),
                    format!("found {got:?}"),
                ));
            }
        }
    }
    out
}

/// A one-worker group with the empty schedule must be bitwise identical to
/// the sequential runner. Benchmarks without data-parallel hooks are
/// skipped (they cannot form a group at all).
pub fn check_single_worker_equivalence(benchmark: &Benchmark) -> Vec<Diagnostic> {
    if !benchmark.supports_data_parallel() {
        return Vec::new();
    }
    let code = benchmark.id.code();
    let config = lint_config(2);
    let plain = run_to_quality(benchmark, SEED, &config);
    let report = run_distributed_to_quality(benchmark, SEED, &config, &DistConfig::with_world(1))
        .expect("data-parallel support was checked above");
    let mut out = Vec::new();
    if !plain.deterministic_eq(&report.result) {
        out.push(Diagnostic::global(
            code,
            "dist-single-worker-identity",
            "a 1-worker group bitwise identical to the sequential runner",
            format!(
                "sequential ran {} epoch(s) to quality {:.6}; distributed ran {} to {:.6}",
                plain.epochs_run,
                plain.final_quality,
                report.result.epochs_run,
                report.result.final_quality
            ),
        ));
    }
    if !report.dist.faults.is_empty() {
        out.push(Diagnostic::global(
            code,
            "dist-sentinel-false-positive",
            "a silent fault log under the empty schedule",
            report.dist.fault_signatures().join(", "),
        ));
    }
    out
}

/// The same seed + the same distributed schedule must replay bit for bit,
/// and the injections must actually land in the fault log.
pub fn check_replay_stability(registry: &Registry) -> Vec<Diagnostic> {
    let rule = "dist-replay-divergence";
    let benchmark = match probe(registry, rule) {
        Ok(b) => b,
        Err(diags) => return diags,
    };
    let schedule = DistSchedule::empty()
        .inject(1, 2, 1, DistFaultKind::WorkerDrop)
        .inject(2, 1, 0, DistFaultKind::StragglerDelay { ticks: 2 });
    let cfg = DistConfig {
        schedule,
        ..DistConfig::with_world(2)
    };
    let config = lint_config(2);
    let first = run_distributed_to_quality(benchmark, SEED, &config, &cfg).expect("probe");
    let second = run_distributed_to_quality(benchmark, SEED, &config, &cfg).expect("probe");
    let mut out = Vec::new();
    if first.dist.faults.is_empty() {
        out.push(Diagnostic::global(
            PROBE,
            "dist-injection-inert",
            "scheduled worker faults reach the group's fault log",
            "no fault recorded under a faulting schedule",
        ));
    }
    if !first.dist.deterministic_eq(&second.dist) {
        out.push(Diagnostic::global(
            PROBE,
            rule,
            "identical distributed runs under the same seed and schedule",
            format!(
                "fault logs `{}` vs `{}`, world traces {:?} vs {:?}",
                first.dist.fault_signatures().join(","),
                second.dist.fault_signatures().join(","),
                first.dist.world_trace,
                second.dist.world_trace
            ),
        ));
    }
    out
}

/// A two-worker faulting run must be bitwise identical at 1 thread and at
/// 4 threads: thread count is an execution detail, never an input to the
/// trajectory. The pool is restored to its configured default afterwards.
pub fn check_thread_invariance(registry: &Registry) -> Vec<Diagnostic> {
    let rule = "dist-thread-variance";
    let benchmark = match probe(registry, rule) {
        Ok(b) => b,
        Err(diags) => return diags,
    };
    let cfg = DistConfig {
        schedule: DistSchedule::empty().inject(1, 1, 0, DistFaultKind::CorruptGradShard),
        ..DistConfig::with_world(2)
    };
    let config = lint_config(2);
    aibench_parallel::set_threads(1);
    let serial = run_distributed_to_quality(benchmark, SEED, &config, &cfg).expect("probe");
    aibench_parallel::set_threads(4);
    let threaded = run_distributed_to_quality(benchmark, SEED, &config, &cfg).expect("probe");
    ParallelConfig::default().install();
    if serial.dist.deterministic_eq(&threaded.dist) {
        Vec::new()
    } else {
        vec![Diagnostic::global(
            PROBE,
            rule,
            "bitwise-identical distributed runs at 1 and 4 threads",
            format!(
                "final quality {:.9} vs {:.9}, fault logs `{}` vs `{}`",
                serial.dist.final_quality,
                threaded.dist.final_quality,
                serial.dist.fault_signatures().join(","),
                threaded.dist.fault_signatures().join(",")
            ),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_partition_is_clean() {
        assert!(check_shard_partition().is_empty());
    }

    #[test]
    fn single_worker_group_matches_the_sequential_runner() {
        let registry = Registry::aibench();
        let b = registry.get(PROBE).unwrap();
        assert!(check_single_worker_equivalence(b).is_empty());
    }

    #[test]
    fn unsupported_benchmarks_are_skipped() {
        let registry = Registry::aibench();
        let gan = registry.get("DC-AI-C3").unwrap();
        assert!(check_single_worker_equivalence(gan).is_empty());
    }

    #[test]
    fn faulting_runs_replay_and_survive_thread_changes() {
        let registry = Registry::aibench();
        assert!(check_replay_stability(&registry).is_empty());
        assert!(check_thread_invariance(&registry).is_empty());
    }
}

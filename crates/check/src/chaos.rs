//! Chaos-layer lints over `aibench-chaos`: the serving stack's hardening
//! contracts, checked by soaking a live `ServerCore` under seeded chaos.
//!
//! * **Chaos determinism** — the same seeded chaos schedule soaked twice,
//!   and again at a different thread count, must replay the identical
//!   chaos-event log, schedule, and per-client results.
//! * **Empty-schedule identity** — a soak under the empty schedule must
//!   be indistinguishable from a plain `run_trace` replay: identical
//!   schedule signature, tick count, result bits, and zero recovery
//!   traffic.
//! * **Result invariance** — under any seeded chaos schedule, every
//!   accepted session's final `RunResult` must be bitwise identical to
//!   its chaos-free counterpart.
//! * **Lease resume** — a client whose connection is reset mid-stream
//!   must redeem its lease on reconnect and still receive its result.
//! * **Idempotent submit** — retransmitting a submit with the same
//!   `(tenant, submission)` key must attach to the existing session,
//!   never create a second one.
//! * **Load shed** — a full admission queue must shed with a retryable
//!   `overloaded` rejection, not queue without bound.
//!
//! Each quirk-sensitive lint has a `_with` variant taking an explicit
//! [`ServeConfig`] so the seeded-defect fixtures can switch on an
//! `aibench_serve::Quirks` flag and prove the rule fires.

use aibench::Registry;
use aibench_chaos::{run_soak, ChaosKind, ChaosSchedule, ChaosSite, SoakConfig};
use aibench_serve::{run_trace, RunRequest, ServeConfig, ServerCore};

use crate::Diagnostic;

/// Benchmark code every chaos lint soaks: cheap and deterministic.
const PROBE: &str = "DC-AI-C15";

fn probe_missing(rule: &'static str) -> Vec<Diagnostic> {
    vec![Diagnostic::global(
        "registry",
        rule,
        format!("{PROBE} registered for the chaos probe"),
        "benchmark missing from the registry",
    )]
}

fn has_probe(registry: &Registry) -> bool {
    registry.benchmarks().iter().any(|b| b.id.code() == PROBE)
}

/// The soak workload: three tenants, four short sessions.
fn soak_requests() -> Vec<RunRequest> {
    vec![
        RunRequest::new("acme", PROBE, 1, 3),
        RunRequest::new("acme", PROBE, 2, 2),
        RunRequest::new("zeta", PROBE, 3, 3),
        RunRequest::new("ops", PROBE, 4, 2).with_priority(3),
    ]
}

/// The seeded schedule the determinism and invariance lints share.
fn seeded_schedule() -> ChaosSchedule {
    ChaosSchedule::seeded(33, 60, 14)
}

/// The same seeded chaos soak run twice — and again at another thread
/// count — must replay the identical chaos log, schedule, and bits.
pub fn check_chaos_determinism(registry: &Registry) -> Vec<Diagnostic> {
    let rule = "chaos-determinism";
    if !has_probe(registry) {
        return probe_missing(rule);
    }
    let requests = soak_requests();
    let chaos = seeded_schedule();
    let mut out = Vec::new();

    aibench_parallel::set_threads(1);
    let first = run_soak(registry, &requests, &chaos, SoakConfig::default());
    let replay = run_soak(registry, &requests, &chaos, SoakConfig::default());
    aibench_parallel::set_threads(4);
    let threaded = run_soak(registry, &requests, &chaos, SoakConfig::default());
    aibench_parallel::ParallelConfig::default().install();

    if first.chaos_log.is_empty() {
        out.push(Diagnostic::global(
            PROBE,
            rule,
            "the seeded schedule actually fires injections",
            "an empty chaos log",
        ));
    }
    for (what, other) in [("replay", &replay), ("4-thread soak", &threaded)] {
        if first.chaos_signature() != other.chaos_signature() {
            out.push(Diagnostic::global(
                PROBE,
                rule,
                format!("the {what} reproduces the chaos-event log"),
                format!(
                    "`{}` vs `{}`",
                    first.chaos_signature(),
                    other.chaos_signature()
                ),
            ));
        } else if !first.deterministic_eq(other) {
            out.push(Diagnostic::global(
                PROBE,
                rule,
                format!("the {what} reproduces the schedule and every client's bits"),
                "identical chaos log but diverging soak outcomes".to_string(),
            ));
        }
    }
    out
}

/// A soak under the empty chaos schedule must be indistinguishable from
/// a plain trace replay: same schedule, same ticks, same bits, zero
/// recovery traffic.
pub fn check_empty_schedule_identity(registry: &Registry) -> Vec<Diagnostic> {
    let rule = "chaos-empty-identity";
    if !has_probe(registry) {
        return probe_missing(rule);
    }
    let requests = soak_requests();
    let soak = run_soak(
        registry,
        &requests,
        &ChaosSchedule::empty(),
        SoakConfig::default(),
    );
    let mut out = Vec::new();
    let traffic = soak.retries + soak.reconnects + soak.redeliveries + soak.duplicates_dropped;
    if soak.chaos_signature() != "calm" || traffic != 0 {
        out.push(Diagnostic::global(
            PROBE,
            rule,
            "a calm soak with no injections and no recovery traffic",
            format!(
                "chaos `{}`, {traffic} recovery event(s)",
                soak.chaos_signature()
            ),
        ));
    }
    let trace: Vec<(u64, RunRequest)> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| (0u64, r.clone().with_submission(i as u64 + 1)))
        .collect();
    let plain = run_trace(registry, ServeConfig::default(), &trace);
    if soak.schedule_signature() != plain.schedule_signature() || soak.ticks != plain.ticks {
        out.push(Diagnostic::global(
            PROBE,
            rule,
            "the calm soak replays the plain trace's schedule and clock",
            format!(
                "soak {} tick(s) `{}` vs trace {} tick(s) `{}`",
                soak.ticks,
                soak.schedule_signature(),
                plain.ticks,
                plain.schedule_signature()
            ),
        ));
    }
    for (outcome, session) in soak.outcomes.iter().zip(&plain.sessions) {
        match &outcome.done {
            Some(done) if done.result.deterministic_eq(&session.done.result) => {}
            Some(_) => out.push(Diagnostic::global(
                PROBE,
                rule,
                format!("client {}'s bits match the plain replay", outcome.client),
                "diverging result bits under an empty schedule".to_string(),
            )),
            None => out.push(Diagnostic::global(
                PROBE,
                rule,
                format!(
                    "client {} completes under an empty schedule",
                    outcome.client
                ),
                outcome
                    .failure
                    .clone()
                    .unwrap_or_else(|| "no result".into()),
            )),
        }
    }
    out
}

/// Under a seeded chaos schedule, every session's result bits must match
/// the chaos-free soak of the same requests.
pub fn check_result_invariance(registry: &Registry) -> Vec<Diagnostic> {
    let rule = "chaos-result-invariance";
    if !has_probe(registry) {
        return probe_missing(rule);
    }
    let requests = soak_requests();
    let calm = run_soak(
        registry,
        &requests,
        &ChaosSchedule::empty(),
        SoakConfig::default(),
    );
    let chaotic = run_soak(
        registry,
        &requests,
        &seeded_schedule(),
        SoakConfig::default(),
    );
    let mut out = Vec::new();
    let chaotic_results = chaotic.results();
    for (key, calm_done) in calm.results() {
        match chaotic_results.get(&key) {
            Some(done) if done.result.deterministic_eq(&calm_done.result) => {}
            Some(_) => out.push(Diagnostic::global(
                PROBE,
                rule,
                format!("result bits for {key:?} survive the chaos unchanged"),
                format!("bits diverged (chaos `{}`)", chaotic.chaos_signature()),
            )),
            None => out.push(Diagnostic::global(
                PROBE,
                rule,
                format!("submission {key:?} completes under chaos"),
                "the session was lost".to_string(),
            )),
        }
    }
    out
}

/// Lease resume with an explicit config (fixtures pass a quirked one):
/// one long session, its connection reset mid-stream; the reconnecting
/// client must redeem its lease and still get the final record.
pub fn check_lease_resume_with(registry: &Registry, config: ServeConfig) -> Vec<Diagnostic> {
    let rule = "chaos-lease-resume";
    if !has_probe(registry) {
        return probe_missing(rule);
    }
    let requests = vec![RunRequest::new("acme", PROBE, 1, 6)];
    let chaos = ChaosSchedule::new(3).inject(ChaosSite::ServerToClient, 2, ChaosKind::Reset);
    let soak = run_soak(
        registry,
        &requests,
        &chaos,
        SoakConfig {
            serve: config,
            ..SoakConfig::default()
        },
    );
    let mut out = Vec::new();
    if soak.reconnects == 0 {
        out.push(Diagnostic::global(
            PROBE,
            rule,
            "the reset connection reconnects with a lease redemption",
            format!("{} reconnect(s)", soak.reconnects),
        ));
    }
    if soak.lease_misses > 0 || soak.outcomes[0].done.is_none() {
        out.push(Diagnostic::global(
            PROBE,
            rule,
            "the reconnecting client redeems its lease and receives its result",
            format!(
                "{} lease miss(es); outcome {}",
                soak.lease_misses,
                soak.outcomes[0]
                    .failure
                    .as_deref()
                    .unwrap_or("no final record"),
            ),
        ));
    }
    out
}

/// Lease resume under the default (un-quirked) configuration.
pub fn check_lease_resume(registry: &Registry) -> Vec<Diagnostic> {
    check_lease_resume_with(registry, ServeConfig::default())
}

/// Idempotent submission with an explicit config: retransmitting the same
/// `(tenant, submission)` key must resolve to the existing session.
pub fn check_idempotent_submit_with(registry: &Registry, config: ServeConfig) -> Vec<Diagnostic> {
    let rule = "chaos-idempotent-submit";
    if !has_probe(registry) {
        return probe_missing(rule);
    }
    let mut core = ServerCore::new(registry, config);
    let request = RunRequest::new("acme", PROBE, 7, 2).with_submission(42);
    let first = core.submit(request.clone());
    let retransmit = core.submit(request);
    match (first, retransmit) {
        (Ok(a), Ok(b)) if a == b => Vec::new(),
        (Ok(a), Ok(b)) => vec![Diagnostic::global(
            PROBE,
            rule,
            format!("the retransmit attaches to session {a}"),
            format!("a duplicate session {b} was created"),
        )],
        (first, retransmit) => vec![Diagnostic::global(
            PROBE,
            rule,
            "both submits of an idempotent key are accepted",
            format!("first {first:?}, retransmit {retransmit:?}"),
        )],
    }
}

/// Idempotent submission under the default configuration.
pub fn check_idempotent_submit(registry: &Registry) -> Vec<Diagnostic> {
    check_idempotent_submit_with(registry, ServeConfig::default())
}

/// Load shedding with an explicit config: submits beyond the admission
/// bound must be shed with a retryable `overloaded` rejection.
pub fn check_load_shed_with(registry: &Registry, config: ServeConfig) -> Vec<Diagnostic> {
    let rule = "chaos-load-shed";
    if !has_probe(registry) {
        return probe_missing(rule);
    }
    let mut core = ServerCore::new(registry, config);
    let mut sheds = 0usize;
    let mut hard_failures = Vec::new();
    for i in 0..8u64 {
        let tenant = format!("tenant-{i}");
        match core.submit(RunRequest::new(&tenant, PROBE, i + 1, 2)) {
            Ok(_) => {}
            Err(r) if r.retryable && r.reason.starts_with("overloaded") => sheds += 1,
            Err(r) => hard_failures.push(r.reason),
        }
    }
    let mut out = Vec::new();
    if sheds == 0 {
        out.push(Diagnostic::global(
            PROBE,
            rule,
            "submits beyond the queue bound are shed with a retryable rejection",
            "8 submissions were all admitted against a bound of 2".to_string(),
        ));
    }
    if !hard_failures.is_empty() {
        out.push(Diagnostic::global(
            PROBE,
            rule,
            "shed submissions are retryable, not hard failures",
            hard_failures.join("; "),
        ));
    }
    out
}

/// Load shedding with a tight bound on the default configuration.
pub fn check_load_shed(registry: &Registry) -> Vec<Diagnostic> {
    check_load_shed_with(
        registry,
        ServeConfig {
            budget: 1,
            max_queue: 2,
            ..ServeConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_passes_every_chaos_lint() {
        let registry = Registry::aibench();
        assert_eq!(check_empty_schedule_identity(&registry), Vec::new());
        assert_eq!(check_lease_resume(&registry), Vec::new());
        assert_eq!(check_idempotent_submit(&registry), Vec::new());
        assert_eq!(check_load_shed(&registry), Vec::new());
    }

    #[test]
    fn result_invariance_holds_under_the_seeded_schedule() {
        let registry = Registry::aibench();
        assert_eq!(check_result_invariance(&registry), Vec::new());
    }
}

//! The chaos-event log: the replayable witness of which injections
//! actually fired, in which order, against which sessions.
//!
//! Determinism contract: the log is appended only at deterministic
//! points (frame delivery order, save-op order, tick order), so the same
//! `ChaosSchedule` produces the byte-identical log signature at any
//! `AIBENCH_THREADS`.

use crate::schedule::ChaosSite;
use aibench_fault::{ActionTaken, FaultEvent, TrainFault};

/// One chaos injection that fired.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEvent {
    /// The site the injection landed on.
    pub site: ChaosSite,
    /// The logical position it fired at (frame index, save-op index, or
    /// tick — see [`ChaosSite`]).
    pub at: u64,
    /// The kind, rendered with parameters (`bit-flip:3`, `disk-full`, …).
    pub kind: String,
    /// The session the injection hit, `0` when unattributable (e.g. a
    /// frame corrupted before it could be parsed).
    pub session: u64,
}

impl ChaosEvent {
    /// Stable one-line signature: `site@at:kind:s<session>`.
    pub fn signature(&self) -> String {
        format!(
            "{}@{}:{}:s{}",
            self.site.code(),
            self.at,
            self.kind,
            self.session
        )
    }

    /// Lifts the chaos event into the suite-wide fault taxonomy, paired
    /// with the action the transport/storage hardening took to absorb it.
    /// Benign injections (duplicates, delays, stalls, slow writes) are
    /// absorbed without a recovery action and lift to `None`.
    pub fn lift(&self) -> Option<FaultEvent> {
        let base = self.kind.split(':').next().unwrap_or("");
        match base {
            "bit-flip" | "truncate" | "short-write" => Some(FaultEvent {
                fault: TrainFault::FrameCorrupt {
                    epoch: self.at as usize,
                    frame: self.at,
                },
                action: ActionTaken::Retransmitted { attempt: 1 },
            }),
            "reset" => Some(FaultEvent {
                fault: TrainFault::ConnectionLost {
                    epoch: self.at as usize,
                    session: self.session,
                },
                action: ActionTaken::LeaseRedeemed { replayed: 0 },
            }),
            "torn-write" | "disk-full" | "bit-rot" => Some(FaultEvent {
                fault: TrainFault::StoreCorrupt {
                    epoch: self.at as usize,
                    detail: self.kind.clone(),
                },
                action: ActionTaken::RolledBack {
                    to_epoch: None,
                    lr_factor: 1.0,
                    serial: false,
                },
            }),
            _ => None,
        }
    }
}

/// Joins a chaos log into one `;`-separated signature string — the value
/// the determinism lints and `tests/chaos_determinism.rs` pin across
/// thread counts.
pub fn chaos_signature(log: &[ChaosEvent]) -> String {
    if log.is_empty() {
        return "calm".to_string();
    }
    log.iter()
        .map(|e| e.signature())
        .collect::<Vec<_>>()
        .join(";")
}

/// Lifts a whole chaos log into taxonomy fault events, dropping the
/// benign injections.
pub fn lift_log(log: &[ChaosEvent]) -> Vec<FaultEvent> {
    log.iter().filter_map(|e| e.lift()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(site: ChaosSite, at: u64, kind: &str, session: u64) -> ChaosEvent {
        ChaosEvent {
            site,
            at,
            kind: kind.to_string(),
            session,
        }
    }

    #[test]
    fn signatures_are_stable_and_ordered() {
        let log = vec![
            event(ChaosSite::ServerToClient, 3, "bit-flip:7", 2),
            event(ChaosSite::Store, 1, "disk-full", 4),
        ];
        assert_eq!(
            chaos_signature(&log),
            "s2c@3:bit-flip:7:s2;store@1:disk-full:s4"
        );
        assert_eq!(chaos_signature(&[]), "calm");
    }

    #[test]
    fn lifting_maps_chaos_onto_the_fault_taxonomy() {
        let corrupt = event(ChaosSite::ClientToServer, 5, "bit-flip:9", 0);
        let lifted = corrupt.lift().expect("frame corruption lifts");
        assert_eq!(lifted.fault.kind(), "frame-corrupt");
        assert_eq!(lifted.action.kind(), "retransmit");

        let reset = event(ChaosSite::ServerToClient, 8, "reset", 3);
        let lifted = reset.lift().expect("resets lift");
        assert_eq!(lifted.fault.kind(), "connection-lost");
        assert_eq!(lifted.action.kind(), "lease-resume");

        let torn = event(ChaosSite::Store, 2, "torn-write:16", 1);
        let lifted = torn.lift().expect("store chaos lifts");
        assert_eq!(lifted.fault.kind(), "store-corrupt");
        assert_eq!(lifted.action.kind(), "rollback");

        let benign = event(ChaosSite::Server, 4, "tick-stall:2", 0);
        assert!(benign.lift().is_none());
        assert_eq!(
            lift_log(&[corrupt, benign, torn]).len(),
            2,
            "benign injections drop out of the lifted log"
        );
    }
}

//! The chaos soak: an in-process client/server harness that drives a real
//! [`ServerCore`] through real wire bytes while a [`ChaosSchedule`]
//! perturbs every layer — and the hardening absorbs all of it.
//!
//! # Fidelity
//!
//! The simulated wire carries the exact frame payloads the TCP transport
//! would ([`ClientMsg::to_bytes`] / [`ServerMsg::to_bytes`]), so a
//! bit-flip here exercises the same CRC rejection path a hostile network
//! would hit. Clients run the same protocol as `aibench_serve::tcp`'s
//! blocking client: idempotent submits retried under exponential backoff,
//! seq-deduplicated progress streams, and lease-redeeming reconnects.
//!
//! # Determinism
//!
//! Everything is keyed on logical counters: wire injections on
//! direction-global frame indices, store injections on the global save-op
//! index, server injections on the scheduler tick. Each round the engine
//! (1) lets clients act in ascending index, (2) delivers due
//! client→server frames in insertion order, (3) applies server chaos and
//! steps the core, (4) forwards progress, (5) delivers due server→client
//! frames. No wall clock anywhere ⇒ the same seed replays the identical
//! chaos-event log and per-session results at any `AIBENCH_THREADS`.
//!
//! # Result invariance
//!
//! Provided requests carry no injected *training* faults, every accepted
//! session's final [`RunResult`] is bitwise identical to its chaos-free
//! counterpart: retransmits attach to the original session, replayed
//! progress is deduplicated by seq, and store chaos only costs snapshot
//! durability (deterministic training makes a resume-from-older-state or
//! restart-from-scratch re-run the identical trajectory).
//!
//! [`RunResult`]: aibench::runner::RunResult

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use aibench::registry::Registry;
use aibench_ckpt::{CheckpointSink, MemorySink};
use aibench_serve::wire::{ClientMsg, DoneMsg, RunRequest, ServerMsg};
use aibench_serve::{schedule_signature, SchedEvent, ServeConfig, ServerCore};

use crate::log::{chaos_signature, ChaosEvent};
use crate::schedule::{ChaosKind, ChaosSchedule, ChaosSite};
use crate::sink::{ChaosSink, StoreChaos};

/// Ticks a client waits for `Accepted` before retransmitting its submit.
const ACCEPT_TIMEOUT: u64 = 40;

/// Exponential client backoff in ticks: 2, 4, 8, … capped at 64.
fn backoff_ticks(attempt: u32) -> u64 {
    2u64 << attempt.min(5)
}

/// Soak harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// The serving configuration under test.
    pub serve: ServeConfig,
    /// Watchdog: the soak panics past this tick (a liveness bug, not a
    /// legitimate outcome).
    pub max_ticks: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            serve: ServeConfig::default(),
            max_ticks: 100_000,
        }
    }
}

/// One client's final outcome.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Client index (submission order).
    pub client: usize,
    /// Tenant of the request.
    pub tenant: String,
    /// Idempotency key the soak submitted under (never 0).
    pub submission: u64,
    /// The final record, if the session completed.
    pub done: Option<DoneMsg>,
    /// Terminal failure reason (non-retryable rejection), if any.
    pub failure: Option<String>,
}

/// The outcome of one chaos soak.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Per-client outcomes, in client order.
    pub outcomes: Vec<SoakOutcome>,
    /// Every injection that fired, in fire order (the determinism witness).
    pub chaos_log: Vec<ChaosEvent>,
    /// The core's schedule log.
    pub schedule: Vec<SchedEvent>,
    /// Ticks the soak took.
    pub ticks: u64,
    /// Submit retransmissions (timeouts, dead connections, shed retries).
    pub retries: u64,
    /// Lease-redeeming reconnects performed.
    pub reconnects: u64,
    /// Buffered events replayed to retransmitting/reconnecting clients.
    pub redeliveries: u64,
    /// Duplicate progress frames dropped by seq deduplication.
    pub duplicates_dropped: u64,
    /// Retryable `overloaded` rejections clients absorbed.
    pub sheds: u64,
    /// Reconnects that found no lease (only under the `drop_lease` quirk).
    pub lease_misses: u64,
}

impl ChaosReport {
    /// The chaos-event log signature (`calm` when nothing fired).
    pub fn chaos_signature(&self) -> String {
        chaos_signature(&self.chaos_log)
    }

    /// The core's deterministic schedule signature.
    pub fn schedule_signature(&self) -> String {
        schedule_signature(&self.schedule)
    }

    /// Completed sessions keyed by `(tenant, submission)` — the shape the
    /// result-invariance comparison wants.
    pub fn results(&self) -> BTreeMap<(String, u64), &DoneMsg> {
        self.outcomes
            .iter()
            .filter_map(|o| {
                o.done
                    .as_ref()
                    .map(|d| ((o.tenant.clone(), o.submission), d))
            })
            .collect()
    }

    /// The chaos log lifted into the suite-wide fault taxonomy (benign
    /// injections dropped).
    pub fn lifted_faults(&self) -> Vec<aibench_fault::FaultEvent> {
        crate::log::lift_log(&self.chaos_log)
    }

    /// Whether two soaks are indistinguishable where determinism is
    /// promised: identical chaos logs, schedules, tick counts, recovery
    /// traffic, and bitwise-identical per-client results.
    pub fn deterministic_eq(&self, other: &ChaosReport) -> bool {
        self.chaos_signature() == other.chaos_signature()
            && self.schedule_signature() == other.schedule_signature()
            && self.ticks == other.ticks
            && self.retries == other.retries
            && self.reconnects == other.reconnects
            && self.redeliveries == other.redeliveries
            && self.duplicates_dropped == other.duplicates_dropped
            && self.sheds == other.sheds
            && self.lease_misses == other.lease_misses
            && self.outcomes.len() == other.outcomes.len()
            && self.outcomes.iter().zip(&other.outcomes).all(|(a, b)| {
                a.tenant == b.tenant
                    && a.submission == b.submission
                    && a.failure == b.failure
                    && match (&a.done, &b.done) {
                        (None, None) => true,
                        (Some(x), Some(y)) => {
                            x.outcome_signature == y.outcome_signature
                                && x.fault_signature == y.fault_signature
                                && x.queue_wait_ticks == y.queue_wait_ticks
                                && x.epochs_executed == y.epochs_executed
                                && x.recoveries == y.recoveries
                                && x.result.deterministic_eq(&y.result)
                        }
                        _ => false,
                    }
            })
    }
}

/// Client protocol phase.
enum Phase {
    /// Not yet submitted.
    Idle,
    /// Submit (or reconnect) sent; waiting for `Accepted`.
    AwaitAccept {
        /// Tick the frame was sent at (drives the retransmit timeout).
        sent_at: u64,
    },
    /// Accepted; consuming the progress stream.
    Streaming,
    /// Connection died or submission was shed; waiting out the backoff.
    Backoff {
        /// Tick the client retries at.
        until: u64,
    },
    /// Done or Failed — terminal.
    Finished,
}

struct Client {
    request: RunRequest,
    phase: Phase,
    /// Retry attempt counter; resets on a successful accept.
    attempt: u32,
    /// Last progress seq seen — the dedupe/replay cursor.
    last_seq: u64,
    /// Whether the server ever accepted this submission (decides
    /// retransmit-vs-reconnect after a dead connection).
    accepted: bool,
    /// Whether the current connection is usable.
    alive: bool,
    /// Connection generation: frames from a dead generation never deliver.
    gen: u32,
    done: Option<DoneMsg>,
    failure: Option<String>,
}

/// What arrives at the far end of the simulated wire.
enum Payload {
    /// Frame bytes (possibly corrupted or truncated by chaos).
    Data(Vec<u8>),
    /// The connection reset. Delivered in order, so frames sent before
    /// the reset still arrive — exactly as a TCP stream would behave.
    Hangup,
}

/// One simulated in-flight frame.
struct Frame {
    /// The client whose connection carries it.
    client: usize,
    /// Connection generation the frame belongs to.
    gen: u32,
    /// Tick the frame becomes deliverable.
    deliver_at: u64,
    payload: Payload,
}

fn take_due(queue: &mut Vec<Frame>, now: u64) -> Vec<Frame> {
    let mut due = Vec::new();
    let mut rest = Vec::new();
    for f in queue.drain(..) {
        if f.deliver_at <= now {
            due.push(f);
        } else {
            rest.push(f);
        }
    }
    *queue = rest;
    due
}

struct Soak<'a> {
    core: ServerCore<'a>,
    chaos: &'a ChaosSchedule,
    store: Rc<RefCell<StoreChaos>>,
    drop_lease: bool,
    clients: Vec<Client>,
    c2s: Vec<Frame>,
    s2c: Vec<Frame>,
    c2s_sent: u64,
    s2c_sent: u64,
    /// Per-session buffered server messages — the lease.
    history: BTreeMap<u64, Vec<ServerMsg>>,
    /// Sessions whose lease the `drop_lease` quirk destroyed: buffering
    /// stops for good, so a reconnect can never be made whole.
    dropped_leases: std::collections::BTreeSet<u64>,
    session_client: BTreeMap<u64, usize>,
    client_session: Vec<Option<u64>>,
    chaos_log: Vec<ChaosEvent>,
    retries: u64,
    reconnects: u64,
    redeliveries: u64,
    duplicates_dropped: u64,
    sheds: u64,
    lease_misses: u64,
}

impl<'a> Soak<'a> {
    fn session_of(&self, client: usize) -> u64 {
        self.client_session[client].unwrap_or(0)
    }

    fn kill_conn(&mut self, client: usize) {
        self.clients[client].alive = false;
        if self.drop_lease {
            // The quirk under lint: the server forgets the disconnected
            // client's buffered events and result.
            if let Some(id) = self.client_session[client] {
                self.history.remove(&id);
                self.dropped_leases.insert(id);
            }
        }
    }

    /// Sends one client→server frame, applying due wire chaos.
    fn send_c2s(&mut self, client: usize, msg: &ClientMsg) {
        let bytes = msg.to_bytes();
        let deliver_at = self.core.tick_count();
        self.send_wire(ChaosSite::ClientToServer, client, bytes, deliver_at);
    }

    /// Sends one server→client frame, applying due wire chaos plus any
    /// slow-write delay active this tick.
    fn send_s2c(&mut self, client: usize, msg: &ServerMsg, slow: u64) {
        if !self.clients[client].alive {
            return;
        }
        let bytes = msg.to_bytes();
        let deliver_at = self.core.tick_count() + slow;
        self.send_wire(ChaosSite::ServerToClient, client, bytes, deliver_at);
    }

    /// The shared wire path: count the direction-global frame index,
    /// apply due injections, enqueue the (possibly perturbed) frame. A
    /// reset is enqueued as an in-order hangup, so frames sent before it
    /// still deliver — the stream semantics a real socket has.
    fn send_wire(&mut self, site: ChaosSite, client: usize, mut payload: Vec<u8>, at: u64) {
        let counter = match site {
            ChaosSite::ClientToServer => &mut self.c2s_sent,
            _ => &mut self.s2c_sent,
        };
        let idx = *counter;
        *counter += 1;
        let mut deliver_at = at;
        let mut copies = 1usize;
        let mut drop_data = false;
        let mut hangup = false;
        let due: Vec<ChaosKind> = self.chaos.due(site, idx).map(|i| i.kind).collect();
        for kind in due {
            self.chaos_log.push(ChaosEvent {
                site,
                at: idx,
                kind: kind.name(),
                session: self.session_of(client),
            });
            match kind {
                ChaosKind::BitFlip { bit } => flip_bit(&mut payload, bit),
                ChaosKind::Truncate { keep } => payload.truncate(keep),
                ChaosKind::Duplicate => copies = 2,
                ChaosKind::Delay { ticks } => deliver_at += ticks,
                ChaosKind::Reset => {
                    drop_data = true;
                    hangup = true;
                }
                ChaosKind::ShortWrite { keep } => {
                    payload.truncate(keep);
                    hangup = true;
                }
                _ => unreachable!("schedule validated kinds per site"),
            }
        }
        let gen = self.clients[client].gen;
        let queue = match site {
            ChaosSite::ClientToServer => &mut self.c2s,
            _ => &mut self.s2c,
        };
        if !drop_data {
            for _ in 0..copies {
                queue.push(Frame {
                    client,
                    gen,
                    deliver_at,
                    payload: Payload::Data(payload.clone()),
                });
            }
        }
        if hangup {
            queue.push(Frame {
                client,
                gen,
                deliver_at,
                payload: Payload::Hangup,
            });
        }
    }

    /// Replays buffered history with progress seq > `after_seq` — the
    /// lease redemption path.
    fn replay(&mut self, client: usize, session: u64, after_seq: u64) {
        let msgs: Vec<ServerMsg> = self
            .history
            .get(&session)
            .map(|h| {
                h.iter()
                    .filter(|m| match m {
                        ServerMsg::Progress(p) => p.seq > after_seq,
                        ServerMsg::Done(_) => true,
                        _ => false,
                    })
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        self.redeliveries += msgs.len() as u64;
        for msg in msgs {
            self.send_s2c(client, &msg, 0);
        }
    }

    /// One client's turn: submit, time out, or retry.
    fn client_act(&mut self, i: usize, tick: u64) {
        let (phase_action, request) = {
            let c = &mut self.clients[i];
            match c.phase {
                Phase::Idle => {
                    c.alive = true;
                    c.phase = Phase::AwaitAccept { sent_at: tick };
                    (1, Some(ClientMsg::Submit(c.request.clone())))
                }
                Phase::AwaitAccept { sent_at } => {
                    if !c.alive {
                        self.retries += 1;
                        let c = &mut self.clients[i];
                        c.phase = Phase::Backoff {
                            until: tick + backoff_ticks(c.attempt),
                        };
                        c.attempt += 1;
                        return;
                    } else if tick.saturating_sub(sent_at) >= ACCEPT_TIMEOUT {
                        // Belt-and-braces: the accept was lost without the
                        // connection dying. Idempotent keys make the
                        // retransmit safe.
                        self.retries += 1;
                        let c = &mut self.clients[i];
                        c.attempt += 1;
                        c.phase = Phase::AwaitAccept { sent_at: tick };
                        (1, Some(ClientMsg::Submit(c.request.clone())))
                    } else {
                        return;
                    }
                }
                Phase::Streaming => {
                    if !c.alive {
                        c.phase = Phase::Backoff {
                            until: tick + backoff_ticks(c.attempt),
                        };
                        c.attempt += 1;
                    }
                    return;
                }
                Phase::Backoff { until } => {
                    if tick < until {
                        return;
                    }
                    c.gen += 1;
                    c.alive = true;
                    c.phase = Phase::AwaitAccept { sent_at: tick };
                    if c.accepted {
                        (2, None)
                    } else {
                        self.retries += 1;
                        let c = &self.clients[i];
                        (1, Some(ClientMsg::Submit(c.request.clone())))
                    }
                }
                Phase::Finished => return,
            }
        };
        match phase_action {
            1 => {
                let msg = request.expect("submit carries the request");
                self.send_c2s(i, &msg);
            }
            2 => {
                self.reconnects += 1;
                let c = &self.clients[i];
                let msg = ClientMsg::Reconnect {
                    tenant: c.request.tenant.clone(),
                    submission: c.request.submission,
                    after_seq: c.last_seq,
                };
                self.send_c2s(i, &msg);
            }
            _ => unreachable!(),
        }
    }

    /// The server's handling of one delivered client→server frame.
    fn server_handle(&mut self, f: Frame) {
        let client = f.client;
        if !self.clients[client].alive || self.clients[client].gen != f.gen {
            return;
        }
        let bytes = match f.payload {
            Payload::Data(bytes) => bytes,
            Payload::Hangup => {
                self.kill_conn(client);
                return;
            }
        };
        let msg = match ClientMsg::from_bytes(&bytes) {
            Ok(msg) => msg,
            Err(_) => {
                // A corrupt frame: the CRC refused it. Drop the
                // connection; the client's timeout drives a retransmit.
                self.kill_conn(client);
                return;
            }
        };
        match msg {
            ClientMsg::Submit(request) => match self.core.submit(request) {
                Ok(id) => {
                    if self.dropped_leases.contains(&id) {
                        // The quirk destroyed this session's lease; the
                        // retransmit resolves to a session the server no
                        // longer remembers serving.
                        self.lease_misses += 1;
                        self.send_s2c(
                            client,
                            &ServerMsg::Rejected {
                                reason: format!("no lease for session {id}"),
                                retryable: false,
                            },
                            0,
                        );
                        return;
                    }
                    let known = self.history.contains_key(&id);
                    self.session_client.insert(id, client);
                    self.client_session[client] = Some(id);
                    self.history.entry(id).or_default();
                    self.send_s2c(client, &ServerMsg::Accepted { session: id }, 0);
                    if known {
                        // Retransmit of an accepted submission: replay
                        // everything buffered so far.
                        self.replay(client, id, 0);
                    }
                }
                Err(rejection) => {
                    self.send_s2c(
                        client,
                        &ServerMsg::Rejected {
                            reason: rejection.reason,
                            retryable: rejection.retryable,
                        },
                        0,
                    );
                }
            },
            ClientMsg::Reconnect {
                tenant,
                submission,
                after_seq,
            } => {
                let lease = self
                    .core
                    .lookup_submission(&tenant, submission)
                    .filter(|id| self.history.contains_key(id));
                match lease {
                    Some(id) => {
                        self.session_client.insert(id, client);
                        self.client_session[client] = Some(id);
                        self.send_s2c(client, &ServerMsg::Accepted { session: id }, 0);
                        self.replay(client, id, after_seq);
                    }
                    None => {
                        self.lease_misses += 1;
                        self.send_s2c(
                            client,
                            &ServerMsg::Rejected {
                                reason: format!(
                                    "no lease for tenant `{tenant}` submission {submission}"
                                ),
                                retryable: false,
                            },
                            0,
                        );
                    }
                }
            }
        }
    }

    /// One client's handling of one delivered server→client frame.
    fn client_handle(&mut self, f: Frame, tick: u64) {
        let i = f.client;
        if !self.clients[i].alive || self.clients[i].gen != f.gen {
            return;
        }
        let bytes = match f.payload {
            Payload::Data(bytes) => bytes,
            Payload::Hangup => {
                self.kill_conn(i);
                return;
            }
        };
        let msg = match ServerMsg::from_bytes(&bytes) {
            Ok(msg) => msg,
            Err(_) => {
                // Corrupt downstream frame: drop the connection and let
                // the reconnect path replay what was missed.
                self.kill_conn(i);
                return;
            }
        };
        let c = &mut self.clients[i];
        match msg {
            ServerMsg::Accepted { .. } => {
                c.accepted = true;
                c.attempt = 0;
                if matches!(c.phase, Phase::AwaitAccept { .. }) {
                    c.phase = Phase::Streaming;
                }
            }
            ServerMsg::Rejected { reason, retryable } => {
                if retryable {
                    self.sheds += 1;
                    self.retries += 1;
                    let c = &mut self.clients[i];
                    c.phase = Phase::Backoff {
                        until: tick + backoff_ticks(c.attempt),
                    };
                    c.attempt += 1;
                    c.alive = false;
                } else {
                    c.failure = Some(reason);
                    c.phase = Phase::Finished;
                }
            }
            ServerMsg::Progress(p) => {
                if p.seq > c.last_seq {
                    c.last_seq = p.seq;
                } else {
                    self.duplicates_dropped += 1;
                    return;
                }
                let c = &mut self.clients[i];
                c.accepted = true;
                if matches!(c.phase, Phase::AwaitAccept { .. }) {
                    c.phase = Phase::Streaming;
                }
            }
            ServerMsg::Done(done) => {
                c.done = Some(done);
                c.phase = Phase::Finished;
            }
        }
    }
}

fn flip_bit(payload: &mut [u8], bit: u32) {
    if payload.is_empty() {
        return;
    }
    let bit = bit as usize % (payload.len() * 8);
    payload[bit / 8] ^= 1 << (bit % 8);
}

/// Runs one chaos soak: `requests` (one client each, idempotency keys
/// assigned from the client index when unset) against a fresh server
/// under `chaos`. See the module docs for the determinism and
/// result-invariance contracts.
pub fn run_soak(
    registry: &Registry,
    requests: &[RunRequest],
    chaos: &ChaosSchedule,
    config: SoakConfig,
) -> ChaosReport {
    let store = StoreChaos::from_schedule(chaos);
    let mut core = ServerCore::new(registry, config.serve);
    let factory_store = Rc::clone(&store);
    core.set_sink_factory(move |id| {
        Box::new(ChaosSink::new(
            MemorySink::new(),
            id,
            Rc::clone(&factory_store),
        )) as Box<dyn CheckpointSink>
    });
    let clients: Vec<Client> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut request = r.clone();
            if request.submission == 0 {
                request = request.with_submission(i as u64 + 1);
            }
            Client {
                request,
                phase: Phase::Idle,
                attempt: 0,
                last_seq: 0,
                accepted: false,
                alive: false,
                gen: 0,
                done: None,
                failure: None,
            }
        })
        .collect();
    let client_count = clients.len();
    let mut soak = Soak {
        core,
        chaos,
        store,
        drop_lease: config.serve.quirks.drop_lease,
        clients,
        c2s: Vec::new(),
        s2c: Vec::new(),
        c2s_sent: 0,
        s2c_sent: 0,
        history: BTreeMap::new(),
        dropped_leases: std::collections::BTreeSet::new(),
        session_client: BTreeMap::new(),
        client_session: vec![None; client_count],
        chaos_log: Vec::new(),
        retries: 0,
        reconnects: 0,
        redeliveries: 0,
        duplicates_dropped: 0,
        sheds: 0,
        lease_misses: 0,
    };

    while soak
        .clients
        .iter()
        .any(|c| !matches!(c.phase, Phase::Finished))
    {
        let tick = soak.core.tick_count();
        assert!(
            tick <= config.max_ticks,
            "chaos soak livelocked past tick {tick}"
        );
        // (1) Clients act, ascending index.
        for i in 0..soak.clients.len() {
            soak.client_act(i, tick);
        }
        // (2) Due client→server frames, insertion order.
        for f in take_due(&mut soak.c2s, tick) {
            soak.server_handle(f);
        }
        // (3) Server chaos, then one scheduler step (a stall consumes the
        // round instead).
        let mut stalled = false;
        let mut slow = 0u64;
        let due: Vec<ChaosKind> = soak
            .chaos
            .due(ChaosSite::Server, tick)
            .map(|i| i.kind)
            .collect();
        for kind in due {
            soak.chaos_log.push(ChaosEvent {
                site: ChaosSite::Server,
                at: tick,
                kind: kind.name(),
                session: 0,
            });
            match kind {
                ChaosKind::TickStall { ticks } => {
                    for _ in 0..ticks {
                        soak.core.stall_tick();
                    }
                    stalled = true;
                }
                ChaosKind::SlowWrite { ticks } => slow = slow.max(ticks),
                _ => unreachable!("schedule validated kinds per site"),
            }
        }
        if !stalled {
            soak.core.step();
        }
        // Store chaos fired inside the step; merge it into the log in
        // round order.
        let store_events = soak.store.borrow_mut().take_log();
        soak.chaos_log.extend(store_events);
        // (4) Forward progress into leases and live connections.
        for event in soak.core.drain_events() {
            let session = event.session;
            if soak.dropped_leases.contains(&session) {
                continue;
            }
            let msg = ServerMsg::Progress(event);
            soak.history.entry(session).or_default().push(msg.clone());
            if let Some(&client) = soak.session_client.get(&session) {
                soak.send_s2c(client, &msg, slow);
            }
        }
        for done in soak.core.drain_finished() {
            let session = done.session;
            if soak.dropped_leases.contains(&session) {
                continue;
            }
            let msg = ServerMsg::Done(done);
            soak.history.entry(session).or_default().push(msg.clone());
            if let Some(&client) = soak.session_client.get(&session) {
                soak.send_s2c(client, &msg, slow);
            }
        }
        // (5) Due server→client frames, insertion order.
        let now = soak.core.tick_count();
        for f in take_due(&mut soak.s2c, now) {
            soak.client_handle(f, now);
        }
    }

    let outcomes = soak
        .clients
        .iter()
        .enumerate()
        .map(|(i, c)| SoakOutcome {
            client: i,
            tenant: c.request.tenant.clone(),
            submission: c.request.submission,
            done: c.done.clone(),
            failure: c.failure.clone(),
        })
        .collect();
    ChaosReport {
        outcomes,
        chaos_log: soak.chaos_log,
        schedule: soak.core.schedule_log().to_vec(),
        ticks: soak.core.tick_count(),
        retries: soak.retries,
        reconnects: soak.reconnects,
        redeliveries: soak.redeliveries,
        duplicates_dropped: soak.duplicates_dropped,
        sheds: soak.sheds,
        lease_misses: soak.lease_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench_serve::Quirks;

    const PROBE: &str = "DC-AI-C15";

    fn requests(n: usize) -> Vec<RunRequest> {
        (0..n)
            .map(|i| RunRequest::new(["a", "b"][i % 2], PROBE, i as u64 + 1, 2))
            .collect()
    }

    #[test]
    fn calm_soak_matches_a_plain_trace_replay() {
        let registry = Registry::aibench();
        let reqs = requests(3);
        let soak = run_soak(
            &registry,
            &reqs,
            &ChaosSchedule::empty(),
            SoakConfig::default(),
        );
        assert_eq!(soak.chaos_signature(), "calm");
        assert_eq!(soak.retries + soak.reconnects + soak.redeliveries, 0);
        // The same requests replayed as a tick-0 trace: identical
        // schedule, ticks, and result bits.
        let trace: Vec<(u64, RunRequest)> = reqs
            .iter()
            .enumerate()
            .map(|(i, r)| (0u64, r.clone().with_submission(i as u64 + 1)))
            .collect();
        let plain = aibench_serve::run_trace(&registry, ServeConfig::default(), &trace);
        assert_eq!(soak.schedule_signature(), plain.schedule_signature());
        assert_eq!(soak.ticks, plain.ticks);
        for (outcome, session) in soak.outcomes.iter().zip(&plain.sessions) {
            let done = outcome.done.as_ref().expect("calm soak completes");
            assert!(done.result.deterministic_eq(&session.done.result));
        }
    }

    #[test]
    fn wire_chaos_is_absorbed_and_results_are_invariant() {
        let registry = Registry::aibench();
        let reqs = requests(3);
        // Corrupt the server's first outbound frame, reset a later one,
        // duplicate and delay others, and corrupt one inbound submit.
        let chaos = ChaosSchedule::new(5)
            .inject(ChaosSite::ClientToServer, 1, ChaosKind::BitFlip { bit: 40 })
            .inject(ChaosSite::ServerToClient, 0, ChaosKind::BitFlip { bit: 99 })
            .inject(ChaosSite::ServerToClient, 4, ChaosKind::Reset)
            .inject(ChaosSite::ServerToClient, 6, ChaosKind::Duplicate)
            .inject(ChaosSite::ServerToClient, 8, ChaosKind::Delay { ticks: 2 });
        let chaotic = run_soak(&registry, &reqs, &chaos, SoakConfig::default());
        assert!(
            chaotic.retries + chaotic.reconnects > 0,
            "chaos produced recovery traffic: {}",
            chaotic.chaos_signature()
        );
        let calm = run_soak(
            &registry,
            &reqs,
            &ChaosSchedule::empty(),
            SoakConfig::default(),
        );
        let chaotic_results = chaotic.results();
        for (key, calm_done) in calm.results() {
            let done = chaotic_results
                .get(&key)
                .unwrap_or_else(|| panic!("submission {key:?} lost under chaos"));
            assert!(
                done.result.deterministic_eq(&calm_done.result),
                "result bits changed under chaos for {key:?}"
            );
        }
    }

    #[test]
    fn store_and_server_chaos_change_nothing_but_the_clock() {
        let registry = Registry::aibench();
        let reqs = requests(2);
        let chaos = ChaosSchedule::new(9)
            .inject(ChaosSite::Store, 0, ChaosKind::DiskFull)
            .inject(ChaosSite::Store, 1, ChaosKind::TornWrite { keep: 8 })
            .inject(ChaosSite::Store, 2, ChaosKind::BitRot { bit: 33 })
            .inject(ChaosSite::Server, 1, ChaosKind::TickStall { ticks: 2 })
            .inject(ChaosSite::Server, 5, ChaosKind::SlowWrite { ticks: 1 });
        let chaotic = run_soak(&registry, &reqs, &chaos, SoakConfig::default());
        let calm = run_soak(
            &registry,
            &reqs,
            &ChaosSchedule::empty(),
            SoakConfig::default(),
        );
        assert!(!chaotic.chaos_log.is_empty());
        let chaotic_results = chaotic.results();
        for (key, calm_done) in calm.results() {
            let done = chaotic_results.get(&key).expect("session completes");
            assert!(done.result.deterministic_eq(&calm_done.result));
        }
    }

    #[test]
    fn seeded_soak_replays_bit_for_bit() {
        let registry = Registry::aibench();
        let reqs = requests(3);
        let chaos = ChaosSchedule::seeded(17, 40, 12);
        let one = run_soak(&registry, &reqs, &chaos, SoakConfig::default());
        let two = run_soak(&registry, &reqs, &chaos, SoakConfig::default());
        assert!(one.deterministic_eq(&two));
    }

    #[test]
    fn dropped_lease_quirk_strands_the_reconnecting_client() {
        let registry = Registry::aibench();
        // One long session whose connection the chaos resets mid-stream.
        let reqs = vec![RunRequest::new("t", PROBE, 1, 6)];
        let chaos = ChaosSchedule::new(3).inject(ChaosSite::ServerToClient, 2, ChaosKind::Reset);
        let healthy = run_soak(&registry, &reqs, &chaos, SoakConfig::default());
        assert!(healthy.outcomes[0].done.is_some(), "lease redeems");
        assert!(healthy.reconnects > 0);
        assert_eq!(healthy.lease_misses, 0);

        let config = SoakConfig {
            serve: ServeConfig {
                quirks: Quirks {
                    drop_lease: true,
                    ..Quirks::default()
                },
                ..ServeConfig::default()
            },
            ..SoakConfig::default()
        };
        let broken = run_soak(&registry, &reqs, &chaos, config);
        assert!(broken.lease_misses > 0, "quirk must strand the client");
        assert!(broken.outcomes[0].done.is_none());
        assert!(broken.outcomes[0]
            .failure
            .as_deref()
            .unwrap_or("")
            .contains("no lease"));
    }
}

//! Deterministic chaos schedules: *what* to perturb, *where* (wire,
//! store, scheduler), and *when* — keyed on logical counters only, never
//! wall-clock time, so the same schedule replays the identical chaos at
//! any thread count.
//!
//! The discipline mirrors `aibench_fault::FaultSchedule`: a schedule is
//! pure data, never mutated by a run; the chaos engine tracks which
//! entries have fired in its own state.

use aibench_tensor::Rng;

/// Where a chaos injection lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChaosSite {
    /// The client→server wire; `at` counts frames sent in that direction
    /// (globally, 0-based, in delivery order).
    ClientToServer,
    /// The server→client wire; same counting discipline.
    ServerToClient,
    /// The checkpoint store; `at` counts save operations globally across
    /// all sessions (the core is stepped single-threaded, so the count is
    /// deterministic).
    Store,
    /// The server loop; `at` is a scheduler tick.
    Server,
}

impl ChaosSite {
    /// Stable short code for signatures (`c2s`, `s2c`, `store`, `srv`).
    pub fn code(&self) -> &'static str {
        match self {
            ChaosSite::ClientToServer => "c2s",
            ChaosSite::ServerToClient => "s2c",
            ChaosSite::Store => "store",
            ChaosSite::Server => "srv",
        }
    }
}

/// One kind of injectable chaos.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosKind {
    /// Wire: flip one bit of the frame payload (`bit` is taken modulo the
    /// payload length in bits). The CRC-checked container must reject the
    /// frame rather than misparse it.
    BitFlip {
        /// Which payload bit to flip.
        bit: u32,
    },
    /// Wire: truncate the frame payload to `keep` bytes.
    Truncate {
        /// Bytes of the payload that survive.
        keep: usize,
    },
    /// Wire: deliver the frame twice. Receivers must deduplicate by seq.
    Duplicate,
    /// Wire: delay the frame's delivery by this many scheduler ticks.
    Delay {
        /// Ticks of added delivery latency.
        ticks: u64,
    },
    /// Wire: reset the connection mid-frame — the frame is lost and the
    /// client's connection dies. The session's lease must survive.
    Reset,
    /// Wire: a partial write — `keep` bytes arrive, then the connection
    /// dies. Equivalent to truncation plus reset on the same frame.
    ShortWrite {
        /// Bytes that arrive before the connection dies.
        keep: usize,
    },
    /// Store: the save writes only `keep` bytes (a torn write); the
    /// snapshot must fail validation on load, never restore partially.
    TornWrite {
        /// Bytes of the snapshot that reach the store.
        keep: usize,
    },
    /// Store: the save fails outright (ENOSPC).
    DiskFull,
    /// Store: the stored snapshot has one bit flipped (bit rot); the CRC
    /// must reject it on load.
    BitRot {
        /// Which stored bit rots.
        bit: u32,
    },
    /// Server: the scheduler stalls for this many ticks (no admission,
    /// no training) — queue waits lengthen, results must not change.
    TickStall {
        /// Stalled ticks.
        ticks: u64,
    },
    /// Server: writes to clients this tick are slow — their delivery is
    /// delayed by this many ticks. The scheduler must not block on them.
    SlowWrite {
        /// Ticks of added delivery latency for the tick's outbound frames.
        ticks: u64,
    },
}

impl ChaosKind {
    /// Stable kind name with parameters, for the chaos-event log
    /// signature (`bit-flip:3`, `delay:2`, `disk-full`, …).
    pub fn name(&self) -> String {
        match self {
            ChaosKind::BitFlip { bit } => format!("bit-flip:{bit}"),
            ChaosKind::Truncate { keep } => format!("truncate:{keep}"),
            ChaosKind::Duplicate => "duplicate".to_string(),
            ChaosKind::Delay { ticks } => format!("delay:{ticks}"),
            ChaosKind::Reset => "reset".to_string(),
            ChaosKind::ShortWrite { keep } => format!("short-write:{keep}"),
            ChaosKind::TornWrite { keep } => format!("torn-write:{keep}"),
            ChaosKind::DiskFull => "disk-full".to_string(),
            ChaosKind::BitRot { bit } => format!("bit-rot:{bit}"),
            ChaosKind::TickStall { ticks } => format!("tick-stall:{ticks}"),
            ChaosKind::SlowWrite { ticks } => format!("slow-write:{ticks}"),
        }
    }

    /// Whether the kind is valid for the site.
    pub fn valid_for(&self, site: ChaosSite) -> bool {
        match self {
            ChaosKind::BitFlip { .. }
            | ChaosKind::Truncate { .. }
            | ChaosKind::Duplicate
            | ChaosKind::Delay { .. }
            | ChaosKind::Reset
            | ChaosKind::ShortWrite { .. } => {
                matches!(site, ChaosSite::ClientToServer | ChaosSite::ServerToClient)
            }
            ChaosKind::TornWrite { .. } | ChaosKind::DiskFull | ChaosKind::BitRot { .. } => {
                site == ChaosSite::Store
            }
            ChaosKind::TickStall { .. } | ChaosKind::SlowWrite { .. } => site == ChaosSite::Server,
        }
    }
}

/// One scheduled chaos injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosInjection {
    /// Where it lands.
    pub site: ChaosSite,
    /// When: a frame index, save-op index, or tick (see [`ChaosSite`]).
    pub at: u64,
    /// What happens.
    pub kind: ChaosKind,
}

/// A deterministic chaos plan for one soak. The empty schedule injects
/// nothing — a soak under it is byte-identical to a chaos-free serve run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosSchedule {
    /// Seeds derived choices (victim positions in [`ChaosSchedule::seeded`]).
    pub seed: u64,
    /// The scheduled injections.
    pub injections: Vec<ChaosInjection>,
}

impl ChaosSchedule {
    /// The empty schedule.
    pub fn empty() -> Self {
        ChaosSchedule::default()
    }

    /// A schedule with no injections yet.
    pub fn new(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            injections: Vec::new(),
        }
    }

    /// Adds one injection.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not valid for `site` — a delay cannot land on
    /// the store, a torn write cannot land on the wire.
    pub fn inject(mut self, site: ChaosSite, at: u64, kind: ChaosKind) -> Self {
        assert!(
            kind.valid_for(site),
            "chaos kind {} is not valid for site {}",
            kind.name(),
            site.code()
        );
        self.injections.push(ChaosInjection { site, at, kind });
        self
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// The injections landing at `(site, at)`, in schedule order.
    pub fn due(&self, site: ChaosSite, at: u64) -> impl Iterator<Item = &ChaosInjection> {
        self.injections
            .iter()
            .filter(move |i| i.site == site && i.at == at)
    }

    /// Generates `count` injections at seeded positions within `horizon`
    /// (frames/ops/ticks), cycling through every site and every
    /// recoverable kind — the soak and load-harness corpus generator.
    /// Same seed ⇒ the identical schedule.
    pub fn seeded(seed: u64, horizon: u64, count: usize) -> Self {
        let mut rng = Rng::seed_from(seed ^ 0xc4a0_5eed);
        let mut schedule = ChaosSchedule::new(seed);
        for i in 0..count {
            let at = rng.below(horizon.max(1) as usize) as u64;
            let (site, kind) = match i % 11 {
                0 => (
                    ChaosSite::ServerToClient,
                    ChaosKind::BitFlip {
                        bit: rng.below(256) as u32,
                    },
                ),
                1 => (
                    ChaosSite::ServerToClient,
                    ChaosKind::Truncate {
                        keep: rng.below(24),
                    },
                ),
                2 => (ChaosSite::ServerToClient, ChaosKind::Duplicate),
                3 => (
                    ChaosSite::ServerToClient,
                    ChaosKind::Delay {
                        ticks: 1 + rng.below(3) as u64,
                    },
                ),
                4 => (ChaosSite::ServerToClient, ChaosKind::Reset),
                5 => (
                    ChaosSite::ClientToServer,
                    ChaosKind::BitFlip {
                        bit: rng.below(256) as u32,
                    },
                ),
                6 => (
                    ChaosSite::ClientToServer,
                    ChaosKind::ShortWrite {
                        keep: rng.below(16),
                    },
                ),
                7 => (
                    ChaosSite::Store,
                    ChaosKind::TornWrite {
                        keep: rng.below(64),
                    },
                ),
                8 => (ChaosSite::Store, ChaosKind::DiskFull),
                9 => (
                    ChaosSite::Server,
                    ChaosKind::TickStall {
                        ticks: 1 + rng.below(2) as u64,
                    },
                ),
                _ => (
                    ChaosSite::Server,
                    ChaosKind::SlowWrite {
                        ticks: 1 + rng.below(2) as u64,
                    },
                ),
            };
            schedule = schedule.inject(site, at, kind);
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_and_validates_sites() {
        let s = ChaosSchedule::new(7)
            .inject(ChaosSite::ServerToClient, 3, ChaosKind::BitFlip { bit: 5 })
            .inject(ChaosSite::Store, 1, ChaosKind::DiskFull)
            .inject(ChaosSite::Server, 2, ChaosKind::TickStall { ticks: 2 });
        assert_eq!(s.injections.len(), 3);
        assert_eq!(s.due(ChaosSite::Store, 1).count(), 1);
        assert_eq!(s.due(ChaosSite::Store, 2).count(), 0);
        assert!(ChaosSchedule::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "not valid for site")]
    fn wire_kind_rejected_on_the_store() {
        let _ = ChaosSchedule::new(1).inject(ChaosSite::Store, 0, ChaosKind::Duplicate);
    }

    #[test]
    fn seeded_schedules_replay_identically() {
        let a = ChaosSchedule::seeded(11, 100, 20);
        let b = ChaosSchedule::seeded(11, 100, 20);
        assert_eq!(a, b);
        assert_eq!(a.injections.len(), 20);
        assert_ne!(a, ChaosSchedule::seeded(12, 100, 20));
        assert!(a.injections.iter().all(|i| i.kind.valid_for(i.site)));
    }
}

//! Checkpoint-store chaos: a [`ChaosSink`] wrapper that perturbs save
//! operations (torn writes, ENOSPC, bit rot) at globally-indexed,
//! deterministic points.
//!
//! The save-op counter is *global* across all wrapped sinks (shared
//! through [`StoreChaos`]), because the serving core steps sessions
//! single-threaded in ascending session-id order — the Nth save of a soak
//! is the same save on every run, at any `AIBENCH_THREADS`.
//!
//! Safety argument: a torn or rotted snapshot fails the container's CRC
//! validation on load, so `unpark` falls back to an older snapshot or to
//! scratch; deterministic training makes either path bitwise-neutral for
//! the final result (provided the session carries no injected training
//! faults). ENOSPC surfaces as [`CkptError::Io`], which the supervisor
//! absorbs through its `RetrySave` backoff policy.

use std::cell::RefCell;
use std::rc::Rc;

use aibench_ckpt::{CheckpointSink, CkptError};

use crate::log::ChaosEvent;
use crate::schedule::{ChaosInjection, ChaosKind, ChaosSite};

/// Shared store-chaos state: the store-site injections, the global
/// save-op counter, and the log of injections that fired.
#[derive(Debug, Default)]
pub struct StoreChaos {
    injections: Vec<ChaosInjection>,
    op: u64,
    log: Vec<ChaosEvent>,
}

impl StoreChaos {
    /// Builds the shared state from a schedule's `Store`-site injections.
    pub fn from_schedule(schedule: &crate::schedule::ChaosSchedule) -> Rc<RefCell<StoreChaos>> {
        Rc::new(RefCell::new(StoreChaos {
            injections: schedule
                .injections
                .iter()
                .filter(|i| i.site == ChaosSite::Store)
                .copied()
                .collect(),
            op: 0,
            log: Vec::new(),
        }))
    }

    /// The injections fired so far, in save-op order.
    pub fn log(&self) -> &[ChaosEvent] {
        &self.log
    }

    /// Drains the fired-injection log.
    pub fn take_log(&mut self) -> Vec<ChaosEvent> {
        std::mem::take(&mut self.log)
    }

    /// Save operations observed so far.
    pub fn ops(&self) -> u64 {
        self.op
    }
}

/// A [`CheckpointSink`] wrapper injecting scheduled store chaos into
/// `save`; `epochs`/`load`/`remove` pass through untouched.
pub struct ChaosSink<S: CheckpointSink> {
    inner: S,
    session: u64,
    chaos: Rc<RefCell<StoreChaos>>,
}

impl<S: CheckpointSink> ChaosSink<S> {
    /// Wraps `inner`, attributing fired injections to `session` in the
    /// chaos log.
    pub fn new(inner: S, session: u64, chaos: Rc<RefCell<StoreChaos>>) -> Self {
        ChaosSink {
            inner,
            session,
            chaos,
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: CheckpointSink> CheckpointSink for ChaosSink<S> {
    fn save(&mut self, epoch: usize, bytes: &[u8]) -> Result<(), CkptError> {
        let due = {
            let mut chaos = self.chaos.borrow_mut();
            let op = chaos.op;
            chaos.op += 1;
            let due: Vec<ChaosInjection> = chaos
                .injections
                .iter()
                .filter(|i| i.at == op)
                .copied()
                .collect();
            for inj in &due {
                chaos.log.push(ChaosEvent {
                    site: ChaosSite::Store,
                    at: op,
                    kind: inj.kind.name(),
                    session: self.session,
                });
            }
            due
        };
        // Apply the first due injection; stacked injections on one op
        // degenerate to the most severe single outcome anyway.
        match due.first().map(|i| i.kind) {
            Some(ChaosKind::DiskFull) => Err(CkptError::Io {
                op: "save".to_string(),
                what: "disk full (injected)".to_string(),
            }),
            Some(ChaosKind::TornWrite { keep }) => {
                // The torn prefix reaches the store; CRC validation will
                // reject it on load and unpark falls back further.
                let keep = keep.min(bytes.len());
                self.inner.save(epoch, &bytes[..keep])
            }
            Some(ChaosKind::BitRot { bit }) => {
                let mut rotted = bytes.to_vec();
                if !rotted.is_empty() {
                    let total_bits = rotted.len() * 8;
                    let bit = bit as usize % total_bits;
                    rotted[bit / 8] ^= 1 << (bit % 8);
                }
                self.inner.save(epoch, &rotted)
            }
            _ => self.inner.save(epoch, bytes),
        }
    }

    fn epochs(&self) -> Vec<usize> {
        self.inner.epochs()
    }

    fn load(&self, epoch: usize) -> Result<Option<Vec<u8>>, CkptError> {
        self.inner.load(epoch)
    }

    fn remove(&mut self, epoch: usize) {
        self.inner.remove(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ChaosSchedule;
    use aibench_ckpt::MemorySink;

    fn store_schedule() -> ChaosSchedule {
        ChaosSchedule::new(3)
            .inject(ChaosSite::Store, 1, ChaosKind::DiskFull)
            .inject(ChaosSite::Store, 2, ChaosKind::TornWrite { keep: 4 })
            .inject(ChaosSite::Store, 3, ChaosKind::BitRot { bit: 9 })
    }

    #[test]
    fn injections_fire_at_global_op_indices() {
        let chaos = StoreChaos::from_schedule(&store_schedule());
        let mut a = ChaosSink::new(MemorySink::new(), 1, Rc::clone(&chaos));
        let mut b = ChaosSink::new(MemorySink::new(), 2, Rc::clone(&chaos));

        let payload = vec![0xAB; 16];
        assert!(a.save(0, &payload).is_ok(), "op 0 is calm");
        let err = b.save(0, &payload).unwrap_err();
        assert!(format!("{err}").contains("disk full"), "op 1 hits ENOSPC");
        assert!(a.save(1, &payload).is_ok(), "op 2 tears but still saves");
        assert_eq!(
            a.inner().load(1).unwrap().unwrap().len(),
            4,
            "torn write stored only the kept prefix"
        );
        assert!(b.save(1, &payload).is_ok(), "op 3 rots a bit");
        let rotted = b.inner().load(1).unwrap().unwrap();
        assert_eq!(rotted.len(), payload.len());
        assert_ne!(rotted, payload, "one bit differs");

        let log = chaos.borrow();
        let sigs: Vec<String> = log.log().iter().map(|e| e.signature()).collect();
        assert_eq!(
            sigs,
            vec![
                "store@1:disk-full:s2",
                "store@2:torn-write:4:s1",
                "store@3:bit-rot:9:s2"
            ]
        );
        assert_eq!(log.ops(), 4);
    }

    #[test]
    fn calm_ops_pass_through_bit_for_bit() {
        let chaos = StoreChaos::from_schedule(&ChaosSchedule::empty());
        let mut sink = ChaosSink::new(MemorySink::new(), 7, chaos.clone());
        let payload: Vec<u8> = (0..64).collect();
        sink.save(3, &payload).unwrap();
        assert_eq!(sink.inner().load(3).unwrap().unwrap(), payload);
        assert!(chaos.borrow().log().is_empty());
    }
}

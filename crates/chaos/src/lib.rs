//! `aibench-chaos`: deterministic end-to-end chaos engineering for the
//! serving and storage layers.
//!
//! The crate injects seeded chaos into three layers of the serving stack
//! and soaks the hardening that must absorb it:
//!
//! * **Wire** — frame bit-flips, truncation, duplication, delayed
//!   delivery, mid-frame connection resets, and partial writes, keyed on
//!   direction-global frame indices.
//! * **Store** — torn checkpoint writes, disk-full errors, and snapshot
//!   bit rot, keyed on the global save-op index ([`ChaosSink`]).
//! * **Server** — scheduler tick stalls and slow client writes, keyed on
//!   the scheduler tick.
//!
//! Three modules mirror the `aibench-fault` structure:
//!
//! * [`schedule`] — [`ChaosSchedule`]: the pure-data, seeded injection
//!   plan (same replay discipline as `FaultSchedule`).
//! * [`log`] — [`ChaosEvent`] and [`chaos_signature`]: the replayable
//!   witness of what actually fired, liftable into the suite-wide
//!   [`TrainFault`](aibench_fault::TrainFault) taxonomy.
//! * [`soak`] — [`run_soak`]: the in-process client/server harness that
//!   drives a real `ServerCore` through real wire bytes under chaos.
//!
//! # The chaos invariant
//!
//! Under any seeded chaos schedule, every accepted session completes with
//! a `RunResult` bitwise identical to its chaos-free counterpart, and the
//! same chaos seed replays the identical chaos-event log at any
//! `AIBENCH_THREADS`. `tests/chaos_determinism.rs` pins both.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod log;
pub mod schedule;
pub mod sink;
pub mod soak;

pub use log::{chaos_signature, lift_log, ChaosEvent};
pub use schedule::{ChaosInjection, ChaosKind, ChaosSchedule, ChaosSite};
pub use sink::{ChaosSink, StoreChaos};
pub use soak::{run_soak, ChaosReport, SoakConfig, SoakOutcome};

//! Recovery policies: a deterministic mapping from fault kind to the
//! action the supervisor takes. All backoff is expressed in logical epochs
//! — wall-clock time never enters a policy, so the same run replays the
//! same recovery sequence bit for bit.

use crate::taxonomy::TrainFault;

/// A recovery action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryAction {
    /// Zero non-finite gradient entries, clip the global norm to
    /// `clip_norm`, and let the epoch proceed — "skip the poisoned step".
    /// Only meaningful for pre-step gradient faults; the supervisor coerces
    /// it to a plain rollback for faults detected after the step ran.
    SkipAndSanitize {
        /// Global-norm ceiling applied after zeroing.
        clip_norm: f32,
    },
    /// Restore the newest valid snapshot (scratch if none), scaling every
    /// learning rate by `lr_factor` so the retried trajectory differs.
    Rollback {
        /// Learning-rate multiplier applied after the restore.
        lr_factor: f32,
    },
    /// [`RecoveryAction::Rollback`], and additionally degrade execution to
    /// a single thread for the rest of the run — the graceful-degradation
    /// answer to kernel-level failures.
    RollbackSerial {
        /// Learning-rate multiplier applied after the restore.
        lr_factor: f32,
    },
    /// Retry a failed checkpoint save after a capped, doubling backoff in
    /// logical epochs; abandon checkpointing after `max_attempts` failures
    /// (training continues, durability is lost).
    RetrySave {
        /// Epochs to wait before the first retry (doubles per attempt).
        backoff_epochs: usize,
        /// Failed attempts tolerated before abandoning checkpointing.
        max_attempts: usize,
    },
    /// Stop retrying: record the fault and end the run as quarantined.
    Quarantine,
}

/// Per-fault-kind recovery actions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Response to a NaN/Inf loss.
    pub non_finite_loss: RecoveryAction,
    /// Response to a loss spike.
    pub loss_spike: RecoveryAction,
    /// Response to non-finite parameter values.
    pub non_finite_param: RecoveryAction,
    /// Response to an exploding (or non-finite) gradient norm.
    pub exploding_grad: RecoveryAction,
    /// Response to a kernel panic.
    pub kernel_panic: RecoveryAction,
    /// Response to a checkpoint I/O failure.
    pub checkpoint_io: RecoveryAction,
    /// Response to stalled quality progress.
    pub stalled: RecoveryAction,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            non_finite_loss: RecoveryAction::Rollback { lr_factor: 0.5 },
            loss_spike: RecoveryAction::Rollback { lr_factor: 0.5 },
            non_finite_param: RecoveryAction::Rollback { lr_factor: 0.5 },
            exploding_grad: RecoveryAction::SkipAndSanitize { clip_norm: 1.0 },
            kernel_panic: RecoveryAction::RollbackSerial { lr_factor: 1.0 },
            checkpoint_io: RecoveryAction::RetrySave {
                backoff_epochs: 1,
                max_attempts: 3,
            },
            stalled: RecoveryAction::Quarantine,
        }
    }
}

impl RecoveryPolicy {
    /// Every fault quarantines immediately: no recovery is attempted, the
    /// first fault ends the run. Used by the static validator's fixtures,
    /// where the point is *detection*, not repair.
    pub fn detect_only() -> Self {
        RecoveryPolicy {
            non_finite_loss: RecoveryAction::Quarantine,
            loss_spike: RecoveryAction::Quarantine,
            non_finite_param: RecoveryAction::Quarantine,
            exploding_grad: RecoveryAction::Quarantine,
            kernel_panic: RecoveryAction::Quarantine,
            checkpoint_io: RecoveryAction::Quarantine,
            stalled: RecoveryAction::Quarantine,
        }
    }

    /// The configured action for `fault`. The watchdog's budget fault
    /// always quarantines — it exists to stop recovery loops.
    pub fn action_for(&self, fault: &TrainFault) -> RecoveryAction {
        match fault {
            TrainFault::NonFiniteLoss { .. } => self.non_finite_loss,
            TrainFault::LossSpike { .. } => self.loss_spike,
            TrainFault::NonFiniteParam { .. } => self.non_finite_param,
            TrainFault::ExplodingGradNorm { .. } => self.exploding_grad,
            TrainFault::KernelPanic { .. } => self.kernel_panic,
            TrainFault::CheckpointIo { .. } => self.checkpoint_io,
            TrainFault::StalledProgress { .. } => self.stalled,
            TrainFault::BudgetExhausted { .. } => RecoveryAction::Quarantine,
            // Distributed faults are recovered *inside* the data-parallel
            // engine by its own `aibench_dist::DistPolicy`; one that still
            // reaches a sequential supervisor is terminal.
            TrainFault::StragglerDelay { .. }
            | TrainFault::WorkerDropped { .. }
            | TrainFault::CorruptGradShard { .. }
            | TrainFault::LostContribution { .. } => RecoveryAction::Quarantine,
            // Chaos faults are recovered by the transport and storage
            // layers (retransmit, lease redemption, store rollback); one
            // that reaches a sequential supervisor is terminal.
            TrainFault::FrameCorrupt { .. }
            | TrainFault::ConnectionLost { .. }
            | TrainFault::StoreCorrupt { .. } => RecoveryAction::Quarantine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_faults_always_quarantine() {
        let policy = RecoveryPolicy {
            non_finite_loss: RecoveryAction::SkipAndSanitize { clip_norm: 1.0 },
            ..RecoveryPolicy::default()
        };
        let fault = TrainFault::BudgetExhausted {
            executed: 10,
            budget: 9,
        };
        assert_eq!(policy.action_for(&fault), RecoveryAction::Quarantine);
    }

    #[test]
    fn detect_only_never_recovers() {
        let policy = RecoveryPolicy::detect_only();
        let fault = TrainFault::NonFiniteLoss {
            epoch: 1,
            loss: f32::NAN,
        };
        assert_eq!(policy.action_for(&fault), RecoveryAction::Quarantine);
    }
}

//! The suite supervisor: runs every registered benchmark under
//! supervision, isolating each behind a panic boundary so one broken
//! benchmark can never take the rest of the suite down, and reports a
//! per-benchmark outcome table.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use aibench::runner::RunConfig;
use aibench::Registry;
use aibench_ckpt::{CkptError, SnapshotFile, State};

use crate::inject::panic_message;
use crate::schedule::FaultSchedule;
use crate::supervisor::{supervised_run, Outcome, SupervisorConfig};
use crate::taxonomy::TrainFault;

/// Per-benchmark fault schedules for one suite pass. Benchmarks without an
/// entry run under the empty schedule (no injections).
#[derive(Debug, Clone, Default)]
pub struct SuitePlan {
    /// Benchmark code → schedule.
    pub schedules: BTreeMap<String, FaultSchedule>,
}

impl SuitePlan {
    /// No injections anywhere.
    pub fn clean() -> Self {
        SuitePlan::default()
    }

    /// Assigns `schedule` to the benchmark with `code`.
    pub fn with(mut self, code: &str, schedule: FaultSchedule) -> Self {
        self.schedules.insert(code.to_string(), schedule);
        self
    }
}

/// One benchmark's row in a [`SuiteReport`].
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Benchmark code.
    pub code: String,
    /// How the supervised run ended.
    pub outcome: Outcome,
    /// Recovery actions taken.
    pub recoveries: usize,
    /// Faults detected.
    pub faults: usize,
    /// Epochs in the surviving trajectory.
    pub epochs_run: usize,
    /// Epochs executed including recovery re-runs.
    pub epochs_executed: usize,
    /// Final quality reached.
    pub final_quality: f64,
    /// Wall-clock seconds (timing noise; not part of any determinism
    /// comparison).
    pub wall_seconds: f64,
}

impl SuiteEntry {
    /// Encodes the entry into a ckpt [`State`] (floats round-trip bitwise,
    /// NaN included).
    pub fn to_state(&self) -> State {
        let mut state = State::new();
        state.put_str("code", self.code.as_str());
        self.outcome.put_state(&mut state, "");
        state.put_usize("recoveries", self.recoveries);
        state.put_usize("faults", self.faults);
        state.put_usize("epochs_run", self.epochs_run);
        state.put_usize("epochs_executed", self.epochs_executed);
        state.put_f64("final_quality", self.final_quality);
        state.put_f64("wall_seconds", self.wall_seconds);
        state
    }

    /// Decodes an entry encoded by [`SuiteEntry::to_state`].
    pub fn from_state(state: &State) -> Result<SuiteEntry, CkptError> {
        Ok(SuiteEntry {
            code: state.str("code")?.to_string(),
            outcome: Outcome::take_state(state, "")?,
            recoveries: state.usize("recoveries")?,
            faults: state.usize("faults")?,
            epochs_run: state.usize("epochs_run")?,
            epochs_executed: state.usize("epochs_executed")?,
            final_quality: state.f64("final_quality")?,
            wall_seconds: state.f64("wall_seconds")?,
        })
    }
}

/// The suite supervisor's result: one entry per benchmark, in registry
/// order.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Per-benchmark outcomes.
    pub entries: Vec<SuiteEntry>,
}

impl SuiteReport {
    /// Entries that converged without any recovery.
    pub fn converged(&self) -> usize {
        self.count("converged")
    }

    /// Entries that reached their target after recoveries.
    pub fn recovered(&self) -> usize {
        self.count("recovered")
    }

    /// Entries the supervisor quarantined.
    pub fn quarantined(&self) -> usize {
        self.count("quarantined")
    }

    fn count(&self, kind: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.outcome.kind() == kind)
            .count()
    }

    /// Serializes the report in the ckpt snapshot container (CRC-checked
    /// sections, no serde): a `meta` section with the entry count, then one
    /// section per entry in suite order. The encoding is deterministic —
    /// the same report always produces the same bytes — and floats
    /// round-trip bitwise, so a report survives the serving wire intact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut file = SnapshotFile::new();
        let mut meta = State::new();
        meta.put_str("what", "aibench-suite-report");
        meta.put_usize("entries", self.entries.len());
        file.push("meta", meta);
        for (i, entry) in self.entries.iter().enumerate() {
            file.push(format!("entry-{i:06}"), entry.to_state());
        }
        file.to_bytes()
    }

    /// Decodes a report encoded by [`SuiteReport::to_bytes`]. Corruption
    /// anywhere — container checksums, missing sections, mistyped keys —
    /// surfaces as an error rather than a partial report.
    pub fn from_bytes(bytes: &[u8]) -> Result<SuiteReport, CkptError> {
        let file = SnapshotFile::from_bytes(bytes)?;
        let meta = file.section("meta")?;
        if meta.str("what")? != "aibench-suite-report" {
            return Err(CkptError::MetaMismatch {
                what: "not a suite report".to_string(),
            });
        }
        let count = meta.usize("entries")?;
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            entries.push(SuiteEntry::from_state(
                file.section(&format!("entry-{i:06}"))?,
            )?);
        }
        Ok(SuiteReport { entries })
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:<28} {:>6} {:>6} {:>7} {:>9} {:>10}",
            "benchmark", "outcome", "faults", "recov", "epochs", "executed", "quality"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:<12} {:<28} {:>6} {:>6} {:>7} {:>9} {:>10.4}",
                e.code,
                e.outcome.signature(),
                e.faults,
                e.recoveries,
                e.epochs_run,
                e.epochs_executed,
                e.final_quality
            );
        }
        let _ = writeln!(
            out,
            "{} converged, {} recovered, {} quarantined, {} total",
            self.converged(),
            self.recovered(),
            self.quarantined(),
            self.entries.len()
        );
        out
    }
}

/// Runs every benchmark in `registry` under supervision with its schedule
/// from `plan` (empty if unplanned). Each benchmark runs behind its own
/// panic boundary: a panic that somehow escapes the supervised loop (e.g.
/// out of the benchmark factory) quarantines that benchmark and the suite
/// moves on.
pub fn run_suite(
    registry: &Registry,
    seed: u64,
    config: &RunConfig,
    plan: &SuitePlan,
    sup: &SupervisorConfig,
) -> SuiteReport {
    let empty = FaultSchedule::empty();
    let mut entries = Vec::new();
    for benchmark in registry.benchmarks() {
        let code = benchmark.id.code();
        let schedule = plan.schedules.get(code).unwrap_or(&empty);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            supervised_run(benchmark, seed, config, schedule, sup)
        }));
        let entry = match outcome {
            Ok(run) => SuiteEntry {
                code: code.to_string(),
                outcome: run.outcome,
                recoveries: run.recoveries,
                faults: run.faults.len(),
                epochs_run: run.result.epochs_run,
                epochs_executed: run.epochs_executed,
                final_quality: run.result.final_quality,
                wall_seconds: run.result.wall_seconds,
            },
            Err(payload) => SuiteEntry {
                code: code.to_string(),
                outcome: Outcome::Quarantined {
                    fault: TrainFault::KernelPanic {
                        epoch: 0,
                        message: panic_message(&*payload),
                    },
                },
                recoveries: 0,
                faults: 1,
                epochs_run: 0,
                epochs_executed: 0,
                final_quality: f64::NAN,
                wall_seconds: 0.0,
            },
        };
        entries.push(entry);
    }
    SuiteReport { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultKind;

    #[test]
    fn clean_suite_pass_covers_every_benchmark() {
        let registry = Registry::aibench();
        let config = RunConfig {
            max_epochs: 1,
            eval_every: 1,
            ..RunConfig::default()
        };
        let report = run_suite(
            &registry,
            1,
            &config,
            &SuitePlan::clean(),
            &SupervisorConfig::default(),
        );
        assert_eq!(report.entries.len(), registry.benchmarks().len());
        assert_eq!(report.quarantined(), 0);
        assert!(report.entries.iter().all(|e| e.faults == 0));
        let table = report.render();
        assert!(table.contains("DC-AI-C15"));
    }

    #[test]
    fn planned_injection_shows_up_in_its_row_only() {
        let registry = Registry::aibench();
        let config = RunConfig {
            max_epochs: 4,
            eval_every: 1,
            ..RunConfig::default()
        };
        let plan = SuitePlan::clean().with(
            "DC-AI-C15",
            FaultSchedule::new(5).inject(2, FaultKind::LossValue { value: f32::NAN }),
        );
        let report = run_suite(&registry, 1, &config, &plan, &SupervisorConfig::default());
        for e in &report.entries {
            if e.code == "DC-AI-C15" {
                assert!(e.faults >= 1, "injection must be detected");
            } else {
                assert_eq!(e.faults, 0, "{}: unplanned faults", e.code);
            }
        }
    }
}

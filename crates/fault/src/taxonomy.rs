//! The typed failure taxonomy: everything that can go wrong during a
//! supervised training session, and the record of what the supervisor did
//! about it.
//!
//! Faults carry the *logical* position (epoch) and the offending values, so
//! two runs of the same seed and schedule produce identical fault logs —
//! wall-clock time never appears anywhere in the taxonomy.

use std::fmt;

/// A detected training failure.
///
/// Every variant records the 1-based logical epoch it was detected at.
/// Float payloads may be NaN (that is often the point), so the derived
/// `PartialEq` is unsuitable for determinism checks — compare
/// [`TrainFault::kind`] and epochs, or use
/// [`SupervisedRun::fault_signature`](crate::SupervisedRun::fault_signature).
#[derive(Debug, Clone, PartialEq)]
pub enum TrainFault {
    /// The epoch's mean training loss was NaN or infinite.
    NonFiniteLoss {
        /// Epoch the loss was produced at.
        epoch: usize,
        /// The offending loss.
        loss: f32,
    },
    /// The loss jumped far above the recent baseline — divergence caught
    /// before it turns into NaN.
    LossSpike {
        /// Epoch the spike was detected at.
        epoch: usize,
        /// The spiking loss.
        loss: f32,
        /// The recent-window baseline it was compared against.
        baseline: f32,
    },
    /// A model parameter contains a NaN or infinite value.
    NonFiniteParam {
        /// Epoch the scan fired at.
        epoch: usize,
        /// Name of the first offending parameter.
        param: String,
    },
    /// The global gradient norm is non-finite or above the sentinel limit.
    ExplodingGradNorm {
        /// Epoch the scan fired at.
        epoch: usize,
        /// The measured global L2 norm (NaN if any component was).
        norm: f32,
        /// The configured limit.
        limit: f32,
    },
    /// A kernel panicked inside a training or evaluation step (caught at
    /// the step boundary; worker-pool panics propagate to the caller).
    KernelPanic {
        /// Epoch the panic surfaced at.
        epoch: usize,
        /// The panic payload, rendered.
        message: String,
    },
    /// A checkpoint could not be stored or retrieved.
    CheckpointIo {
        /// Epoch of the failed operation.
        epoch: usize,
        /// The underlying error's description.
        error: String,
    },
    /// Quality made no progress over a whole detection window.
    StalledProgress {
        /// Epoch the stall was confirmed at.
        epoch: usize,
        /// Number of evaluations without improvement.
        window: usize,
        /// The best quality before the window.
        best: f64,
    },
    /// The watchdog's logical-epoch budget ran out — recovery was retrying
    /// forever without finishing.
    BudgetExhausted {
        /// Epochs executed (including re-runs after rollbacks).
        executed: usize,
        /// The budget they exceeded.
        budget: usize,
    },
}

impl TrainFault {
    /// Every fault kind name, in taxonomy order — the coverage contract the
    /// seeded check fixtures are validated against.
    pub const KINDS: [&'static str; 8] = [
        "non-finite-loss",
        "loss-spike",
        "non-finite-param",
        "exploding-grad-norm",
        "kernel-panic",
        "checkpoint-io",
        "stalled-progress",
        "budget-exhausted",
    ];

    /// Stable kind name (one of [`TrainFault::KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            TrainFault::NonFiniteLoss { .. } => "non-finite-loss",
            TrainFault::LossSpike { .. } => "loss-spike",
            TrainFault::NonFiniteParam { .. } => "non-finite-param",
            TrainFault::ExplodingGradNorm { .. } => "exploding-grad-norm",
            TrainFault::KernelPanic { .. } => "kernel-panic",
            TrainFault::CheckpointIo { .. } => "checkpoint-io",
            TrainFault::StalledProgress { .. } => "stalled-progress",
            TrainFault::BudgetExhausted { .. } => "budget-exhausted",
        }
    }

    /// The logical epoch the fault was detected at.
    pub fn epoch(&self) -> usize {
        match *self {
            TrainFault::NonFiniteLoss { epoch, .. }
            | TrainFault::LossSpike { epoch, .. }
            | TrainFault::NonFiniteParam { epoch, .. }
            | TrainFault::ExplodingGradNorm { epoch, .. }
            | TrainFault::KernelPanic { epoch, .. }
            | TrainFault::CheckpointIo { epoch, .. }
            | TrainFault::StalledProgress { epoch, .. } => epoch,
            TrainFault::BudgetExhausted { executed, .. } => executed,
        }
    }
}

impl fmt::Display for TrainFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainFault::NonFiniteLoss { epoch, loss } => {
                write!(f, "epoch {epoch}: non-finite training loss ({loss})")
            }
            TrainFault::LossSpike {
                epoch,
                loss,
                baseline,
            } => write!(
                f,
                "epoch {epoch}: loss spiked to {loss:e} (recent baseline {baseline:e})"
            ),
            TrainFault::NonFiniteParam { epoch, param } => {
                write!(f, "epoch {epoch}: parameter `{param}` is non-finite")
            }
            TrainFault::ExplodingGradNorm { epoch, norm, limit } => write!(
                f,
                "epoch {epoch}: gradient norm {norm:e} exceeds limit {limit:e}"
            ),
            TrainFault::KernelPanic { epoch, message } => {
                write!(f, "epoch {epoch}: kernel panic: {message}")
            }
            TrainFault::CheckpointIo { epoch, error } => {
                write!(f, "epoch {epoch}: checkpoint I/O failure: {error}")
            }
            TrainFault::StalledProgress {
                epoch,
                window,
                best,
            } => write!(
                f,
                "epoch {epoch}: no quality progress over {window} evaluations (best {best:.4})"
            ),
            TrainFault::BudgetExhausted { executed, budget } => write!(
                f,
                "watchdog: {executed} epochs executed against a budget of {budget}"
            ),
        }
    }
}

/// What the supervisor did in response to one fault.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionTaken {
    /// Non-finite gradient entries were zeroed and the global norm clipped;
    /// the epoch then proceeded ("skip the poisoned step").
    SanitizedGrads {
        /// Number of non-finite gradient entries zeroed.
        zeroed: usize,
        /// The norm the gradients were clipped to.
        clipped_to: f32,
    },
    /// The run was rolled back to its newest valid snapshot (or to scratch)
    /// with the learning rate scaled down.
    RolledBack {
        /// Epoch of the snapshot restored (`None` = restarted from scratch).
        to_epoch: Option<usize>,
        /// Factor applied to every learning rate after the restore.
        lr_factor: f32,
        /// Whether execution was also degraded to a single thread.
        serial: bool,
    },
    /// The failed checkpoint save will be retried at a later logical epoch
    /// (deterministic backoff — epochs, never wall clock).
    RetriedSave {
        /// Epoch the retry is scheduled for.
        retry_epoch: usize,
        /// 1-based attempt number.
        attempt: usize,
    },
    /// Checkpointing was abandoned after exhausting its save retries;
    /// training continues without durability.
    AbandonedCheckpointing,
    /// The benchmark was quarantined — the supervisor stopped retrying.
    Quarantined,
}

impl ActionTaken {
    /// Stable action name for signatures and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ActionTaken::SanitizedGrads { .. } => "sanitize",
            ActionTaken::RolledBack { serial: false, .. } => "rollback",
            ActionTaken::RolledBack { serial: true, .. } => "rollback-serial",
            ActionTaken::RetriedSave { .. } => "retry-save",
            ActionTaken::AbandonedCheckpointing => "abandon-ckpt",
            ActionTaken::Quarantined => "quarantine",
        }
    }
}

impl fmt::Display for ActionTaken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionTaken::SanitizedGrads { zeroed, clipped_to } => {
                write!(f, "zeroed {zeroed} grad entries, clipped to {clipped_to}")
            }
            ActionTaken::RolledBack {
                to_epoch,
                lr_factor,
                serial,
            } => {
                match to_epoch {
                    Some(e) => write!(f, "rolled back to epoch {e} snapshot")?,
                    None => write!(f, "restarted from scratch")?,
                }
                write!(f, ", lr x{lr_factor}")?;
                if *serial {
                    write!(f, ", degraded to 1 thread")?;
                }
                Ok(())
            }
            ActionTaken::RetriedSave {
                retry_epoch,
                attempt,
            } => write!(f, "save retry {attempt} scheduled for epoch {retry_epoch}"),
            ActionTaken::AbandonedCheckpointing => write!(f, "abandoned checkpointing"),
            ActionTaken::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// One fault and the action the supervisor answered it with.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The detected fault.
    pub fault: TrainFault,
    /// The recovery action taken.
    pub action: ActionTaken,
}

impl FaultEvent {
    /// Compact deterministic signature, e.g. `e4:non-finite-loss>rollback`.
    /// Float payloads are excluded, so the signature is total even over NaN.
    pub fn signature(&self) -> String {
        format!(
            "e{}:{}>{}",
            self.fault.epoch(),
            self.fault.kind(),
            self.action.kind()
        )
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.fault, self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_every_variant() {
        let faults = [
            TrainFault::NonFiniteLoss {
                epoch: 1,
                loss: f32::NAN,
            },
            TrainFault::LossSpike {
                epoch: 2,
                loss: 1e9,
                baseline: 0.1,
            },
            TrainFault::NonFiniteParam {
                epoch: 3,
                param: "w".into(),
            },
            TrainFault::ExplodingGradNorm {
                epoch: 4,
                norm: 1e12,
                limit: 1e8,
            },
            TrainFault::KernelPanic {
                epoch: 5,
                message: "boom".into(),
            },
            TrainFault::CheckpointIo {
                epoch: 6,
                error: "disk".into(),
            },
            TrainFault::StalledProgress {
                epoch: 7,
                window: 3,
                best: 0.5,
            },
            TrainFault::BudgetExhausted {
                executed: 99,
                budget: 98,
            },
        ];
        let kinds: Vec<&str> = faults.iter().map(|f| f.kind()).collect();
        assert_eq!(kinds, TrainFault::KINDS);
    }

    #[test]
    fn signature_is_nan_stable() {
        let a = FaultEvent {
            fault: TrainFault::NonFiniteLoss {
                epoch: 4,
                loss: f32::NAN,
            },
            action: ActionTaken::RolledBack {
                to_epoch: Some(3),
                lr_factor: 0.5,
                serial: false,
            },
        };
        let b = a.clone();
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.signature(), "e4:non-finite-loss>rollback");
    }
}

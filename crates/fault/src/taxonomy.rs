//! The typed failure taxonomy: everything that can go wrong during a
//! supervised training session, and the record of what the supervisor did
//! about it.
//!
//! Faults carry the *logical* position (epoch) and the offending values, so
//! two runs of the same seed and schedule produce identical fault logs —
//! wall-clock time never appears anywhere in the taxonomy.

use std::fmt;

/// A detected training failure.
///
/// Every variant records the 1-based logical epoch it was detected at.
/// Float payloads may be NaN (that is often the point), so the derived
/// `PartialEq` is unsuitable for determinism checks — compare
/// [`TrainFault::kind`] and epochs, or use
/// [`SupervisedRun::fault_signature`](crate::SupervisedRun::fault_signature).
#[derive(Debug, Clone, PartialEq)]
pub enum TrainFault {
    /// The epoch's mean training loss was NaN or infinite.
    NonFiniteLoss {
        /// Epoch the loss was produced at.
        epoch: usize,
        /// The offending loss.
        loss: f32,
    },
    /// The loss jumped far above the recent baseline — divergence caught
    /// before it turns into NaN.
    LossSpike {
        /// Epoch the spike was detected at.
        epoch: usize,
        /// The spiking loss.
        loss: f32,
        /// The recent-window baseline it was compared against.
        baseline: f32,
    },
    /// A model parameter contains a NaN or infinite value.
    NonFiniteParam {
        /// Epoch the scan fired at.
        epoch: usize,
        /// Name of the first offending parameter.
        param: String,
    },
    /// The global gradient norm is non-finite or above the sentinel limit.
    ExplodingGradNorm {
        /// Epoch the scan fired at.
        epoch: usize,
        /// The measured global L2 norm (NaN if any component was).
        norm: f32,
        /// The configured limit.
        limit: f32,
    },
    /// A kernel panicked inside a training or evaluation step (caught at
    /// the step boundary; worker-pool panics propagate to the caller).
    KernelPanic {
        /// Epoch the panic surfaced at.
        epoch: usize,
        /// The panic payload, rendered.
        message: String,
    },
    /// A checkpoint could not be stored or retrieved.
    CheckpointIo {
        /// Epoch of the failed operation.
        epoch: usize,
        /// The underlying error's description.
        error: String,
    },
    /// Quality made no progress over a whole detection window.
    StalledProgress {
        /// Epoch the stall was confirmed at.
        epoch: usize,
        /// Number of evaluations without improvement.
        window: usize,
        /// The best quality before the window.
        best: f64,
    },
    /// The watchdog's logical-epoch budget ran out — recovery was retrying
    /// forever without finishing.
    BudgetExhausted {
        /// Epochs executed (including re-runs after rollbacks).
        executed: usize,
        /// The budget they exceeded.
        budget: usize,
    },
    /// A data-parallel worker lagged the group by `ticks` of logical time
    /// (distributed; see `aibench-dist`).
    StragglerDelay {
        /// Epoch the delay was detected at.
        epoch: usize,
        /// The lagging worker's id.
        worker: u32,
        /// Logical-time delay observed.
        ticks: u64,
    },
    /// A data-parallel worker disappeared mid-epoch and never answered
    /// again (distributed).
    WorkerDropped {
        /// Epoch the drop was detected at.
        epoch: usize,
        /// The dropped worker's id.
        worker: u32,
    },
    /// A worker's gradient shard failed its CRC sentinel — corruption in
    /// flight (distributed).
    CorruptGradShard {
        /// Epoch the corruption was detected at.
        epoch: usize,
        /// The worker whose shard was corrupted.
        worker: u32,
    },
    /// A worker's all-reduce contribution never arrived (distributed).
    LostContribution {
        /// Epoch the loss was detected at.
        epoch: usize,
        /// The worker whose contribution was lost.
        worker: u32,
    },
    /// A wire frame arrived damaged — bit-flipped, truncated, or cut by a
    /// short write — and was rejected by the CRC-checked frame format
    /// (serving; `epoch` carries the logical scheduler tick).
    FrameCorrupt {
        /// Logical scheduler tick of the detection.
        epoch: usize,
        /// Direction-global index of the damaged frame.
        frame: u64,
    },
    /// A client's connection died mid-session — reset, or poisoned by an
    /// undecodable frame (serving; `epoch` carries the logical tick).
    ConnectionLost {
        /// Logical scheduler tick the connection died at.
        epoch: usize,
        /// The session whose stream was cut.
        session: u64,
    },
    /// A stored snapshot came back damaged — torn write or bit rot —
    /// detected by validation at load time (serving/storage; `epoch`
    /// carries the index of the chaotic store operation).
    StoreCorrupt {
        /// Index of the store operation that was corrupted.
        epoch: usize,
        /// What was done to the stored bytes.
        detail: String,
    },
}

impl TrainFault {
    /// Every fault kind name, in taxonomy order — the coverage contract the
    /// seeded check fixtures are validated against.
    pub const KINDS: [&'static str; 15] = [
        "non-finite-loss",
        "loss-spike",
        "non-finite-param",
        "exploding-grad-norm",
        "kernel-panic",
        "checkpoint-io",
        "stalled-progress",
        "budget-exhausted",
        "straggler-delay",
        "worker-drop",
        "corrupt-grad-shard",
        "lost-contribution",
        "frame-corrupt",
        "connection-lost",
        "store-corrupt",
    ];

    /// Stable kind name (one of [`TrainFault::KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            TrainFault::NonFiniteLoss { .. } => "non-finite-loss",
            TrainFault::LossSpike { .. } => "loss-spike",
            TrainFault::NonFiniteParam { .. } => "non-finite-param",
            TrainFault::ExplodingGradNorm { .. } => "exploding-grad-norm",
            TrainFault::KernelPanic { .. } => "kernel-panic",
            TrainFault::CheckpointIo { .. } => "checkpoint-io",
            TrainFault::StalledProgress { .. } => "stalled-progress",
            TrainFault::BudgetExhausted { .. } => "budget-exhausted",
            TrainFault::StragglerDelay { .. } => "straggler-delay",
            TrainFault::WorkerDropped { .. } => "worker-drop",
            TrainFault::CorruptGradShard { .. } => "corrupt-grad-shard",
            TrainFault::LostContribution { .. } => "lost-contribution",
            TrainFault::FrameCorrupt { .. } => "frame-corrupt",
            TrainFault::ConnectionLost { .. } => "connection-lost",
            TrainFault::StoreCorrupt { .. } => "store-corrupt",
        }
    }

    /// Encodes the fault into `state` under `prefix`, in the ckpt typed
    /// byte format (the workspace has no serde). Float payloads round-trip
    /// bitwise, NaN included — a serialized fault log is as deterministic
    /// as the in-memory one.
    pub fn put_state(&self, state: &mut aibench_ckpt::State, prefix: &str) {
        use aibench_ckpt::key;
        state.put_str(key(prefix, "kind"), self.kind());
        match self {
            TrainFault::NonFiniteLoss { epoch, loss } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_f32(key(prefix, "loss"), *loss);
            }
            TrainFault::LossSpike {
                epoch,
                loss,
                baseline,
            } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_f32(key(prefix, "loss"), *loss);
                state.put_f32(key(prefix, "baseline"), *baseline);
            }
            TrainFault::NonFiniteParam { epoch, param } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_str(key(prefix, "param"), param.as_str());
            }
            TrainFault::ExplodingGradNorm { epoch, norm, limit } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_f32(key(prefix, "norm"), *norm);
                state.put_f32(key(prefix, "limit"), *limit);
            }
            TrainFault::KernelPanic { epoch, message } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_str(key(prefix, "message"), message.as_str());
            }
            TrainFault::CheckpointIo { epoch, error } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_str(key(prefix, "error"), error.as_str());
            }
            TrainFault::StalledProgress {
                epoch,
                window,
                best,
            } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_usize(key(prefix, "window"), *window);
                state.put_f64(key(prefix, "best"), *best);
            }
            TrainFault::BudgetExhausted { executed, budget } => {
                state.put_usize(key(prefix, "executed"), *executed);
                state.put_usize(key(prefix, "budget"), *budget);
            }
            TrainFault::StragglerDelay {
                epoch,
                worker,
                ticks,
            } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_u64(key(prefix, "worker"), u64::from(*worker));
                state.put_u64(key(prefix, "ticks"), *ticks);
            }
            TrainFault::WorkerDropped { epoch, worker }
            | TrainFault::CorruptGradShard { epoch, worker }
            | TrainFault::LostContribution { epoch, worker } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_u64(key(prefix, "worker"), u64::from(*worker));
            }
            TrainFault::FrameCorrupt { epoch, frame } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_u64(key(prefix, "frame"), *frame);
            }
            TrainFault::ConnectionLost { epoch, session } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_u64(key(prefix, "session"), *session);
            }
            TrainFault::StoreCorrupt { epoch, detail } => {
                state.put_usize(key(prefix, "epoch"), *epoch);
                state.put_str(key(prefix, "detail"), detail.as_str());
            }
        }
    }

    /// Decodes a fault encoded by [`TrainFault::put_state`]. Unknown kinds
    /// and missing or mistyped payload keys surface as errors.
    pub fn take_state(
        state: &aibench_ckpt::State,
        prefix: &str,
    ) -> Result<TrainFault, aibench_ckpt::CkptError> {
        use aibench_ckpt::key;
        let worker = |state: &aibench_ckpt::State| -> Result<u32, aibench_ckpt::CkptError> {
            let w = state.u64(&key(prefix, "worker"))?;
            u32::try_from(w).map_err(|_| aibench_ckpt::CkptError::MetaMismatch {
                what: format!("worker id {w} exceeds u32"),
            })
        };
        Ok(match state.str(&key(prefix, "kind"))? {
            "non-finite-loss" => TrainFault::NonFiniteLoss {
                epoch: state.usize(&key(prefix, "epoch"))?,
                loss: state.f32(&key(prefix, "loss"))?,
            },
            "loss-spike" => TrainFault::LossSpike {
                epoch: state.usize(&key(prefix, "epoch"))?,
                loss: state.f32(&key(prefix, "loss"))?,
                baseline: state.f32(&key(prefix, "baseline"))?,
            },
            "non-finite-param" => TrainFault::NonFiniteParam {
                epoch: state.usize(&key(prefix, "epoch"))?,
                param: state.str(&key(prefix, "param"))?.to_string(),
            },
            "exploding-grad-norm" => TrainFault::ExplodingGradNorm {
                epoch: state.usize(&key(prefix, "epoch"))?,
                norm: state.f32(&key(prefix, "norm"))?,
                limit: state.f32(&key(prefix, "limit"))?,
            },
            "kernel-panic" => TrainFault::KernelPanic {
                epoch: state.usize(&key(prefix, "epoch"))?,
                message: state.str(&key(prefix, "message"))?.to_string(),
            },
            "checkpoint-io" => TrainFault::CheckpointIo {
                epoch: state.usize(&key(prefix, "epoch"))?,
                error: state.str(&key(prefix, "error"))?.to_string(),
            },
            "stalled-progress" => TrainFault::StalledProgress {
                epoch: state.usize(&key(prefix, "epoch"))?,
                window: state.usize(&key(prefix, "window"))?,
                best: state.f64(&key(prefix, "best"))?,
            },
            "budget-exhausted" => TrainFault::BudgetExhausted {
                executed: state.usize(&key(prefix, "executed"))?,
                budget: state.usize(&key(prefix, "budget"))?,
            },
            "straggler-delay" => TrainFault::StragglerDelay {
                epoch: state.usize(&key(prefix, "epoch"))?,
                worker: worker(state)?,
                ticks: state.u64(&key(prefix, "ticks"))?,
            },
            "worker-drop" => TrainFault::WorkerDropped {
                epoch: state.usize(&key(prefix, "epoch"))?,
                worker: worker(state)?,
            },
            "corrupt-grad-shard" => TrainFault::CorruptGradShard {
                epoch: state.usize(&key(prefix, "epoch"))?,
                worker: worker(state)?,
            },
            "lost-contribution" => TrainFault::LostContribution {
                epoch: state.usize(&key(prefix, "epoch"))?,
                worker: worker(state)?,
            },
            "frame-corrupt" => TrainFault::FrameCorrupt {
                epoch: state.usize(&key(prefix, "epoch"))?,
                frame: state.u64(&key(prefix, "frame"))?,
            },
            "connection-lost" => TrainFault::ConnectionLost {
                epoch: state.usize(&key(prefix, "epoch"))?,
                session: state.u64(&key(prefix, "session"))?,
            },
            "store-corrupt" => TrainFault::StoreCorrupt {
                epoch: state.usize(&key(prefix, "epoch"))?,
                detail: state.str(&key(prefix, "detail"))?.to_string(),
            },
            other => {
                return Err(aibench_ckpt::CkptError::MetaMismatch {
                    what: format!("unknown fault kind `{other}`"),
                })
            }
        })
    }

    /// The logical epoch the fault was detected at.
    pub fn epoch(&self) -> usize {
        match *self {
            TrainFault::NonFiniteLoss { epoch, .. }
            | TrainFault::LossSpike { epoch, .. }
            | TrainFault::NonFiniteParam { epoch, .. }
            | TrainFault::ExplodingGradNorm { epoch, .. }
            | TrainFault::KernelPanic { epoch, .. }
            | TrainFault::CheckpointIo { epoch, .. }
            | TrainFault::StalledProgress { epoch, .. }
            | TrainFault::StragglerDelay { epoch, .. }
            | TrainFault::WorkerDropped { epoch, .. }
            | TrainFault::CorruptGradShard { epoch, .. }
            | TrainFault::LostContribution { epoch, .. }
            | TrainFault::FrameCorrupt { epoch, .. }
            | TrainFault::ConnectionLost { epoch, .. }
            | TrainFault::StoreCorrupt { epoch, .. } => epoch,
            TrainFault::BudgetExhausted { executed, .. } => executed,
        }
    }
}

impl fmt::Display for TrainFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainFault::NonFiniteLoss { epoch, loss } => {
                write!(f, "epoch {epoch}: non-finite training loss ({loss})")
            }
            TrainFault::LossSpike {
                epoch,
                loss,
                baseline,
            } => write!(
                f,
                "epoch {epoch}: loss spiked to {loss:e} (recent baseline {baseline:e})"
            ),
            TrainFault::NonFiniteParam { epoch, param } => {
                write!(f, "epoch {epoch}: parameter `{param}` is non-finite")
            }
            TrainFault::ExplodingGradNorm { epoch, norm, limit } => write!(
                f,
                "epoch {epoch}: gradient norm {norm:e} exceeds limit {limit:e}"
            ),
            TrainFault::KernelPanic { epoch, message } => {
                write!(f, "epoch {epoch}: kernel panic: {message}")
            }
            TrainFault::CheckpointIo { epoch, error } => {
                write!(f, "epoch {epoch}: checkpoint I/O failure: {error}")
            }
            TrainFault::StalledProgress {
                epoch,
                window,
                best,
            } => write!(
                f,
                "epoch {epoch}: no quality progress over {window} evaluations (best {best:.4})"
            ),
            TrainFault::BudgetExhausted { executed, budget } => write!(
                f,
                "watchdog: {executed} epochs executed against a budget of {budget}"
            ),
            TrainFault::StragglerDelay {
                epoch,
                worker,
                ticks,
            } => write!(
                f,
                "epoch {epoch}: worker {worker} straggled by {ticks} ticks"
            ),
            TrainFault::WorkerDropped { epoch, worker } => {
                write!(f, "epoch {epoch}: worker {worker} dropped mid-epoch")
            }
            TrainFault::CorruptGradShard { epoch, worker } => write!(
                f,
                "epoch {epoch}: worker {worker}'s gradient shard failed its CRC"
            ),
            TrainFault::LostContribution { epoch, worker } => write!(
                f,
                "epoch {epoch}: worker {worker}'s all-reduce contribution was lost"
            ),
            TrainFault::FrameCorrupt { epoch, frame } => {
                write!(f, "tick {epoch}: wire frame {frame} rejected as corrupt")
            }
            TrainFault::ConnectionLost { epoch, session } => {
                write!(f, "tick {epoch}: session {session}'s connection was lost")
            }
            TrainFault::StoreCorrupt { epoch, detail } => {
                write!(f, "store op {epoch}: stored snapshot corrupted ({detail})")
            }
        }
    }
}

/// What the supervisor did in response to one fault.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionTaken {
    /// Non-finite gradient entries were zeroed and the global norm clipped;
    /// the epoch then proceeded ("skip the poisoned step").
    SanitizedGrads {
        /// Number of non-finite gradient entries zeroed.
        zeroed: usize,
        /// The norm the gradients were clipped to.
        clipped_to: f32,
    },
    /// The run was rolled back to its newest valid snapshot (or to scratch)
    /// with the learning rate scaled down.
    RolledBack {
        /// Epoch of the snapshot restored (`None` = restarted from scratch).
        to_epoch: Option<usize>,
        /// Factor applied to every learning rate after the restore.
        lr_factor: f32,
        /// Whether execution was also degraded to a single thread.
        serial: bool,
    },
    /// The failed checkpoint save will be retried at a later logical epoch
    /// (deterministic backoff — epochs, never wall clock).
    RetriedSave {
        /// Epoch the retry is scheduled for.
        retry_epoch: usize,
        /// 1-based attempt number.
        attempt: usize,
    },
    /// Checkpointing was abandoned after exhausting its save retries;
    /// training continues without durability.
    AbandonedCheckpointing,
    /// The benchmark was quarantined — the supervisor stopped retrying.
    Quarantined,
    /// A failed worker was removed from the data-parallel group and the
    /// shards reassigned over the `world` survivors (distributed).
    ExcludedAndResharded {
        /// Group size after the exclusion.
        world: usize,
    },
    /// One worker's gradient shard was dropped from the step's all-reduce
    /// and the survivors reweighted; membership was untouched (distributed).
    QuarantinedShard {
        /// The worker whose shard was quarantined.
        worker: u32,
    },
    /// A straggler's delay was accounted in logical time and the run
    /// proceeded (distributed).
    AbsorbedDelay {
        /// Ticks of logical time absorbed.
        ticks: u64,
    },
    /// The damaged or lost frame was retransmitted under exponential
    /// backoff (serving).
    Retransmitted {
        /// 1-based retry attempt.
        attempt: usize,
    },
    /// The disconnected session's lease was redeemed on reconnect: missed
    /// progress was replayed and the buffered result delivered (serving).
    LeaseRedeemed {
        /// Progress events replayed from the lease buffer.
        replayed: usize,
    },
}

impl ActionTaken {
    /// Stable action name for signatures and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ActionTaken::SanitizedGrads { .. } => "sanitize",
            ActionTaken::RolledBack { serial: false, .. } => "rollback",
            ActionTaken::RolledBack { serial: true, .. } => "rollback-serial",
            ActionTaken::RetriedSave { .. } => "retry-save",
            ActionTaken::AbandonedCheckpointing => "abandon-ckpt",
            ActionTaken::Quarantined => "quarantine",
            ActionTaken::ExcludedAndResharded { .. } => "exclude-reshard",
            ActionTaken::QuarantinedShard { .. } => "shard-quarantine",
            ActionTaken::AbsorbedDelay { .. } => "absorb-delay",
            ActionTaken::Retransmitted { .. } => "retransmit",
            ActionTaken::LeaseRedeemed { .. } => "lease-resume",
        }
    }
}

impl fmt::Display for ActionTaken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionTaken::SanitizedGrads { zeroed, clipped_to } => {
                write!(f, "zeroed {zeroed} grad entries, clipped to {clipped_to}")
            }
            ActionTaken::RolledBack {
                to_epoch,
                lr_factor,
                serial,
            } => {
                match to_epoch {
                    Some(e) => write!(f, "rolled back to epoch {e} snapshot")?,
                    None => write!(f, "restarted from scratch")?,
                }
                write!(f, ", lr x{lr_factor}")?;
                if *serial {
                    write!(f, ", degraded to 1 thread")?;
                }
                Ok(())
            }
            ActionTaken::RetriedSave {
                retry_epoch,
                attempt,
            } => write!(f, "save retry {attempt} scheduled for epoch {retry_epoch}"),
            ActionTaken::AbandonedCheckpointing => write!(f, "abandoned checkpointing"),
            ActionTaken::Quarantined => write!(f, "quarantined"),
            ActionTaken::ExcludedAndResharded { world } => {
                write!(f, "excluded worker, resharded over {world} survivors")
            }
            ActionTaken::QuarantinedShard { worker } => {
                write!(f, "quarantined worker {worker}'s gradient shard")
            }
            ActionTaken::AbsorbedDelay { ticks } => {
                write!(f, "absorbed {ticks} ticks of delay")
            }
            ActionTaken::Retransmitted { attempt } => {
                write!(f, "retransmitted (attempt {attempt}, exponential backoff)")
            }
            ActionTaken::LeaseRedeemed { replayed } => {
                write!(f, "lease redeemed, {replayed} event(s) replayed")
            }
        }
    }
}

/// One fault and the action the supervisor answered it with.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The detected fault.
    pub fault: TrainFault,
    /// The recovery action taken.
    pub action: ActionTaken,
}

impl FaultEvent {
    /// Lifts a distributed fault event (`aibench-dist`) into the suite-wide
    /// taxonomy, so distributed and sequential fault logs share one report
    /// format. A distributed rollback restores the *current epoch's
    /// boundary* snapshot, i.e. the state at the end of `epoch - 1`.
    pub fn from_dist(event: &aibench_dist::DistFaultEvent) -> FaultEvent {
        let fault = match event.fault {
            aibench_dist::DistFaultKind::StragglerDelay { ticks } => TrainFault::StragglerDelay {
                epoch: event.epoch,
                worker: event.worker,
                ticks,
            },
            aibench_dist::DistFaultKind::WorkerDrop => TrainFault::WorkerDropped {
                epoch: event.epoch,
                worker: event.worker,
            },
            aibench_dist::DistFaultKind::CorruptGradShard => TrainFault::CorruptGradShard {
                epoch: event.epoch,
                worker: event.worker,
            },
            aibench_dist::DistFaultKind::LostContribution => TrainFault::LostContribution {
                epoch: event.epoch,
                worker: event.worker,
            },
        };
        let action = match event.action {
            aibench_dist::DistAction::ExcludeAndReshard => ActionTaken::ExcludedAndResharded {
                world: event.world_after,
            },
            aibench_dist::DistAction::RollbackToSnapshot => ActionTaken::RolledBack {
                to_epoch: Some(event.epoch.saturating_sub(1)),
                lr_factor: 1.0,
                serial: false,
            },
            aibench_dist::DistAction::QuarantineShard => ActionTaken::QuarantinedShard {
                worker: event.worker,
            },
            aibench_dist::DistAction::AbsorbDelay => ActionTaken::AbsorbedDelay {
                ticks: match event.fault {
                    aibench_dist::DistFaultKind::StragglerDelay { ticks } => ticks,
                    _ => 0,
                },
            },
        };
        FaultEvent { fault, action }
    }

    /// Compact deterministic signature, e.g. `e4:non-finite-loss>rollback`.
    /// Float payloads are excluded, so the signature is total even over NaN.
    pub fn signature(&self) -> String {
        format!(
            "e{}:{}>{}",
            self.fault.epoch(),
            self.fault.kind(),
            self.action.kind()
        )
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.fault, self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_every_variant() {
        let faults = [
            TrainFault::NonFiniteLoss {
                epoch: 1,
                loss: f32::NAN,
            },
            TrainFault::LossSpike {
                epoch: 2,
                loss: 1e9,
                baseline: 0.1,
            },
            TrainFault::NonFiniteParam {
                epoch: 3,
                param: "w".into(),
            },
            TrainFault::ExplodingGradNorm {
                epoch: 4,
                norm: 1e12,
                limit: 1e8,
            },
            TrainFault::KernelPanic {
                epoch: 5,
                message: "boom".into(),
            },
            TrainFault::CheckpointIo {
                epoch: 6,
                error: "disk".into(),
            },
            TrainFault::StalledProgress {
                epoch: 7,
                window: 3,
                best: 0.5,
            },
            TrainFault::BudgetExhausted {
                executed: 99,
                budget: 98,
            },
            TrainFault::StragglerDelay {
                epoch: 9,
                worker: 2,
                ticks: 7,
            },
            TrainFault::WorkerDropped {
                epoch: 10,
                worker: 1,
            },
            TrainFault::CorruptGradShard {
                epoch: 11,
                worker: 0,
            },
            TrainFault::LostContribution {
                epoch: 12,
                worker: 3,
            },
            TrainFault::FrameCorrupt {
                epoch: 13,
                frame: 7,
            },
            TrainFault::ConnectionLost {
                epoch: 14,
                session: 2,
            },
            TrainFault::StoreCorrupt {
                epoch: 15,
                detail: "torn".into(),
            },
        ];
        let kinds: Vec<&str> = faults.iter().map(|f| f.kind()).collect();
        assert_eq!(kinds, TrainFault::KINDS);
    }

    #[test]
    fn dist_events_lift_into_the_taxonomy() {
        let ev = aibench_dist::DistFaultEvent {
            epoch: 3,
            step: 2,
            worker: 1,
            fault: aibench_dist::DistFaultKind::WorkerDrop,
            action: aibench_dist::DistAction::ExcludeAndReshard,
            world_after: 2,
        };
        let lifted = FaultEvent::from_dist(&ev);
        assert_eq!(lifted.signature(), "e3:worker-drop>exclude-reshard");
        let rb = aibench_dist::DistFaultEvent {
            epoch: 4,
            step: 1,
            worker: 0,
            fault: aibench_dist::DistFaultKind::LostContribution,
            action: aibench_dist::DistAction::RollbackToSnapshot,
            world_after: 3,
        };
        let lifted = FaultEvent::from_dist(&rb);
        assert_eq!(lifted.signature(), "e4:lost-contribution>rollback");
        assert_eq!(
            lifted.action,
            ActionTaken::RolledBack {
                to_epoch: Some(3),
                lr_factor: 1.0,
                serial: false
            }
        );
    }

    #[test]
    fn signature_is_nan_stable() {
        let a = FaultEvent {
            fault: TrainFault::NonFiniteLoss {
                epoch: 4,
                loss: f32::NAN,
            },
            action: ActionTaken::RolledBack {
                to_epoch: Some(3),
                lr_factor: 0.5,
                serial: false,
            },
        };
        let b = a.clone();
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.signature(), "e4:non-finite-loss>rollback");
    }
}

//! Numeric sentinels: cheap read-only checks the supervisor runs around
//! every training step.
//!
//! Sentinels only *read* trainer state (parameter values, gradients, the
//! loss trace), so enabling them never perturbs the training trajectory —
//! a supervised run under an empty fault schedule stays bitwise identical
//! to an unsupervised one. Their cost is measured by the `ablation_fault`
//! bench.

use aibench::QualityTarget;
use aibench_models::Trainer;

use crate::taxonomy::TrainFault;

/// Sentinel thresholds.
///
/// Defaults are deliberately loose: a healthy run on any registered
/// benchmark never trips them, so every firing is a genuine anomaly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentinelConfig {
    /// Scan parameter values for NaN/Inf before each step.
    pub params_finite: bool,
    /// Global gradient L2-norm limit (`0.0` disables the norm check; a
    /// non-finite norm always fires when the scan is enabled).
    pub grad_norm_limit: f32,
    /// A loss is a spike when it exceeds `loss_spike_factor` times the best
    /// recent loss magnitude (`0.0` disables).
    pub loss_spike_factor: f32,
    /// Epochs to wait before spike detection arms (early losses are noisy).
    pub loss_spike_warmup: usize,
    /// Declare a stall after this many evaluations without improvement.
    /// `None` (the default) disables stall detection — runs that legitimately
    /// plateau below target should end as `MissedTarget`, not be killed.
    pub stall_window: Option<usize>,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            params_finite: true,
            grad_norm_limit: 1e8,
            loss_spike_factor: 1e4,
            loss_spike_warmup: 3,
            stall_window: None,
        }
    }
}

impl SentinelConfig {
    /// All sentinels disabled — detection then rests on injections and
    /// panics only. Used to isolate sentinel cost in the ablation.
    pub fn off() -> Self {
        SentinelConfig {
            params_finite: false,
            grad_norm_limit: 0.0,
            loss_spike_factor: 0.0,
            loss_spike_warmup: 0,
            stall_window: None,
        }
    }
}

/// Pre-step scan: parameter finiteness, then the global gradient norm.
/// Read-only; returns the first fault found.
pub fn check_params(
    trainer: &dyn Trainer,
    config: &SentinelConfig,
    epoch: usize,
) -> Option<TrainFault> {
    if !config.params_finite && config.grad_norm_limit <= 0.0 {
        return None;
    }
    let params = trainer.params();
    if config.params_finite {
        for p in &params {
            if p.value().data().iter().any(|x| !x.is_finite()) {
                return Some(TrainFault::NonFiniteParam {
                    epoch,
                    param: p.name(),
                });
            }
        }
    }
    if config.grad_norm_limit > 0.0 {
        let mut sq = 0.0f64;
        for p in &params {
            for &g in p.grad().data() {
                sq += f64::from(g) * f64::from(g);
            }
        }
        let norm = sq.sqrt() as f32;
        if !norm.is_finite() || norm > config.grad_norm_limit {
            return Some(TrainFault::ExplodingGradNorm {
                epoch,
                norm,
                limit: config.grad_norm_limit,
            });
        }
    }
    None
}

/// Post-step loss check: finiteness, then spike-vs-recent-baseline.
/// `history` is the loss trace *before* this epoch's entry.
pub fn check_loss(
    loss: f32,
    epoch: usize,
    history: &[f32],
    config: &SentinelConfig,
) -> Option<TrainFault> {
    if !loss.is_finite() {
        return Some(TrainFault::NonFiniteLoss { epoch, loss });
    }
    if config.loss_spike_factor > 0.0 && epoch > config.loss_spike_warmup && !history.is_empty() {
        // Baseline: the smallest loss magnitude in the last five epochs,
        // floored so a fully converged (near-zero loss) run does not turn
        // ordinary jitter into "spikes".
        let baseline = history
            .iter()
            .rev()
            .take(5)
            .map(|l| l.abs())
            .fold(f32::INFINITY, f32::min);
        if baseline.is_finite() && loss.abs() > config.loss_spike_factor * baseline.max(1e-3) {
            return Some(TrainFault::LossSpike {
                epoch,
                loss,
                baseline,
            });
        }
    }
    None
}

/// Stall check over the quality trace: fires when none of the last `window`
/// evaluations improved on the best quality seen before them.
pub fn check_stall(
    target: &QualityTarget,
    quality_trace: &[(usize, f64)],
    window: usize,
    epoch: usize,
) -> Option<TrainFault> {
    let window = window.max(1);
    if quality_trace.len() <= window {
        return None;
    }
    let split = quality_trace.len() - window;
    let (before, recent) = quality_trace.split_at(split);
    let mut best = before[0].1;
    for &(_, q) in &before[1..] {
        if target.better(q, best) {
            best = q;
        }
    }
    if recent.iter().any(|&(_, q)| target.better(q, best)) {
        return None;
    }
    Some(TrainFault::StalledProgress {
        epoch,
        window,
        best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_sentinel_flags_nan_and_spike() {
        let cfg = SentinelConfig::default();
        assert!(matches!(
            check_loss(f32::NAN, 1, &[], &cfg),
            Some(TrainFault::NonFiniteLoss { .. })
        ));
        let history = [0.9, 0.5, 0.4, 0.35];
        assert!(check_loss(0.34, 5, &history, &cfg).is_none());
        assert!(matches!(
            check_loss(1e9, 5, &history, &cfg),
            Some(TrainFault::LossSpike { .. })
        ));
        // Inside the warmup, spikes pass.
        assert!(check_loss(1e9, 2, &[0.9], &cfg).is_none());
        // Near-zero baselines are floored, jitter is not a spike.
        assert!(check_loss(0.5, 9, &[1e-9, 1e-9, 1e-9, 1e-9], &cfg).is_none());
    }

    #[test]
    fn stall_fires_only_after_a_full_flat_window() {
        let target = QualityTarget::at_least(0.9);
        let trace = [(1, 0.2), (2, 0.4), (3, 0.4), (4, 0.4), (5, 0.4)];
        assert!(check_stall(&target, &trace[..3], 3, 3).is_none());
        assert!(check_stall(&target, &trace, 3, 5).is_some());
        let improving = [(1, 0.2), (2, 0.4), (3, 0.4), (4, 0.5), (5, 0.6)];
        assert!(check_stall(&target, &improving, 3, 5).is_none());
    }

    #[test]
    fn lower_better_stall_respects_direction() {
        let target = QualityTarget::at_most(0.1);
        let worsening = [(1, 0.5), (2, 0.5), (3, 0.5), (4, 0.6)];
        assert!(check_stall(&target, &worsening, 2, 4).is_some());
        let improving = [(1, 0.5), (2, 0.5), (3, 0.4), (4, 0.3)];
        assert!(check_stall(&target, &improving, 2, 4).is_none());
    }
}

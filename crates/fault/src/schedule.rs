//! Deterministic fault schedules: *what* to inject, *when* (logical
//! epochs), and whether the defect is transient or persistent.
//!
//! A schedule is pure data and is never mutated by a run — the supervisor
//! tracks which one-shot entries have fired in its own state, so the same
//! `FaultSchedule` value can drive any number of runs and every one of them
//! observes the identical injection sequence.

use aibench_tensor::Rng;

/// One kind of injectable defect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Poison one gradient entry with NaN (picked by the schedule's RNG).
    GradNan,
    /// Overwrite one parameter's gradient with a huge constant.
    GradExplosion {
        /// The value every gradient entry is set to.
        scale: f32,
    },
    /// Poison one parameter *value* entry with NaN.
    ParamNan,
    /// Flip one bit of one parameter value (entry and parameter picked by
    /// the schedule's RNG).
    ParamBitFlip {
        /// Which bit of the f32 representation to flip (0 = LSB of the
        /// mantissa, 30 = top exponent bit).
        bit: u8,
    },
    /// Replace the epoch's reported training loss with `value` (use NaN for
    /// a non-finite loss, a huge finite value for a spike).
    LossValue {
        /// The substituted loss.
        value: f32,
    },
    /// Panic inside a parallel kernel region during the training step.
    KernelPanic,
    /// Fail the checkpoint save due at this epoch.
    SaveFail,
    /// During the next rollback at or after this epoch, treat the newest
    /// snapshot as unreadable (exercises the fall-back-to-older path).
    LoadFail,
    /// Freeze the quality metric: evaluations at firing epochs report the
    /// value first observed under the freeze (persistent entries simulate a
    /// permanently stalled run).
    EvalFreeze,
}

impl FaultKind {
    /// Whether the injection corrupts trainer state before the step (as
    /// opposed to intercepting the step, evaluation, or checkpointing).
    pub fn is_pre_step(&self) -> bool {
        matches!(
            self,
            FaultKind::GradNan
                | FaultKind::GradExplosion { .. }
                | FaultKind::ParamNan
                | FaultKind::ParamBitFlip { .. }
        )
    }
}

/// One scheduled injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Injection {
    /// The 1-based logical epoch the defect first applies at.
    pub epoch: usize,
    /// What to inject.
    pub kind: FaultKind,
    /// `false`: fires exactly once (at `epoch`, consumed even if the run
    /// later re-executes that epoch after a rollback — a transient fault).
    /// `true`: fires at *every* epoch `>= epoch` — a persistent defect no
    /// amount of retrying escapes.
    pub persistent: bool,
}

/// A deterministic injection plan for one supervised run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Seeds the RNG that picks injection victims (which parameter, which
    /// entry, which bit). Independent of the training seed.
    pub seed: u64,
    /// The scheduled injections.
    pub injections: Vec<Injection>,
}

impl FaultSchedule {
    /// The empty schedule: a supervised run under it is bitwise identical
    /// to an unsupervised one.
    pub fn empty() -> Self {
        FaultSchedule {
            seed: 0,
            injections: Vec::new(),
        }
    }

    /// A schedule with no injections yet, drawing victims from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            injections: Vec::new(),
        }
    }

    /// Adds a one-shot injection at `epoch`.
    pub fn inject(mut self, epoch: usize, kind: FaultKind) -> Self {
        self.injections.push(Injection {
            epoch,
            kind,
            persistent: false,
        });
        self
    }

    /// Adds a persistent injection firing at every epoch `>= epoch`.
    pub fn inject_persistent(mut self, epoch: usize, kind: FaultKind) -> Self {
        self.injections.push(Injection {
            epoch,
            kind,
            persistent: true,
        });
        self
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Generates `count` one-shot injections at seeded epochs in
    /// `1..=max_epoch`, cycling through the recoverable kinds — a quick way
    /// to build property-test corpora.
    pub fn seeded(seed: u64, max_epoch: usize, count: usize) -> Self {
        let mut rng = Rng::seed_from(seed ^ 0x5eed_fa17);
        let mut schedule = FaultSchedule::new(seed);
        for i in 0..count {
            let epoch = 1 + rng.below(max_epoch.max(1));
            let kind = match i % 5 {
                0 => FaultKind::GradNan,
                1 => FaultKind::GradExplosion { scale: 1e12 },
                2 => FaultKind::ParamNan,
                3 => FaultKind::LossValue { value: f32::NAN },
                _ => FaultKind::SaveFail,
            };
            schedule = schedule.inject(epoch, kind);
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let s = FaultSchedule::new(7)
            .inject(3, FaultKind::GradNan)
            .inject_persistent(5, FaultKind::KernelPanic);
        assert_eq!(s.injections.len(), 2);
        assert!(!s.injections[0].persistent);
        assert!(s.injections[1].persistent);
        assert!(!s.is_empty());
        assert!(FaultSchedule::empty().is_empty());
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let a = FaultSchedule::seeded(11, 10, 6);
        let b = FaultSchedule::seeded(11, 10, 6);
        // Compare rendered forms: schedules may carry NaN payloads, which
        // derived float equality treats as unequal.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.injections.len(), 6);
        assert!(a.injections.iter().all(|i| (1..=10).contains(&i.epoch)));
        let c = FaultSchedule::seeded(12, 10, 6);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }
}

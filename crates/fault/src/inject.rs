//! The seeded fault-injection engine: applies one scheduled defect to live
//! trainer state.
//!
//! Victim selection (which parameter, which entry, which bit) is driven by
//! the schedule's own RNG — independent of the training seed — so the same
//! `FaultSchedule` corrupts the same locations in every run, which is what
//! makes supervised runs replayable.

use aibench_models::Trainer;
use aibench_nn::clip_grad_norm;
use aibench_tensor::Rng;

use crate::schedule::FaultKind;

/// Applies one pre-step corruption to the trainer's parameters or
/// gradients. Non-pre-step kinds are handled at their interception points
/// by the supervisor and are ignored here.
pub(crate) fn corrupt(trainer: &dyn Trainer, rng: &mut Rng, kind: FaultKind) {
    let params = trainer.params();
    if params.is_empty() {
        return;
    }
    let victim = &params[rng.below(params.len())];
    if victim.is_empty() {
        return;
    }
    let index = rng.below(victim.len());
    match kind {
        FaultKind::GradNan => {
            victim.grad_mut().data_mut()[index] = f32::NAN;
        }
        FaultKind::GradExplosion { scale } => {
            victim.grad_mut().map_inplace(|_| scale);
        }
        FaultKind::ParamNan => {
            victim.value_mut().data_mut()[index] = f32::NAN;
        }
        FaultKind::ParamBitFlip { bit } => {
            let mut value = victim.value_mut();
            let slot = &mut value.data_mut()[index];
            *slot = f32::from_bits(slot.to_bits() ^ (1u32 << u32::from(bit.min(31))));
        }
        _ => {}
    }
}

/// A deliberately faulty kernel: runs a parallel region whose middle chunk
/// panics, exercising worker-pool panic propagation back to the caller.
/// Chunk boundaries depend only on the problem size, so the panic fires
/// deterministically at any thread count.
pub(crate) fn faulty_kernel(epoch: usize) {
    let mut buffer = vec![0.0f32; 1024];
    aibench_parallel::parallel_slice_mut(&mut buffer, 128, |range, piece| {
        if range.start == 512 {
            // `resume_unwind` raises the panic without running the global
            // panic hook: the fault is expected and caught one frame up,
            // so it must not spray a backtrace onto stderr.
            std::panic::resume_unwind(Box::new(format!("injected kernel fault at epoch {epoch}")));
        }
        piece.fill(1.0);
    });
}

/// Zeroes every non-finite gradient entry and clips the global norm to
/// `clip_norm`. Returns the number of entries zeroed.
pub(crate) fn sanitize_grads(trainer: &dyn Trainer, clip_norm: f32) -> usize {
    let params = trainer.params();
    let mut zeroed = 0usize;
    for p in &params {
        for g in p.grad_mut().data_mut() {
            if !g.is_finite() {
                *g = 0.0;
                zeroed += 1;
            }
        }
    }
    clip_grad_norm(&params, clip_norm);
    zeroed
}

/// Renders a `catch_unwind` payload into a readable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench::Registry;

    #[test]
    fn grad_nan_corruption_is_seed_deterministic() {
        let registry = Registry::aibench();
        let b = registry.get("DC-AI-C15").unwrap();
        let find_nan = |seed: u64| {
            let trainer = b.build(1);
            let mut rng = Rng::seed_from(seed);
            corrupt(trainer.as_ref(), &mut rng, FaultKind::GradNan);
            trainer
                .params()
                .iter()
                .enumerate()
                .flat_map(|(pi, p)| {
                    let g = p.grad();
                    let hits: Vec<(usize, usize)> = g
                        .data()
                        .iter()
                        .enumerate()
                        .filter(|(_, x)| x.is_nan())
                        .map(|(ei, _)| (pi, ei))
                        .collect();
                    hits
                })
                .collect::<Vec<_>>()
        };
        let a = find_nan(3);
        assert_eq!(a.len(), 1, "exactly one poisoned entry");
        assert_eq!(a, find_nan(3), "same schedule seed, same victim");
    }

    #[test]
    fn sanitize_zeroes_nans_and_clips() {
        let registry = Registry::aibench();
        let b = registry.get("DC-AI-C15").unwrap();
        let trainer = b.build(1);
        let params = trainer.params();
        params[0].grad_mut().data_mut()[0] = f32::NAN;
        params[0].grad_mut().data_mut()[1] = 1e20;
        let zeroed = sanitize_grads(trainer.as_ref(), 1.0);
        assert_eq!(zeroed, 1);
        let mut sq = 0.0f64;
        for p in &params {
            for &g in p.grad().data() {
                assert!(g.is_finite());
                sq += f64::from(g) * f64::from(g);
            }
        }
        assert!(sq.sqrt() <= 1.0 + 1e-3);
    }

    #[test]
    fn faulty_kernel_panics_and_is_catchable() {
        let caught =
            std::panic::catch_unwind(|| faulty_kernel(7)).expect_err("the kernel must panic");
        assert!(panic_message(&*caught).contains("epoch 7"));
    }
}

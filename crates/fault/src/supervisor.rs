//! The supervised training loop: runs one benchmark to its quality target
//! under numeric sentinels, scheduled fault injection, and deterministic
//! recovery policies.
//!
//! # Determinism contract
//!
//! Same seed + same [`FaultSchedule`] ⇒ the same [`SupervisedRun`], bit for
//! bit ([`SupervisedRun::deterministic_eq`]), at any thread count. Under an
//! empty schedule the supervised result is bitwise identical to the plain
//! runner's ([`run_to_quality`](aibench::runner::run_to_quality)): the
//! sentinels only read state, the step guard only wraps calls, and snapshots
//! are proven side-effect-free by the resumable-training test suite.
//!
//! Every recovery decision is keyed on *logical* epochs — retry backoff,
//! stall windows, and the watchdog budget count steps, never wall-clock
//! time — so the recovery sequence itself replays identically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use aibench::ckpt::{restore_run, snapshot_run, PartialRun};
use aibench::registry::Benchmark;
use aibench::runner::{RunConfig, RunResult};
use aibench_ckpt::{CheckpointSink, CkptError, MemorySink};
use aibench_models::Trainer;
use aibench_tensor::Rng;

use crate::inject;
use crate::policy::{RecoveryAction, RecoveryPolicy};
use crate::schedule::{FaultKind, FaultSchedule};
use crate::sentinel::{self, SentinelConfig};
use crate::taxonomy::{ActionTaken, FaultEvent, TrainFault};

/// Supervisor configuration: sentinels, recovery policy, and the rollback
/// snapshot cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Sentinel thresholds.
    pub sentinels: SentinelConfig,
    /// Fault-to-action mapping.
    pub policy: RecoveryPolicy,
    /// Save a rollback snapshot every this many epochs (`0` disables
    /// snapshots — every rollback then restarts from scratch).
    pub snapshot_every: usize,
    /// Recoveries tolerated before the run is quarantined.
    pub max_recoveries: usize,
    /// Watchdog: the run may execute at most
    /// `epoch_budget_factor * max_epochs + 8` epochs including re-runs
    /// after rollbacks; exceeding it quarantines with
    /// [`TrainFault::BudgetExhausted`].
    pub epoch_budget_factor: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            sentinels: SentinelConfig::default(),
            policy: RecoveryPolicy::default(),
            snapshot_every: 1,
            max_recoveries: 8,
            epoch_budget_factor: 4,
        }
    }
}

/// How a supervised run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Reached the quality target with no recoveries.
    Converged,
    /// Reached the quality target after `attempts` recoveries.
    Recovered {
        /// Number of recovery actions taken on the way.
        attempts: usize,
    },
    /// Exhausted `max_epochs` without reaching the target (no fault ended
    /// the run — it just did not get there).
    MissedTarget,
    /// The supervisor stopped retrying: the terminal fault.
    Quarantined {
        /// The fault that ended the run.
        fault: TrainFault,
    },
}

impl Outcome {
    /// Stable outcome name.
    pub fn kind(&self) -> &'static str {
        match self {
            Outcome::Converged => "converged",
            Outcome::Recovered { .. } => "recovered",
            Outcome::MissedTarget => "missed-target",
            Outcome::Quarantined { .. } => "quarantined",
        }
    }

    /// Whether the run reached its quality target.
    pub fn reached_target(&self) -> bool {
        matches!(self, Outcome::Converged | Outcome::Recovered { .. })
    }

    /// Encodes the outcome into `state` under `prefix`, in the ckpt typed
    /// byte format. A quarantining fault is embedded under a `fault`
    /// sub-prefix.
    pub fn put_state(&self, state: &mut aibench_ckpt::State, prefix: &str) {
        use aibench_ckpt::key;
        state.put_str(key(prefix, "outcome"), self.kind());
        match self {
            Outcome::Converged | Outcome::MissedTarget => {}
            Outcome::Recovered { attempts } => {
                state.put_usize(key(prefix, "attempts"), *attempts);
            }
            Outcome::Quarantined { fault } => {
                fault.put_state(state, &key(prefix, "fault"));
            }
        }
    }

    /// Decodes an outcome encoded by [`Outcome::put_state`].
    pub fn take_state(
        state: &aibench_ckpt::State,
        prefix: &str,
    ) -> Result<Outcome, aibench_ckpt::CkptError> {
        use aibench_ckpt::key;
        Ok(match state.str(&key(prefix, "outcome"))? {
            "converged" => Outcome::Converged,
            "missed-target" => Outcome::MissedTarget,
            "recovered" => Outcome::Recovered {
                attempts: state.usize(&key(prefix, "attempts"))?,
            },
            "quarantined" => Outcome::Quarantined {
                fault: TrainFault::take_state(state, &key(prefix, "fault"))?,
            },
            other => {
                return Err(aibench_ckpt::CkptError::MetaMismatch {
                    what: format!("unknown outcome `{other}`"),
                })
            }
        })
    }

    /// NaN-stable signature (`recovered:2`, `quarantined:kernel-panic`, …).
    pub fn signature(&self) -> String {
        match self {
            Outcome::Converged => "converged".to_string(),
            Outcome::Recovered { attempts } => format!("recovered:{attempts}"),
            Outcome::MissedTarget => "missed-target".to_string(),
            Outcome::Quarantined { fault } => format!("quarantined:{}", fault.kind()),
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Converged => write!(f, "converged"),
            Outcome::Recovered { attempts } => write!(f, "recovered ({attempts} recoveries)"),
            Outcome::MissedTarget => write!(f, "missed target"),
            Outcome::Quarantined { fault } => write!(f, "quarantined: {fault}"),
        }
    }
}

/// The complete record of one supervised training session.
#[derive(Debug, Clone)]
pub struct SupervisedRun {
    /// The training result (whatever trajectory survived recovery).
    pub result: RunResult,
    /// How the session ended.
    pub outcome: Outcome,
    /// Every fault detected, with the action taken, in detection order.
    pub faults: Vec<FaultEvent>,
    /// Total recovery actions taken.
    pub recoveries: usize,
    /// Epochs executed including re-runs after rollbacks (`>=
    /// result.epochs_run`; the difference is the work recovery repeated).
    pub epochs_executed: usize,
    /// Whether execution was degraded to a single thread along the way.
    pub degraded_serial: bool,
}

impl SupervisedRun {
    /// Deterministic signature of the fault log (`"clean"` when empty).
    /// Built from kinds and epochs only, so it is total even when fault
    /// payloads carry NaN.
    pub fn fault_signature(&self) -> String {
        if self.faults.is_empty() {
            return "clean".to_string();
        }
        let parts: Vec<String> = self.faults.iter().map(|e| e.signature()).collect();
        parts.join(";")
    }

    /// Bitwise-determinism equality: the training result (floats compared
    /// by bit pattern), the outcome, and the full fault/recovery sequence
    /// must all match. Wall time is excluded.
    pub fn deterministic_eq(&self, other: &SupervisedRun) -> bool {
        self.result.deterministic_eq(&other.result)
            && self.outcome.signature() == other.outcome.signature()
            && self.recoveries == other.recoveries
            && self.epochs_executed == other.epochs_executed
            && self.fault_signature() == other.fault_signature()
    }
}

/// What the loop does after a fault was handled.
enum Flow {
    /// The damage was repaired in place; the epoch proceeds.
    Proceed,
    /// State was rolled back; restart the loop at the (earlier) next epoch.
    Restart,
    /// The run is quarantined; stop.
    Stop,
}

/// What one [`SupervisedSession::tick`] accomplished.
#[derive(Debug, Clone, PartialEq)]
pub enum Tick {
    /// An epoch was committed: its loss entered the trace, and `quality`
    /// holds the evaluation if this epoch was on the eval cadence.
    Progressed {
        /// The committed (1-based) epoch.
        epoch: usize,
        /// The committed mean training loss (after any injected override).
        loss: f32,
        /// The quality measured this epoch, if it evaluated.
        quality: Option<f64>,
    },
    /// A recovery action consumed the slot — state may have been rolled
    /// back; no epoch was committed.
    Recovering,
    /// The session is over (converged, missed target, or quarantined);
    /// nothing ran.
    Done,
}

/// One supervised training session in steppable form: the engine behind
/// [`supervised_run`], opened up so a scheduler (the `aibench-serve`
/// server) can interleave many sessions on a bounded worker budget.
///
/// Each call to [`SupervisedSession::tick`] spends one supervision slot —
/// one epoch attempt, including any injections due, sentinel checks, and
/// at most one recovery action. Between ticks the session can be
/// [`park`](SupervisedSession::park)ed (snapshot to its own sink, trainer
/// dropped) and later [`unpark`](SupervisedSession::unpark)ed; because
/// every piece of supervision state (injection bookkeeping, corruption RNG
/// position, recovery counters) stays in the struct and the trainer
/// round-trips through the strict snapshot path, a parked-and-resumed
/// session is bitwise identical to one that never stopped.
///
/// The sink type is generic over *ownership*: the one-shot runners borrow
/// the caller's sink (`&mut dyn CheckpointSink` is itself a sink), a
/// served session owns a private `MemorySink`.
pub struct SupervisedSession<'a, S: CheckpointSink> {
    benchmark: &'a Benchmark,
    seed: u64,
    config: RunConfig,
    schedule: FaultSchedule,
    sup: SupervisorConfig,
    sink: S,
    rng: Rng,
    /// Which one-shot schedule entries have fired.
    fired: Vec<bool>,
    /// `None` while parked: the trainer's state lives in the park snapshot.
    trainer: Option<Box<dyn Trainer>>,
    progress: PartialRun,
    faults: Vec<FaultEvent>,
    recoveries: usize,
    executed: usize,
    budget: usize,
    degraded_serial: bool,
    quarantined: Option<TrainFault>,
    frozen_quality: Option<f64>,
    /// Pending checkpoint-save retry: `(retry_epoch, attempt)`.
    save_retry: Option<(usize, usize)>,
    ckpt_abandoned: bool,
    completed: bool,
    start: Instant,
}

impl<'a, S: CheckpointSink> SupervisedSession<'a, S> {
    /// Opens a supervised session at epoch 0. `sink` is the session's
    /// rollback and park store. Installs `config.parallel` if set.
    pub fn new(
        benchmark: &'a Benchmark,
        seed: u64,
        config: RunConfig,
        schedule: FaultSchedule,
        sup: SupervisorConfig,
        sink: S,
    ) -> Self {
        if let Some(par) = config.parallel {
            par.install();
        }
        let start = Instant::now();
        SupervisedSession {
            benchmark,
            seed,
            rng: Rng::seed_from(schedule.seed),
            fired: vec![false; schedule.injections.len()],
            trainer: Some(benchmark.build(seed)),
            progress: PartialRun::fresh(),
            faults: Vec::new(),
            recoveries: 0,
            executed: 0,
            budget: sup.epoch_budget_factor.max(1) * config.max_epochs.max(1) + 8,
            degraded_serial: false,
            quarantined: None,
            frozen_quality: None,
            save_retry: None,
            ckpt_abandoned: false,
            completed: false,
            start,
            config,
            schedule,
            sup,
            sink,
        }
    }

    fn live_trainer(&self) -> &dyn Trainer {
        self.trainer
            .as_deref()
            .expect("session is parked; unpark before use")
    }
    /// Handles one detected fault per the policy. `pre_step` is true when
    /// the fault was caught before the training step consumed any state —
    /// the only point where in-place gradient sanitizing is sound; the
    /// supervisor coerces sanitize (and misplaced save-retry) actions to a
    /// rollback everywhere else.
    fn handle(&mut self, fault: TrainFault, pre_step: bool) -> Flow {
        let mut action = self.sup.policy.action_for(&fault);
        match action {
            RecoveryAction::SkipAndSanitize { .. } if !pre_step => {
                action = RecoveryAction::Rollback { lr_factor: 0.5 };
            }
            RecoveryAction::RetrySave { .. } => {
                action = RecoveryAction::Rollback { lr_factor: 1.0 };
            }
            _ => {}
        }
        if !matches!(action, RecoveryAction::Quarantine)
            && self.recoveries >= self.sup.max_recoveries
        {
            return self.quarantine(fault);
        }
        match action {
            RecoveryAction::Quarantine => self.quarantine(fault),
            RecoveryAction::SkipAndSanitize { clip_norm } => {
                let zeroed = inject::sanitize_grads(self.live_trainer(), clip_norm);
                self.recoveries += 1;
                self.faults.push(FaultEvent {
                    fault,
                    action: ActionTaken::SanitizedGrads {
                        zeroed,
                        clipped_to: clip_norm,
                    },
                });
                Flow::Proceed
            }
            RecoveryAction::Rollback { lr_factor } => {
                self.rollback(fault, lr_factor, false);
                Flow::Restart
            }
            RecoveryAction::RollbackSerial { lr_factor } => {
                aibench_parallel::set_threads(1);
                self.degraded_serial = true;
                self.rollback(fault, lr_factor, true);
                Flow::Restart
            }
            RecoveryAction::RetrySave { .. } => unreachable!("coerced to Rollback above"),
        }
    }

    fn quarantine(&mut self, fault: TrainFault) -> Flow {
        self.faults.push(FaultEvent {
            fault: fault.clone(),
            action: ActionTaken::Quarantined,
        });
        self.quarantined = Some(fault);
        Flow::Stop
    }

    /// Restores the newest valid snapshot (scratch if none survives),
    /// scales the learning rate, and records the event. Snapshots that are
    /// unreadable or fail their checksums are skipped in favor of older
    /// ones — recovery never resumes from corrupt state. A scheduled
    /// `LoadFail` injection makes the newest snapshot unreadable for this
    /// rollback, forcing the fall-back path.
    fn rollback(&mut self, fault: TrainFault, lr_factor: f32, serial: bool) {
        let at_epoch = fault.epoch();
        let mut skip_newest = false;
        for (i, inj) in self.schedule.injections.iter().enumerate() {
            if matches!(inj.kind, FaultKind::LoadFail) && at_epoch >= inj.epoch {
                if inj.persistent {
                    skip_newest = true;
                } else if !self.fired[i] {
                    self.fired[i] = true;
                    skip_newest = true;
                }
            }
        }
        let mut restored: Option<(Box<dyn Trainer>, PartialRun, usize)> = None;
        for (slot, &epoch) in self.sink.epochs().iter().rev().enumerate() {
            if slot == 0 && skip_newest {
                continue;
            }
            let Ok(Some(bytes)) = self.sink.load(epoch) else {
                continue;
            };
            if let Ok((t, p)) = restore_run(self.benchmark, self.seed, &self.config, &bytes) {
                restored = Some((t, p, epoch));
                break;
            }
        }
        let to_epoch = match restored {
            Some((trainer, progress, epoch)) => {
                self.trainer = Some(trainer);
                self.progress = progress;
                Some(epoch)
            }
            None => {
                self.trainer = Some(self.benchmark.build(self.seed));
                self.progress = PartialRun::fresh();
                None
            }
        };
        // Restore reset the learning rate to the snapshotted value; apply
        // the reduction on top so the retried trajectory cools down.
        // Snapshots taken later bake the reduction in, so repeated
        // rollbacks compound.
        self.trainer
            .as_deref_mut()
            .expect("rollback always leaves a live trainer")
            .scale_lr(lr_factor);
        self.save_retry = None;
        self.recoveries += 1;
        self.faults.push(FaultEvent {
            fault,
            action: ActionTaken::RolledBack {
                to_epoch,
                lr_factor,
                serial,
            },
        });
    }

    /// Saves a rollback snapshot when the cadence (or a pending retry) says
    /// so, turning save failures — injected or real — into checkpoint-I/O
    /// faults with deterministic, logical-epoch backoff.
    fn maybe_save(&mut self, epoch: usize, injected_fail: bool) -> Flow {
        if self.ckpt_abandoned || self.sup.snapshot_every == 0 {
            return Flow::Proceed;
        }
        let due_cadence = epoch.is_multiple_of(self.sup.snapshot_every);
        let due_retry = self.save_retry.is_some_and(|(at, _)| epoch >= at);
        if !due_cadence && !due_retry {
            return Flow::Proceed;
        }
        let bytes = snapshot_run(
            self.benchmark,
            self.seed,
            &self.config,
            &self.progress,
            self.live_trainer(),
        );
        let saved = if injected_fail {
            Err(CkptError::Io {
                op: "save".to_string(),
                what: "injected sink failure".to_string(),
            })
        } else {
            self.sink.save(epoch, &bytes)
        };
        let Err(err) = saved else {
            self.save_retry = None;
            return Flow::Proceed;
        };
        let fault = TrainFault::CheckpointIo {
            epoch,
            error: err.to_string(),
        };
        let RecoveryAction::RetrySave {
            backoff_epochs,
            max_attempts,
        } = self.sup.policy.checkpoint_io
        else {
            return self.handle(fault, false);
        };
        if self.recoveries >= self.sup.max_recoveries {
            return self.quarantine(fault);
        }
        self.recoveries += 1;
        let attempt = self.save_retry.map_or(1, |(_, a)| a + 1);
        if attempt > max_attempts {
            self.faults.push(FaultEvent {
                fault,
                action: ActionTaken::AbandonedCheckpointing,
            });
            self.ckpt_abandoned = true;
            self.save_retry = None;
        } else {
            // Doubling backoff in logical epochs, capped so the retry stays
            // within a short horizon.
            let delay = backoff_epochs.max(1) << (attempt - 1).min(4);
            let retry_epoch = epoch + delay;
            self.faults.push(FaultEvent {
                fault,
                action: ActionTaken::RetriedSave {
                    retry_epoch,
                    attempt,
                },
            });
            self.save_retry = Some((retry_epoch, attempt));
        }
        Flow::Proceed
    }

    /// Spends one supervision slot: one epoch attempt, including scheduled
    /// injections, sentinel checks, and at most one recovery action. The
    /// body performs exactly one iteration of [`supervised_run`]'s loop,
    /// so driving `tick` until [`Tick::Done`] reproduces it bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the session is parked.
    pub fn tick(&mut self) -> Tick {
        if self.completed || self.progress.epochs_run >= self.config.max_epochs {
            self.completed = true;
            return Tick::Done;
        }
        // Once degraded, every slot runs serially. Degradation is
        // per-session state reasserted each tick, so a scheduler
        // interleaving many sessions can restore its ambient thread count
        // between ticks without losing this session's degradation.
        if self.degraded_serial {
            aibench_parallel::set_threads(1);
        }
        let epoch = self.progress.epochs_run + 1;
        self.executed += 1;
        if self.executed > self.budget {
            let fault = TrainFault::BudgetExhausted {
                executed: self.executed,
                budget: self.budget,
            };
            self.quarantine(fault);
            self.completed = true;
            return Tick::Done;
        }

        // Scheduled injections due this epoch. One-shot entries are
        // consumed even if recovery re-runs this epoch (a transient
        // fault does not recur); persistent entries re-fire every time.
        let mut panic_due = false;
        let mut loss_override: Option<f32> = None;
        let mut eval_frozen = false;
        let mut save_fail = false;
        for i in 0..self.schedule.injections.len() {
            let inj = self.schedule.injections[i];
            if matches!(inj.kind, FaultKind::LoadFail) {
                continue; // applies at rollback time, not here
            }
            let due = if inj.persistent {
                epoch >= inj.epoch
            } else {
                !self.fired[i] && epoch == inj.epoch
            };
            if !due {
                continue;
            }
            if !inj.persistent {
                self.fired[i] = true;
            }
            match inj.kind {
                FaultKind::GradNan
                | FaultKind::GradExplosion { .. }
                | FaultKind::ParamNan
                | FaultKind::ParamBitFlip { .. } => {
                    inject::corrupt(
                        self.trainer.as_deref().expect("session is parked"),
                        &mut self.rng,
                        inj.kind,
                    );
                }
                FaultKind::LossValue { value } => loss_override = Some(value),
                FaultKind::KernelPanic => panic_due = true,
                FaultKind::SaveFail => save_fail = true,
                FaultKind::EvalFreeze => eval_frozen = true,
                FaultKind::LoadFail => unreachable!("skipped above"),
            }
        }

        // Pre-step sentinels — run after injection so fresh damage is
        // caught before the optimizer consumes it.
        if let Some(fault) = sentinel::check_params(self.live_trainer(), &self.sup.sentinels, epoch)
        {
            match self.handle(fault, true) {
                Flow::Proceed => {}
                Flow::Restart => return Tick::Recovering,
                Flow::Stop => {
                    self.completed = true;
                    return Tick::Done;
                }
            }
        }

        // The guarded training step: panics anywhere inside the step —
        // including inside parallel kernel regions, which the worker
        // pool forwards to the caller — surface here as typed faults.
        let step = {
            let trainer = self.trainer.as_deref_mut().expect("session is parked");
            catch_unwind(AssertUnwindSafe(|| {
                if panic_due {
                    inject::faulty_kernel(epoch);
                }
                trainer.train_epoch()
            }))
        };
        let loss = match step {
            Ok(loss) => loss_override.unwrap_or(loss),
            Err(payload) => {
                let fault = TrainFault::KernelPanic {
                    epoch,
                    message: inject::panic_message(&*payload),
                };
                // A panic mid-step leaves the trainer in an unknown
                // state: the only sound continuations are rollback or
                // quarantine (`handle` coerces sanitize away).
                return match self.handle(fault, false) {
                    Flow::Proceed | Flow::Restart => Tick::Recovering,
                    Flow::Stop => {
                        self.completed = true;
                        Tick::Done
                    }
                };
            }
        };

        // Post-step loss sentinels (checked against the pre-push trace).
        let loss_fault =
            sentinel::check_loss(loss, epoch, &self.progress.loss_trace, &self.sup.sentinels);
        self.progress.loss_trace.push(loss);
        self.progress.epochs_run = epoch;
        if let Some(fault) = loss_fault {
            match self.handle(fault, false) {
                Flow::Proceed => {}
                Flow::Restart => return Tick::Recovering,
                Flow::Stop => {
                    self.completed = true;
                    return Tick::Done;
                }
            }
        }

        // Evaluation — same cadence as the plain runner, so an empty
        // schedule reproduces its trajectory exactly.
        let mut done = false;
        let mut quality = None;
        if epoch.is_multiple_of(self.config.eval_every.max(1)) || epoch == self.config.max_epochs {
            let evaluated = {
                let trainer = self.trainer.as_deref_mut().expect("session is parked");
                catch_unwind(AssertUnwindSafe(|| trainer.evaluate()))
            };
            let q = match evaluated {
                Ok(q) => q,
                Err(payload) => {
                    let fault = TrainFault::KernelPanic {
                        epoch,
                        message: inject::panic_message(&*payload),
                    };
                    return match self.handle(fault, false) {
                        Flow::Proceed | Flow::Restart => Tick::Recovering,
                        Flow::Stop => {
                            self.completed = true;
                            Tick::Done
                        }
                    };
                }
            };
            // A frozen evaluation keeps reporting the first quality
            // observed under the freeze — a stalled-epoch simulation.
            // The real evaluation still runs so trainer state advances
            // identically.
            let q = if eval_frozen {
                *self.frozen_quality.get_or_insert(q)
            } else {
                q
            };
            self.progress.quality_trace.push((epoch, q));
            self.progress.final_quality = q;
            quality = Some(q);
            if self.benchmark.target.met_by(q) {
                self.progress.epochs_to_target = Some(epoch);
                done = true;
            }
            if !done {
                if let Some(window) = self.sup.sentinels.stall_window {
                    if let Some(fault) = sentinel::check_stall(
                        &self.benchmark.target,
                        &self.progress.quality_trace,
                        window,
                        epoch,
                    ) {
                        match self.handle(fault, false) {
                            Flow::Proceed => {}
                            Flow::Restart => return Tick::Recovering,
                            Flow::Stop => {
                                self.completed = true;
                                return Tick::Done;
                            }
                        }
                    }
                }
            }
        }
        if done {
            self.completed = true;
            return Tick::Progressed {
                epoch,
                loss,
                quality,
            };
        }

        // Rollback snapshot, after all of the epoch's checks passed —
        // a snapshot is only ever taken of state the sentinels cleared.
        match self.maybe_save(epoch, save_fail) {
            Flow::Proceed => Tick::Progressed {
                epoch,
                loss,
                quality,
            },
            Flow::Restart => Tick::Recovering,
            Flow::Stop => {
                self.completed = true;
                Tick::Done
            }
        }
    }

    /// Parks the session between ticks: saves a snapshot at the current
    /// epoch into the session's own sink and drops the trainer, freeing
    /// its memory while the session waits for a worker slot. Supervision
    /// bookkeeping — injection one-shot state, the corruption RNG
    /// position, recovery counters, the fault log — stays in the struct,
    /// so an unparked session continues bitwise identically.
    pub fn park(&mut self) -> Result<usize, CkptError> {
        let epoch = self.progress.epochs_run;
        let bytes = snapshot_run(
            self.benchmark,
            self.seed,
            &self.config,
            &self.progress,
            self.live_trainer(),
        );
        self.sink.save(epoch, &bytes)?;
        self.trainer = None;
        Ok(epoch)
    }

    /// The park transition without a park snapshot, for when the park
    /// save failed (a chaos store fault): drops the trainer at the
    /// current epoch anyway, returning that epoch. The next
    /// [`unpark`](SupervisedSession::unpark) restores the newest
    /// surviving rollback snapshot — or restarts from scratch — and
    /// re-runs the gap, which the rollback contract makes
    /// bitwise-neutral.
    pub fn park_without_snapshot(&mut self) -> usize {
        let epoch = self.progress.epochs_run;
        self.trainer = None;
        epoch
    }

    /// Unparks the session from the newest valid snapshot in its sink,
    /// returning the epoch restored from. `None` means no snapshot
    /// survived validation: the session restarted from scratch and the
    /// parked progress is lost (work the scheduler will have to re-run).
    pub fn unpark(&mut self) -> Option<usize> {
        for &epoch in self.sink.epochs().iter().rev() {
            let Ok(Some(bytes)) = self.sink.load(epoch) else {
                continue;
            };
            if let Ok((t, p)) = restore_run(self.benchmark, self.seed, &self.config, &bytes) {
                self.trainer = Some(t);
                self.progress = p;
                return Some(epoch);
            }
        }
        self.trainer = Some(self.benchmark.build(self.seed));
        self.progress = PartialRun::fresh();
        None
    }

    /// Whether the session is parked (trainer dropped; state lives in the
    /// park snapshot).
    pub fn is_parked(&self) -> bool {
        self.trainer.is_none()
    }

    /// Whether the session is over: converged, missed its target with no
    /// epochs left, or quarantined.
    pub fn finished(&self) -> bool {
        self.completed
            || self.quarantined.is_some()
            || self.progress.epochs_to_target.is_some()
            || self.progress.epochs_run >= self.config.max_epochs
    }

    /// Epochs committed in the surviving trajectory.
    pub fn epochs_run(&self) -> usize {
        self.progress.epochs_run
    }

    /// Epochs executed including recovery re-runs.
    pub fn epochs_executed(&self) -> usize {
        self.executed
    }

    /// The accumulated progress.
    pub fn progress(&self) -> &PartialRun {
        &self.progress
    }

    /// Every fault detected so far, with the action taken.
    pub fn faults(&self) -> &[FaultEvent] {
        &self.faults
    }

    /// Recovery actions taken so far.
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// Whether execution was degraded to a single thread.
    pub fn degraded_serial(&self) -> bool {
        self.degraded_serial
    }

    /// The session's rollback/park store — tests and seeded-defect
    /// fixtures reach through this to tamper with the snapshots.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Closes the session into its [`SupervisedRun`] record.
    pub fn into_run(self) -> SupervisedRun {
        let result = RunResult {
            code: self.benchmark.id.code().to_string(),
            seed: self.seed,
            epochs_run: self.progress.epochs_run,
            epochs_to_target: self.progress.epochs_to_target,
            quality_trace: self.progress.quality_trace,
            loss_trace: self.progress.loss_trace,
            final_quality: self.progress.final_quality,
            wall_seconds: self.start.elapsed().as_secs_f64(),
            resumed_from: None,
        };
        let outcome = match self.quarantined {
            Some(fault) => Outcome::Quarantined { fault },
            None if result.converged() => {
                if self.recoveries == 0 {
                    Outcome::Converged
                } else {
                    Outcome::Recovered {
                        attempts: self.recoveries,
                    }
                }
            }
            None => Outcome::MissedTarget,
        };
        SupervisedRun {
            result,
            outcome,
            faults: self.faults,
            recoveries: self.recoveries,
            epochs_executed: self.executed,
            degraded_serial: self.degraded_serial,
        }
    }
}

/// Runs one benchmark under supervision with an in-memory rollback sink.
/// See the module docs for the determinism contract.
pub fn supervised_run(
    benchmark: &Benchmark,
    seed: u64,
    config: &RunConfig,
    schedule: &FaultSchedule,
    sup: &SupervisorConfig,
) -> SupervisedRun {
    let mut sink = MemorySink::new();
    supervised_run_with_sink(benchmark, seed, config, schedule, sup, &mut sink)
}

/// [`supervised_run`] with a caller-provided rollback sink (a `DirSink`
/// for durable snapshots, or a pre-seeded sink in tests). The session
/// always starts from scratch; the sink is the supervisor's rollback
/// store, not a resume source.
pub fn supervised_run_with_sink(
    benchmark: &Benchmark,
    seed: u64,
    config: &RunConfig,
    schedule: &FaultSchedule,
    sup: &SupervisorConfig,
    sink: &mut dyn CheckpointSink,
) -> SupervisedRun {
    let mut session =
        SupervisedSession::new(benchmark, seed, *config, schedule.clone(), *sup, sink);
    // Captured after `new` installs `config.parallel`, so degradation
    // restores the session's own configuration, as before.
    let prior_threads = aibench_parallel::threads();
    while !matches!(session.tick(), Tick::Done) {}
    let run = session.into_run();
    if run.degraded_serial {
        // Graceful degradation is per-run; restore the ambient thread
        // configuration for whoever runs next.
        aibench_parallel::set_threads(prior_threads);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use aibench::Registry;

    fn cfg(max_epochs: usize) -> RunConfig {
        RunConfig {
            max_epochs,
            eval_every: 1,
            ..RunConfig::default()
        }
    }

    #[test]
    fn empty_schedule_reports_clean_convergence() {
        let registry = Registry::aibench();
        let b = registry.get("DC-AI-C15").unwrap();
        let run = supervised_run(
            b,
            2,
            &cfg(40),
            &FaultSchedule::empty(),
            &SupervisorConfig::default(),
        );
        assert!(matches!(run.outcome, Outcome::Converged), "{}", run.outcome);
        assert_eq!(run.fault_signature(), "clean");
        assert_eq!(run.epochs_executed, run.result.epochs_run);
    }

    #[test]
    fn loss_nan_rolls_back_and_recovers() {
        let registry = Registry::aibench();
        let b = registry.get("DC-AI-C15").unwrap();
        let schedule = FaultSchedule::new(3).inject(2, FaultKind::LossValue { value: f32::NAN });
        let run = supervised_run(b, 2, &cfg(40), &schedule, &SupervisorConfig::default());
        assert!(
            matches!(run.outcome, Outcome::Recovered { attempts: 1 }),
            "{}",
            run.outcome
        );
        assert_eq!(run.faults.len(), 1);
        assert_eq!(run.faults[0].fault.kind(), "non-finite-loss");
        assert!(matches!(
            run.faults[0].action,
            ActionTaken::RolledBack {
                to_epoch: Some(1),
                ..
            }
        ));
        // The re-run epochs show up in the executed count.
        assert!(run.epochs_executed > run.result.epochs_run);
    }

    #[test]
    fn persistent_fault_quarantines_instead_of_hanging() {
        let registry = Registry::aibench();
        let b = registry.get("DC-AI-C15").unwrap();
        let schedule =
            FaultSchedule::new(3).inject_persistent(2, FaultKind::LossValue { value: f32::NAN });
        let run = supervised_run(b, 2, &cfg(10), &schedule, &SupervisorConfig::default());
        assert!(
            matches!(run.outcome, Outcome::Quarantined { .. }),
            "{}",
            run.outcome
        );
        let budget = SupervisorConfig::default().epoch_budget_factor * 10 + 8;
        assert!(run.epochs_executed <= budget + 1);
    }

    #[test]
    fn save_failures_back_off_then_abandon() {
        let registry = Registry::aibench();
        let b = registry.get("DC-AI-C15").unwrap();
        // Every save fails from epoch 1 on.
        let schedule = FaultSchedule::new(3).inject_persistent(1, FaultKind::SaveFail);
        let run = supervised_run(b, 2, &cfg(40), &schedule, &SupervisorConfig::default());
        assert!(run.outcome.reached_target(), "{}", run.outcome);
        let kinds: Vec<&str> = run.faults.iter().map(|e| e.action.kind()).collect();
        assert!(kinds.contains(&"retry-save"));
        assert!(kinds.contains(&"abandon-ckpt"));
        assert!(run.faults.iter().all(|e| e.fault.kind() == "checkpoint-io"));
    }

    #[test]
    fn parked_session_resumes_bitwise_identical() {
        let registry = Registry::aibench();
        let b = registry.get("DC-AI-C15").unwrap();
        // A schedule with a mid-run fault, so park/unpark must also carry
        // the injection bookkeeping and recovery counters across.
        let schedule = FaultSchedule::new(3).inject(2, FaultKind::LossValue { value: f32::NAN });
        let sup = SupervisorConfig::default();
        let baseline = supervised_run(b, 2, &cfg(8), &schedule, &sup);

        let mut session =
            SupervisedSession::new(b, 2, cfg(8), schedule.clone(), sup, MemorySink::new());
        let mut ticks = 0;
        loop {
            if matches!(session.tick(), Tick::Done) {
                break;
            }
            ticks += 1;
            if ticks == 3 {
                let at = session.park().unwrap();
                assert!(session.is_parked());
                let from = session.unpark();
                assert_eq!(from, Some(at));
            }
        }
        let parked = session.into_run();
        assert!(
            parked.deterministic_eq(&baseline),
            "parked {} != baseline {}",
            parked.outcome,
            baseline.outcome
        );
    }

    #[test]
    fn unpark_without_any_snapshot_restarts_from_scratch() {
        let registry = Registry::aibench();
        let b = registry.get("DC-AI-C15").unwrap();
        let mut session = SupervisedSession::new(
            b,
            2,
            cfg(8),
            FaultSchedule::empty(),
            SupervisorConfig {
                snapshot_every: 0, // no rollback snapshots to fall back on
                ..SupervisorConfig::default()
            },
            MemorySink::new(),
        );
        session.tick();
        session.tick();
        assert_eq!(session.epochs_run(), 2);
        let at = session.park().unwrap();
        assert_eq!(at, 2);
        // Lose the park snapshot: the session restarts from scratch.
        session.sink_mut().remove(2);
        assert_eq!(session.unpark(), None);
        assert_eq!(session.epochs_run(), 0);
        assert!(!session.finished());
    }

    #[test]
    fn stall_window_detects_frozen_quality() {
        let registry = Registry::aibench();
        let b = registry.get("DC-AI-C15").unwrap();
        let schedule = FaultSchedule::new(3).inject_persistent(1, FaultKind::EvalFreeze);
        let sup = SupervisorConfig {
            sentinels: SentinelConfig {
                stall_window: Some(3),
                ..SentinelConfig::default()
            },
            ..SupervisorConfig::default()
        };
        let run = supervised_run(b, 2, &cfg(40), &schedule, &sup);
        assert!(
            matches!(
                run.outcome,
                Outcome::Quarantined {
                    fault: TrainFault::StalledProgress { .. }
                }
            ),
            "{}",
            run.outcome
        );
    }
}

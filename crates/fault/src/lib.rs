//! `aibench-fault`: supervised suite execution with a typed failure
//! taxonomy, numeric sentinels, seeded fault injection, and deterministic
//! recovery.
//!
//! The supervisor wraps the training loop of
//! [`run_to_quality`](aibench::runner::run_to_quality) in four layers:
//!
//! * **Taxonomy** ([`TrainFault`]) — every way a training session fails,
//!   as typed values carrying logical epochs, never wall-clock time.
//! * **Sentinels** ([`SentinelConfig`]) — cheap read-only checks around
//!   each step: parameter/gradient finiteness, gradient-norm limits, loss
//!   spikes, and (opt-in) stalled quality progress. Their overhead is
//!   measured by the `ablation_fault` bench.
//! * **Injection** ([`FaultSchedule`]) — a seeded, deterministic plan of
//!   defects: NaN-poisoned gradients, parameter bit flips, panicking
//!   kernels, failing checkpoint saves, frozen evaluations. Same schedule,
//!   same damage, every run.
//! * **Recovery** ([`RecoveryPolicy`]) — deterministic responses: skip the
//!   poisoned step with gradient sanitizing, roll back to the last valid
//!   snapshot with a learning-rate reduction, degrade to single-threaded
//!   execution, retry checkpoint saves with logical-epoch backoff, and
//!   quarantine when retrying stops making sense.
//!
//! The whole stack preserves the workspace's core invariant: same seed +
//! same schedule ⇒ bitwise-identical [`SupervisedRun`], at any thread
//! count, and an *empty* schedule is bitwise identical to the unsupervised
//! runner.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod inject;
pub mod policy;
pub mod schedule;
pub mod sentinel;
pub mod suite;
pub mod supervisor;
pub mod taxonomy;

pub use inject::panic_message;
pub use policy::{RecoveryAction, RecoveryPolicy};
pub use schedule::{FaultKind, FaultSchedule, Injection};
pub use sentinel::SentinelConfig;
pub use suite::{run_suite, SuiteEntry, SuitePlan, SuiteReport};
pub use supervisor::{
    supervised_run, supervised_run_with_sink, Outcome, SupervisedRun, SupervisedSession,
    SupervisorConfig, Tick,
};
pub use taxonomy::{ActionTaken, FaultEvent, TrainFault};
